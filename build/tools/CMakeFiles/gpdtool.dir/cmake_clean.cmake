file(REMOVE_RECURSE
  "CMakeFiles/gpdtool.dir/gpdtool.cpp.o"
  "CMakeFiles/gpdtool.dir/gpdtool.cpp.o.d"
  "gpdtool"
  "gpdtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpdtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
