# Empty dependencies file for gpdtool.
# This may be replaced when dependencies are built.
