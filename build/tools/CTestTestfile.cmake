# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(gpdtool_selftest "/root/repo/build/tools/gpdtool" "selftest")
set_tests_properties(gpdtool_selftest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
