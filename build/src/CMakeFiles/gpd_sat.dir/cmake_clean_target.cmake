file(REMOVE_RECURSE
  "libgpd_sat.a"
)
