
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/cnf.cpp" "src/CMakeFiles/gpd_sat.dir/sat/cnf.cpp.o" "gcc" "src/CMakeFiles/gpd_sat.dir/sat/cnf.cpp.o.d"
  "/root/repo/src/sat/dpll.cpp" "src/CMakeFiles/gpd_sat.dir/sat/dpll.cpp.o" "gcc" "src/CMakeFiles/gpd_sat.dir/sat/dpll.cpp.o.d"
  "/root/repo/src/sat/nonmonotone.cpp" "src/CMakeFiles/gpd_sat.dir/sat/nonmonotone.cpp.o" "gcc" "src/CMakeFiles/gpd_sat.dir/sat/nonmonotone.cpp.o.d"
  "/root/repo/src/sat/subset_sum.cpp" "src/CMakeFiles/gpd_sat.dir/sat/subset_sum.cpp.o" "gcc" "src/CMakeFiles/gpd_sat.dir/sat/subset_sum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
