# Empty dependencies file for gpd_sat.
# This may be replaced when dependencies are built.
