file(REMOVE_RECURSE
  "CMakeFiles/gpd_sat.dir/sat/cnf.cpp.o"
  "CMakeFiles/gpd_sat.dir/sat/cnf.cpp.o.d"
  "CMakeFiles/gpd_sat.dir/sat/dpll.cpp.o"
  "CMakeFiles/gpd_sat.dir/sat/dpll.cpp.o.d"
  "CMakeFiles/gpd_sat.dir/sat/nonmonotone.cpp.o"
  "CMakeFiles/gpd_sat.dir/sat/nonmonotone.cpp.o.d"
  "CMakeFiles/gpd_sat.dir/sat/subset_sum.cpp.o"
  "CMakeFiles/gpd_sat.dir/sat/subset_sum.cpp.o.d"
  "libgpd_sat.a"
  "libgpd_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
