file(REMOVE_RECURSE
  "libgpd_monitor.a"
)
