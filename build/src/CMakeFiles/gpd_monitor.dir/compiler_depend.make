# Empty compiler generated dependencies file for gpd_monitor.
# This may be replaced when dependencies are built.
