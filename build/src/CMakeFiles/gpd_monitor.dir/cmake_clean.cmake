file(REMOVE_RECURSE
  "CMakeFiles/gpd_monitor.dir/monitor/feed.cpp.o"
  "CMakeFiles/gpd_monitor.dir/monitor/feed.cpp.o.d"
  "CMakeFiles/gpd_monitor.dir/monitor/insim.cpp.o"
  "CMakeFiles/gpd_monitor.dir/monitor/insim.cpp.o.d"
  "CMakeFiles/gpd_monitor.dir/monitor/online.cpp.o"
  "CMakeFiles/gpd_monitor.dir/monitor/online.cpp.o.d"
  "libgpd_monitor.a"
  "libgpd_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
