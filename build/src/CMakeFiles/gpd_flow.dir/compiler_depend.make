# Empty compiler generated dependencies file for gpd_flow.
# This may be replaced when dependencies are built.
