file(REMOVE_RECURSE
  "CMakeFiles/gpd_flow.dir/flow/closure.cpp.o"
  "CMakeFiles/gpd_flow.dir/flow/closure.cpp.o.d"
  "CMakeFiles/gpd_flow.dir/flow/maxflow.cpp.o"
  "CMakeFiles/gpd_flow.dir/flow/maxflow.cpp.o.d"
  "libgpd_flow.a"
  "libgpd_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
