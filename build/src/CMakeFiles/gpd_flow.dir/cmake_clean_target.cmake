file(REMOVE_RECURSE
  "libgpd_flow.a"
)
