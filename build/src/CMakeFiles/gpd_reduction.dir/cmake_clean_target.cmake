file(REMOVE_RECURSE
  "libgpd_reduction.a"
)
