# Empty compiler generated dependencies file for gpd_reduction.
# This may be replaced when dependencies are built.
