file(REMOVE_RECURSE
  "CMakeFiles/gpd_reduction.dir/reduction/sat_to_computation.cpp.o"
  "CMakeFiles/gpd_reduction.dir/reduction/sat_to_computation.cpp.o.d"
  "CMakeFiles/gpd_reduction.dir/reduction/subset_sum_to_computation.cpp.o"
  "CMakeFiles/gpd_reduction.dir/reduction/subset_sum_to_computation.cpp.o.d"
  "libgpd_reduction.a"
  "libgpd_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
