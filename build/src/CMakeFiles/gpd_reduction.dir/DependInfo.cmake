
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reduction/sat_to_computation.cpp" "src/CMakeFiles/gpd_reduction.dir/reduction/sat_to_computation.cpp.o" "gcc" "src/CMakeFiles/gpd_reduction.dir/reduction/sat_to_computation.cpp.o.d"
  "/root/repo/src/reduction/subset_sum_to_computation.cpp" "src/CMakeFiles/gpd_reduction.dir/reduction/subset_sum_to_computation.cpp.o" "gcc" "src/CMakeFiles/gpd_reduction.dir/reduction/subset_sum_to_computation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_predicates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_computation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
