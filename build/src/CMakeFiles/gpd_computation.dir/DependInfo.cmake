
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/computation/computation.cpp" "src/CMakeFiles/gpd_computation.dir/computation/computation.cpp.o" "gcc" "src/CMakeFiles/gpd_computation.dir/computation/computation.cpp.o.d"
  "/root/repo/src/computation/cut.cpp" "src/CMakeFiles/gpd_computation.dir/computation/cut.cpp.o" "gcc" "src/CMakeFiles/gpd_computation.dir/computation/cut.cpp.o.d"
  "/root/repo/src/computation/random.cpp" "src/CMakeFiles/gpd_computation.dir/computation/random.cpp.o" "gcc" "src/CMakeFiles/gpd_computation.dir/computation/random.cpp.o.d"
  "/root/repo/src/computation/reverse.cpp" "src/CMakeFiles/gpd_computation.dir/computation/reverse.cpp.o" "gcc" "src/CMakeFiles/gpd_computation.dir/computation/reverse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
