# Empty dependencies file for gpd_computation.
# This may be replaced when dependencies are built.
