file(REMOVE_RECURSE
  "CMakeFiles/gpd_computation.dir/computation/computation.cpp.o"
  "CMakeFiles/gpd_computation.dir/computation/computation.cpp.o.d"
  "CMakeFiles/gpd_computation.dir/computation/cut.cpp.o"
  "CMakeFiles/gpd_computation.dir/computation/cut.cpp.o.d"
  "CMakeFiles/gpd_computation.dir/computation/random.cpp.o"
  "CMakeFiles/gpd_computation.dir/computation/random.cpp.o.d"
  "CMakeFiles/gpd_computation.dir/computation/reverse.cpp.o"
  "CMakeFiles/gpd_computation.dir/computation/reverse.cpp.o.d"
  "libgpd_computation.a"
  "libgpd_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
