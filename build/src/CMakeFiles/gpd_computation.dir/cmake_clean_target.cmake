file(REMOVE_RECURSE
  "libgpd_computation.a"
)
