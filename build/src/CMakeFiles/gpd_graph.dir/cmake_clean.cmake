file(REMOVE_RECURSE
  "CMakeFiles/gpd_graph.dir/graph/chains.cpp.o"
  "CMakeFiles/gpd_graph.dir/graph/chains.cpp.o.d"
  "CMakeFiles/gpd_graph.dir/graph/dag.cpp.o"
  "CMakeFiles/gpd_graph.dir/graph/dag.cpp.o.d"
  "CMakeFiles/gpd_graph.dir/graph/linear_extension.cpp.o"
  "CMakeFiles/gpd_graph.dir/graph/linear_extension.cpp.o.d"
  "CMakeFiles/gpd_graph.dir/graph/matching.cpp.o"
  "CMakeFiles/gpd_graph.dir/graph/matching.cpp.o.d"
  "libgpd_graph.a"
  "libgpd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
