
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/chains.cpp" "src/CMakeFiles/gpd_graph.dir/graph/chains.cpp.o" "gcc" "src/CMakeFiles/gpd_graph.dir/graph/chains.cpp.o.d"
  "/root/repo/src/graph/dag.cpp" "src/CMakeFiles/gpd_graph.dir/graph/dag.cpp.o" "gcc" "src/CMakeFiles/gpd_graph.dir/graph/dag.cpp.o.d"
  "/root/repo/src/graph/linear_extension.cpp" "src/CMakeFiles/gpd_graph.dir/graph/linear_extension.cpp.o" "gcc" "src/CMakeFiles/gpd_graph.dir/graph/linear_extension.cpp.o.d"
  "/root/repo/src/graph/matching.cpp" "src/CMakeFiles/gpd_graph.dir/graph/matching.cpp.o" "gcc" "src/CMakeFiles/gpd_graph.dir/graph/matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
