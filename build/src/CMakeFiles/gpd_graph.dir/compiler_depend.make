# Empty compiler generated dependencies file for gpd_graph.
# This may be replaced when dependencies are built.
