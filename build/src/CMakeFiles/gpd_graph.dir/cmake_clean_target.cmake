file(REMOVE_RECURSE
  "libgpd_graph.a"
)
