# Empty compiler generated dependencies file for gpd_clocks.
# This may be replaced when dependencies are built.
