file(REMOVE_RECURSE
  "libgpd_clocks.a"
)
