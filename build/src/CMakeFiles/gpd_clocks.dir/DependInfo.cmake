
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocks/direct_dependency.cpp" "src/CMakeFiles/gpd_clocks.dir/clocks/direct_dependency.cpp.o" "gcc" "src/CMakeFiles/gpd_clocks.dir/clocks/direct_dependency.cpp.o.d"
  "/root/repo/src/clocks/lamport.cpp" "src/CMakeFiles/gpd_clocks.dir/clocks/lamport.cpp.o" "gcc" "src/CMakeFiles/gpd_clocks.dir/clocks/lamport.cpp.o.d"
  "/root/repo/src/clocks/sk_compression.cpp" "src/CMakeFiles/gpd_clocks.dir/clocks/sk_compression.cpp.o" "gcc" "src/CMakeFiles/gpd_clocks.dir/clocks/sk_compression.cpp.o.d"
  "/root/repo/src/clocks/vector_clock.cpp" "src/CMakeFiles/gpd_clocks.dir/clocks/vector_clock.cpp.o" "gcc" "src/CMakeFiles/gpd_clocks.dir/clocks/vector_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpd_computation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
