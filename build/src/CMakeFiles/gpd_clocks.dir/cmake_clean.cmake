file(REMOVE_RECURSE
  "CMakeFiles/gpd_clocks.dir/clocks/direct_dependency.cpp.o"
  "CMakeFiles/gpd_clocks.dir/clocks/direct_dependency.cpp.o.d"
  "CMakeFiles/gpd_clocks.dir/clocks/lamport.cpp.o"
  "CMakeFiles/gpd_clocks.dir/clocks/lamport.cpp.o.d"
  "CMakeFiles/gpd_clocks.dir/clocks/sk_compression.cpp.o"
  "CMakeFiles/gpd_clocks.dir/clocks/sk_compression.cpp.o.d"
  "CMakeFiles/gpd_clocks.dir/clocks/vector_clock.cpp.o"
  "CMakeFiles/gpd_clocks.dir/clocks/vector_clock.cpp.o.d"
  "libgpd_clocks.a"
  "libgpd_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
