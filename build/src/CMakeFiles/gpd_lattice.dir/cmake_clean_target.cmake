file(REMOVE_RECURSE
  "libgpd_lattice.a"
)
