# Empty dependencies file for gpd_lattice.
# This may be replaced when dependencies are built.
