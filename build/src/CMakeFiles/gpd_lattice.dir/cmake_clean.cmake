file(REMOVE_RECURSE
  "CMakeFiles/gpd_lattice.dir/lattice/explore.cpp.o"
  "CMakeFiles/gpd_lattice.dir/lattice/explore.cpp.o.d"
  "libgpd_lattice.a"
  "libgpd_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
