file(REMOVE_RECURSE
  "CMakeFiles/gpd_util.dir/util/table.cpp.o"
  "CMakeFiles/gpd_util.dir/util/table.cpp.o.d"
  "libgpd_util.a"
  "libgpd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
