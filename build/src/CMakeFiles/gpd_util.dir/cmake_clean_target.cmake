file(REMOVE_RECURSE
  "libgpd_util.a"
)
