# Empty compiler generated dependencies file for gpd_util.
# This may be replaced when dependencies are built.
