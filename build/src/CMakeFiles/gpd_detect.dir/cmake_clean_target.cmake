file(REMOVE_RECURSE
  "libgpd_detect.a"
)
