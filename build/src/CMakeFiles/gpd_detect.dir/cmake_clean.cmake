file(REMOVE_RECURSE
  "CMakeFiles/gpd_detect.dir/detect/cpdhb.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/cpdhb.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/cpdsc.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/cpdsc.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/definitely_conjunctive.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/definitely_conjunctive.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/detector.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/detector.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/dnf_detect.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/dnf_detect.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/inequality_detect.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/inequality_detect.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/linear.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/linear.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/sat_encoding.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/sat_encoding.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/singular_cnf.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/singular_cnf.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/slice.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/slice.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/stable.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/stable.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/sum.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/sum.cpp.o.d"
  "CMakeFiles/gpd_detect.dir/detect/symmetric.cpp.o"
  "CMakeFiles/gpd_detect.dir/detect/symmetric.cpp.o.d"
  "libgpd_detect.a"
  "libgpd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
