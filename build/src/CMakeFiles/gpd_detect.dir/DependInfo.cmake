
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/cpdhb.cpp" "src/CMakeFiles/gpd_detect.dir/detect/cpdhb.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/cpdhb.cpp.o.d"
  "/root/repo/src/detect/cpdsc.cpp" "src/CMakeFiles/gpd_detect.dir/detect/cpdsc.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/cpdsc.cpp.o.d"
  "/root/repo/src/detect/definitely_conjunctive.cpp" "src/CMakeFiles/gpd_detect.dir/detect/definitely_conjunctive.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/definitely_conjunctive.cpp.o.d"
  "/root/repo/src/detect/detector.cpp" "src/CMakeFiles/gpd_detect.dir/detect/detector.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/detector.cpp.o.d"
  "/root/repo/src/detect/dnf_detect.cpp" "src/CMakeFiles/gpd_detect.dir/detect/dnf_detect.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/dnf_detect.cpp.o.d"
  "/root/repo/src/detect/inequality_detect.cpp" "src/CMakeFiles/gpd_detect.dir/detect/inequality_detect.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/inequality_detect.cpp.o.d"
  "/root/repo/src/detect/linear.cpp" "src/CMakeFiles/gpd_detect.dir/detect/linear.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/linear.cpp.o.d"
  "/root/repo/src/detect/sat_encoding.cpp" "src/CMakeFiles/gpd_detect.dir/detect/sat_encoding.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/sat_encoding.cpp.o.d"
  "/root/repo/src/detect/singular_cnf.cpp" "src/CMakeFiles/gpd_detect.dir/detect/singular_cnf.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/singular_cnf.cpp.o.d"
  "/root/repo/src/detect/slice.cpp" "src/CMakeFiles/gpd_detect.dir/detect/slice.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/slice.cpp.o.d"
  "/root/repo/src/detect/stable.cpp" "src/CMakeFiles/gpd_detect.dir/detect/stable.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/stable.cpp.o.d"
  "/root/repo/src/detect/sum.cpp" "src/CMakeFiles/gpd_detect.dir/detect/sum.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/sum.cpp.o.d"
  "/root/repo/src/detect/symmetric.cpp" "src/CMakeFiles/gpd_detect.dir/detect/symmetric.cpp.o" "gcc" "src/CMakeFiles/gpd_detect.dir/detect/symmetric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpd_predicates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_computation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
