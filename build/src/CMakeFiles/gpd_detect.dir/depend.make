# Empty dependencies file for gpd_detect.
# This may be replaced when dependencies are built.
