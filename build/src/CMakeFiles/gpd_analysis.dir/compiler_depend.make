# Empty compiler generated dependencies file for gpd_analysis.
# This may be replaced when dependencies are built.
