file(REMOVE_RECURSE
  "libgpd_analysis.a"
)
