file(REMOVE_RECURSE
  "CMakeFiles/gpd_analysis.dir/analysis/statistics.cpp.o"
  "CMakeFiles/gpd_analysis.dir/analysis/statistics.cpp.o.d"
  "libgpd_analysis.a"
  "libgpd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
