file(REMOVE_RECURSE
  "libgpd_io.a"
)
