# Empty dependencies file for gpd_io.
# This may be replaced when dependencies are built.
