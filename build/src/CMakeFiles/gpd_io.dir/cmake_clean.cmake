file(REMOVE_RECURSE
  "CMakeFiles/gpd_io.dir/io/trace_io.cpp.o"
  "CMakeFiles/gpd_io.dir/io/trace_io.cpp.o.d"
  "libgpd_io.a"
  "libgpd_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
