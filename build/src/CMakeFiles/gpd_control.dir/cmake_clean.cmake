file(REMOVE_RECURSE
  "CMakeFiles/gpd_control.dir/control/serialize.cpp.o"
  "CMakeFiles/gpd_control.dir/control/serialize.cpp.o.d"
  "libgpd_control.a"
  "libgpd_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
