# Empty compiler generated dependencies file for gpd_control.
# This may be replaced when dependencies are built.
