file(REMOVE_RECURSE
  "libgpd_control.a"
)
