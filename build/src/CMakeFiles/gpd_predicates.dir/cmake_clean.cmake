file(REMOVE_RECURSE
  "CMakeFiles/gpd_predicates.dir/predicates/boolean_expr.cpp.o"
  "CMakeFiles/gpd_predicates.dir/predicates/boolean_expr.cpp.o.d"
  "CMakeFiles/gpd_predicates.dir/predicates/cnf.cpp.o"
  "CMakeFiles/gpd_predicates.dir/predicates/cnf.cpp.o.d"
  "CMakeFiles/gpd_predicates.dir/predicates/inequality.cpp.o"
  "CMakeFiles/gpd_predicates.dir/predicates/inequality.cpp.o.d"
  "CMakeFiles/gpd_predicates.dir/predicates/local.cpp.o"
  "CMakeFiles/gpd_predicates.dir/predicates/local.cpp.o.d"
  "CMakeFiles/gpd_predicates.dir/predicates/random_trace.cpp.o"
  "CMakeFiles/gpd_predicates.dir/predicates/random_trace.cpp.o.d"
  "CMakeFiles/gpd_predicates.dir/predicates/relational.cpp.o"
  "CMakeFiles/gpd_predicates.dir/predicates/relational.cpp.o.d"
  "CMakeFiles/gpd_predicates.dir/predicates/symmetric.cpp.o"
  "CMakeFiles/gpd_predicates.dir/predicates/symmetric.cpp.o.d"
  "CMakeFiles/gpd_predicates.dir/predicates/variable_trace.cpp.o"
  "CMakeFiles/gpd_predicates.dir/predicates/variable_trace.cpp.o.d"
  "libgpd_predicates.a"
  "libgpd_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
