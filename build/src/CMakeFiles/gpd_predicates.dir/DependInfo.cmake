
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predicates/boolean_expr.cpp" "src/CMakeFiles/gpd_predicates.dir/predicates/boolean_expr.cpp.o" "gcc" "src/CMakeFiles/gpd_predicates.dir/predicates/boolean_expr.cpp.o.d"
  "/root/repo/src/predicates/cnf.cpp" "src/CMakeFiles/gpd_predicates.dir/predicates/cnf.cpp.o" "gcc" "src/CMakeFiles/gpd_predicates.dir/predicates/cnf.cpp.o.d"
  "/root/repo/src/predicates/inequality.cpp" "src/CMakeFiles/gpd_predicates.dir/predicates/inequality.cpp.o" "gcc" "src/CMakeFiles/gpd_predicates.dir/predicates/inequality.cpp.o.d"
  "/root/repo/src/predicates/local.cpp" "src/CMakeFiles/gpd_predicates.dir/predicates/local.cpp.o" "gcc" "src/CMakeFiles/gpd_predicates.dir/predicates/local.cpp.o.d"
  "/root/repo/src/predicates/random_trace.cpp" "src/CMakeFiles/gpd_predicates.dir/predicates/random_trace.cpp.o" "gcc" "src/CMakeFiles/gpd_predicates.dir/predicates/random_trace.cpp.o.d"
  "/root/repo/src/predicates/relational.cpp" "src/CMakeFiles/gpd_predicates.dir/predicates/relational.cpp.o" "gcc" "src/CMakeFiles/gpd_predicates.dir/predicates/relational.cpp.o.d"
  "/root/repo/src/predicates/symmetric.cpp" "src/CMakeFiles/gpd_predicates.dir/predicates/symmetric.cpp.o" "gcc" "src/CMakeFiles/gpd_predicates.dir/predicates/symmetric.cpp.o.d"
  "/root/repo/src/predicates/variable_trace.cpp" "src/CMakeFiles/gpd_predicates.dir/predicates/variable_trace.cpp.o" "gcc" "src/CMakeFiles/gpd_predicates.dir/predicates/variable_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpd_computation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
