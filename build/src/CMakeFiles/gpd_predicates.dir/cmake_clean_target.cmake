file(REMOVE_RECURSE
  "libgpd_predicates.a"
)
