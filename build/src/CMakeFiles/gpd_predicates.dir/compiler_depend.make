# Empty compiler generated dependencies file for gpd_predicates.
# This may be replaced when dependencies are built.
