file(REMOVE_RECURSE
  "libgpd_sim.a"
)
