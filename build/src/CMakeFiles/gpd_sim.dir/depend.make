# Empty dependencies file for gpd_sim.
# This may be replaced when dependencies are built.
