file(REMOVE_RECURSE
  "CMakeFiles/gpd_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/gpd_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/gpd_sim.dir/sim/workloads.cpp.o"
  "CMakeFiles/gpd_sim.dir/sim/workloads.cpp.o.d"
  "libgpd_sim.a"
  "libgpd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
