# Empty dependencies file for snapshot_audit.
# This may be replaced when dependencies are built.
