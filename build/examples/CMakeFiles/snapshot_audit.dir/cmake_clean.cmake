file(REMOVE_RECURSE
  "CMakeFiles/snapshot_audit.dir/snapshot_audit.cpp.o"
  "CMakeFiles/snapshot_audit.dir/snapshot_audit.cpp.o.d"
  "snapshot_audit"
  "snapshot_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
