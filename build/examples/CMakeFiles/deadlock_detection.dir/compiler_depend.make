# Empty compiler generated dependencies file for deadlock_detection.
# This may be replaced when dependencies are built.
