file(REMOVE_RECURSE
  "CMakeFiles/deadlock_detection.dir/deadlock_detection.cpp.o"
  "CMakeFiles/deadlock_detection.dir/deadlock_detection.cpp.o.d"
  "deadlock_detection"
  "deadlock_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
