file(REMOVE_RECURSE
  "CMakeFiles/token_ring_audit.dir/token_ring_audit.cpp.o"
  "CMakeFiles/token_ring_audit.dir/token_ring_audit.cpp.o.d"
  "token_ring_audit"
  "token_ring_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_ring_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
