# Empty dependencies file for token_ring_audit.
# This may be replaced when dependencies are built.
