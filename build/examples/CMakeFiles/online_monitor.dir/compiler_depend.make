# Empty compiler generated dependencies file for online_monitor.
# This may be replaced when dependencies are built.
