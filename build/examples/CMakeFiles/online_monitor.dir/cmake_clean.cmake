file(REMOVE_RECURSE
  "CMakeFiles/online_monitor.dir/online_monitor.cpp.o"
  "CMakeFiles/online_monitor.dir/online_monitor.cpp.o.d"
  "online_monitor"
  "online_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
