file(REMOVE_RECURSE
  "CMakeFiles/voting_quorum.dir/voting_quorum.cpp.o"
  "CMakeFiles/voting_quorum.dir/voting_quorum.cpp.o.d"
  "voting_quorum"
  "voting_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voting_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
