# Empty dependencies file for voting_quorum.
# This may be replaced when dependencies are built.
