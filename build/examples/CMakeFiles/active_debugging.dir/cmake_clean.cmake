file(REMOVE_RECURSE
  "CMakeFiles/active_debugging.dir/active_debugging.cpp.o"
  "CMakeFiles/active_debugging.dir/active_debugging.cpp.o.d"
  "active_debugging"
  "active_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
