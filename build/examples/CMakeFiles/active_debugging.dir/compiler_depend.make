# Empty compiler generated dependencies file for active_debugging.
# This may be replaced when dependencies are built.
