# Empty dependencies file for mutex_debugging.
# This may be replaced when dependencies are built.
