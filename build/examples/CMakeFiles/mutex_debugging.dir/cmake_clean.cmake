file(REMOVE_RECURSE
  "CMakeFiles/mutex_debugging.dir/mutex_debugging.cpp.o"
  "CMakeFiles/mutex_debugging.dir/mutex_debugging.cpp.o.d"
  "mutex_debugging"
  "mutex_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
