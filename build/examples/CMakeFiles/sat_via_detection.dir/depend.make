# Empty dependencies file for sat_via_detection.
# This may be replaced when dependencies are built.
