file(REMOVE_RECURSE
  "CMakeFiles/sat_via_detection.dir/sat_via_detection.cpp.o"
  "CMakeFiles/sat_via_detection.dir/sat_via_detection.cpp.o.d"
  "sat_via_detection"
  "sat_via_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_via_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
