file(REMOVE_RECURSE
  "../bench/bench_slice"
  "../bench/bench_slice.pdb"
  "CMakeFiles/bench_slice.dir/bench_slice.cpp.o"
  "CMakeFiles/bench_slice.dir/bench_slice.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
