file(REMOVE_RECURSE
  "../bench/bench_singular_special"
  "../bench/bench_singular_special.pdb"
  "CMakeFiles/bench_singular_special.dir/bench_singular_special.cpp.o"
  "CMakeFiles/bench_singular_special.dir/bench_singular_special.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_singular_special.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
