# Empty dependencies file for bench_singular_special.
# This may be replaced when dependencies are built.
