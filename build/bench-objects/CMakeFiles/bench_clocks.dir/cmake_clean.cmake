file(REMOVE_RECURSE
  "../bench/bench_clocks"
  "../bench/bench_clocks.pdb"
  "CMakeFiles/bench_clocks.dir/bench_clocks.cpp.o"
  "CMakeFiles/bench_clocks.dir/bench_clocks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
