# Empty compiler generated dependencies file for bench_clocks.
# This may be replaced when dependencies are built.
