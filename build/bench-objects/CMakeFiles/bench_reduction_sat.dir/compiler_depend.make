# Empty compiler generated dependencies file for bench_reduction_sat.
# This may be replaced when dependencies are built.
