file(REMOVE_RECURSE
  "../bench/bench_reduction_sat"
  "../bench/bench_reduction_sat.pdb"
  "CMakeFiles/bench_reduction_sat.dir/bench_reduction_sat.cpp.o"
  "CMakeFiles/bench_reduction_sat.dir/bench_reduction_sat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduction_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
