file(REMOVE_RECURSE
  "../bench/bench_landscape"
  "../bench/bench_landscape.pdb"
  "CMakeFiles/bench_landscape.dir/bench_landscape.cpp.o"
  "CMakeFiles/bench_landscape.dir/bench_landscape.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
