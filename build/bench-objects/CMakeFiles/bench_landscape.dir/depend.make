# Empty dependencies file for bench_landscape.
# This may be replaced when dependencies are built.
