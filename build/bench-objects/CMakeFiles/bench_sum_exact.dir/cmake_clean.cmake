file(REMOVE_RECURSE
  "../bench/bench_sum_exact"
  "../bench/bench_sum_exact.pdb"
  "CMakeFiles/bench_sum_exact.dir/bench_sum_exact.cpp.o"
  "CMakeFiles/bench_sum_exact.dir/bench_sum_exact.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sum_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
