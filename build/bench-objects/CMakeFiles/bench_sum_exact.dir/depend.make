# Empty dependencies file for bench_sum_exact.
# This may be replaced when dependencies are built.
