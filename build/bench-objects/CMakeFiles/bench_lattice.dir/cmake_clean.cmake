file(REMOVE_RECURSE
  "../bench/bench_lattice"
  "../bench/bench_lattice.pdb"
  "CMakeFiles/bench_lattice.dir/bench_lattice.cpp.o"
  "CMakeFiles/bench_lattice.dir/bench_lattice.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
