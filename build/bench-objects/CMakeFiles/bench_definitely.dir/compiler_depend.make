# Empty compiler generated dependencies file for bench_definitely.
# This may be replaced when dependencies are built.
