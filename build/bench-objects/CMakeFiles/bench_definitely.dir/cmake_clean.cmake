file(REMOVE_RECURSE
  "../bench/bench_definitely"
  "../bench/bench_definitely.pdb"
  "CMakeFiles/bench_definitely.dir/bench_definitely.cpp.o"
  "CMakeFiles/bench_definitely.dir/bench_definitely.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_definitely.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
