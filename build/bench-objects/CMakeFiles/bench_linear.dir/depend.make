# Empty dependencies file for bench_linear.
# This may be replaced when dependencies are built.
