file(REMOVE_RECURSE
  "../bench/bench_linear"
  "../bench/bench_linear.pdb"
  "CMakeFiles/bench_linear.dir/bench_linear.cpp.o"
  "CMakeFiles/bench_linear.dir/bench_linear.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
