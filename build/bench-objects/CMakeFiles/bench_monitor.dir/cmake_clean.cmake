file(REMOVE_RECURSE
  "../bench/bench_monitor"
  "../bench/bench_monitor.pdb"
  "CMakeFiles/bench_monitor.dir/bench_monitor.cpp.o"
  "CMakeFiles/bench_monitor.dir/bench_monitor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
