# Empty compiler generated dependencies file for bench_sum_nphard.
# This may be replaced when dependencies are built.
