file(REMOVE_RECURSE
  "../bench/bench_sum_nphard"
  "../bench/bench_sum_nphard.pdb"
  "CMakeFiles/bench_sum_nphard.dir/bench_sum_nphard.cpp.o"
  "CMakeFiles/bench_sum_nphard.dir/bench_sum_nphard.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sum_nphard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
