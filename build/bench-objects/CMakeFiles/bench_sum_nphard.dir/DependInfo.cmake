
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sum_nphard.cpp" "bench-objects/CMakeFiles/bench_sum_nphard.dir/bench_sum_nphard.cpp.o" "gcc" "bench-objects/CMakeFiles/bench_sum_nphard.dir/bench_sum_nphard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_reduction.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_predicates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_computation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
