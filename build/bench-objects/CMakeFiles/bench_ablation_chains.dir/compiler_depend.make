# Empty compiler generated dependencies file for bench_ablation_chains.
# This may be replaced when dependencies are built.
