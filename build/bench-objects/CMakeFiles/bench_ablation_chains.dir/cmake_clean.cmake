file(REMOVE_RECURSE
  "../bench/bench_ablation_chains"
  "../bench/bench_ablation_chains.pdb"
  "CMakeFiles/bench_ablation_chains.dir/bench_ablation_chains.cpp.o"
  "CMakeFiles/bench_ablation_chains.dir/bench_ablation_chains.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
