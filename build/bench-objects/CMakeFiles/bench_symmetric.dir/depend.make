# Empty dependencies file for bench_symmetric.
# This may be replaced when dependencies are built.
