file(REMOVE_RECURSE
  "../bench/bench_symmetric"
  "../bench/bench_symmetric.pdb"
  "CMakeFiles/bench_symmetric.dir/bench_symmetric.cpp.o"
  "CMakeFiles/bench_symmetric.dir/bench_symmetric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
