file(REMOVE_RECURSE
  "../bench/bench_detectors"
  "../bench/bench_detectors.pdb"
  "CMakeFiles/bench_detectors.dir/bench_detectors.cpp.o"
  "CMakeFiles/bench_detectors.dir/bench_detectors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
