# Empty dependencies file for bench_detectors.
# This may be replaced when dependencies are built.
