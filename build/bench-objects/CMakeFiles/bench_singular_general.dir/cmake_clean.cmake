file(REMOVE_RECURSE
  "../bench/bench_singular_general"
  "../bench/bench_singular_general.pdb"
  "CMakeFiles/bench_singular_general.dir/bench_singular_general.cpp.o"
  "CMakeFiles/bench_singular_general.dir/bench_singular_general.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_singular_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
