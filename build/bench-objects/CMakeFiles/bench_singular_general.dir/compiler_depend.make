# Empty compiler generated dependencies file for bench_singular_general.
# This may be replaced when dependencies are built.
