# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/computation_test[1]_include.cmake")
include("/root/repo/build/tests/clocks_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_test[1]_include.cmake")
include("/root/repo/build/tests/predicates_test[1]_include.cmake")
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
