file(REMOVE_RECURSE
  "CMakeFiles/control_test.dir/control/serialize_test.cpp.o"
  "CMakeFiles/control_test.dir/control/serialize_test.cpp.o.d"
  "control_test"
  "control_test.pdb"
  "control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
