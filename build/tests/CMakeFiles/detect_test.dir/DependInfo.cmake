
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/detect/cpdhb_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/cpdhb_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/cpdhb_test.cpp.o.d"
  "/root/repo/tests/detect/cpdsc_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/cpdsc_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/cpdsc_test.cpp.o.d"
  "/root/repo/tests/detect/definitely_conjunctive_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/definitely_conjunctive_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/definitely_conjunctive_test.cpp.o.d"
  "/root/repo/tests/detect/detector_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/detector_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/detector_test.cpp.o.d"
  "/root/repo/tests/detect/dnf_detect_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/dnf_detect_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/dnf_detect_test.cpp.o.d"
  "/root/repo/tests/detect/inequality_detect_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/inequality_detect_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/inequality_detect_test.cpp.o.d"
  "/root/repo/tests/detect/linear_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/linear_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/linear_test.cpp.o.d"
  "/root/repo/tests/detect/sat_encoding_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/sat_encoding_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/sat_encoding_test.cpp.o.d"
  "/root/repo/tests/detect/singular_cnf_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/singular_cnf_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/singular_cnf_test.cpp.o.d"
  "/root/repo/tests/detect/singular_edge_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/singular_edge_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/singular_edge_test.cpp.o.d"
  "/root/repo/tests/detect/slice_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/slice_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/slice_test.cpp.o.d"
  "/root/repo/tests/detect/stable_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/stable_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/stable_test.cpp.o.d"
  "/root/repo/tests/detect/sum_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/sum_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/sum_test.cpp.o.d"
  "/root/repo/tests/detect/symmetric_detect_test.cpp" "tests/CMakeFiles/detect_test.dir/detect/symmetric_detect_test.cpp.o" "gcc" "tests/CMakeFiles/detect_test.dir/detect/symmetric_detect_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_reduction.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_predicates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_computation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
