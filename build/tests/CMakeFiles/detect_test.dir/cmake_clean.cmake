file(REMOVE_RECURSE
  "CMakeFiles/detect_test.dir/detect/cpdhb_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/cpdhb_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/cpdsc_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/cpdsc_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/definitely_conjunctive_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/definitely_conjunctive_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/detector_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/detector_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/dnf_detect_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/dnf_detect_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/inequality_detect_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/inequality_detect_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/linear_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/linear_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/sat_encoding_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/sat_encoding_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/singular_cnf_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/singular_cnf_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/singular_edge_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/singular_edge_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/slice_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/slice_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/stable_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/stable_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/sum_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/sum_test.cpp.o.d"
  "CMakeFiles/detect_test.dir/detect/symmetric_detect_test.cpp.o"
  "CMakeFiles/detect_test.dir/detect/symmetric_detect_test.cpp.o.d"
  "detect_test"
  "detect_test.pdb"
  "detect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
