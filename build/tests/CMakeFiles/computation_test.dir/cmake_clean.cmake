file(REMOVE_RECURSE
  "CMakeFiles/computation_test.dir/computation/computation_test.cpp.o"
  "CMakeFiles/computation_test.dir/computation/computation_test.cpp.o.d"
  "CMakeFiles/computation_test.dir/computation/cut_test.cpp.o"
  "CMakeFiles/computation_test.dir/computation/cut_test.cpp.o.d"
  "CMakeFiles/computation_test.dir/computation/figure2_test.cpp.o"
  "CMakeFiles/computation_test.dir/computation/figure2_test.cpp.o.d"
  "CMakeFiles/computation_test.dir/computation/random_test.cpp.o"
  "CMakeFiles/computation_test.dir/computation/random_test.cpp.o.d"
  "CMakeFiles/computation_test.dir/computation/reverse_test.cpp.o"
  "CMakeFiles/computation_test.dir/computation/reverse_test.cpp.o.d"
  "computation_test"
  "computation_test.pdb"
  "computation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/computation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
