# Empty dependencies file for clocks_test.
# This may be replaced when dependencies are built.
