file(REMOVE_RECURSE
  "CMakeFiles/clocks_test.dir/clocks/direct_dependency_test.cpp.o"
  "CMakeFiles/clocks_test.dir/clocks/direct_dependency_test.cpp.o.d"
  "CMakeFiles/clocks_test.dir/clocks/lamport_test.cpp.o"
  "CMakeFiles/clocks_test.dir/clocks/lamport_test.cpp.o.d"
  "CMakeFiles/clocks_test.dir/clocks/sk_compression_test.cpp.o"
  "CMakeFiles/clocks_test.dir/clocks/sk_compression_test.cpp.o.d"
  "CMakeFiles/clocks_test.dir/clocks/vector_clock_test.cpp.o"
  "CMakeFiles/clocks_test.dir/clocks/vector_clock_test.cpp.o.d"
  "clocks_test"
  "clocks_test.pdb"
  "clocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
