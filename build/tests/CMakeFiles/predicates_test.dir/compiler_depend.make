# Empty compiler generated dependencies file for predicates_test.
# This may be replaced when dependencies are built.
