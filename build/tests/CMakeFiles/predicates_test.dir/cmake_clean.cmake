file(REMOVE_RECURSE
  "CMakeFiles/predicates_test.dir/predicates/boolean_expr_test.cpp.o"
  "CMakeFiles/predicates_test.dir/predicates/boolean_expr_test.cpp.o.d"
  "CMakeFiles/predicates_test.dir/predicates/cnf_pred_test.cpp.o"
  "CMakeFiles/predicates_test.dir/predicates/cnf_pred_test.cpp.o.d"
  "CMakeFiles/predicates_test.dir/predicates/inequality_test.cpp.o"
  "CMakeFiles/predicates_test.dir/predicates/inequality_test.cpp.o.d"
  "CMakeFiles/predicates_test.dir/predicates/local_test.cpp.o"
  "CMakeFiles/predicates_test.dir/predicates/local_test.cpp.o.d"
  "CMakeFiles/predicates_test.dir/predicates/relational_test.cpp.o"
  "CMakeFiles/predicates_test.dir/predicates/relational_test.cpp.o.d"
  "CMakeFiles/predicates_test.dir/predicates/symmetric_test.cpp.o"
  "CMakeFiles/predicates_test.dir/predicates/symmetric_test.cpp.o.d"
  "CMakeFiles/predicates_test.dir/predicates/variable_trace_test.cpp.o"
  "CMakeFiles/predicates_test.dir/predicates/variable_trace_test.cpp.o.d"
  "predicates_test"
  "predicates_test.pdb"
  "predicates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
