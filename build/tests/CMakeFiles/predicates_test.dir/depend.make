# Empty dependencies file for predicates_test.
# This may be replaced when dependencies are built.
