# Empty compiler generated dependencies file for sat_test.
# This may be replaced when dependencies are built.
