# Empty dependencies file for reduction_test.
# This may be replaced when dependencies are built.
