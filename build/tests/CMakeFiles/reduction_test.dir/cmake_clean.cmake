file(REMOVE_RECURSE
  "CMakeFiles/reduction_test.dir/reduction/sat_reduction_test.cpp.o"
  "CMakeFiles/reduction_test.dir/reduction/sat_reduction_test.cpp.o.d"
  "CMakeFiles/reduction_test.dir/reduction/subset_sum_reduction_test.cpp.o"
  "CMakeFiles/reduction_test.dir/reduction/subset_sum_reduction_test.cpp.o.d"
  "reduction_test"
  "reduction_test.pdb"
  "reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
