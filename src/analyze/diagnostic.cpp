#include "analyze/diagnostic.h"

#include <cstdio>
#include <ostream>

namespace gpd::analyze {

const char* toString(Severity s) {
  switch (s) {
    case Severity::Error:
      return "error";
    case Severity::Warning:
      return "warning";
    case Severity::Info:
      return "info";
  }
  return "unknown";
}

int errorCount(const std::vector<Diagnostic>& diags) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::Error) ++n;
  }
  return n;
}

int warningCount(const std::vector<Diagnostic>& diags) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::Warning) ++n;
  }
  return n;
}

void renderText(std::ostream& os, const std::string& name,
                const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    os << name;
    if (d.line > 0) os << ':' << d.line;
    os << ": " << toString(d.severity) << ' ' << d.code << ": " << d.message
       << '\n';
  }
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void renderJson(std::ostream& os, const std::vector<Diagnostic>& diags) {
  os << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i > 0) os << ",";
    os << "\n  {\"severity\": \"" << toString(d.severity) << "\", \"code\": \""
       << jsonEscape(d.code) << "\", \"line\": " << d.line
       << ", \"message\": \"" << jsonEscape(d.message) << "\"}";
  }
  if (!diags.empty()) os << '\n';
  os << "]\n";
}

}  // namespace gpd::analyze
