#include "analyze/classify.h"

#include <algorithm>

#include "graph/chains.h"
#include "lattice/explore.h"

namespace gpd::analyze {

namespace {

// Events of clause j where some literal holds — the same enumeration the
// Sec. 3.3 detectors run (detect::clauseTrueEvents), recomputed here so the
// analysis layer stays below src/detect in the module order.
std::vector<EventId> clauseTrue(const VariableTrace& trace,
                                const CnfPredicate& pred, int j,
                                const std::vector<ProcessId>& processes) {
  const Computation& comp = trace.computation();
  std::vector<EventId> out;
  for (ProcessId p : processes) {
    for (int i = 0; i < comp.eventCount(p); ++i) {
      for (const BoolLiteral& l : pred.clauses[j]) {
        if (l.process == p && l.holds(trace, i)) {
          out.push_back({p, i});
          break;
        }
      }
    }
  }
  return out;
}

// Receive (or send) events hosted by the group — Sec. 3.2's meta-process
// event sets.
std::vector<EventId> groupEventsOfKind(const Computation& comp,
                                       const std::vector<ProcessId>& group,
                                       bool receives) {
  std::vector<EventId> out;
  for (ProcessId p : group) {
    for (int i = 1; i < comp.eventCount(p); ++i) {
      const EventId e{p, i};
      const bool has = receives ? !comp.incomingMessages(e).empty()
                                : !comp.outgoingMessages(e).empty();
      if (has) out.push_back(e);
    }
  }
  return out;
}

bool pairwiseOrdered(const VectorClocks& clocks,
                     const std::vector<EventId>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (!clocks.leq(events[i], events[j]) &&
          !clocks.leq(events[j], events[i])) {
        return false;
      }
    }
  }
  return true;
}

// Exhaustive linearity check (Chase–Garg): every cut violating φ has a
// forbidden process p — no superset cut agreeing on p satisfies φ.
// Quadratic in the number of cuts, so gated harder than the stability check.
constexpr std::size_t kLinearityCutLimit = 2000;

Hint linearityHint(const std::vector<Cut>& cuts,
                   const std::vector<char>& holds, int processCount) {
  if (cuts.empty() || cuts.size() > kLinearityCutLimit) return Hint::Unknown;
  for (std::size_t c = 0; c < cuts.size(); ++c) {
    if (holds[c]) continue;
    bool hasForbidden = false;
    for (ProcessId p = 0; p < processCount && !hasForbidden; ++p) {
      bool forbidden = true;
      for (std::size_t d = 0; d < cuts.size() && forbidden; ++d) {
        if (holds[d] && cuts[d].last[p] == cuts[c].last[p] &&
            cuts[c].subsetOf(cuts[d])) {
          forbidden = false;
        }
      }
      hasForbidden = forbidden;
    }
    if (!hasForbidden) return Hint::No;
  }
  return Hint::Yes;
}

// Exhaustive regularity check (Garg–Mittal): the satisfying cuts must be
// closed under both meet and join. Meets/joins of consistent cuts are
// consistent, so closure is checked by evaluating φ directly on each pair.
// Quadratic in the satisfying-cut count — gated like the linearity check.
template <typename Phi>
Hint regularityHint(const std::vector<Cut>& cuts,
                    const std::vector<char>& holds, const Phi& phi) {
  if (cuts.empty() || cuts.size() > kLinearityCutLimit) return Hint::Unknown;
  std::vector<std::size_t> sat;
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    if (holds[i]) sat.push_back(i);
  }
  for (std::size_t a = 0; a < sat.size(); ++a) {
    for (std::size_t b = a + 1; b < sat.size(); ++b) {
      if (!phi(meet(cuts[sat[a]], cuts[sat[b]])) ||
          !phi(join(cuts[sat[a]], cuts[sat[b]]))) {
        return Hint::No;
      }
    }
  }
  return Hint::Yes;
}

}  // namespace

const char* toString(Hint h) {
  switch (h) {
    case Hint::Yes:
      return "yes";
    case Hint::No:
      return "no";
    case Hint::Unknown:
      return "unknown";
  }
  return "unknown";
}

namespace {

// Π over per-clause factors, saturating at UINT64_MAX. A zero factor keeps
// its exact meaning (some clause is never true → empty enumeration space);
// a wrap would instead report an astronomically large space as tiny and
// defeat the planner's cost-skip degradation.
std::uint64_t saturatingProduct(const std::vector<ClauseFacts>& clauses,
                                int ClauseFacts::* factor) {
  std::uint64_t bound = 1;
  for (const ClauseFacts& c : clauses) {
    const auto f = static_cast<std::uint64_t>(c.*factor);
    if (f == 0) return 0;
    if (bound > UINT64_MAX / f) return UINT64_MAX;
    bound *= f;
  }
  return bound;
}

}  // namespace

std::uint64_t CnfClassification::chainCoverBound() const {
  return saturatingProduct(clauses, &ClauseFacts::chainCoverSize);
}

std::uint64_t CnfClassification::processEnumerationBound() const {
  return saturatingProduct(clauses, &ClauseFacts::hostingChains);
}

CnfClassification classifyCnf(const VectorClocks& clocks,
                              const VariableTrace& trace,
                              const CnfPredicate& pred,
                              const ClassifyOptions& opts) {
  const Computation& comp = trace.computation();
  CnfClassification out;
  out.singular = pred.isSingular();
  if (!pred.clauses.empty()) {
    const int k = static_cast<int>(pred.clauses.front().size());
    if (pred.isKCnf(k)) out.uniformK = k;
  }
  out.conjunctive = out.singular && out.uniformK == 1;

  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    ClauseFacts facts;
    facts.literals = static_cast<int>(pred.clauses[j].size());
    facts.processes = pred.clauseProcesses(static_cast<int>(j));
    const std::vector<EventId> events =
        clauseTrue(trace, pred, static_cast<int>(j), facts.processes);
    facts.trueEventCount = static_cast<int>(events.size());
    for (ProcessId p : facts.processes) {
      if (std::any_of(events.begin(), events.end(),
                      [p](const EventId& e) { return e.process == p; })) {
        ++facts.hostingChains;
      }
    }
    facts.chainCoverSize = static_cast<int>(
        graph::minimumChainCover(
            static_cast<int>(events.size()),
            [&](int a, int b) {
              return !(events[a] == events[b]) &&
                     clocks.leq(events[a], events[b]);
            })
            .size());
    out.clauses.push_back(std::move(facts));
  }
  for (const ClauseFacts& facts : out.clauses) {
    out.singleProcessClauses += facts.processes.size() == 1;
  }
  // A single-process clause constrains one coordinate of the cut, so its
  // satisfying set is closed under per-coordinate min/max; a conjunction of
  // regular predicates is regular.
  if (out.singleProcessClauses == static_cast<int>(out.clauses.size())) {
    out.regular = Hint::Yes;
  }

  if (out.singular) {
    out.receiveOrdered = true;
    out.sendOrdered = true;
    for (const ClauseFacts& facts : out.clauses) {
      if (out.receiveOrdered &&
          !pairwiseOrdered(clocks,
                           groupEventsOfKind(comp, facts.processes, true))) {
        out.receiveOrdered = false;
      }
      if (out.sendOrdered &&
          !pairwiseOrdered(clocks,
                           groupEventsOfKind(comp, facts.processes, false))) {
        out.sendOrdered = false;
      }
      if (!out.receiveOrdered && !out.sendOrdered) break;
    }
  }

  // One lattice sweep feeds both hints: the stability single-event-extension
  // check runs inline, the cuts are collected for the linearity check.
  const auto phi = [&](const Cut& cut) { return pred.holdsAtCut(trace, cut); };
  std::vector<Cut> cuts;
  std::vector<char> holds;
  bool capped = false;
  bool stableViolated = false;
  lattice::forEachConsistentCut(clocks, [&](const Cut& cut) {
    if (cuts.size() >= opts.latticeCutLimit) {
      capped = true;
      return false;
    }
    const bool h = phi(cut);
    cuts.push_back(cut);
    holds.push_back(h ? 1 : 0);
    if (h && !stableViolated) {
      for (ProcessId p = 0; p < comp.processCount(); ++p) {
        if (cut.last[p] + 1 >= comp.eventCount(p)) continue;
        if (!clocks.enabled(p, cut)) continue;
        Cut succ = cut;
        ++succ.last[p];
        if (!phi(succ)) {
          stableViolated = true;
          break;
        }
      }
    }
    return true;
  });
  if (!capped) {
    out.stable = stableViolated ? Hint::No : Hint::Yes;
    out.linear = linearityHint(cuts, holds, comp.processCount());
    if (out.regular == Hint::Unknown) {
      out.regular = regularityHint(cuts, holds, phi);
    }
  }
  // Conjunctions of local predicates are linear by construction
  // (Garg–Waldecker), no enumeration needed.
  if (out.conjunctive) out.linear = Hint::Yes;

  return out;
}

}  // namespace gpd::analyze
