// Static trace linter (`gpdtool lint`).
//
// Where io::readTrace rejects a hostile stream at the *first* problem with
// an InputError, the linter parses leniently, recovers per line, and
// reports *every* finding as a Diagnostic — then, when the structure was
// sound, goes on to semantic checks the strict reader never attempts:
//
//   structure   E101–E108  header/keyword/range/duplicate/truncation faults
//   causality   E201       happened-before cycle (with the message line on
//                          the cycle), E202/E203 vector-clock inconsistency
//                          against the message graph (clock axioms plus a
//                          full reachability cross-check on small traces)
//   discipline  W301–W303  FIFO-channel violations (crossing messages),
//                          multicast sends, aggregated receives
//   races       W401       vector-clock race detection: concurrent updates
//                          to the same predicate variable on two processes
//
// Contract with the strict reader (property-tested over the fuzz corpus):
// the linter reports at least one *error* exactly when io::readTrace throws
// InputError, so `gpdtool lint` exits 1 on precisely the traces the rest of
// the toolchain refuses to load. Warnings never fail the lint.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "analyze/diagnostic.h"
#include "computation/computation.h"
#include "predicates/variable_trace.h"

namespace gpd::analyze {

struct LintOptions {
  // Full clocks-vs-reachability cross-check only below this many events
  // (it is O(E²) in space); the cheap per-edge clock axioms always run.
  int reachabilityCheckLimit = 400;
  // At most this many FIFO-crossing warnings per channel and race warnings
  // per variable (one per process pair); a summary Info notes truncation.
  int maxFindingsPerSubject = 8;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  // Populated when the stream was structurally sound (no E1xx/E2xx errors):
  // the same objects io::readTrace would have produced.
  std::unique_ptr<Computation> computation;
  std::unique_ptr<VariableTrace> trace;

  // No Error-severity diagnostics (warnings and infos allowed).
  bool ok() const { return errorCount(diagnostics) == 0; }
};

// Lints a gpd-trace stream. Never throws on hostile input: every failure
// mode becomes an Error diagnostic.
LintResult lintTrace(std::istream& is, const LintOptions& opts = {});

// File wrapper; an unreadable path becomes an E100 diagnostic, not an
// exception.
LintResult lintTraceFile(const std::string& path, const LintOptions& opts = {});

}  // namespace gpd::analyze
