// Structured findings of the static-analysis pass (linter, classifier,
// planner).
//
// Every check emits Diagnostics instead of throwing: a single run reports
// *all* problems it can see, each tagged with a severity, a stable code
// (documented in DESIGN.md §"Analysis pass"), and — when the finding is
// about a trace file — the 1-based line it points at. The same stream has
// two renderers: a compiler-style text form ("file:line: error E105: …")
// and a JSON-array form for tooling (`gpdtool lint -f json`).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpd::analyze {

enum class Severity { Error, Warning, Info };

const char* toString(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;     // stable identifier, e.g. "E105", "W301"
  int line = 0;         // 1-based line in the analyzed stream; 0 = no line
  std::string message;  // human-readable, self-contained
};

// Counts by severity.
int errorCount(const std::vector<Diagnostic>& diags);
int warningCount(const std::vector<Diagnostic>& diags);

// Compiler-style rendering, one diagnostic per line:
//   <name>:<line>: <severity> <code>: <message>
// (the ":<line>" part is omitted for line-less diagnostics).
void renderText(std::ostream& os, const std::string& name,
                const std::vector<Diagnostic>& diags);

// JSON array of {severity, code, line, message} objects, newline-terminated.
void renderJson(std::ostream& os, const std::vector<Diagnostic>& diags);

// Minimal JSON string escaping (quotes, backslashes, control characters);
// shared with the plan renderer.
std::string jsonEscape(const std::string& s);

}  // namespace gpd::analyze
