// Cost planner: the routing layer of the paper's complexity landscape
// (Fig. 1).
//
// Given a predicate and a trace, emits a ranked AnalysisReport of algorithm
// plan steps — cheapest applicable first — with predicted work attached:
// for the Sec. 3.3 enumerations the *exact* number of CPDHB invocations the
// detector will budget (the Π cⱼ chain-cover bound vs the Π kⱼ
// process-enumeration bound, kⱼ ≤ k for k-CNF, hence the paper's kᵐ), for
// CPDSC the meta-process scan, for sums the Theorem 4/7 preconditions.
//
// Detector dispatches off report.chosen() — the planner is the single
// source of truth for routing, and Algorithm names round-trip through
// toString() to the exact Detector::lastAlgorithm() strings.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "analyze/classify.h"
#include "analyze/diagnostic.h"
#include "clocks/vector_clock.h"
#include "predicates/boolean_expr.h"
#include "predicates/cnf.h"
#include "predicates/local.h"
#include "predicates/relational.h"
#include "predicates/symmetric.h"
#include "predicates/variable_trace.h"

namespace gpd::analyze {

enum class Modality { Possibly, Definitely };

const char* toString(Modality m);

// Every algorithm the detection layer can run. toString() returns the
// historical Detector::lastAlgorithm() name.
enum class Algorithm {
  SliceFirst,
  Cpdhb,
  CpdscSpecialCase,
  SingularChainCover,
  SingularProcessEnumeration,
  LatticeEnumeration,
  MinCutExtrema,
  Theorem7ExactSum,
  SymmetricExactSumDisjunction,
  DnfDecomposition,
  IntervalDefinitely,
  LatticeDefinitely,
  Theorem7Definitely,
};

const char* toString(Algorithm a);

struct PlanStep {
  Algorithm algorithm = Algorithm::LatticeEnumeration;
  bool applicable = true;
  // Exact number of CPDHB invocations the step budgets (the detector's
  // combinationsTotal) — for the enumeration steps and CPDHB itself;
  // nullopt for steps whose cost is not CPDHB-shaped.
  std::optional<std::uint64_t> predictedCpdhbInvocations;
  // For the slice-first step: predicted size of the regular skeleton's
  // sublattice (Π per-process skeleton-true levels, saturating) — the
  // detector reports actual explored cuts against it (plan-vs-actual).
  std::optional<std::uint64_t> predictedSublatticeCuts;
  bool predictionSaturated = false;  // predictedSublatticeCuts hit 2^64-1
  std::string bound;      // cost formula, e.g. "Π cj = 3·2 = 6"
  std::string rationale;  // why this step is (in)applicable / ranked here
};

// The analysis artifact detection dispatches on.
struct AnalysisReport {
  std::string predicate;  // human-readable predicate form
  Modality modality = Modality::Possibly;
  std::optional<CnfClassification> cnf;  // present for CNF predicates
  std::vector<PlanStep> steps;           // ranked, best first
  std::vector<Diagnostic> notes;         // informational findings
  // Worker threads the detector will run the chosen step with (1 =
  // sequential). Parallelism never changes a step's predicted cost or the
  // cost-skip decisions — the combination/cut totals are thread-invariant
  // by the par determinism contract — so the knob is report-only: it tells
  // the reader how the same total work will be spread.
  int threads = 1;

  // The first applicable step — what Detector will run.
  const PlanStep& chosen() const;
};

AnalysisReport planConjunctive(const VectorClocks& clocks,
                               const VariableTrace& trace,
                               const ConjunctivePredicate& pred, Modality m);
AnalysisReport planCnf(const VectorClocks& clocks, const VariableTrace& trace,
                       const CnfPredicate& pred, Modality m,
                       const ClassifyOptions& opts = {});
AnalysisReport planSum(const VectorClocks& clocks, const VariableTrace& trace,
                       const SumPredicate& pred, Modality m);
AnalysisReport planSymmetric(const VectorClocks& clocks,
                             const VariableTrace& trace,
                             const SymmetricPredicate& pred, Modality m);
AnalysisReport planExpression(const VectorClocks& clocks,
                              const VariableTrace& trace, const BoolExpr& expr,
                              Modality m);

// Renderers for `gpdtool plan` (text and -f json).
void renderPlanText(std::ostream& os, const AnalysisReport& report);
void renderPlanJson(std::ostream& os, const AnalysisReport& report);

}  // namespace gpd::analyze
