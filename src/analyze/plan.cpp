#include "analyze/plan.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace gpd::analyze {

namespace {

// "Π cj = 3·2 = 6" (collapsed to "Π cj = 6" for a single factor).
std::string productFormula(const char* symbol,
                           const std::vector<int>& factors,
                           std::uint64_t total) {
  std::ostringstream os;
  os << "Π " << symbol << " = ";
  if (factors.size() > 1) {
    for (std::size_t i = 0; i < factors.size(); ++i) {
      if (i > 0) os << "·";
      os << factors[i];
    }
    os << " = ";
  }
  os << total;
  return os.str();
}

PlanStep step(Algorithm a, bool applicable, std::string bound,
              std::string rationale,
              std::optional<std::uint64_t> invocations = std::nullopt) {
  PlanStep s;
  s.algorithm = a;
  s.applicable = applicable;
  s.predictedCpdhbInvocations = invocations;
  s.bound = std::move(bound);
  s.rationale = std::move(rationale);
  return s;
}

void note(AnalysisReport& report, const std::string& message) {
  report.notes.push_back(Diagnostic{Severity::Info, "I001", 0, message});
}

std::string latticeBound(const Computation& comp) {
  std::ostringstream os;
  os << "O(#cuts) ≤ Π |E_p| over " << comp.processCount()
     << " processes";
  return os.str();
}

}  // namespace

const char* toString(Modality m) {
  return m == Modality::Possibly ? "possibly" : "definitely";
}

const char* toString(Algorithm a) {
  switch (a) {
    case Algorithm::SliceFirst:
      return "slice-first";
    case Algorithm::Cpdhb:
      return "cpdhb";
    case Algorithm::CpdscSpecialCase:
      return "cpdsc-special-case";
    case Algorithm::SingularChainCover:
      return "singular-chain-cover";
    case Algorithm::SingularProcessEnumeration:
      return "singular-process-enumeration";
    case Algorithm::LatticeEnumeration:
      return "lattice-enumeration";
    case Algorithm::MinCutExtrema:
      return "min-cut-extrema";
    case Algorithm::Theorem7ExactSum:
      return "theorem-7-exact-sum";
    case Algorithm::SymmetricExactSumDisjunction:
      return "symmetric-exact-sum-disjunction";
    case Algorithm::DnfDecomposition:
      return "dnf-decomposition";
    case Algorithm::IntervalDefinitely:
      return "interval-definitely";
    case Algorithm::LatticeDefinitely:
      return "lattice-definitely";
    case Algorithm::Theorem7Definitely:
      return "theorem-7-definitely";
  }
  return "unknown";
}

const PlanStep& AnalysisReport::chosen() const {
  for (const PlanStep& s : steps) {
    if (s.applicable) return s;
  }
  GPD_CHECK_MSG(false, "analysis plan has no applicable step");
  return steps.front();  // unreachable
}

AnalysisReport planConjunctive(const VectorClocks& clocks,
                               const VariableTrace& trace,
                               const ConjunctivePredicate& pred, Modality m) {
  (void)trace;
  AnalysisReport report;
  report.modality = m;
  {
    std::ostringstream os;
    for (std::size_t i = 0; i < pred.terms.size(); ++i) {
      if (i > 0) os << " ∧ ";
      os << pred.terms[i].label;
    }
    report.predicate = os.str();
  }
  if (m == Modality::Possibly) {
    report.steps.push_back(step(
        Algorithm::Cpdhb, true, "O(n²m) comparisons",
        "weak conjunctive predicate (Garg–Waldecker): one CPDHB scan "
        "suffices",
        1));
    report.steps.push_back(
        step(Algorithm::LatticeEnumeration, true,
             latticeBound(clocks.computation()),
             "exhaustive baseline; dominated by CPDHB"));
  } else {
    report.steps.push_back(
        step(Algorithm::IntervalDefinitely, true, "O(n²m) comparisons",
             "definitely(conjunctive) via overlapping true intervals"));
    report.steps.push_back(
        step(Algorithm::LatticeDefinitely, true,
             latticeBound(clocks.computation()),
             "exhaustive baseline; dominated by the interval scan"));
  }
  return report;
}

AnalysisReport planCnf(const VectorClocks& clocks, const VariableTrace& trace,
                       const CnfPredicate& pred, Modality m,
                       const ClassifyOptions& opts) {
  AnalysisReport report;
  report.modality = m;
  report.predicate = pred.toString();
  report.cnf = classifyCnf(clocks, trace, pred, opts);
  const CnfClassification& cls = *report.cnf;

  if (m == Modality::Definitely) {
    report.steps.push_back(step(
        Algorithm::LatticeDefinitely, true, latticeBound(clocks.computation()),
        "definitely(CNF) has no structural shortcut: exhaustive lattice"));
    return report;
  }

  if (!cls.singular) {
    // Slice-first pre-pass (Garg–Mittal): the single-process clauses form a
    // regular skeleton whose slice confines every witness; the exhaustive
    // lattice then only explores the (often exponentially smaller)
    // sublattice. Predicted size: Π over processes of the number of event
    // levels where every skeleton clause hosted there holds.
    const Computation& comp = clocks.computation();
    if (cls.singleProcessClauses > 0) {
      std::vector<int> levelCounts(comp.processCount(), 0);
      for (ProcessId p = 0; p < comp.processCount(); ++p) {
        levelCounts[p] = comp.eventCount(p);
      }
      for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
        if (cls.clauses[j].processes.size() != 1) continue;
        const ProcessId p = cls.clauses[j].processes.front();
        int trueLevels = 0;
        for (int i = 0; i < comp.eventCount(p); ++i) {
          bool holds = false;
          for (const BoolLiteral& l : pred.clauses[j]) {
            if (l.holds(trace, i)) {
              holds = true;
              break;
            }
          }
          trueLevels += holds;
        }
        levelCounts[p] = std::min(levelCounts[p], trueLevels);
      }
      std::uint64_t predicted = 1;
      bool saturated = false;
      for (const int t : levelCounts) {
        const auto f = static_cast<std::uint64_t>(t);
        if (f == 0) {
          predicted = 0;
          saturated = false;
          break;
        }
        if (predicted > UINT64_MAX / f) {
          predicted = UINT64_MAX;
          saturated = true;
          break;
        }
        predicted *= f;
      }
      std::ostringstream rationale;
      rationale << cls.singleProcessClauses
                << " single-process clause(s) form a regular skeleton "
                   "(Garg–Mittal): slice to its sublattice, then enumerate "
                   "the remaining clauses inside it";
      PlanStep s = step(Algorithm::SliceFirst, true,
                        productFormula("|T_p|", levelCounts, predicted) +
                            (saturated ? " (saturated)" : "") +
                            " sublattice cuts after slicing",
                        rationale.str());
      s.predictedSublatticeCuts = predicted;
      s.predictionSaturated = saturated;
      report.steps.push_back(std::move(s));
    } else {
      report.steps.push_back(
          step(Algorithm::SliceFirst, false, "n/a",
               "no single-process clause: no regular skeleton to slice on"));
    }
    report.steps.push_back(
        step(Algorithm::LatticeEnumeration, true,
             latticeBound(clocks.computation()),
             "not singular (clauses share a process): Theorem 1 makes "
             "detection NP-complete, exhaustive lattice"));
    return report;
  }

  // Singular: rank the Sec. 3.2 scan, then the two Sec. 3.3 enumerations.
  std::vector<int> coverSizes;
  std::vector<int> hostCounts;
  for (const ClauseFacts& c : cls.clauses) {
    coverSizes.push_back(c.chainCoverSize);
    hostCounts.push_back(c.hostingChains);
    if (c.trueEventCount == 0) {
      note(report, "a clause is never true on this trace: possibly(φ) "
                   "is trivially false, predicted work is 0");
    }
  }
  const std::uint64_t coverBound = cls.chainCoverBound();
  const std::uint64_t enumBound = cls.processEnumerationBound();

  {
    const bool applicable = cls.receiveOrdered || cls.sendOrdered;
    std::string rationale;
    if (cls.receiveOrdered) {
      rationale = "meta-process groups are receive-ordered (Sec. 3.2): "
                  "polynomial scan";
    } else if (cls.sendOrdered) {
      rationale = "meta-process groups are send-ordered (Sec. 3.2): "
                  "polynomial scan on the reversed computation";
    } else {
      rationale = "groups are neither receive- nor send-ordered: the "
                  "Sec. 3.2 precondition fails";
    }
    report.steps.push_back(step(Algorithm::CpdscSpecialCase, applicable,
                                "O(n²m) comparisons",
                                std::move(rationale)));
  }
  report.steps.push_back(
      step(Algorithm::SingularChainCover, true,
           productFormula("cj", coverSizes, coverBound) +
               " CPDHB invocations",
           "minimum chain covers of the clause-true events (Sec. 3.3, "
           "Dilworth)",
           coverBound));
  report.steps.push_back(
      step(Algorithm::SingularProcessEnumeration, true,
           productFormula("kj", hostCounts, enumBound) +
               " CPDHB invocations (≤ k^m)",
           "one chain per hosting process; dominated by the chain cover "
           "since cj ≤ kj",
           enumBound));
  report.steps.push_back(step(Algorithm::LatticeEnumeration, true,
                              latticeBound(clocks.computation()),
                              "exhaustive baseline"));
  return report;
}

AnalysisReport planSum(const VectorClocks& clocks, const VariableTrace& trace,
                       const SumPredicate& pred, Modality m) {
  AnalysisReport report;
  report.modality = m;
  report.predicate = pred.toString();
  const std::int64_t delta = pred.eventDeltaBound(trace);
  const bool equality = pred.relop == Relop::Equal;
  std::ostringstream deltaNote;
  deltaNote << "per-event sum change bound |ΔS| = " << delta;
  note(report, deltaNote.str());

  if (m == Modality::Possibly) {
    if (!equality) {
      report.steps.push_back(
          step(Algorithm::MinCutExtrema, true, "one min-cut per extremum",
               "inequality relop: compare K against the sum extrema over all "
               "consistent cuts (max-weight closure)"));
      report.steps.push_back(step(Algorithm::LatticeEnumeration, true,
                                  latticeBound(clocks.computation()),
                                  "exhaustive baseline"));
      return report;
    }
    if (delta <= 1) {
      report.steps.push_back(
          step(Algorithm::Theorem7ExactSum, true,
               "two min-cuts + one lattice path",
               "Σ = K with |ΔS| ≤ 1: Theorem 7(1) intermediate "
               "value argument"));
      report.steps.push_back(step(Algorithm::LatticeEnumeration, true,
                                  latticeBound(clocks.computation()),
                                  "exhaustive baseline"));
    } else {
      report.steps.push_back(
          step(Algorithm::Theorem7ExactSum, false, "n/a",
               "Theorem 4 precondition fails: some event changes the sum by "
               "more than 1"));
      report.steps.push_back(
          step(Algorithm::LatticeEnumeration, true,
               latticeBound(clocks.computation()),
               "Σ = K with arbitrary Δ is NP-complete (Theorem 2): "
               "exhaustive lattice"));
    }
    return report;
  }

  if (equality && delta <= 1) {
    report.steps.push_back(
        step(Algorithm::Theorem7Definitely, true,
             "two definitely(inequality) solves",
             "definitely(Σ = K) with |ΔS| ≤ 1: Theorem 7(2) "
             "reduction to the inequality modalities"));
    report.steps.push_back(step(Algorithm::LatticeDefinitely, true,
                                latticeBound(clocks.computation()),
                                "exhaustive baseline"));
  } else {
    if (equality) {
      report.steps.push_back(
          step(Algorithm::Theorem7Definitely, false, "n/a",
               "Theorem 7(2) needs |ΔS| ≤ 1; some event changes the "
               "sum by more"));
    }
    report.steps.push_back(step(
        Algorithm::LatticeDefinitely, true, latticeBound(clocks.computation()),
        "no structural shortcut for this sum: exhaustive lattice"));
  }
  return report;
}

AnalysisReport planSymmetric(const VectorClocks& clocks,
                             const VariableTrace& trace,
                             const SymmetricPredicate& pred, Modality m) {
  (void)trace;
  AnalysisReport report;
  report.modality = m;
  {
    std::ostringstream os;
    os << (pred.name.empty() ? "symmetric" : pred.name) << " over "
       << pred.arity() << " boolean variables";
    report.predicate = os.str();
  }
  if (m == Modality::Possibly) {
    std::ostringstream bound;
    bound << "|T| = " << pred.trueCounts.size()
          << " exact-sum detections (Theorem 7 each)";
    report.steps.push_back(
        step(Algorithm::SymmetricExactSumDisjunction, true, bound.str(),
             "symmetric predicates depend only on #true (Sec. 4.3): "
             "disjunction of exact sums, each with |ΔS| ≤ 1"));
    report.steps.push_back(step(Algorithm::LatticeEnumeration, true,
                                latticeBound(clocks.computation()),
                                "exhaustive baseline"));
  } else {
    report.steps.push_back(step(Algorithm::LatticeDefinitely, true,
                                latticeBound(clocks.computation()),
                                "definitely(symmetric) decided exhaustively"));
  }
  return report;
}

AnalysisReport planExpression(const VectorClocks& clocks,
                              const VariableTrace& trace, const BoolExpr& expr,
                              Modality m) {
  (void)trace;
  AnalysisReport report;
  report.modality = m;
  report.predicate = expr.toString();
  if (m == Modality::Possibly) {
    const std::uint64_t terms = toDnf(expr).size();
    std::ostringstream bound;
    bound << terms << " CPDHB invocations (one per satisfiable DNF term)";
    report.steps.push_back(
        step(Algorithm::DnfDecomposition, true, bound.str(),
             "possibly distributes over ∨ (Stoller–Schneider): "
             "DNF, then one weak-conjunctive detection per term",
             terms));
    if (terms == 0) {
      note(report,
           "the expression is propositionally unsatisfiable: every DNF term "
           "was pruned");
    }
    report.steps.push_back(step(Algorithm::LatticeEnumeration, true,
                                latticeBound(clocks.computation()),
                                "exhaustive baseline"));
  } else {
    report.steps.push_back(step(Algorithm::LatticeDefinitely, true,
                                latticeBound(clocks.computation()),
                                "definitely(expression) decided exhaustively"));
  }
  return report;
}

void renderPlanText(std::ostream& os, const AnalysisReport& report) {
  os << toString(report.modality) << '(' << report.predicate << ")\n";
  if (report.cnf) {
    const CnfClassification& cls = *report.cnf;
    os << "classification:";
    if (cls.conjunctive) {
      os << " conjunctive";
    } else if (cls.singular) {
      os << " singular";
    } else {
      os << " non-singular";
    }
    if (cls.uniformK) os << ' ' << *cls.uniformK << "-CNF";
    if (cls.singular) {
      os << (cls.receiveOrdered ? "; receive-ordered" : "");
      os << (cls.sendOrdered ? "; send-ordered" : "");
      if (!cls.receiveOrdered && !cls.sendOrdered) os << "; unordered groups";
    }
    os << "; stable: " << toString(cls.stable)
       << "; linear: " << toString(cls.linear)
       << "; regular: " << toString(cls.regular) << '\n';
    for (std::size_t j = 0; j < cls.clauses.size(); ++j) {
      const ClauseFacts& c = cls.clauses[j];
      os << "  clause " << j << ": " << c.literals << " literal(s) on "
         << c.processes.size() << " process(es), " << c.trueEventCount
         << " true event(s), c" << j << "=" << c.chainCoverSize << ", k" << j
         << "=" << c.hostingChains << '\n';
    }
  }
  if (report.threads != 1) {
    os << "threads: " << report.threads
       << " (predicted costs are thread-invariant; workers split the same "
          "total)\n";
  }
  os << "plan:\n";
  const PlanStep* chosen = nullptr;
  for (const PlanStep& s : report.steps) {
    if (s.applicable) {
      chosen = &s;
      break;
    }
  }
  int rank = 0;
  for (const PlanStep& s : report.steps) {
    ++rank;
    os << "  " << rank << ". " << toString(s.algorithm);
    if (&s == chosen) os << "  [chosen]";
    if (!s.applicable) os << "  [not applicable]";
    os << '\n';
    os << "     cost: " << s.bound << '\n';
    if (s.predictedSublatticeCuts) {
      os << "     slice: predicted sublattice <= ";
      if (s.predictionSaturated) {
        os << "2^64 cuts (saturated)";
      } else {
        os << *s.predictedSublatticeCuts << " cut(s)";
      }
      os << '\n';
    }
    os << "     why:  " << s.rationale << '\n';
  }
  for (const Diagnostic& d : report.notes) {
    os << "note: " << d.message << '\n';
  }
}

void renderPlanJson(std::ostream& os, const AnalysisReport& report) {
  os << "{\n  \"modality\": \"" << toString(report.modality)
     << "\",\n  \"predicate\": \"" << jsonEscape(report.predicate)
     << "\",\n  \"threads\": " << report.threads << ",\n";
  os << "  \"classification\": ";
  if (report.cnf) {
    const CnfClassification& cls = *report.cnf;
    os << "{\"singular\": " << (cls.singular ? "true" : "false")
       << ", \"conjunctive\": " << (cls.conjunctive ? "true" : "false")
       << ", \"uniformK\": ";
    if (cls.uniformK) {
      os << *cls.uniformK;
    } else {
      os << "null";
    }
    os << ", \"receiveOrdered\": " << (cls.receiveOrdered ? "true" : "false")
       << ", \"sendOrdered\": " << (cls.sendOrdered ? "true" : "false")
       << ", \"stable\": \"" << toString(cls.stable) << "\", \"linear\": \""
       << toString(cls.linear) << "\", \"regular\": \""
       << toString(cls.regular)
       << "\", \"singleProcessClauses\": " << cls.singleProcessClauses
       << ", \"chainCoverBound\": "
       << cls.chainCoverBound()
       << ", \"processEnumerationBound\": " << cls.processEnumerationBound()
       << ", \"clauses\": [";
    for (std::size_t j = 0; j < cls.clauses.size(); ++j) {
      const ClauseFacts& c = cls.clauses[j];
      if (j > 0) os << ", ";
      os << "{\"literals\": " << c.literals << ", \"processes\": [";
      for (std::size_t i = 0; i < c.processes.size(); ++i) {
        if (i > 0) os << ", ";
        os << c.processes[i];
      }
      os << "], \"trueEvents\": " << c.trueEventCount
         << ", \"chainCoverSize\": " << c.chainCoverSize
         << ", \"hostingChains\": " << c.hostingChains << '}';
    }
    os << "]}";
  } else {
    os << "null";
  }
  os << ",\n  \"steps\": [";
  const PlanStep* chosen = nullptr;
  for (const PlanStep& s : report.steps) {
    if (s.applicable) {
      chosen = &s;
      break;
    }
  }
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    const PlanStep& s = report.steps[i];
    if (i > 0) os << ',';
    os << "\n    {\"algorithm\": \"" << toString(s.algorithm)
       << "\", \"applicable\": " << (s.applicable ? "true" : "false")
       << ", \"chosen\": " << (&s == chosen ? "true" : "false")
       << ", \"predictedCpdhbInvocations\": ";
    if (s.predictedCpdhbInvocations) {
      os << *s.predictedCpdhbInvocations;
    } else {
      os << "null";
    }
    os << ", \"predictedSublatticeCuts\": ";
    if (s.predictedSublatticeCuts) {
      os << *s.predictedSublatticeCuts;
    } else {
      os << "null";
    }
    os << ", \"predictionSaturated\": "
       << (s.predictionSaturated ? "true" : "false");
    os << ", \"bound\": \"" << jsonEscape(s.bound) << "\", \"rationale\": \""
       << jsonEscape(s.rationale) << "\"}";
  }
  if (!report.steps.empty()) os << "\n  ";
  os << "],\n  \"notes\": [";
  for (std::size_t i = 0; i < report.notes.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << jsonEscape(report.notes[i].message) << '"';
  }
  os << "]\n}\n";
}

}  // namespace gpd::analyze
