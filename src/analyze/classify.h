// Predicate classifier (paper Fig. 1, Secs. 3.2–3.3).
//
// Decides, statically, which structural class a CNF predicate falls into on
// a given trace — everything the detection algorithms' applicability hinges
// on: singularity (clause-disjointness of hosting processes), uniform clause
// width k, the per-meta-process receive-/send-ordered preconditions of the
// Sec. 3.2 scan, and the per-clause cost inputs of Sec. 3.3 — the number of
// hosting processes kⱼ (process enumeration) and the minimum chain cover
// size cⱼ of the clause's true events (chain-cover enumeration, via
// graph::minimumChainCover).
//
// Stability (Chandy–Lamport), linearity (Chase–Garg), and regularity
// (Garg–Mittal: meet- AND join-closed, the class computation slicing is
// sound for) are *hints*: exact on small lattices (decided exhaustively),
// Unknown when the lattice is too large to enumerate — except conjunctive
// predicates, which are linear by construction (Garg–Waldecker), and CNFs
// whose clauses are all single-process, which are regular by construction
// (each clause's satisfaction depends on one coordinate of the cut, so its
// cut set is closed under per-coordinate min/max).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "clocks/vector_clock.h"
#include "predicates/cnf.h"
#include "predicates/variable_trace.h"

namespace gpd::analyze {

enum class Hint { Yes, No, Unknown };

const char* toString(Hint h);

// Per-clause structural facts (clause j of the CNF).
struct ClauseFacts {
  int literals = 0;                   // clause width
  std::vector<ProcessId> processes;   // hosting processes, deduplicated
  int trueEventCount = 0;             // events where some literal holds
  int hostingChains = 0;              // kⱼ: non-empty per-process chains
  int chainCoverSize = 0;             // cⱼ: minimum chain cover (Dilworth)
};

struct CnfClassification {
  bool singular = false;     // no two clauses share a process
  bool conjunctive = false;  // singular 1-CNF (Garg–Waldecker class)
  std::optional<int> uniformK;  // k when every clause has exactly k literals

  std::vector<ClauseFacts> clauses;

  // Sec. 3.2 preconditions over the clause groups (meaningful only when
  // singular; false otherwise).
  bool receiveOrdered = false;
  bool sendOrdered = false;

  // Clauses hosted by exactly one process — the predicate's *regular
  // skeleton*, which the planner's slice-first step slices on.
  int singleProcessClauses = 0;

  // Exhaustive hints, Unknown above ClassifyOptions::latticeCutLimit.
  Hint stable = Hint::Unknown;
  Hint linear = Hint::Unknown;
  // Regularity (meet- and join-closure of the satisfying cuts): structural
  // Yes when every clause is single-process, else decided exhaustively.
  Hint regular = Hint::Unknown;

  // Π cⱼ and Π kⱼ — the two Sec. 3.3 enumeration bounds. Either is 0 when
  // some clause is never true (no detection work remains).
  std::uint64_t chainCoverBound() const;
  std::uint64_t processEnumerationBound() const;
};

struct ClassifyOptions {
  // Stability/linearity hints are decided exhaustively only while the cut
  // lattice stays within this many cuts; beyond it they stay Unknown.
  std::uint64_t latticeCutLimit = 20000;
};

CnfClassification classifyCnf(const VectorClocks& clocks,
                              const VariableTrace& trace,
                              const CnfPredicate& pred,
                              const ClassifyOptions& opts = {});

}  // namespace gpd::analyze
