#include "analyze/trace_lint.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "clocks/vector_clock.h"
#include "graph/dag.h"
#include "io/trace_io.h"
#include "util/check.h"

namespace gpd::analyze {

namespace {

// The raw, unvalidated shape of the stream: everything the parser could
// recover, each with the line it came from.
struct RawMessage {
  int sendProcess = 0;
  int sendIndex = 0;
  int receiveProcess = 0;
  int receiveIndex = 0;
  int line = 0;
};

struct RawVariable {
  ProcessId process = 0;
  std::string name;
  std::vector<std::int64_t> values;
  int line = 0;
};

// Non-throwing twin of the strict reader's tokenizer: same whitespace and
// integer semantics (std::istringstream extraction, std::stoll with a
// full-token check), but failures surface as nullopt instead of InputError.
class Tokens {
 public:
  explicit Tokens(std::string text) : stream_(std::move(text)) {}

  std::optional<std::string> word() {
    std::string w;
    if (stream_ >> w) return w;
    return std::nullopt;
  }

  // The trailing token, if the line has one (strict readers reject it).
  std::optional<std::string> trailing() { return word(); }

 private:
  std::istringstream stream_;
};

std::optional<long long> parseInteger(const std::string& w) {
  long long v = 0;
  std::size_t used = 0;
  try {
    v = std::stoll(w, &used);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (used != w.size() || w.empty()) return std::nullopt;
  return v;
}

class Linter {
 public:
  Linter(std::istream& is, const LintOptions& opts) : is_(is), opts_(opts) {}

  LintResult run() {
    if (parseStructure() && result_.ok()) {
      detectCycles();
    }
    if (result_.ok() && processes_ > 0) {
      buildAndCheckSemantics();
    }
    return std::move(result_);
  }

 private:
  // ---- diagnostics ----

  void emit(Severity sev, const char* code, int line, const std::string& msg) {
    result_.diagnostics.push_back(Diagnostic{sev, code, line, msg});
  }
  void error(const char* code, int line, const std::string& msg) {
    emit(Severity::Error, code, line, msg);
  }
  void warning(const char* code, int line, const std::string& msg) {
    emit(Severity::Warning, code, line, msg);
  }
  void info(const std::string& msg) { emit(Severity::Info, "I001", 0, msg); }

  // ---- line reading (same blank-skipping rule as the strict reader) ----

  std::optional<std::pair<std::string, int>> nextLine() {
    std::string text;
    while (std::getline(is_, text)) {
      ++lineNumber_;
      if (text.find_first_not_of(" \t\r") == std::string::npos) continue;
      return std::make_pair(std::move(text), lineNumber_);
    }
    return std::nullopt;
  }

  int hereOrOne() const { return lineNumber_ > 0 ? lineNumber_ : 1; }

  // Integer token with the strict reader's range treatment; emits `code` and
  // returns nullopt on any fault.
  std::optional<long long> integerField(Tokens& tokens, int line,
                                        const char* code, const char* what,
                                        long long lo, long long hi) {
    const auto w = tokens.word();
    if (!w) {
      error(code, line, std::string("missing ") + what);
      return std::nullopt;
    }
    const auto v = parseInteger(*w);
    if (!v) {
      error(code, line, "'" + *w + "' is not an integer (" + what + ")");
      return std::nullopt;
    }
    if (*v < lo || *v > hi) {
      std::ostringstream os;
      os << what << ' ' << *v << " out of range [" << lo << ", " << hi << "]";
      error(code, line, os.str());
      return std::nullopt;
    }
    return v;
  }

  bool expectLineDone(Tokens& tokens, int line, const char* code) {
    if (const auto extra = tokens.trailing()) {
      error(code, line, "unexpected trailing '" + *extra + "'");
      return false;
    }
    return true;
  }

  // ---- structural pass ----

  // Header, processes and events lines; false when the prologue is too
  // broken to recover counts (body not parsed — nothing to anchor it to).
  bool parsePrologue() {
    auto header = nextLine();
    if (!header) {
      error("E101", hereOrOne(), "truncated trace: missing header");
      return false;
    }
    {
      Tokens tokens(header->first);
      const auto magic = tokens.word();
      if (!magic || *magic != io::kTraceMagic) {
        error("E101", header->second, "not a gpd-trace stream");
        return false;
      }
      const auto version =
          integerField(tokens, header->second, "E101", "version", 0,
                       std::numeric_limits<long long>::max());
      if (!version) return false;
      if (*version != io::kTraceVersion) {
        std::ostringstream os;
        os << "unsupported trace version " << *version << " (expected "
           << io::kTraceVersion << ")";
        error("E101", header->second, os.str());
        return false;
      }
      if (!expectLineDone(tokens, header->second, "E101")) return false;
    }

    auto processesLine = nextLine();
    if (!processesLine) {
      error("E102", hereOrOne(), "truncated trace: missing 'processes' line");
      return false;
    }
    {
      Tokens tokens(processesLine->first);
      const auto keyword = tokens.word();
      if (!keyword || *keyword != "processes") {
        error("E102", processesLine->second, "expected 'processes'");
        return false;
      }
      const auto count = integerField(tokens, processesLine->second, "E102",
                                      "process count", 1, io::kTraceMaxProcesses);
      if (!count) return false;
      if (!expectLineDone(tokens, processesLine->second, "E102")) return false;
      processes_ = static_cast<int>(*count);
    }

    auto eventsLine = nextLine();
    if (!eventsLine) {
      error("E103", hereOrOne(), "truncated trace: missing 'events' line");
      return false;
    }
    {
      Tokens tokens(eventsLine->first);
      const auto keyword = tokens.word();
      if (!keyword || *keyword != "events") {
        error("E103", eventsLine->second, "expected 'events'");
        return false;
      }
      counts_.resize(processes_);
      long long total = 0;
      for (int& c : counts_) {
        const auto v = integerField(tokens, eventsLine->second, "E103",
                                    "event count", 1, io::kTraceMaxTotalEvents);
        if (!v) return false;
        c = static_cast<int>(*v);
        total += *v;
        if (total > io::kTraceMaxTotalEvents) {
          std::ostringstream os;
          os << "total event count " << total << " exceeds the "
             << io::kTraceMaxTotalEvents << " limit";
          error("E103", eventsLine->second, os.str());
          return false;
        }
      }
      if (!expectLineDone(tokens, eventsLine->second, "E103")) return false;
    }
    return true;
  }

  void parseMessageLine(Tokens& tokens, int line) {
    RawMessage m;
    m.line = line;
    const auto sp =
        integerField(tokens, line, "E105", "send process", 0, processes_ - 1);
    if (!sp) return;
    m.sendProcess = static_cast<int>(*sp);
    const auto si = integerField(tokens, line, "E105", "send index", 1,
                                 counts_[m.sendProcess] - 1);
    if (!si) return;
    m.sendIndex = static_cast<int>(*si);
    const auto rp = integerField(tokens, line, "E105", "receive process", 0,
                                 processes_ - 1);
    if (!rp) return;
    m.receiveProcess = static_cast<int>(*rp);
    if (m.receiveProcess == m.sendProcess) {
      std::ostringstream os;
      os << "message from process " << m.sendProcess << " to itself";
      error("E105", line, os.str());
      return;
    }
    const auto ri = integerField(tokens, line, "E105", "receive index", 1,
                                 counts_[m.receiveProcess] - 1);
    if (!ri) return;
    m.receiveIndex = static_cast<int>(*ri);
    if (!expectLineDone(tokens, line, "E104")) return;
    if (!messagesSeen_
             .emplace(m.sendProcess, m.sendIndex, m.receiveProcess,
                      m.receiveIndex)
             .second) {
      std::ostringstream os;
      os << "duplicate message " << m.sendProcess << ":" << m.sendIndex
         << " -> " << m.receiveProcess << ":" << m.receiveIndex;
      error("E105", line, os.str());
      return;
    }
    messages_.push_back(m);
  }

  void parseVarLine(Tokens& tokens, int line) {
    RawVariable v;
    v.line = line;
    const auto p =
        integerField(tokens, line, "E106", "var process", 0, processes_ - 1);
    if (!p) return;
    v.process = static_cast<ProcessId>(*p);
    const auto name = tokens.word();
    if (!name) {
      error("E104", line, "missing variable name");
      return;
    }
    v.name = *name;
    if (!varsSeen_.emplace(v.process, v.name).second) {
      std::ostringstream os;
      os << "duplicate variable '" << v.name << "' on process " << v.process;
      error("E106", line, os.str());
      return;
    }
    v.values.resize(counts_[v.process]);
    for (auto& x : v.values) {
      const auto value =
          integerField(tokens, line, "E106", "var value",
                       std::numeric_limits<std::int64_t>::min(),
                       std::numeric_limits<std::int64_t>::max());
      if (!value) return;
      x = *value;
    }
    if (!expectLineDone(tokens, line, "E104")) return;
    variables_.push_back(std::move(v));
  }

  // Whole-stream structural pass; true when the prologue parsed (the body
  // may still have emitted per-line errors).
  bool parseStructure() {
    if (!parsePrologue()) return false;

    bool sawEnd = false;
    while (auto line = nextLine()) {
      Tokens tokens(line->first);
      const auto keyword = tokens.word();
      if (!keyword) {
        // Non-blank by the reader's rule (e.g. a lone \v or \f) yet empty
        // under stream tokenization — the strict reader rejects it too.
        error("E104", line->second, "missing trace keyword");
        continue;
      }
      if (*keyword == "end") {
        expectLineDone(tokens, line->second, "E104");
        sawEnd = true;
        break;
      }
      if (*keyword == "message") {
        parseMessageLine(tokens, line->second);
      } else if (*keyword == "var") {
        parseVarLine(tokens, line->second);
      } else {
        error("E104", line->second,
              "unknown trace keyword '" + *keyword + "'");
      }
    }
    if (!sawEnd) {
      error("E108", hereOrOne(), "truncated trace: missing 'end'");
    } else if (const auto trailing = nextLine()) {
      error("E108", trailing->second, "content after 'end'");
    }
    return true;
  }

  // ---- causality ----

  int node(ProcessId p, int index) const { return offsets_[p] + index; }

  void computeOffsets() {
    offsets_.assign(processes_, 0);
    totalEvents_ = 0;
    for (ProcessId p = 0; p < processes_; ++p) {
      offsets_[p] = totalEvents_;
      totalEvents_ += counts_[p];
    }
  }

  // Happened-before cycle detection over process-order and message edges
  // (initial-precedence edges cannot participate in a cycle: initial events
  // have no predecessors). On a cycle, reports E201 at the line of a message
  // on it — the actionable edge, since process order alone is acyclic.
  void detectCycles() {
    computeOffsets();
    std::vector<std::vector<int>> succ(totalEvents_);
    std::map<std::pair<int, int>, int> messageLine;
    for (ProcessId p = 0; p < processes_; ++p) {
      for (int i = 0; i + 1 < counts_[p]; ++i) {
        succ[node(p, i)].push_back(node(p, i + 1));
      }
    }
    for (const RawMessage& m : messages_) {
      const int u = node(m.sendProcess, m.sendIndex);
      const int v = node(m.receiveProcess, m.receiveIndex);
      succ[u].push_back(v);
      messageLine.emplace(std::make_pair(u, v), m.line);
    }

    // Iterative DFS; a back edge closes a cycle along the explicit stack.
    std::vector<char> color(totalEvents_, 0);  // 0 new, 1 on stack, 2 done
    std::vector<int> stack;
    std::vector<std::size_t> nextChild;
    for (int root = 0; root < totalEvents_; ++root) {
      if (color[root] != 0) continue;
      stack.assign(1, root);
      nextChild.assign(1, 0);
      color[root] = 1;
      while (!stack.empty()) {
        const int u = stack.back();
        if (nextChild.back() >= succ[u].size()) {
          color[u] = 2;
          stack.pop_back();
          nextChild.pop_back();
          continue;
        }
        const int v = succ[u][nextChild.back()++];
        if (color[v] == 1) {
          reportCycle(stack, v, messageLine);
          return;
        }
        if (color[v] == 0) {
          color[v] = 1;
          stack.push_back(v);
          nextChild.push_back(0);
        }
      }
    }
  }

  void reportCycle(const std::vector<int>& stack, int entry,
                   const std::map<std::pair<int, int>, int>& messageLine) {
    // The cycle is the stack suffix from `entry`, closed by the back edge.
    std::vector<int> cycle(
        std::find(stack.begin(), stack.end(), entry), stack.end());
    cycle.push_back(entry);
    int line = 0;
    for (std::size_t i = 0; i + 1 < cycle.size() && line == 0; ++i) {
      const auto it = messageLine.find({cycle[i], cycle[i + 1]});
      if (it != messageLine.end()) line = it->second;
    }
    std::ostringstream os;
    os << "happened-before cycle through " << cycle.size() - 1 << " events";
    if (line > 0) os << " (closed by the message at line " << line << ")";
    error("E201", line, os.str());
  }

  // ---- build + semantic checks ----

  void buildAndCheckSemantics() {
    ComputationBuilder builder(processes_);
    for (ProcessId p = 0; p < processes_; ++p) {
      for (int i = 1; i < counts_[p]; ++i) builder.appendEvent(p);
    }
    for (const RawMessage& m : messages_) {
      builder.addMessage({m.sendProcess, m.sendIndex},
                         {m.receiveProcess, m.receiveIndex});
    }
    try {
      result_.computation =
          std::make_unique<Computation>(std::move(builder).build());
    } catch (const CheckFailure& e) {
      // detectCycles() should have caught this; keep the lint non-throwing.
      error("E201", 0,
            std::string("trace describes an impossible computation: ") +
                e.what());
      return;
    }
    result_.trace = std::make_unique<VariableTrace>(*result_.computation);
    for (const RawVariable& v : variables_) {
      result_.trace->define(v.process, v.name, v.values);
    }

    const VectorClocks clocks(*result_.computation);
    checkClockConsistency(clocks);
    checkChannelDiscipline();
    checkRaces(clocks);
  }

  // Vector-clock consistency against the message graph: the Fidge–Mattern
  // axioms per event and per edge, plus (on small traces) the full
  // equivalence  e ≤ f ⟺ f reachable from e  against the explicit DAG.
  void checkClockConsistency(const VectorClocks& clocks) {
    const Computation& comp = *result_.computation;
    for (ProcessId p = 0; p < processes_; ++p) {
      std::vector<int> prev;
      for (int i = 0; i < comp.eventCount(p); ++i) {
        const EventId e{p, i};
        const std::vector<int> v = clocks.clockVector(e);
        if (v[p] != i) {
          std::ostringstream os;
          os << "vector clock of event " << p << ":" << i
             << " has own component " << v[p] << ", expected " << i;
          error("E202", 0, os.str());
          return;
        }
        if (i > 0 && !std::equal(prev.begin(), prev.end(), v.begin(),
                                 [](int a, int b) { return a <= b; })) {
          std::ostringstream os;
          os << "vector clock not monotone along process " << p
             << " between events " << i - 1 << " and " << i;
          error("E202", 0, os.str());
          return;
        }
        prev = v;
      }
    }
    for (const RawMessage& m : messages_) {
      const std::vector<int> send =
          clocks.clockVector({m.sendProcess, m.sendIndex});
      const std::vector<int> recv =
          clocks.clockVector({m.receiveProcess, m.receiveIndex});
      const bool dominated = std::equal(send.begin(), send.end(), recv.begin(),
                                        [](int a, int b) { return a <= b; });
      if (!dominated || recv[m.sendProcess] < m.sendIndex) {
        std::ostringstream os;
        os << "receive clock does not dominate send clock for message "
           << m.sendProcess << ":" << m.sendIndex << " -> " << m.receiveProcess
           << ":" << m.receiveIndex;
        error("E202", m.line, os.str());
        return;
      }
    }

    if (totalEvents_ > opts_.reachabilityCheckLimit) {
      info("clock/reachability cross-check skipped (" +
           std::to_string(totalEvents_) + " events > limit " +
           std::to_string(opts_.reachabilityCheckLimit) + ")");
      return;
    }
    const graph::Dag dag = comp.toDagWithoutInitialEdges();
    const graph::Reachability reach(dag);
    for (int u = 0; u < totalEvents_; ++u) {
      const EventId e = comp.event(u);
      if (e.isInitial()) continue;
      for (int v = 0; v < totalEvents_; ++v) {
        const EventId f = comp.event(v);
        if (f.isInitial()) continue;
        const bool viaClocks = clocks.leq(e, f);
        const bool viaGraph = u == v || reach.reaches(u, v);
        if (viaClocks != viaGraph) {
          std::ostringstream os;
          os << "vector clocks disagree with message-graph reachability for "
             << e.process << ":" << e.index << " vs " << f.process << ":"
             << f.index;
          error("E203", 0, os.str());
          return;
        }
      }
    }
  }

  // FIFO crossings per channel, multicast sends, aggregated receives.
  void checkChannelDiscipline() {
    std::map<std::pair<int, int>, std::vector<const RawMessage*>> channels;
    for (const RawMessage& m : messages_) {
      channels[{m.sendProcess, m.receiveProcess}].push_back(&m);
    }
    for (auto& [channel, msgs] : channels) {
      std::sort(msgs.begin(), msgs.end(),
                [](const RawMessage* a, const RawMessage* b) {
                  return std::tie(a->sendIndex, a->receiveIndex) <
                         std::tie(b->sendIndex, b->receiveIndex);
                });
      int reported = 0;
      bool truncated = false;
      for (std::size_t j = 1; j < msgs.size() && !truncated; ++j) {
        for (std::size_t i = 0; i < j; ++i) {
          if (msgs[i]->sendIndex < msgs[j]->sendIndex &&
              msgs[i]->receiveIndex > msgs[j]->receiveIndex) {
            if (reported >= opts_.maxFindingsPerSubject) {
              truncated = true;
              break;
            }
            ++reported;
            std::ostringstream os;
            os << "channel " << channel.first << " -> " << channel.second
               << " is not FIFO: message " << msgs[j]->sendProcess << ":"
               << msgs[j]->sendIndex << " -> " << msgs[j]->receiveProcess
               << ":" << msgs[j]->receiveIndex
               << " overtakes the earlier send at line " << msgs[i]->line;
            warning("W301", msgs[j]->line, os.str());
          }
        }
      }
      if (truncated) {
        std::ostringstream os;
        os << "further FIFO crossings on channel " << channel.first << " -> "
           << channel.second << " suppressed after "
           << opts_.maxFindingsPerSubject << " findings";
        info(os.str());
      }
    }

    std::map<std::pair<int, int>, std::vector<const RawMessage*>> bySend;
    std::map<std::pair<int, int>, std::vector<const RawMessage*>> byReceive;
    for (const RawMessage& m : messages_) {
      bySend[{m.sendProcess, m.sendIndex}].push_back(&m);
      byReceive[{m.receiveProcess, m.receiveIndex}].push_back(&m);
    }
    int multicasts = 0;
    for (const auto& [event, msgs] : bySend) {
      if (msgs.size() < 2 || ++multicasts > opts_.maxFindingsPerSubject) {
        continue;
      }
      std::ostringstream os;
      os << "event " << event.first << ":" << event.second << " sends "
         << msgs.size() << " messages (multicast send; first duplicate at "
         << "line " << msgs[1]->line << ")";
      warning("W302", msgs[0]->line, os.str());
    }
    int aggregated = 0;
    for (const auto& [event, msgs] : byReceive) {
      if (msgs.size() < 2 || ++aggregated > opts_.maxFindingsPerSubject) {
        continue;
      }
      std::ostringstream os;
      os << "event " << event.first << ":" << event.second << " receives "
         << msgs.size() << " messages (aggregated receive; first duplicate "
         << "at line " << msgs[1]->line << ")";
      warning("W303", msgs[0]->line, os.str());
    }
  }

  // Vector-clock race detection: two processes updating the same predicate
  // variable at concurrent events. One warning per (variable, process pair).
  void checkRaces(const VectorClocks& clocks) {
    std::map<std::string, std::vector<const RawVariable*>> byName;
    for (const RawVariable& v : variables_) {
      byName[v.name].push_back(&v);
    }
    long long budget = 1LL << 20;  // pairwise clock comparisons
    for (const auto& [name, defs] : byName) {
      if (defs.size() < 2) continue;
      std::vector<std::vector<int>> updates(defs.size());
      for (std::size_t d = 0; d < defs.size(); ++d) {
        const auto& values = defs[d]->values;
        for (std::size_t i = 1; i < values.size(); ++i) {
          if (values[i] != values[i - 1]) {
            updates[d].push_back(static_cast<int>(i));
          }
        }
      }
      int reported = 0;
      for (std::size_t a = 0; a < defs.size(); ++a) {
        for (std::size_t b = a + 1; b < defs.size(); ++b) {
          if (reported >= opts_.maxFindingsPerSubject) break;
          bool raced = false;
          for (const int i : updates[a]) {
            if (raced) break;
            for (const int j : updates[b]) {
              if (--budget < 0) {
                info("race check truncated (comparison budget exhausted)");
                return;
              }
              const EventId e{defs[a]->process, i};
              const EventId f{defs[b]->process, j};
              if (clocks.concurrent(e, f)) {
                ++reported;
                std::ostringstream os;
                os << "race on variable '" << name << "': update at "
                   << e.process << ":" << e.index
                   << " is concurrent with update at " << f.process << ":"
                   << f.index << " (defined at lines " << defs[a]->line
                   << " and " << defs[b]->line << ")";
                warning("W401", defs[b]->line, os.str());
                raced = true;
                break;
              }
            }
          }
        }
      }
    }
  }

  std::istream& is_;
  LintOptions opts_;
  LintResult result_;

  int lineNumber_ = 0;
  int processes_ = 0;
  std::vector<int> counts_;
  std::vector<int> offsets_;
  int totalEvents_ = 0;
  std::vector<RawMessage> messages_;
  std::vector<RawVariable> variables_;
  std::set<std::tuple<int, int, int, int>> messagesSeen_;
  std::set<std::pair<ProcessId, std::string>> varsSeen_;
};

}  // namespace

LintResult lintTrace(std::istream& is, const LintOptions& opts) {
  return Linter(is, opts).run();
}

LintResult lintTraceFile(const std::string& path, const LintOptions& opts) {
  std::ifstream is(path);
  if (!is.is_open()) {
    LintResult result;
    result.diagnostics.push_back(Diagnostic{
        Severity::Error, "E100", 0, "cannot open '" + path + "' for reading"});
    return result;
  }
  return lintTrace(is, opts);
}

}  // namespace gpd::analyze
