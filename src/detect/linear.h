// Linear predicates (Chase–Garg, the paper's references [3,4]) — the other
// classical polynomial class in the paper's introduction.
//
// A predicate B is *linear* iff every consistent cut C that violates B has a
// forbidden process p: no consistent cut D ⊇ C with D.last[p] = C.last[p]
// satisfies B, i.e. any satisfying extension must advance p. Linearity
// admits a greedy detector: starting from the initial cut, repeatedly ask
// the oracle for a forbidden process and jump to the least consistent cut
// that advances it (current cut ⊔ causal history of p's next event). Each
// jump consumes at least one event, so possibly(B) is decided in at most
// |E| oracle calls — and the final cut, when found, is the *least*
// satisfying cut.
//
// Instances provided here: conjunctive predicates (their classical proof of
// linearity doubles as a CPDHB cross-check), empty-channels, and
// termination ("all passive and no message in flight") — the latter two
// power snapshot/termination-detection workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "control/budget.h"
#include "predicates/local.h"

namespace gpd::detect {

// The linearity oracle: nullopt when the cut satisfies B, otherwise a
// forbidden process. Soundness of the returned process is the caller's
// responsibility (it is what makes B linear).
using ForbiddenFn = std::function<std::optional<ProcessId>(const Cut&)>;

struct LinearResult {
  std::optional<Cut> cut;     // least satisfying cut, when found
  std::uint64_t oracleCalls = 0;
  // False iff the walk stopped on budget/cancel before deciding; the cut is
  // then meaningless (anytime contract: Unknown, not a wrong No).
  bool complete = true;
};

LinearResult detectLinear(const VectorClocks& clocks, const ForbiddenFn& oracle,
                          control::Budget* budget = nullptr);

// As above but starting from `from` (must be consistent): returns the least
// satisfying cut that *contains* `from`. The plain overload starts at ⊥.
// Each oracle call charges one cut against `budget` when provided.
LinearResult detectLinearFrom(const VectorClocks& clocks,
                              const ForbiddenFn& oracle, Cut from,
                              control::Budget* budget = nullptr);

// B = ⋀ local predicates: a violating cut's forbidden process is any term
// process whose current event is false.
ForbiddenFn conjunctiveOracle(const VariableTrace& trace,
                              const ConjunctivePredicate& pred);

// B = "no message is in flight": a violating cut has some message sent but
// not received; its receiver is forbidden (it must advance to receive).
ForbiddenFn channelsEmptyOracle(const Computation& comp);

// B = "every process has var == 0 and no message is in flight" — classical
// termination detection. The paper's stable-predicate citations ([1,2])
// monitor exactly this shape.
ForbiddenFn terminationOracle(const VariableTrace& trace,
                              const std::string& activeVar);

}  // namespace gpd::detect
