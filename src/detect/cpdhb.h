// Weak conjunctive predicate detection — Garg–Waldecker's CPDHB algorithm
// (paper reference [9]), generalized from per-process queues to arbitrary
// *chains* of events as Sec. 3.3 of the paper requires.
//
// Given one chain of candidate events per slot, the algorithm finds a
// selection of one event per chain that is pairwise consistent (equivalently,
// by Observation 1, a consistent cut through all of them), or reports none
// exists. The elimination rule: if succ(e) ≤ f for the current candidates
// e, f of two different slots, then e is inconsistent with f and with every
// later event on f's chain (they all dominate f), so e can never appear in a
// witness — advance e's chain. Each elimination consumes one event, giving
// O((Σ|chain|)² ) consistency checks in the worst case with the work-queue
// formulation below, each check O(1) via vector clocks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "computation/event.h"
#include "predicates/local.h"

namespace gpd::detect {

// Events must be listed in causal order: events[i] ≤ events[i+1].
struct Chain {
  std::vector<EventId> events;
};

struct ConjunctiveResult {
  bool found = false;
  std::vector<EventId> witness;  // one event per chain, pairwise consistent
  std::optional<Cut> cut;        // least consistent cut through the witness
  std::uint64_t comparisons = 0; // consistency checks performed
};

// Core scan. Chains must be non-empty... an empty chain yields "not found"
// immediately. Chains from different slots must not interleave events of one
// process out of order — in this library they never share processes (clause
// groups are disjoint), which the function checks via GPD_DCHECK.
ConjunctiveResult findConsistentSelection(const VectorClocks& clocks,
                                          const std::vector<Chain>& chains);

// Classic CPDHB: possibly(⋀ local predicates), one term per distinct process.
// Chains are the per-process true-event queues.
ConjunctiveResult detectConjunctive(const VectorClocks& clocks,
                                    const VariableTrace& trace,
                                    const ConjunctivePredicate& pred);

// Convenience overload computing the vector clocks internally.
ConjunctiveResult detectConjunctive(const VariableTrace& trace,
                                    const ConjunctivePredicate& pred);

}  // namespace gpd::detect
