// Computation slicing for regular predicates — the authors' own follow-up
// to this paper (Garg & Mittal, "On Slicing a Distributed Computation",
// ICDCS 2001; promoted from a bench-only toy to the planner's slice-first
// pre-pass).
//
// A predicate is *regular* iff its satisfying consistent cuts are closed
// under both lattice meet and join — a sublattice. (Conjunctive predicates
// and channel predicates are the canonical regular classes; every regular
// predicate is linear, so the greedy detector applies.) The *slice* is the
// compact representation of that sublattice: for every event e either e is
// excluded (no satisfying cut contains it) or it has a join-irreducible
// witness J(e) = the least satisfying cut containing e. The fundamental
// theorem of slicing:
//
//     a consistent cut C satisfies B  ⟺  C = ⊔ { J(e) : e ∈ C included }
//     (and every join of J's satisfies B),
//
// so the slice answers possibly(B) (any J exists), counts/enumerates all
// satisfying cuts, and supports intersection with further predicates —
// while being only |E| cuts large. Built on detectLinearFrom: J(e) is the
// least B-cut reachable from e's causal history.
//
// With a merely-linear (non-regular) oracle the J's are still least cuts
// but the join-closure theorem fails and the slice would silently lie.
// computeSlice therefore verifies join-closure of the computed J's by
// default and throws gpd::InputError on a violation; detector-internal
// callers whose soundness is established by the classifier's regularity
// verdict disable the check via SliceOptions::verifyRegular.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "control/budget.h"
#include "detect/linear.h"

namespace gpd::detect {

struct SliceOptions {
  // Charged one cut per oracle call (slice build and regularity check);
  // exhaustion yields an incomplete slice, never a wrong one.
  control::Budget* budget = nullptr;
  // Verify that the computed least-cuts are join-closed under the oracle and
  // throw gpd::InputError otherwise. Callers that gate on the classifier's
  // regularity verdict may turn this off; everyone else should not.
  bool verifyRegular = true;
};

struct Slice {
  // Per event (Computation::node numbering): the least satisfying cut
  // containing that event, or nullopt when the event is excluded.
  std::vector<std::optional<Cut>> leastCut;
  // Whether any satisfying cut exists (possibly(B)).
  bool satisfiable = false;
  // The least and greatest satisfying cuts, when satisfiable.
  Cut bottom;
  Cut top;
  // False iff the budget ran out mid-build: leastCut is partially filled and
  // satisfiable/bottom/top are meaningless (anytime contract).
  bool complete = true;
  std::uint64_t oracleCalls = 0;

  bool included(int node) const { return leastCut[node].has_value(); }
  // Events no satisfying cut contains; 0 on an unsatisfiable slice means
  // "everything excluded" and is reported as totalEvents by callers.
  std::uint64_t excludedEvents() const {
    std::uint64_t n = 0;
    for (const auto& j : leastCut) n += !j.has_value();
    return n;
  }
};

// Requires `oracle` to describe a *linear* predicate; regularity is verified
// (see SliceOptions::verifyRegular) and its violation throws gpd::InputError.
Slice computeSlice(const VectorClocks& clocks, const ForbiddenFn& oracle,
                   const SliceOptions& options = {});

// Membership test through the slice: C satisfies B ⟺ C equals the join of
// the least cuts of its included events (excluded events ⟹ false).
// O(|C|·n) after the slice is built — no oracle calls. Requires a complete
// slice.
bool sliceSatisfies(const Slice& slice, const VectorClocks& clocks,
                    const Cut& cut);

struct SliceCount {
  std::uint64_t count = 0;
  // The true count exceeds 2^64-1; `count` is clamped to UINT64_MAX instead
  // of wrapping (PR 3's chain-cover product bug class).
  bool saturated = false;
  // False iff the budget ran out mid-count; `count` is then a lower bound.
  bool complete = true;
};

// Number of satisfying cuts. When every join-irreducible advances a single
// process past bottom the sublattice is a product of per-process chains and
// the count is an exact saturating product; otherwise a level-BFS restricted
// to the sublattice runs (exponential output bound, budget-charged, no
// oracle calls). Requires a complete slice.
SliceCount countSatisfyingCuts(const Slice& slice, const VectorClocks& clocks,
                               control::Budget* budget = nullptr);

}  // namespace gpd::detect
