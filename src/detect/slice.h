// Computation slicing for regular predicates — the authors' own follow-up
// to this paper (Garg & Mittal, "On Slicing a Distributed Computation",
// ICDCS 2001; implemented here as the extension/future-work feature).
//
// A predicate is *regular* iff its satisfying consistent cuts are closed
// under both lattice meet and join — a sublattice. (Conjunctive predicates
// and channel predicates are the canonical regular classes; every regular
// predicate is linear, so the greedy detector applies.) The *slice* is the
// compact representation of that sublattice: for every event e either e is
// excluded (no satisfying cut contains it) or it has a join-irreducible
// witness J(e) = the least satisfying cut containing e. The fundamental
// theorem of slicing:
//
//     a consistent cut C satisfies B  ⟺  C = ⊔ { J(e) : e ∈ C included }
//     (and every join of J's satisfies B),
//
// so the slice answers possibly(B) (any J exists), counts/enumerates all
// satisfying cuts, and supports intersection with further predicates —
// while being only |E| cuts large. Built on detectLinearFrom: J(e) is the
// least B-cut reachable from e's causal history.
#pragma once

#include <optional>
#include <vector>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "detect/linear.h"

namespace gpd::detect {

struct Slice {
  // Per event (Computation::node numbering): the least satisfying cut
  // containing that event, or nullopt when the event is excluded.
  std::vector<std::optional<Cut>> leastCut;
  // Whether any satisfying cut exists (possibly(B)).
  bool satisfiable = false;
  // The least and greatest satisfying cuts, when satisfiable.
  Cut bottom;
  Cut top;

  bool included(int node) const { return leastCut[node].has_value(); }
};

// Requires `oracle` to describe a *regular* (hence linear) predicate; with a
// merely-linear oracle the J's are still least cuts but the join-closure
// theorem no longer holds (tests verify regular instances only).
Slice computeSlice(const VectorClocks& clocks, const ForbiddenFn& oracle);

// Membership test through the slice: C satisfies B ⟺ C equals the join of
// the least cuts of its included events (excluded events ⟹ false).
// O(|C|·n) after the slice is built — no oracle calls.
bool sliceSatisfies(const Slice& slice, const VectorClocks& clocks,
                    const Cut& cut);

// Number of satisfying cuts, by level-BFS restricted to the slice's
// sublattice (exponential output bound but no oracle calls).
std::uint64_t countSatisfyingCuts(const Slice& slice,
                                  const VectorClocks& clocks);

}  // namespace gpd::detect
