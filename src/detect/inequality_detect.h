// Corollary 2 end-to-end: detection of singular inequality-clause
// predicates by lowering to singular CNF (predicates/inequality.h) and
// running the Sec. 3.2 / 3.3 machinery — the CPDSC special case when the
// computation qualifies, the chain-cover enumeration otherwise.
#pragma once

#include <optional>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "predicates/inequality.h"

namespace gpd::detect {

struct IneqResult {
  std::optional<Cut> cut;      // witness, when found
  std::string algorithm;       // which branch ran
};

// The trace is mutated: lowering defines derived boolean variables with a
// per-call unique prefix, so repeated calls are safe.
IneqResult possiblyInequality(const VectorClocks& clocks, VariableTrace& trace,
                              const IneqClausePredicate& pred);

}  // namespace gpd::detect
