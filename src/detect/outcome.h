// Three-valued detection results for budgeted runs.
//
// An unbudgeted detector answers possibly/definitely exactly; under an
// execution budget (control/budget.h) the honest answer set grows to
// {Yes, No, Unknown}: a witness found before the budget tripped is still a
// genuine Yes, an exhausted search space is still a genuine No, and
// everything cut short is Unknown — with the stop reason and the progress
// counters attached so the caller can see how far the search got and which
// plan steps were skipped as over-budget.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "computation/cut.h"
#include "control/budget.h"

namespace gpd::detect {

enum class Outcome { Yes, No, Unknown };

inline const char* toString(Outcome o) {
  switch (o) {
    case Outcome::Yes:
      return "yes";
    case Outcome::No:
      return "no";
    case Outcome::Unknown:
      return "unknown";
  }
  return "unknown";
}

// One plan step as the degradation walk saw it: either it ran (with wall
// time measured on the library's steady clock) or it was skipped, with the
// reason recorded.
struct StepTrace {
  enum class Status : std::uint8_t {
    Ran,               // the step executed (completely or until the budget)
    SkippedCost,       // predicted combinations exceeded the remaining budget
    SkippedUnbounded,  // exhaustive fallback the budget could not stop
  };

  std::string algorithm;
  Status status = Status::Ran;
  std::string reason;               // why skipped; empty when the step ran
  std::uint64_t durationNanos = 0;  // wall time inside the step; 0 if skipped
  bool complete = false;            // the step produced an exact answer
};

inline const char* toString(StepTrace::Status s) {
  switch (s) {
    case StepTrace::Status::Ran:
      return "ran";
    case StepTrace::Status::SkippedCost:
      return "skipped-cost";
    case StepTrace::Status::SkippedUnbounded:
      return "skipped-unbounded";
  }
  return "?";
}

// What the slice-first pre-pass did: the sublattice it carved out of the
// computation and what running the restricted search inside it cost. The
// plan-vs-actual pair is predictedCuts (the planner's saturating product)
// against exploredCuts (what the restricted BFS really visited).
struct SliceTrace {
  std::uint64_t eventsTotal = 0;
  std::uint64_t eventsExcluded = 0;  // events no skeleton-satisfying cut has
  std::uint64_t predictedCuts = 0;   // planner's sublattice-size prediction
  bool predictedSaturated = false;   // prediction clamped at 2^64-1
  std::uint64_t exploredCuts = 0;    // cuts the restricted search visited
  std::uint64_t oracleCalls = 0;     // slice-build oracle calls
  std::uint64_t buildNanos = 0;      // wall time building the slice
  // True when detection actually ran inside the sublattice; false when the
  // pre-pass fell back (budget exhausted mid-slice) or short-circuited
  // (skeleton unsatisfiable / fully regular predicate answered directly).
  bool usedSlice = false;
};

struct Detection {
  Outcome outcome = Outcome::Unknown;
  // Witness cut for possibly-Yes (definitely never produces one).
  std::optional<Cut> witness;
  // Algorithm that produced the answer — identical to the unbudgeted
  // Detector::lastAlgorithm() string when the run completed in budget.
  std::string algorithm;
  // Why the search stopped early; None unless outcome == Unknown.
  control::StopReason stopReason = control::StopReason::None;
  // Work performed before the stop (also populated on exact answers).
  control::BudgetProgress progress;
  // Plan steps the degradation walk skipped, with the reason each was
  // skipped (predicted cost over budget / unbounded exhaustive step).
  std::vector<std::string> skippedSteps;
  // Every plan step the walk considered, in visit order — ran and skipped
  // alike, with per-step wall time for the former. The Yes-prover rerun of
  // a cost-skipped enumeration appears as a second entry for its algorithm.
  std::vector<StepTrace> steps;
  // Present when the plan carried a slice-first step (even when the
  // pre-pass fell back — usedSlice tells the two apart).
  std::optional<SliceTrace> slice;
};

}  // namespace gpd::detect
