#include "detect/inequality_detect.h"

#include <atomic>

#include "detect/cpdsc.h"
#include "detect/singular_cnf.h"
#include "util/check.h"

namespace gpd::detect {

IneqResult possiblyInequality(const VectorClocks& clocks, VariableTrace& trace,
                              const IneqClausePredicate& pred) {
  GPD_CHECK_MSG(pred.isSingular(),
                "Corollary 2 requires clauses on disjoint processes");
  static std::atomic<int> counter{0};
  const std::string prefix = "__ineq" + std::to_string(counter++);
  const CnfPredicate lowered = lowerToCnf(trace, pred, prefix);

  IneqResult result;
  const CpdscResult special = detectSingularSpecialCase(clocks, trace, lowered);
  if (special.applicable()) {
    result.algorithm = "cpdsc-special-case";
    if (special.found()) result.cut = special.cut;
    return result;
  }
  result.algorithm = "singular-chain-cover";
  const SingularCnfResult res =
      detectSingularByChainCover(clocks, trace, lowered);
  if (res.found) result.cut = res.cut;
  return result;
}

}  // namespace gpd::detect
