#include "detect/symmetric.h"

#include "lattice/explore.h"

namespace gpd::detect {

std::optional<Cut> possiblySymmetric(const VectorClocks& clocks,
                                     const VariableTrace& trace,
                                     const SymmetricPredicate& pred) {
  for (const SumPredicate& sum : pred.asExactSums()) {
    if (auto cut = possiblySum(clocks, trace, sum)) return cut;
  }
  return std::nullopt;
}

bool definitelySymmetric(const VectorClocks& clocks, const VariableTrace& trace,
                         const SymmetricPredicate& pred) {
  return lattice::definitelyExhaustive(clocks, [&](const Cut& cut) {
    return pred.holdsAtCut(trace, cut);
  });
}

}  // namespace gpd::detect
