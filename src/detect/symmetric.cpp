#include "detect/symmetric.h"

#include "lattice/explore.h"
#include "obs/trace.h"
#include "util/check.h"

namespace gpd::detect {

std::optional<Cut> possiblySymmetric(const VectorClocks& clocks,
                                     const VariableTrace& trace,
                                     const SymmetricPredicate& pred) {
  GPD_TRACE_SPAN("detect.symmetric.possibly");
  for (const SumPredicate& sum : pred.asExactSums()) {
    if (auto cut = possiblySum(clocks, trace, sum)) return cut;
  }
  return std::nullopt;
}

bool definitelySymmetric(const VectorClocks& clocks, const VariableTrace& trace,
                         const SymmetricPredicate& pred) {
  const SumDecision decision =
      definitelySymmetricBudgeted(clocks, trace, pred, nullptr);
  GPD_CHECK(decision.decided);
  return decision.holds;
}

SumDecision definitelySymmetricBudgeted(const VectorClocks& clocks,
                                        const VariableTrace& trace,
                                        const SymmetricPredicate& pred,
                                        control::Budget* budget) {
  GPD_TRACE_SPAN("detect.symmetric.definitely");
  const lattice::DefinitelyDecision d = lattice::definitelyExhaustiveBudgeted(
      clocks, [&](const Cut& cut) { return pred.holdsAtCut(trace, cut); },
      budget);
  SumDecision result;
  result.decided = d.decided;
  result.holds = d.decided && d.holds;
  return result;
}

}  // namespace gpd::detect
