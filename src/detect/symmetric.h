// Detection of symmetric predicates (paper Sec. 4.3).
//
// possibly distributes over disjunction, and a symmetric predicate over
// boolean variables is ∨_{t∈T} (Σxᵢ = t); each disjunct is decided by the
// Theorem 7 exact-sum detector (booleans change by at most 1 per event).
// definitely does NOT distribute over disjunction, so definitelySymmetric
// decides it exactly against the lattice.
#pragma once

#include <optional>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "control/budget.h"
#include "detect/sum.h"
#include "predicates/symmetric.h"

namespace gpd::detect {

// Returns a witness cut for possibly(φ), or nullopt.
std::optional<Cut> possiblySymmetric(const VectorClocks& clocks,
                                     const VariableTrace& trace,
                                     const SymmetricPredicate& pred);

// Exact definitely(φ) via lattice exploration.
bool definitelySymmetric(const VectorClocks& clocks, const VariableTrace& trace,
                         const SymmetricPredicate& pred);

// Budgeted definitely(φ): decided=false when the budget stopped the lattice
// analysis before an answer was provable.
SumDecision definitelySymmetricBudgeted(const VectorClocks& clocks,
                                        const VariableTrace& trace,
                                        const SymmetricPredicate& pred,
                                        control::Budget* budget);

}  // namespace gpd::detect
