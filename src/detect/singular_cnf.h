// General-case detection of singular CNF predicates (paper Sec. 3.3).
//
// Detection is NP-complete (Theorem 1), but two algorithms beat naive
// lattice enumeration exponentially:
//
//  (a) Process enumeration: pick one hosting process per clause-group and
//      run CPDHB on the per-process true-event queues — at most k^m
//      combinations for m clauses of k processes each, versus the
//      O(Πₚ |Eₚ|) states of the cut lattice.
//  (b) Chain cover (Dilworth): cover each group's true events by a minimum
//      set of causal chains and enumerate one chain per group — Π cⱼ
//      combinations where cⱼ ≤ k is the cover size (cⱼ beats k whenever
//      messages order true events across the group's processes).
//
// Both reduce to the chain-generalized CPDHB scan in detect/cpdhb.h, and
// both find a witness cut when the predicate possibly holds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "control/budget.h"
#include "detect/cpdhb.h"
#include "par/pool.h"
#include "predicates/cnf.h"

namespace gpd::detect {

struct SingularCnfResult {
  bool found = false;
  std::optional<Cut> cut;
  std::vector<EventId> witness;        // one true event per clause
  std::uint64_t combinationsTried = 0; // CPDHB invocations performed
  std::uint64_t combinationsTotal = 0; // size of the enumeration space
  std::uint64_t comparisons = 0;       // total consistency checks
  // False when a budget stopped the enumeration early: found=false then
  // means "unknown", not "no" (a witness may hide among untried selections).
  bool complete = true;
};

// For each clause, the events on the clause's processes at which the clause
// is true (i.e., some literal of the clause holds). A cut satisfies the
// predicate iff it passes through one such event per clause (Observation 1).
// `admittedNode` (Computation::node-indexed, optional) drops events outside
// an admitted set — the slice-first odometer pruning: an event excluded from
// the regular skeleton's slice lies in no satisfying cut, so no selection
// through it can succeed (the verdict is preserved; the witness may move to
// a different, equally valid selection).
std::vector<std::vector<EventId>> clauseTrueEvents(
    const VariableTrace& trace, const CnfPredicate& pred,
    const std::vector<char>* admittedNode = nullptr);

// Sec. 3.3(a). Requires pred.isSingular(). The budget is charged one
// combination per CPDHB invocation; on exhaustion the result carries
// complete=false and the selections tried so far.
//
// With a pool, combinations fan out across the workers in deterministic
// index order: the verdict, witness (lowest satisfying combination index),
// combinationsTotal, and complete flag are bit-identical to the sequential
// scan for any thread count — only combinationsTried/comparisons (progress
// before the first-Yes short-circuit) may differ. A combination budget caps
// the scanned prefix to exactly the indices the sequential odometer would
// have charged.
SingularCnfResult detectSingularByProcessEnumeration(
    const VectorClocks& clocks, const VariableTrace& trace,
    const CnfPredicate& pred, control::Budget* budget = nullptr,
    par::Pool* pool = nullptr,
    const std::vector<char>* admittedNode = nullptr);

// Sec. 3.3(b). Requires pred.isSingular(). Budgeted and parallelized
// like (a).
SingularCnfResult detectSingularByChainCover(
    const VectorClocks& clocks, const VariableTrace& trace,
    const CnfPredicate& pred, control::Budget* budget = nullptr,
    par::Pool* pool = nullptr,
    const std::vector<char>* admittedNode = nullptr);

// Minimum chain covers of each clause's true events; exposed for the A1
// ablation bench (cover sizes vs group sizes).
std::vector<std::vector<Chain>> clauseChainCovers(
    const VectorClocks& clocks, const VariableTrace& trace,
    const CnfPredicate& pred,
    const std::vector<char>* admittedNode = nullptr);

}  // namespace gpd::detect
