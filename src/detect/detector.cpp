#include "detect/detector.h"

#include <string>
#include <utility>

#include "lattice/explore.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace gpd::detect {

namespace {

// Dispatch-time classification: skip the lattice-backed stability/linearity
// hints — routing never depends on them and detection should not pay for an
// exhaustive enumeration before it starts.
analyze::ClassifyOptions routingOptions() {
  analyze::ClassifyOptions opts;
  opts.latticeCutLimit = 0;
  return opts;
}

// Outcome of running one plan step under a budget.
struct StepRun {
  bool ran = false;       // false: the step does not run in this context
  bool complete = false;  // true: `outcome` is exact
  Outcome outcome = Outcome::Unknown;
  std::optional<Cut> witness;
};

StepRun exactRun(Outcome outcome, std::optional<Cut> witness = std::nullopt) {
  StepRun run;
  run.ran = true;
  run.complete = true;
  run.outcome = outcome;
  run.witness = std::move(witness);
  return run;
}

StepRun stoppedRun() {
  StepRun run;
  run.ran = true;
  return run;
}

StepRun exactPossibly(std::optional<Cut> witness) {
  return witness.has_value() ? exactRun(Outcome::Yes, std::move(witness))
                             : exactRun(Outcome::No);
}

StepRun exactDefinitely(bool holds) {
  return exactRun(holds ? Outcome::Yes : Outcome::No);
}

// Feeds the planner-accuracy metrics once a predicted enumeration step has
// actually run: predicted vs observed CPDHB invocations, plus their
// absolute error in the plan_vs_actual histogram.
void recordPlanVsActual(const analyze::PlanStep& step, std::uint64_t actual) {
  if (!step.predictedCpdhbInvocations.has_value()) return;
  const std::uint64_t predicted = *step.predictedCpdhbInvocations;
  (void)predicted;
  (void)actual;
  GPD_OBS_COUNTER_ADD("plan_predicted_combinations", predicted);
  GPD_OBS_COUNTER_ADD("plan_actual_combinations", actual);
  GPD_OBS_HISTOGRAM("plan_vs_actual", predicted > actual ? predicted - actual
                                                         : actual - predicted);
}

// Runs one plan step under a span/stopwatch and appends its StepTrace.
// `combinationsBefore` lets the plan-accuracy metrics attribute only this
// step's CPDHB invocations.
template <typename RunStep>
StepRun runTimedStep(const analyze::PlanStep& step, const RunStep& runStep,
                     control::Budget& budget, Detection& det) {
  const char* name = analyze::toString(step.algorithm);
  const std::uint64_t combinationsBefore = budget.progress().combinationsTried;
  StepRun run;
  std::uint64_t durationNs = 0;
  {
    GPD_TRACE_SPAN_NAMED(span, "plan.step");
    span.attrStr("algorithm", name);
    Stopwatch watch;
    run = runStep(step);
    durationNs = watch.elapsedNanos();
    span.attrStr("ran", run.ran ? "yes" : "no");
  }
  if (!run.ran) return run;
  GPD_OBS_COUNTER_ADD("plan_steps_run", 1);
  recordPlanVsActual(step,
                     budget.progress().combinationsTried - combinationsBefore);
  StepTrace trace;
  trace.algorithm = name;
  trace.status = StepTrace::Status::Ran;
  trace.durationNanos = durationNs;
  trace.complete = run.complete;
  det.steps.push_back(std::move(trace));
  return run;
}

// Remembers a skipped plan step in both the legacy string list and the
// structured trace, and counts it.
void noteSkippedStep(Detection& det, const analyze::PlanStep& step,
                     StepTrace::Status status, std::string reason) {
  const char* name = analyze::toString(step.algorithm);
  det.skippedSteps.push_back(std::string(name) + ": " + reason);
  StepTrace trace;
  trace.algorithm = name;
  trace.status = status;
  trace.reason = std::move(reason);
  det.steps.push_back(std::move(trace));
  GPD_OBS_COUNTER_ADD("plan_steps_skipped", 1);
}

// The graceful-degradation walk shared by every budgeted entry point.
// Visits the ranked applicable steps; a step whose planner-predicted CPDHB
// invocation count exceeds the remaining combination budget is skipped (and
// remembered), an exhaustive lattice step reached after such a skip only
// runs if the budget can actually stop it, and — when the walk ends without
// an exact answer — the first skipped enumeration reruns as a bounded
// Yes-prover before the call concedes Unknown.
template <typename RunStep>
Detection walkPlan(const analyze::AnalysisReport& report,
                   control::Budget& budget, std::string& lastAlgorithm,
                   const RunStep& runStep) {
  GPD_TRACE_SPAN("detect.query");
  GPD_OBS_COUNTER_ADD("detector_queries", 1);
  Detection det;
  const analyze::PlanStep* firstSkipped = nullptr;
  bool costSkipped = false;
  for (const analyze::PlanStep& step : report.steps) {
    if (!step.applicable) continue;
    if (budget.exhausted()) break;
    const char* name = analyze::toString(step.algorithm);
    if (step.predictedCpdhbInvocations.has_value() &&
        *step.predictedCpdhbInvocations > budget.remainingCombinations()) {
      noteSkippedStep(det, step, StepTrace::Status::SkippedCost,
                      "predicted " +
                          std::to_string(*step.predictedCpdhbInvocations) +
                          " combinations exceed the remaining budget");
      if (firstSkipped == nullptr) firstSkipped = &step;
      costSkipped = true;
      continue;
    }
    const bool exhaustiveLattice =
        step.algorithm == analyze::Algorithm::LatticeEnumeration ||
        step.algorithm == analyze::Algorithm::LatticeDefinitely;
    if (costSkipped && exhaustiveLattice && !budget.canBoundExploration()) {
      noteSkippedStep(det, step, StepTrace::Status::SkippedUnbounded,
                      "exhaustive fallback the budget cannot stop, after a "
                      "cheaper step was skipped as over budget");
      continue;
    }
    StepRun run = runTimedStep(step, runStep, budget, det);
    if (!run.ran) continue;
    lastAlgorithm = name;
    det.algorithm = name;
    if (run.complete) {
      det.outcome = run.outcome;
      det.witness = std::move(run.witness);
      det.progress = budget.progress();
      return det;
    }
    break;  // the budget tripped mid-step; everything below ranks costlier
  }
  if (firstSkipped != nullptr && !budget.exhausted()) {
    // Bounded Yes-prover: scan as many selections as the budget allows; a
    // witness is a genuine Yes even though the full enumeration was skipped.
    StepRun run = runTimedStep(*firstSkipped, runStep, budget, det);
    if (run.ran) {
      const char* name = analyze::toString(firstSkipped->algorithm);
      lastAlgorithm = name;
      det.algorithm = name;
      if (run.complete) {
        det.outcome = run.outcome;
        det.witness = std::move(run.witness);
        det.progress = budget.progress();
        return det;
      }
    }
  }
  det.outcome = Outcome::Unknown;
  det.stopReason = budget.reason();
  det.progress = budget.progress();
  return det;
}

}  // namespace

analyze::Algorithm Detector::route(analyze::AnalysisReport report) {
  GPD_OBS_COUNTER_ADD("detector_queries", 1);
  adopt(std::move(report));
  const analyze::Algorithm chosen = report_.chosen().algorithm;
  lastAlgorithm_ = analyze::toString(chosen);
  return chosen;
}

const analyze::AnalysisReport& Detector::adopt(analyze::AnalysisReport report) {
  report_ = std::move(report);
  report_.threads = pool_ != nullptr ? pool_->threads() : 1;
  return report_;
}

lattice::CutSearchResult Detector::searchLattice(
    const lattice::CutPredicate& phi, control::Budget* budget) {
  if (pool_ != nullptr) {
    return lattice::findSatisfyingCutParallel(clocks_, phi, *pool_, budget);
  }
  return lattice::findSatisfyingCutBudgeted(clocks_, phi, budget);
}

lattice::DefinitelyDecision Detector::decideLattice(
    const lattice::CutPredicate& phi, control::Budget* budget) {
  if (pool_ != nullptr) {
    return lattice::definitelyExhaustiveParallel(clocks_, phi, *pool_, budget);
  }
  return lattice::definitelyExhaustiveBudgeted(clocks_, phi, budget);
}

std::optional<Cut> Detector::possibly(const ConjunctivePredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planConjunctive(
      clocks_, *trace_, pred, analyze::Modality::Possibly));
  GPD_CHECK(algo == analyze::Algorithm::Cpdhb);
  const ConjunctiveResult res = detectConjunctive(clocks_, *trace_, pred);
  if (res.found) return res.cut;
  return std::nullopt;
}

std::optional<Cut> Detector::possibly(const CnfPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planCnf(
      clocks_, *trace_, pred, analyze::Modality::Possibly, routingOptions()));
  switch (algo) {
    case analyze::Algorithm::CpdscSpecialCase: {
      const CpdscResult special =
          detectSingularSpecialCase(clocks_, *trace_, pred);
      GPD_CHECK_MSG(special.applicable(),
                    "planner chose CPDSC but the scan found the groups "
                    "unordered");
      if (special.found()) return special.cut;
      return std::nullopt;
    }
    case analyze::Algorithm::SingularChainCover: {
      const SingularCnfResult res =
          detectSingularByChainCover(clocks_, *trace_, pred, nullptr, pool_);
      // Unbudgeted enumerations feed planner accuracy too: the chosen step
      // carries the Π cⱼ prediction this run just realized.
      recordPlanVsActual(report_.chosen(), res.combinationsTried);
      if (res.found) return res.cut;
      return std::nullopt;
    }
    default:
      GPD_CHECK(algo == analyze::Algorithm::LatticeEnumeration);
      return searchLattice(
                 [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                 nullptr)
          .witness;
  }
}

std::optional<Cut> Detector::possibly(const SumPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(
      analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Possibly));
  if (algo == analyze::Algorithm::LatticeEnumeration) {
    return detectExactSumExhaustive(clocks_, *trace_, pred);
  }
  GPD_CHECK(algo == analyze::Algorithm::Theorem7ExactSum ||
            algo == analyze::Algorithm::MinCutExtrema);
  return possiblySum(clocks_, *trace_, pred);
}

std::optional<Cut> Detector::possibly(const SymmetricPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planSymmetric(
      clocks_, *trace_, pred, analyze::Modality::Possibly));
  GPD_CHECK(algo == analyze::Algorithm::SymmetricExactSumDisjunction);
  return possiblySymmetric(clocks_, *trace_, pred);
}

std::optional<Cut> Detector::possibly(const BoolExpr& expr) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planExpression(
      clocks_, *trace_, expr, analyze::Modality::Possibly));
  GPD_CHECK(algo == analyze::Algorithm::DnfDecomposition);
  return possiblyExpression(clocks_, *trace_, expr).cut;
}

bool Detector::definitely(const ConjunctivePredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planConjunctive(
      clocks_, *trace_, pred, analyze::Modality::Definitely));
  GPD_CHECK(algo == analyze::Algorithm::IntervalDefinitely);
  return definitelyConjunctive(clocks_, *trace_, pred).holds;
}

bool Detector::definitely(const CnfPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planCnf(
      clocks_, *trace_, pred, analyze::Modality::Definitely, routingOptions()));
  GPD_CHECK(algo == analyze::Algorithm::LatticeDefinitely);
  const lattice::DefinitelyDecision d = decideLattice(
      [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); }, nullptr);
  GPD_CHECK(d.decided);
  return d.holds;
}

bool Detector::definitely(const SumPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(
      analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Definitely));
  if (algo == analyze::Algorithm::LatticeDefinitely &&
      pred.relop == Relop::Equal) {
    // Σ = K with |ΔS| > 1: Theorem 7(2) does not apply; decide against the
    // lattice directly (definitelySum would reject the precondition).
    const lattice::DefinitelyDecision d = decideLattice(
        [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); }, nullptr);
    GPD_CHECK(d.decided);
    return d.holds;
  }
  GPD_CHECK(algo == analyze::Algorithm::Theorem7Definitely ||
            algo == analyze::Algorithm::LatticeDefinitely);
  return definitelySum(clocks_, *trace_, pred);
}

bool Detector::definitely(const SymmetricPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planSymmetric(
      clocks_, *trace_, pred, analyze::Modality::Definitely));
  GPD_CHECK(algo == analyze::Algorithm::LatticeDefinitely);
  return definitelySymmetric(clocks_, *trace_, pred);
}

Detection Detector::possibly(const ConjunctivePredicate& pred,
                             control::Budget& budget) {
  adopt(analyze::planConjunctive(clocks_, *trace_, pred,
                                 analyze::Modality::Possibly));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::Cpdhb: {
            if (!budget.chargeCombination()) return stoppedRun();
            const ConjunctiveResult res =
                detectConjunctive(clocks_, *trace_, pred);
            return exactPossibly(res.found ? std::optional<Cut>(res.cut)
                                           : std::nullopt);
          }
          case analyze::Algorithm::LatticeEnumeration: {
            const lattice::CutSearchResult search = searchLattice(
                [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.witness);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::possibly(const CnfPredicate& pred,
                             control::Budget& budget) {
  adopt(analyze::planCnf(clocks_, *trace_, pred, analyze::Modality::Possibly,
                         routingOptions()));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::CpdscSpecialCase: {
            const CpdscResult special =
                detectSingularSpecialCase(clocks_, *trace_, pred);
            GPD_CHECK_MSG(special.applicable(),
                          "planner chose CPDSC but the scan found the groups "
                          "unordered");
            return exactPossibly(special.found()
                                     ? std::optional<Cut>(special.cut)
                                     : std::nullopt);
          }
          case analyze::Algorithm::SingularChainCover:
          case analyze::Algorithm::SingularProcessEnumeration: {
            const SingularCnfResult res =
                step.algorithm == analyze::Algorithm::SingularChainCover
                    ? detectSingularByChainCover(clocks_, *trace_, pred,
                                                 &budget, pool_)
                    : detectSingularByProcessEnumeration(
                          clocks_, *trace_, pred, &budget, pool_);
            if (res.found) return exactRun(Outcome::Yes, res.cut);
            if (!res.complete) return stoppedRun();
            return exactRun(Outcome::No);
          }
          case analyze::Algorithm::LatticeEnumeration: {
            const lattice::CutSearchResult search = searchLattice(
                [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.witness);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::possibly(const SumPredicate& pred,
                             control::Budget& budget) {
  adopt(analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Possibly));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::MinCutExtrema:
          case analyze::Algorithm::Theorem7ExactSum:
            return exactPossibly(possiblySum(clocks_, *trace_, pred));
          case analyze::Algorithm::LatticeEnumeration: {
            const ExactSumSearch search =
                detectExactSumBudgeted(clocks_, *trace_, pred, &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.cut);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::possibly(const SymmetricPredicate& pred,
                             control::Budget& budget) {
  adopt(analyze::planSymmetric(clocks_, *trace_, pred,
                               analyze::Modality::Possibly));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::SymmetricExactSumDisjunction:
            return exactPossibly(possiblySymmetric(clocks_, *trace_, pred));
          case analyze::Algorithm::LatticeEnumeration: {
            const lattice::CutSearchResult search = searchLattice(
                [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.witness);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::possibly(const BoolExpr& expr, control::Budget& budget) {
  adopt(analyze::planExpression(clocks_, *trace_, expr,
                                analyze::Modality::Possibly));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::DnfDecomposition: {
            const DnfResult res =
                possiblyExpression(clocks_, *trace_, expr, &budget);
            if (res.cut.has_value()) return exactRun(Outcome::Yes, res.cut);
            if (!res.complete) return stoppedRun();
            return exactRun(Outcome::No);
          }
          case analyze::Algorithm::LatticeEnumeration: {
            const lattice::CutSearchResult search = searchLattice(
                [&](const Cut& cut) { return expr.evaluate(*trace_, cut); },
                &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.witness);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::definitely(const ConjunctivePredicate& pred,
                               control::Budget& budget) {
  adopt(analyze::planConjunctive(clocks_, *trace_, pred,
                                 analyze::Modality::Definitely));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::IntervalDefinitely:
            return exactDefinitely(
                definitelyConjunctive(clocks_, *trace_, pred).holds);
          case analyze::Algorithm::LatticeDefinitely: {
            const lattice::DefinitelyDecision d = decideLattice(
                [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                &budget);
            if (!d.decided) return stoppedRun();
            return exactDefinitely(d.holds);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::definitely(const CnfPredicate& pred,
                               control::Budget& budget) {
  adopt(analyze::planCnf(clocks_, *trace_, pred, analyze::Modality::Definitely,
                         routingOptions()));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        if (step.algorithm != analyze::Algorithm::LatticeDefinitely) {
          return StepRun{};
        }
        const lattice::DefinitelyDecision d = decideLattice(
            [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
            &budget);
        if (!d.decided) return stoppedRun();
        return exactDefinitely(d.holds);
      });
}

Detection Detector::definitely(const SumPredicate& pred,
                               control::Budget& budget) {
  adopt(
      analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Definitely));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::Theorem7Definitely: {
            const SumDecision d =
                definitelySumBudgeted(clocks_, *trace_, pred, &budget);
            if (!d.decided) return stoppedRun();
            return exactDefinitely(d.holds);
          }
          case analyze::Algorithm::LatticeDefinitely: {
            if (pred.relop == Relop::Equal) {
              // Σ = K with |ΔS| > 1 skips the Theorem 7(2) reduction —
              // decide against the lattice directly, like the unbudgeted
              // path.
              const lattice::DefinitelyDecision d = decideLattice(
                  [&](const Cut& cut) {
                    return pred.holdsAtCut(*trace_, cut);
                  },
                  &budget);
              if (!d.decided) return stoppedRun();
              return exactDefinitely(d.holds);
            }
            const SumDecision s =
                definitelySumBudgeted(clocks_, *trace_, pred, &budget);
            if (!s.decided) return stoppedRun();
            return exactDefinitely(s.holds);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::definitely(const SymmetricPredicate& pred,
                               control::Budget& budget) {
  adopt(analyze::planSymmetric(clocks_, *trace_, pred,
                               analyze::Modality::Definitely));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        if (step.algorithm != analyze::Algorithm::LatticeDefinitely) {
          return StepRun{};
        }
        const SumDecision d =
            definitelySymmetricBudgeted(clocks_, *trace_, pred, &budget);
        if (!d.decided) return stoppedRun();
        return exactDefinitely(d.holds);
      });
}

}  // namespace gpd::detect
