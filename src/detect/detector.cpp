#include "detect/detector.h"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "detect/slice.h"
#include "lattice/explore.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace gpd::detect {

namespace {

// Dispatch-time classification: skip the lattice-backed stability/linearity
// hints — routing never depends on them and detection should not pay for an
// exhaustive enumeration before it starts.
analyze::ClassifyOptions routingOptions() {
  analyze::ClassifyOptions opts;
  opts.latticeCutLimit = 0;
  return opts;
}

// Outcome of running one plan step under a budget.
struct StepRun {
  bool ran = false;       // false: the step does not run in this context
  bool complete = false;  // true: `outcome` is exact
  Outcome outcome = Outcome::Unknown;
  std::optional<Cut> witness;
  // Set (with ran == false) when the step declined to run for a reason worth
  // tracing — e.g. the slice pre-pass lacked budget headroom. The walk
  // records it as a skipped step and falls through to the next one.
  std::string skipNote;
};

StepRun exactRun(Outcome outcome, std::optional<Cut> witness = std::nullopt) {
  StepRun run;
  run.ran = true;
  run.complete = true;
  run.outcome = outcome;
  run.witness = std::move(witness);
  return run;
}

StepRun stoppedRun() {
  StepRun run;
  run.ran = true;
  return run;
}

StepRun exactPossibly(std::optional<Cut> witness) {
  return witness.has_value() ? exactRun(Outcome::Yes, std::move(witness))
                             : exactRun(Outcome::No);
}

StepRun exactDefinitely(bool holds) {
  return exactRun(holds ? Outcome::Yes : Outcome::No);
}

// Truth table of the CNF's regular skeleton: ok[p][i] is true iff every
// single-process clause hosted on p holds at p's event i. An empty ok[p]
// means p hosts no single-process clause (unconstrained by the skeleton).
std::vector<std::vector<char>> skeletonTruth(const VariableTrace& trace,
                                             const CnfPredicate& pred) {
  const Computation& comp = trace.computation();
  std::vector<std::vector<char>> ok(comp.processCount());
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    const std::vector<ProcessId> procs =
        pred.clauseProcesses(static_cast<int>(j));
    if (procs.size() != 1) continue;
    const ProcessId p = procs[0];
    if (ok[p].empty()) ok[p].assign(comp.eventCount(p), 1);
    for (int i = 0; i < comp.eventCount(p); ++i) {
      bool holds = false;
      for (const BoolLiteral& l : pred.clauses[j]) {
        if (l.holds(trace, i)) {
          holds = true;
          break;
        }
      }
      if (!holds) ok[p][i] = 0;
    }
  }
  return ok;
}

// Linearity oracle for the skeleton: a process whose hosted single-process
// clause is false at the cut's frontier is forbidden (the clause depends on
// that one coordinate only, so any satisfying extension must advance it).
// The skeleton is regular by construction — each clause's cut set is closed
// under per-coordinate min/max — so slicing on this oracle is sound without
// the join-closure check.
ForbiddenFn skeletonOracle(const std::vector<std::vector<char>>& ok) {
  return [&ok](const Cut& cut) -> std::optional<ProcessId> {
    for (ProcessId p = 0; p < static_cast<ProcessId>(ok.size()); ++p) {
      if (!ok[p].empty() && !ok[p][cut.last[p]]) return p;
    }
    return std::nullopt;
  };
}

// The slice-first pre-pass (planner Algorithm::SliceFirst): slice the
// computation on the regular skeleton, then run the full-CNF lattice search
// restricted to the slice's sublattice. Bit-identity with the unsliced
// search: every CNF-satisfying cut satisfies the skeleton, so all its events
// are slice-included and it lies below the slice top — the admitted region
// contains every satisfying cut, and the restricted BFS preserves the full
// BFS's level order over that region, so the first witness is the same cut
// (sequentially and in the pool's deterministic parallel form alike).
StepRun runSliceFirst(const VectorClocks& clocks, const VariableTrace& trace,
                      const CnfPredicate& pred, const analyze::PlanStep& step,
                      par::Pool* pool, control::Budget* budget,
                      SliceTrace& strace) {
  const Computation& comp = trace.computation();
  strace.eventsTotal = static_cast<std::uint64_t>(comp.totalEvents());
  strace.predictedCuts = step.predictedSublatticeCuts.value_or(0);
  strace.predictedSaturated = step.predictionSaturated;

  const std::vector<std::vector<char>> ok = skeletonTruth(trace, pred);
  SliceOptions sopts;
  sopts.budget = budget;
  sopts.verifyRegular = false;  // regular by construction, see skeletonOracle
  Stopwatch watch;
  const Slice slice = computeSlice(clocks, skeletonOracle(ok), sopts);
  strace.buildNanos = watch.elapsedNanos();
  strace.oracleCalls = slice.oracleCalls;
  GPD_OBS_COUNTER_ADD("slice_prepasses", 1);
  GPD_OBS_HISTOGRAM("slice_build_nanos", strace.buildNanos);
  if (!slice.complete) {
    StepRun run;
    run.skipNote = "slice pre-pass exhausted the budget building the slice";
    return run;
  }
  strace.eventsExcluded =
      slice.satisfiable ? slice.excludedEvents() : strace.eventsTotal;
  GPD_OBS_COUNTER_ADD("slice_events_excluded", strace.eventsExcluded);
  if (!strace.predictedSaturated) {
    GPD_OBS_COUNTER_ADD("slice_predicted_cuts", strace.predictedCuts);
  }
  if (!slice.satisfiable) {
    // The skeleton alone is unsatisfiable, hence so is the conjunction.
    return exactRun(Outcome::No);
  }
  bool allSingleProcess = true;
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    if (pred.clauseProcesses(static_cast<int>(j)).size() != 1) {
      allSingleProcess = false;
      break;
    }
  }
  if (allSingleProcess) {
    // Fully regular: the skeleton IS the predicate and slice.bottom is its
    // unique least satisfying cut — exactly the unsliced BFS's first
    // witness (it sits alone on the lowest satisfying level).
    return exactRun(Outcome::Yes, slice.bottom);
  }
  strace.usedSlice = true;
  const lattice::CutAdmit admit = [&](ProcessId p, const Cut& succ) {
    const int idx = succ.last[p];
    if (idx > slice.top.last[p]) return false;
    return slice.included(comp.node({p, idx}));
  };
  const lattice::CutPredicate phi = [&](const Cut& cut) {
    return pred.holdsAtCut(trace, cut);
  };
  const lattice::CutSearchResult search =
      pool != nullptr ? lattice::findSatisfyingCutParallel(clocks, phi, *pool,
                                                           budget, &admit)
                      : lattice::findSatisfyingCutBudgeted(clocks, phi, budget,
                                                           &admit);
  strace.exploredCuts = search.explore.cutsVisited;
  GPD_OBS_COUNTER_ADD("slice_explored_cuts", strace.exploredCuts);
  if (!search.complete) return stoppedRun();
  return exactPossibly(search.witness);
}

// Odometer pruning for the singular enumerations (Sec. 3.3): slice on the
// predicate's single-process clauses and drop slice-excluded events from the
// per-clause true-event queues. An excluded event lies in no
// skeleton-satisfying cut, hence in no satisfying cut of the conjunction, so
// every selection through it is doomed — the verdict is preserved; only the
// selection indices (and possibly the witness selection) shift. Gated to
// enumeration spaces past 64 combinations so small runs keep their
// historical selection order bit-for-bit.
struct SkeletonPruning {
  bool built = false;          // a slice was computed (strace is meaningful)
  bool active = false;         // admitted mask applies
  bool unsatisfiable = false;  // skeleton already rules out every cut
  std::vector<char> admitted;
  SliceTrace strace;
};

SkeletonPruning pruneSingularOdometer(const VectorClocks& clocks,
                                      const VariableTrace& trace,
                                      const CnfPredicate& pred,
                                      const analyze::CnfClassification* cls) {
  SkeletonPruning out;
  if (cls == nullptr || cls->singleProcessClauses == 0) return out;
  if (cls->chainCoverBound() <= 64) return out;
  const Computation& comp = trace.computation();
  out.built = true;
  out.strace.eventsTotal = static_cast<std::uint64_t>(comp.totalEvents());
  const std::vector<std::vector<char>> ok = skeletonTruth(trace, pred);
  SliceOptions sopts;
  sopts.verifyRegular = false;
  // Unbudgeted on purpose: the build is O(|E|) linear walks — tiny against
  // the >64-combination enumeration it prunes — and budget-independence
  // keeps the budgeted and unbudgeted enumerations scanning the same
  // selection sequence.
  Stopwatch watch;
  const Slice slice = computeSlice(clocks, skeletonOracle(ok), sopts);
  out.strace.buildNanos = watch.elapsedNanos();
  out.strace.oracleCalls = slice.oracleCalls;
  GPD_OBS_COUNTER_ADD("slice_prepasses", 1);
  GPD_OBS_HISTOGRAM("slice_build_nanos", out.strace.buildNanos);
  if (!slice.satisfiable) {
    out.strace.eventsExcluded = out.strace.eventsTotal;
    GPD_OBS_COUNTER_ADD("slice_events_excluded", out.strace.eventsExcluded);
    out.unsatisfiable = true;
    return out;
  }
  out.strace.eventsExcluded = slice.excludedEvents();
  GPD_OBS_COUNTER_ADD("slice_events_excluded", out.strace.eventsExcluded);
  out.strace.usedSlice = true;
  out.active = true;
  out.admitted.assign(static_cast<std::size_t>(comp.totalEvents()), 0);
  for (int node = 0; node < comp.totalEvents(); ++node) {
    out.admitted[static_cast<std::size_t>(node)] = slice.included(node) ? 1 : 0;
  }
  return out;
}

// Feeds the planner-accuracy metrics once a predicted enumeration step has
// actually run: predicted vs observed CPDHB invocations, plus their
// absolute error in the plan_vs_actual histogram.
void recordPlanVsActual(const analyze::PlanStep& step, std::uint64_t actual) {
  if (!step.predictedCpdhbInvocations.has_value()) return;
  const std::uint64_t predicted = *step.predictedCpdhbInvocations;
  (void)predicted;
  (void)actual;
  GPD_OBS_COUNTER_ADD("plan_predicted_combinations", predicted);
  GPD_OBS_COUNTER_ADD("plan_actual_combinations", actual);
  GPD_OBS_HISTOGRAM("plan_vs_actual", predicted > actual ? predicted - actual
                                                         : actual - predicted);
}

// Runs one plan step under a span/stopwatch and appends its StepTrace.
// `combinationsBefore` lets the plan-accuracy metrics attribute only this
// step's CPDHB invocations.
template <typename RunStep>
StepRun runTimedStep(const analyze::PlanStep& step, const RunStep& runStep,
                     control::Budget& budget, Detection& det) {
  const char* name = analyze::toString(step.algorithm);
  const std::uint64_t combinationsBefore = budget.progress().combinationsTried;
  StepRun run;
  std::uint64_t durationNs = 0;
  {
    GPD_TRACE_SPAN_NAMED(span, "plan.step");
    span.attrStr("algorithm", name);
    Stopwatch watch;
    run = runStep(step);
    durationNs = watch.elapsedNanos();
    span.attrStr("ran", run.ran ? "yes" : "no");
  }
  if (!run.ran) return run;
  GPD_OBS_COUNTER_ADD("plan_steps_run", 1);
  recordPlanVsActual(step,
                     budget.progress().combinationsTried - combinationsBefore);
  StepTrace trace;
  trace.algorithm = name;
  trace.status = StepTrace::Status::Ran;
  trace.durationNanos = durationNs;
  trace.complete = run.complete;
  det.steps.push_back(std::move(trace));
  return run;
}

// Remembers a skipped plan step in both the legacy string list and the
// structured trace, and counts it.
void noteSkippedStep(Detection& det, const analyze::PlanStep& step,
                     StepTrace::Status status, std::string reason) {
  const char* name = analyze::toString(step.algorithm);
  det.skippedSteps.push_back(std::string(name) + ": " + reason);
  StepTrace trace;
  trace.algorithm = name;
  trace.status = status;
  trace.reason = std::move(reason);
  det.steps.push_back(std::move(trace));
  GPD_OBS_COUNTER_ADD("plan_steps_skipped", 1);
}

// The graceful-degradation walk shared by every budgeted entry point.
// Visits the ranked applicable steps; a step whose planner-predicted CPDHB
// invocation count exceeds the remaining combination budget is skipped (and
// remembered), an exhaustive lattice step reached after such a skip only
// runs if the budget can actually stop it, and — when the walk ends without
// an exact answer — the first skipped enumeration reruns as a bounded
// Yes-prover before the call concedes Unknown.
template <typename RunStep>
Detection walkPlan(const analyze::AnalysisReport& report,
                   control::Budget& budget, std::string& lastAlgorithm,
                   const RunStep& runStep) {
  GPD_TRACE_SPAN("detect.query");
  GPD_OBS_COUNTER_ADD("detector_queries", 1);
  Detection det;
  const analyze::PlanStep* firstSkipped = nullptr;
  bool costSkipped = false;
  for (const analyze::PlanStep& step : report.steps) {
    if (!step.applicable) continue;
    if (budget.exhausted()) break;
    const char* name = analyze::toString(step.algorithm);
    if (step.predictedCpdhbInvocations.has_value() &&
        *step.predictedCpdhbInvocations > budget.remainingCombinations()) {
      noteSkippedStep(det, step, StepTrace::Status::SkippedCost,
                      "predicted " +
                          std::to_string(*step.predictedCpdhbInvocations) +
                          " combinations exceed the remaining budget");
      if (firstSkipped == nullptr) firstSkipped = &step;
      costSkipped = true;
      continue;
    }
    const bool exhaustiveLattice =
        step.algorithm == analyze::Algorithm::LatticeEnumeration ||
        step.algorithm == analyze::Algorithm::LatticeDefinitely;
    if (costSkipped && exhaustiveLattice && !budget.canBoundExploration()) {
      noteSkippedStep(det, step, StepTrace::Status::SkippedUnbounded,
                      "exhaustive fallback the budget cannot stop, after a "
                      "cheaper step was skipped as over budget");
      continue;
    }
    StepRun run = runTimedStep(step, runStep, budget, det);
    if (!run.ran) {
      // A declined step with a note (slice pre-pass out of headroom) is
      // traced as skipped but never becomes the Yes-prover rerun — the walk
      // just falls through to the unsliced steps below it.
      if (!run.skipNote.empty()) {
        noteSkippedStep(det, step, StepTrace::Status::SkippedCost,
                        std::move(run.skipNote));
      }
      continue;
    }
    lastAlgorithm = name;
    det.algorithm = name;
    if (run.complete) {
      det.outcome = run.outcome;
      det.witness = std::move(run.witness);
      det.progress = budget.progress();
      return det;
    }
    break;  // the budget tripped mid-step; everything below ranks costlier
  }
  if (firstSkipped != nullptr && !budget.exhausted()) {
    // Bounded Yes-prover: scan as many selections as the budget allows; a
    // witness is a genuine Yes even though the full enumeration was skipped.
    StepRun run = runTimedStep(*firstSkipped, runStep, budget, det);
    if (run.ran) {
      const char* name = analyze::toString(firstSkipped->algorithm);
      lastAlgorithm = name;
      det.algorithm = name;
      if (run.complete) {
        det.outcome = run.outcome;
        det.witness = std::move(run.witness);
        det.progress = budget.progress();
        return det;
      }
    }
  }
  det.outcome = Outcome::Unknown;
  det.stopReason = budget.reason();
  det.progress = budget.progress();
  return det;
}

}  // namespace

analyze::Algorithm Detector::route(analyze::AnalysisReport report) {
  GPD_OBS_COUNTER_ADD("detector_queries", 1);
  adopt(std::move(report));
  const analyze::Algorithm chosen = report_.chosen().algorithm;
  lastAlgorithm_ = analyze::toString(chosen);
  return chosen;
}

const analyze::AnalysisReport& Detector::adopt(analyze::AnalysisReport report) {
  report_ = std::move(report);
  report_.threads = pool_ != nullptr ? pool_->threads() : 1;
  lastSlice_.reset();
  return report_;
}

lattice::CutSearchResult Detector::searchLattice(
    const lattice::CutPredicate& phi, control::Budget* budget) {
  if (pool_ != nullptr) {
    return lattice::findSatisfyingCutParallel(clocks_, phi, *pool_, budget);
  }
  return lattice::findSatisfyingCutBudgeted(clocks_, phi, budget);
}

lattice::DefinitelyDecision Detector::decideLattice(
    const lattice::CutPredicate& phi, control::Budget* budget) {
  if (pool_ != nullptr) {
    return lattice::definitelyExhaustiveParallel(clocks_, phi, *pool_, budget);
  }
  return lattice::definitelyExhaustiveBudgeted(clocks_, phi, budget);
}

std::optional<Cut> Detector::possibly(const ConjunctivePredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planConjunctive(
      clocks_, *trace_, pred, analyze::Modality::Possibly));
  GPD_CHECK(algo == analyze::Algorithm::Cpdhb);
  const ConjunctiveResult res = detectConjunctive(clocks_, *trace_, pred);
  if (res.found) return res.cut;
  return std::nullopt;
}

std::optional<Cut> Detector::possibly(const CnfPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planCnf(
      clocks_, *trace_, pred, analyze::Modality::Possibly, routingOptions()));
  switch (algo) {
    case analyze::Algorithm::CpdscSpecialCase: {
      const CpdscResult special =
          detectSingularSpecialCase(clocks_, *trace_, pred);
      GPD_CHECK_MSG(special.applicable(),
                    "planner chose CPDSC but the scan found the groups "
                    "unordered");
      if (special.found()) return special.cut;
      return std::nullopt;
    }
    case analyze::Algorithm::SingularChainCover: {
      const analyze::CnfClassification* cls =
          report_.cnf.has_value() ? &*report_.cnf : nullptr;
      SkeletonPruning pruning;
      if (slicing_) {
        pruning = pruneSingularOdometer(clocks_, *trace_, pred, cls);
      }
      if (pruning.built) lastSlice_ = pruning.strace;
      if (pruning.unsatisfiable) return std::nullopt;
      const SingularCnfResult res = detectSingularByChainCover(
          clocks_, *trace_, pred, nullptr, pool_,
          pruning.active ? &pruning.admitted : nullptr);
      // Unbudgeted enumerations feed planner accuracy too: the chosen step
      // carries the Π cⱼ prediction this run just realized.
      recordPlanVsActual(report_.chosen(), res.combinationsTried);
      if (res.found) return res.cut;
      return std::nullopt;
    }
    case analyze::Algorithm::SliceFirst: {
      if (!slicing_) {
        // Forced off: run the historical unsliced lattice path and report it
        // as such.
        lastAlgorithm_ =
            analyze::toString(analyze::Algorithm::LatticeEnumeration);
        return searchLattice(
                   [&](const Cut& cut) {
                     return pred.holdsAtCut(*trace_, cut);
                   },
                   nullptr)
            .witness;
      }
      SliceTrace strace;
      StepRun run = runSliceFirst(clocks_, *trace_, pred, report_.chosen(),
                                  pool_, nullptr, strace);
      lastSlice_ = strace;
      GPD_CHECK_MSG(run.ran && run.complete,
                    "unbudgeted slice pre-pass must complete");
      return std::move(run.witness);
    }
    default:
      GPD_CHECK(algo == analyze::Algorithm::LatticeEnumeration);
      return searchLattice(
                 [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                 nullptr)
          .witness;
  }
}

std::optional<Cut> Detector::possibly(const SumPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(
      analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Possibly));
  if (algo == analyze::Algorithm::LatticeEnumeration) {
    return detectExactSumExhaustive(clocks_, *trace_, pred);
  }
  GPD_CHECK(algo == analyze::Algorithm::Theorem7ExactSum ||
            algo == analyze::Algorithm::MinCutExtrema);
  return possiblySum(clocks_, *trace_, pred);
}

std::optional<Cut> Detector::possibly(const SymmetricPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planSymmetric(
      clocks_, *trace_, pred, analyze::Modality::Possibly));
  GPD_CHECK(algo == analyze::Algorithm::SymmetricExactSumDisjunction);
  return possiblySymmetric(clocks_, *trace_, pred);
}

std::optional<Cut> Detector::possibly(const BoolExpr& expr) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planExpression(
      clocks_, *trace_, expr, analyze::Modality::Possibly));
  GPD_CHECK(algo == analyze::Algorithm::DnfDecomposition);
  return possiblyExpression(clocks_, *trace_, expr).cut;
}

bool Detector::definitely(const ConjunctivePredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planConjunctive(
      clocks_, *trace_, pred, analyze::Modality::Definitely));
  GPD_CHECK(algo == analyze::Algorithm::IntervalDefinitely);
  return definitelyConjunctive(clocks_, *trace_, pred).holds;
}

bool Detector::definitely(const CnfPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planCnf(
      clocks_, *trace_, pred, analyze::Modality::Definitely, routingOptions()));
  GPD_CHECK(algo == analyze::Algorithm::LatticeDefinitely);
  const lattice::DefinitelyDecision d = decideLattice(
      [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); }, nullptr);
  GPD_CHECK(d.decided);
  return d.holds;
}

bool Detector::definitely(const SumPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(
      analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Definitely));
  if (algo == analyze::Algorithm::LatticeDefinitely &&
      pred.relop == Relop::Equal) {
    // Σ = K with |ΔS| > 1: Theorem 7(2) does not apply; decide against the
    // lattice directly (definitelySum would reject the precondition).
    const lattice::DefinitelyDecision d = decideLattice(
        [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); }, nullptr);
    GPD_CHECK(d.decided);
    return d.holds;
  }
  GPD_CHECK(algo == analyze::Algorithm::Theorem7Definitely ||
            algo == analyze::Algorithm::LatticeDefinitely);
  return definitelySum(clocks_, *trace_, pred);
}

bool Detector::definitely(const SymmetricPredicate& pred) {
  GPD_TRACE_SPAN("detect.query");
  const analyze::Algorithm algo = route(analyze::planSymmetric(
      clocks_, *trace_, pred, analyze::Modality::Definitely));
  GPD_CHECK(algo == analyze::Algorithm::LatticeDefinitely);
  return definitelySymmetric(clocks_, *trace_, pred);
}

Detection Detector::possibly(const ConjunctivePredicate& pred,
                             control::Budget& budget) {
  adopt(analyze::planConjunctive(clocks_, *trace_, pred,
                                 analyze::Modality::Possibly));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::Cpdhb: {
            if (!budget.chargeCombination()) return stoppedRun();
            const ConjunctiveResult res =
                detectConjunctive(clocks_, *trace_, pred);
            return exactPossibly(res.found ? std::optional<Cut>(res.cut)
                                           : std::nullopt);
          }
          case analyze::Algorithm::LatticeEnumeration: {
            const lattice::CutSearchResult search = searchLattice(
                [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.witness);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::possibly(const CnfPredicate& pred,
                             control::Budget& budget) {
  adopt(analyze::planCnf(clocks_, *trace_, pred, analyze::Modality::Possibly,
                         routingOptions()));
  Detection det = walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::CpdscSpecialCase: {
            const CpdscResult special =
                detectSingularSpecialCase(clocks_, *trace_, pred);
            GPD_CHECK_MSG(special.applicable(),
                          "planner chose CPDSC but the scan found the groups "
                          "unordered");
            return exactPossibly(special.found()
                                     ? std::optional<Cut>(special.cut)
                                     : std::nullopt);
          }
          case analyze::Algorithm::SingularChainCover:
          case analyze::Algorithm::SingularProcessEnumeration: {
            const analyze::CnfClassification* cls =
                report_.cnf.has_value() ? &*report_.cnf : nullptr;
            SkeletonPruning pruning;
            if (slicing_) {
              pruning = pruneSingularOdometer(clocks_, *trace_, pred, cls);
            }
            if (pruning.built) lastSlice_ = pruning.strace;
            if (pruning.unsatisfiable) return exactRun(Outcome::No);
            const std::vector<char>* admitted =
                pruning.active ? &pruning.admitted : nullptr;
            const SingularCnfResult res =
                step.algorithm == analyze::Algorithm::SingularChainCover
                    ? detectSingularByChainCover(clocks_, *trace_, pred,
                                                 &budget, pool_, admitted)
                    : detectSingularByProcessEnumeration(
                          clocks_, *trace_, pred, &budget, pool_, admitted);
            if (res.found) return exactRun(Outcome::Yes, res.cut);
            if (!res.complete) return stoppedRun();
            return exactRun(Outcome::No);
          }
          case analyze::Algorithm::SliceFirst: {
            if (!slicing_) return StepRun{};
            if (budget.remainingCuts() <
                static_cast<std::uint64_t>(
                    clocks_.computation().totalEvents())) {
              // Building the slice costs up to |E| budgeted linear walks;
              // with less headroom than that, go straight to the unsliced
              // lattice, which can still make bounded progress.
              StepRun run;
              run.skipNote =
                  "slice pre-pass needs |E| cuts of budget headroom; "
                  "falling back to the unsliced lattice";
              return run;
            }
            SliceTrace strace;
            StepRun run = runSliceFirst(clocks_, *trace_, pred, step, pool_,
                                        &budget, strace);
            lastSlice_ = strace;
            return run;
          }
          case analyze::Algorithm::LatticeEnumeration: {
            const lattice::CutSearchResult search = searchLattice(
                [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.witness);
          }
          default:
            return StepRun{};
        }
      });
  det.slice = lastSlice_;
  return det;
}

Detection Detector::possibly(const SumPredicate& pred,
                             control::Budget& budget) {
  adopt(analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Possibly));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::MinCutExtrema:
          case analyze::Algorithm::Theorem7ExactSum:
            return exactPossibly(possiblySum(clocks_, *trace_, pred));
          case analyze::Algorithm::LatticeEnumeration: {
            const ExactSumSearch search =
                detectExactSumBudgeted(clocks_, *trace_, pred, &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.cut);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::possibly(const SymmetricPredicate& pred,
                             control::Budget& budget) {
  adopt(analyze::planSymmetric(clocks_, *trace_, pred,
                               analyze::Modality::Possibly));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::SymmetricExactSumDisjunction:
            return exactPossibly(possiblySymmetric(clocks_, *trace_, pred));
          case analyze::Algorithm::LatticeEnumeration: {
            const lattice::CutSearchResult search = searchLattice(
                [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.witness);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::possibly(const BoolExpr& expr, control::Budget& budget) {
  adopt(analyze::planExpression(clocks_, *trace_, expr,
                                analyze::Modality::Possibly));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::DnfDecomposition: {
            const DnfResult res =
                possiblyExpression(clocks_, *trace_, expr, &budget);
            if (res.cut.has_value()) return exactRun(Outcome::Yes, res.cut);
            if (!res.complete) return stoppedRun();
            return exactRun(Outcome::No);
          }
          case analyze::Algorithm::LatticeEnumeration: {
            const lattice::CutSearchResult search = searchLattice(
                [&](const Cut& cut) { return expr.evaluate(*trace_, cut); },
                &budget);
            if (!search.complete) return stoppedRun();
            return exactPossibly(search.witness);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::definitely(const ConjunctivePredicate& pred,
                               control::Budget& budget) {
  adopt(analyze::planConjunctive(clocks_, *trace_, pred,
                                 analyze::Modality::Definitely));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::IntervalDefinitely:
            return exactDefinitely(
                definitelyConjunctive(clocks_, *trace_, pred).holds);
          case analyze::Algorithm::LatticeDefinitely: {
            const lattice::DefinitelyDecision d = decideLattice(
                [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
                &budget);
            if (!d.decided) return stoppedRun();
            return exactDefinitely(d.holds);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::definitely(const CnfPredicate& pred,
                               control::Budget& budget) {
  adopt(analyze::planCnf(clocks_, *trace_, pred, analyze::Modality::Definitely,
                         routingOptions()));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        if (step.algorithm != analyze::Algorithm::LatticeDefinitely) {
          return StepRun{};
        }
        const lattice::DefinitelyDecision d = decideLattice(
            [&](const Cut& cut) { return pred.holdsAtCut(*trace_, cut); },
            &budget);
        if (!d.decided) return stoppedRun();
        return exactDefinitely(d.holds);
      });
}

Detection Detector::definitely(const SumPredicate& pred,
                               control::Budget& budget) {
  adopt(
      analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Definitely));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        switch (step.algorithm) {
          case analyze::Algorithm::Theorem7Definitely: {
            const SumDecision d =
                definitelySumBudgeted(clocks_, *trace_, pred, &budget);
            if (!d.decided) return stoppedRun();
            return exactDefinitely(d.holds);
          }
          case analyze::Algorithm::LatticeDefinitely: {
            if (pred.relop == Relop::Equal) {
              // Σ = K with |ΔS| > 1 skips the Theorem 7(2) reduction —
              // decide against the lattice directly, like the unbudgeted
              // path.
              const lattice::DefinitelyDecision d = decideLattice(
                  [&](const Cut& cut) {
                    return pred.holdsAtCut(*trace_, cut);
                  },
                  &budget);
              if (!d.decided) return stoppedRun();
              return exactDefinitely(d.holds);
            }
            const SumDecision s =
                definitelySumBudgeted(clocks_, *trace_, pred, &budget);
            if (!s.decided) return stoppedRun();
            return exactDefinitely(s.holds);
          }
          default:
            return StepRun{};
        }
      });
}

Detection Detector::definitely(const SymmetricPredicate& pred,
                               control::Budget& budget) {
  adopt(analyze::planSymmetric(clocks_, *trace_, pred,
                               analyze::Modality::Definitely));
  return walkPlan(
      report_, budget, lastAlgorithm_, [&](const analyze::PlanStep& step) {
        if (step.algorithm != analyze::Algorithm::LatticeDefinitely) {
          return StepRun{};
        }
        const SumDecision d =
            definitelySymmetricBudgeted(clocks_, *trace_, pred, &budget);
        if (!d.decided) return stoppedRun();
        return exactDefinitely(d.holds);
      });
}

}  // namespace gpd::detect
