#include "detect/detector.h"

#include <utility>

#include "lattice/explore.h"
#include "util/check.h"

namespace gpd::detect {

namespace {

// Dispatch-time classification: skip the lattice-backed stability/linearity
// hints — routing never depends on them and detection should not pay for an
// exhaustive enumeration before it starts.
analyze::ClassifyOptions routingOptions() {
  analyze::ClassifyOptions opts;
  opts.latticeCutLimit = 0;
  return opts;
}

}  // namespace

analyze::Algorithm Detector::route(analyze::AnalysisReport report) {
  report_ = std::move(report);
  const analyze::Algorithm chosen = report_.chosen().algorithm;
  lastAlgorithm_ = analyze::toString(chosen);
  return chosen;
}

std::optional<Cut> Detector::possibly(const ConjunctivePredicate& pred) {
  const analyze::Algorithm algo = route(analyze::planConjunctive(
      clocks_, *trace_, pred, analyze::Modality::Possibly));
  GPD_CHECK(algo == analyze::Algorithm::Cpdhb);
  const ConjunctiveResult res = detectConjunctive(clocks_, *trace_, pred);
  if (res.found) return res.cut;
  return std::nullopt;
}

std::optional<Cut> Detector::possibly(const CnfPredicate& pred) {
  const analyze::Algorithm algo = route(analyze::planCnf(
      clocks_, *trace_, pred, analyze::Modality::Possibly, routingOptions()));
  switch (algo) {
    case analyze::Algorithm::CpdscSpecialCase: {
      const CpdscResult special =
          detectSingularSpecialCase(clocks_, *trace_, pred);
      GPD_CHECK_MSG(special.applicable(),
                    "planner chose CPDSC but the scan found the groups "
                    "unordered");
      if (special.found()) return special.cut;
      return std::nullopt;
    }
    case analyze::Algorithm::SingularChainCover: {
      const SingularCnfResult res =
          detectSingularByChainCover(clocks_, *trace_, pred);
      if (res.found) return res.cut;
      return std::nullopt;
    }
    default:
      GPD_CHECK(algo == analyze::Algorithm::LatticeEnumeration);
      return lattice::findSatisfyingCut(clocks_, [&](const Cut& cut) {
        return pred.holdsAtCut(*trace_, cut);
      });
  }
}

std::optional<Cut> Detector::possibly(const SumPredicate& pred) {
  const analyze::Algorithm algo = route(
      analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Possibly));
  if (algo == analyze::Algorithm::LatticeEnumeration) {
    return detectExactSumExhaustive(clocks_, *trace_, pred);
  }
  GPD_CHECK(algo == analyze::Algorithm::Theorem7ExactSum ||
            algo == analyze::Algorithm::MinCutExtrema);
  return possiblySum(clocks_, *trace_, pred);
}

std::optional<Cut> Detector::possibly(const SymmetricPredicate& pred) {
  const analyze::Algorithm algo = route(analyze::planSymmetric(
      clocks_, *trace_, pred, analyze::Modality::Possibly));
  GPD_CHECK(algo == analyze::Algorithm::SymmetricExactSumDisjunction);
  return possiblySymmetric(clocks_, *trace_, pred);
}

std::optional<Cut> Detector::possibly(const BoolExpr& expr) {
  const analyze::Algorithm algo = route(analyze::planExpression(
      clocks_, *trace_, expr, analyze::Modality::Possibly));
  GPD_CHECK(algo == analyze::Algorithm::DnfDecomposition);
  return possiblyExpression(clocks_, *trace_, expr).cut;
}

bool Detector::definitely(const ConjunctivePredicate& pred) {
  const analyze::Algorithm algo = route(analyze::planConjunctive(
      clocks_, *trace_, pred, analyze::Modality::Definitely));
  GPD_CHECK(algo == analyze::Algorithm::IntervalDefinitely);
  return definitelyConjunctive(clocks_, *trace_, pred).holds;
}

bool Detector::definitely(const CnfPredicate& pred) {
  const analyze::Algorithm algo = route(analyze::planCnf(
      clocks_, *trace_, pred, analyze::Modality::Definitely, routingOptions()));
  GPD_CHECK(algo == analyze::Algorithm::LatticeDefinitely);
  return lattice::definitelyExhaustive(clocks_, [&](const Cut& cut) {
    return pred.holdsAtCut(*trace_, cut);
  });
}

bool Detector::definitely(const SumPredicate& pred) {
  const analyze::Algorithm algo = route(
      analyze::planSum(clocks_, *trace_, pred, analyze::Modality::Definitely));
  if (algo == analyze::Algorithm::LatticeDefinitely &&
      pred.relop == Relop::Equal) {
    // Σ = K with |ΔS| > 1: Theorem 7(2) does not apply; decide against the
    // lattice directly (definitelySum would reject the precondition).
    return lattice::definitelyExhaustive(clocks_, [&](const Cut& cut) {
      return pred.holdsAtCut(*trace_, cut);
    });
  }
  GPD_CHECK(algo == analyze::Algorithm::Theorem7Definitely ||
            algo == analyze::Algorithm::LatticeDefinitely);
  return definitelySum(clocks_, *trace_, pred);
}

bool Detector::definitely(const SymmetricPredicate& pred) {
  const analyze::Algorithm algo = route(analyze::planSymmetric(
      clocks_, *trace_, pred, analyze::Modality::Definitely));
  GPD_CHECK(algo == analyze::Algorithm::LatticeDefinitely);
  return definitelySymmetric(clocks_, *trace_, pred);
}

}  // namespace gpd::detect
