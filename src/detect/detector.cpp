#include "detect/detector.h"

#include "lattice/explore.h"

namespace gpd::detect {

std::optional<Cut> Detector::possibly(const ConjunctivePredicate& pred) {
  lastAlgorithm_ = "cpdhb";
  const ConjunctiveResult res = detectConjunctive(clocks_, *trace_, pred);
  if (res.found) return res.cut;
  return std::nullopt;
}

std::optional<Cut> Detector::possibly(const CnfPredicate& pred) {
  if (pred.isSingular()) {
    const CpdscResult special = detectSingularSpecialCase(clocks_, *trace_, pred);
    if (special.applicable()) {
      lastAlgorithm_ = "cpdsc-special-case";
      if (special.found()) return special.cut;
      return std::nullopt;
    }
    lastAlgorithm_ = "singular-chain-cover";
    const SingularCnfResult res =
        detectSingularByChainCover(clocks_, *trace_, pred);
    if (res.found) return res.cut;
    return std::nullopt;
  }
  lastAlgorithm_ = "lattice-enumeration";
  return lattice::findSatisfyingCut(clocks_, [&](const Cut& cut) {
    return pred.holdsAtCut(*trace_, cut);
  });
}

std::optional<Cut> Detector::possibly(const SumPredicate& pred) {
  if (pred.relop == Relop::Equal && pred.eventDeltaBound(*trace_) > 1) {
    lastAlgorithm_ = "lattice-enumeration";
    return detectExactSumExhaustive(clocks_, *trace_, pred);
  }
  lastAlgorithm_ =
      pred.relop == Relop::Equal ? "theorem-7-exact-sum" : "min-cut-extrema";
  return possiblySum(clocks_, *trace_, pred);
}

std::optional<Cut> Detector::possibly(const SymmetricPredicate& pred) {
  lastAlgorithm_ = "symmetric-exact-sum-disjunction";
  return possiblySymmetric(clocks_, *trace_, pred);
}

std::optional<Cut> Detector::possibly(const BoolExpr& expr) {
  lastAlgorithm_ = "dnf-decomposition";
  return possiblyExpression(clocks_, *trace_, expr).cut;
}

bool Detector::definitely(const ConjunctivePredicate& pred) {
  lastAlgorithm_ = "interval-definitely";
  return definitelyConjunctive(clocks_, *trace_, pred).holds;
}

bool Detector::definitely(const CnfPredicate& pred) {
  lastAlgorithm_ = "lattice-definitely";
  return lattice::definitelyExhaustive(clocks_, [&](const Cut& cut) {
    return pred.holdsAtCut(*trace_, cut);
  });
}

bool Detector::definitely(const SumPredicate& pred) {
  lastAlgorithm_ = pred.relop == Relop::Equal ? "theorem-7-definitely"
                                              : "lattice-definitely";
  return definitelySum(clocks_, *trace_, pred);
}

bool Detector::definitely(const SymmetricPredicate& pred) {
  lastAlgorithm_ = "lattice-definitely";
  return definitelySymmetric(clocks_, *trace_, pred);
}

}  // namespace gpd::detect
