// possibly(arbitrary boolean expression) via DNF decomposition — the
// Stoller–Schneider technique the paper cites as prior work for general
// predicates: one weak-conjunctive (CPDHB) detection per satisfiable DNF
// term. Exponential in the worst case (the expression's DNF may explode);
// practical exactly when the term count stays small. The budget is charged
// one combination per term, and the DNF expansion itself polls keepGoing()
// (toDnfBudgeted), so a deadline or cancel bounds both the distribution and
// the sweep; an early stop leaves complete=false — a found witness is still
// genuine, but "no term detected" degrades to unknown.
#pragma once

#include <cstdint>
#include <optional>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "control/budget.h"
#include "predicates/boolean_expr.h"

namespace gpd::detect {

struct DnfResult {
  std::optional<Cut> cut;        // witness, when some term is detected
  std::uint64_t termsTotal = 0;  // satisfiable DNF terms generated
  std::uint64_t termsTried = 0;  // CPDHB invocations before the hit
  bool complete = true;          // false: the budget stopped the term sweep
};

DnfResult possiblyExpression(const VectorClocks& clocks,
                             const VariableTrace& trace, const BoolExpr& expr,
                             control::Budget* budget = nullptr);

}  // namespace gpd::detect
