#include "detect/sat_encoding.h"

#include <algorithm>

#include "detect/singular_cnf.h"
#include "sat/dpll.h"
#include "util/check.h"

namespace gpd::detect {

SatEncodingResult detectSingularViaSat(const VectorClocks& clocks,
                                       const VariableTrace& trace,
                                       const CnfPredicate& pred) {
  GPD_CHECK_MSG(pred.isSingular(), "predicate is not singular");
  SatEncodingResult result;

  const auto groups = clauseTrueEvents(trace, pred);
  // Flatten candidates and remember their group.
  std::vector<EventId> candidate;
  std::vector<int> groupOf;
  for (std::size_t j = 0; j < groups.size(); ++j) {
    for (const EventId& e : groups[j]) {
      candidate.push_back(e);
      groupOf.push_back(static_cast<int>(j));
    }
    if (groups[j].empty()) return result;  // some clause can never hold
  }
  const int m = static_cast<int>(candidate.size());
  result.variables = m;

  sat::Cnf formula;
  formula.numVars = m;
  // At least one candidate per group.
  for (std::size_t j = 0; j < groups.size(); ++j) {
    sat::Clause clause;
    for (int v = 0; v < m; ++v) {
      if (groupOf[v] == static_cast<int>(j)) clause.push_back({v, true});
    }
    formula.addClause(std::move(clause));
  }
  // Mutual exclusion for every inconsistent pair (cross-group candidates on
  // one process are inconsistent unless equal, which pairConsistent covers).
  for (int a = 0; a < m; ++a) {
    for (int b = a + 1; b < m; ++b) {
      if (groupOf[a] == groupOf[b]) continue;  // one pick per group anyway
      if (!clocks.pairConsistent(candidate[a], candidate[b])) {
        formula.addClause({{a, false}, {b, false}});
      }
    }
  }
  result.clauses = formula.clauses.size();

  sat::DpllStats stats;
  const auto model = sat::solveDpll(formula, &stats);
  result.decisions = stats.decisions;
  if (!model) return result;

  // Decode: one chosen candidate per group (a model may set several of a
  // group's variables; any chosen set is pairwise consistent, so take the
  // first per group).
  std::vector<EventId> witness;
  std::vector<char> covered(groups.size(), 0);
  for (int v = 0; v < m; ++v) {
    if ((*model)[v] && !covered[groupOf[v]]) {
      covered[groupOf[v]] = 1;
      witness.push_back(candidate[v]);
    }
  }
  GPD_CHECK(witness.size() == groups.size());
  // Deduplicate events shared across groups before building the cut.
  std::vector<EventId> unique(witness);
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  result.cut = clocks.leastConsistentCutThrough(unique);
  GPD_CHECK(pred.holdsAtCut(trace, *result.cut));
  return result;
}

}  // namespace gpd::detect
