// High-level detection facade.
//
// Routing is delegated to the static-analysis planner (src/analyze): every
// call first builds an analyze::AnalysisReport — the ranked algorithm plan
// of the paper's complexity landscape (Fig. 1) — then runs the plan's
// chosen step:
//
//   conjunctive                → CPDHB                       (polynomial)
//   singular CNF,
//     receive-/send-ordered    → CPDSC meta-process scan     (polynomial)
//     general                  → chain-cover enumeration     (Π cⱼ · CPDHB)
//   non-singular CNF           → lattice enumeration         (exponential)
//   Σxᵢ relop K, relop ≠ "="   → min-cut extrema             (polynomial)
//   Σxᵢ = K, |ΔS| ≤ 1          → Theorem 7                   (polynomial)
//   Σxᵢ = K, arbitrary Δ       → lattice enumeration         (NP-complete)
//   symmetric                  → disjunction of exact sums   (polynomial)
//
// `lastAlgorithm()` reports which branch ran (the chosen step's name), and
// `lastReport()` exposes the full plan — the same artifact `gpdtool plan`
// prints — so examples and logs can show the dispatch decision.
//
// The budgeted overloads (control::Budget&) return a three-valued Detection
// and degrade gracefully instead of running an exponential step to
// completion: the plan walk skips steps whose planner-predicted CPDHB
// invocation count exceeds the budget's remaining combinations, refuses to
// fall through to an exhaustive lattice step the budget cannot stop, and —
// before conceding Unknown — reruns the cheapest skipped enumeration as a
// bounded Yes-prover (it scans selections until the budget trips; a witness
// it finds is a genuine Yes). A budgeted run that completes within its
// budget returns exactly the unbudgeted answer and lastAlgorithm() string.
#pragma once

#include <optional>
#include <string>

#include "analyze/plan.h"
#include "clocks/vector_clock.h"
#include "control/budget.h"
#include "detect/cpdhb.h"
#include "lattice/explore.h"
#include "par/pool.h"
#include "detect/cpdsc.h"
#include "detect/definitely_conjunctive.h"
#include "detect/dnf_detect.h"
#include "detect/outcome.h"
#include "detect/singular_cnf.h"
#include "detect/sum.h"
#include "detect/symmetric.h"
#include "predicates/cnf.h"
#include "predicates/local.h"
#include "predicates/relational.h"
#include "predicates/symmetric.h"

namespace gpd::detect {

class Detector {
 public:
  // The trace (and its computation) must outlive the detector.
  explicit Detector(const VariableTrace& trace)
      : trace_(&trace), clocks_(trace.computation()) {}

  const VectorClocks& clocks() const { return clocks_; }

  // Runs the super-polynomial kernels (the Sec. 3.3 enumerations and the
  // generic lattice searches) on `pool`'s workers; nullptr (the default)
  // keeps everything sequential. The pool must outlive the detector calls.
  // Verdicts and witnesses are bit-identical either way (see par/pool.h);
  // the polynomial special cases (CPDHB, CPDSC, Theorem 7, min-cut) never
  // use the pool — they are cheaper than a fan-out.
  void usePool(par::Pool* pool) { pool_ = pool; }
  par::Pool* pool() const { return pool_; }

  // Slice-first pre-pass (on by default): when the planner's ranked plan
  // carries a slice-first step — the CNF has single-process clauses forming
  // a regular skeleton — the detector slices the computation on that
  // skeleton first and restricts the downstream search to the slice's
  // sublattice. Verdicts and witnesses are bit-identical to the unsliced
  // search (the restricted BFS preserves the full BFS's visit order over
  // the admitted region, which contains every satisfying cut); turning it
  // off forces the historical unsliced paths, e.g. for A/B benching.
  void enableSlicing(bool on) { slicing_ = on; }
  bool slicingEnabled() const { return slicing_; }

  // possibly(φ): witness cut or nullopt.
  std::optional<Cut> possibly(const ConjunctivePredicate& pred);
  std::optional<Cut> possibly(const CnfPredicate& pred);
  std::optional<Cut> possibly(const SumPredicate& pred);
  std::optional<Cut> possibly(const SymmetricPredicate& pred);
  std::optional<Cut> possibly(const BoolExpr& expr);

  // definitely(φ).
  bool definitely(const ConjunctivePredicate& pred);
  bool definitely(const CnfPredicate& pred);
  bool definitely(const SumPredicate& pred);
  bool definitely(const SymmetricPredicate& pred);

  // Budgeted, three-valued variants. The budget is shared across the whole
  // call (plan walk + fallbacks); pass a fresh Budget per query unless
  // amortizing one deadline over several.
  Detection possibly(const ConjunctivePredicate& pred, control::Budget& budget);
  Detection possibly(const CnfPredicate& pred, control::Budget& budget);
  Detection possibly(const SumPredicate& pred, control::Budget& budget);
  Detection possibly(const SymmetricPredicate& pred, control::Budget& budget);
  Detection possibly(const BoolExpr& expr, control::Budget& budget);
  Detection definitely(const ConjunctivePredicate& pred,
                       control::Budget& budget);
  Detection definitely(const CnfPredicate& pred, control::Budget& budget);
  Detection definitely(const SumPredicate& pred, control::Budget& budget);
  Detection definitely(const SymmetricPredicate& pred, control::Budget& budget);

  // Name of the algorithm selected by the most recent call.
  const std::string& lastAlgorithm() const { return lastAlgorithm_; }

  // Full analysis report behind the most recent routing decision.
  const analyze::AnalysisReport& lastReport() const { return report_; }

  // Slice pre-pass accounting for the most recent call; nullopt when the
  // plan carried no slice-first step (or slicing is disabled).
  const std::optional<SliceTrace>& lastSlice() const { return lastSlice_; }

 private:
  // Adopts `report` as the last routing decision and returns the chosen
  // algorithm.
  analyze::Algorithm route(analyze::AnalysisReport report);

  // Stores `report` (stamped with the pool's thread count) as the last
  // routing decision, for the budgeted entry points that walk the whole
  // plan rather than dispatching on chosen().
  const analyze::AnalysisReport& adopt(analyze::AnalysisReport report);

  // Generic lattice searches, routed through the pool when one is set.
  lattice::CutSearchResult searchLattice(const lattice::CutPredicate& phi,
                                         control::Budget* budget);
  lattice::DefinitelyDecision decideLattice(const lattice::CutPredicate& phi,
                                            control::Budget* budget);

  const VariableTrace* trace_;
  VectorClocks clocks_;
  par::Pool* pool_ = nullptr;
  bool slicing_ = true;
  std::string lastAlgorithm_;
  analyze::AnalysisReport report_;
  std::optional<SliceTrace> lastSlice_;
};

}  // namespace gpd::detect
