#include "detect/slice.h"

#include <unordered_set>

#include "util/check.h"

namespace gpd::detect {
namespace {

// Distinct least-cuts of the slice — the join-irreducible generators of the
// sublattice.
std::vector<Cut> irreduciblesOf(const Slice& slice) {
  std::vector<Cut> irreducibles;
  std::unordered_set<Cut> seen;
  for (const auto& j : slice.leastCut) {
    if (j && seen.insert(*j).second) irreducibles.push_back(*j);
  }
  return irreducibles;
}

// Regularity spot-check: a regular predicate's satisfying cuts are
// join-closed, so every pairwise join of least-cuts must itself satisfy the
// oracle. A merely-linear oracle fails this on some pair (it is exactly the
// 2-generator counterexample shape) and we refuse with a typed error rather
// than hand back a slice whose membership theorem silently lies.
void verifyJoinClosure(Slice& slice, const ForbiddenFn& oracle,
                       control::Budget* budget) {
  const std::vector<Cut> irreducibles = irreduciblesOf(slice);
  for (std::size_t a = 0; a < irreducibles.size(); ++a) {
    for (std::size_t b = a + 1; b < irreducibles.size(); ++b) {
      if (budget != nullptr && !budget->chargeCut()) {
        slice.complete = false;
        return;
      }
      ++slice.oracleCalls;
      const Cut joined = join(irreducibles[a], irreducibles[b]);
      if (oracle(joined).has_value()) {
        throw InputError(
            "computeSlice: oracle is linear but not regular — the join " +
            joined.toString() +
            " of two least satisfying cuts violates the predicate; slicing "
            "requires a regular predicate (route through the planner's "
            "regularity gate)");
      }
    }
  }
}

}  // namespace

Slice computeSlice(const VectorClocks& clocks, const ForbiddenFn& oracle,
                   const SliceOptions& options) {
  const Computation& comp = clocks.computation();
  Slice slice;
  slice.leastCut.assign(comp.totalEvents(), std::nullopt);

  for (int node = 0; node < comp.totalEvents(); ++node) {
    const EventId e = comp.event(node);
    // Least consistent cut containing e: its causal history.
    Cut start(std::vector<int>(comp.processCount(), 0));
    for (ProcessId q = 0; q < comp.processCount(); ++q) {
      start.last[q] = clocks.clock(e, q);
    }
    start.last[e.process] = std::max(start.last[e.process], e.index);
    LinearResult res =
        detectLinearFrom(clocks, oracle, std::move(start), options.budget);
    slice.oracleCalls += res.oracleCalls;
    if (!res.complete) {
      slice.complete = false;
      return slice;
    }
    slice.leastCut[node] = std::move(res.cut);
  }

  // Initial events are in every cut, so satisfiability and the global least
  // cut coincide with any initial event's J.
  const auto& j0 = slice.leastCut[comp.node({0, 0})];
  slice.satisfiable = j0.has_value();
  if (slice.satisfiable) {
    slice.bottom = *j0;
    slice.top = *j0;
    for (const auto& j : slice.leastCut) {
      if (j) slice.top = join(slice.top, *j);
    }
  }
  if (options.verifyRegular && slice.satisfiable) {
    verifyJoinClosure(slice, oracle, options.budget);
  }
  return slice;
}

bool sliceSatisfies(const Slice& slice, const VectorClocks& clocks,
                    const Cut& cut) {
  GPD_CHECK(slice.complete);
  if (!slice.satisfiable) return false;
  const Computation& comp = clocks.computation();
  GPD_DCHECK(clocks.isConsistent(cut));
  // C satisfies B ⟺ C equals the join of its boundary events' least cuts
  // (J is monotone along ≤, so boundary events dominate interior ones).
  Cut acc = slice.bottom;
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    const auto& j = slice.leastCut[comp.node({p, cut.last[p]})];
    if (!j) return false;  // an excluded event lies in the cut
    acc = join(acc, *j);
  }
  return acc == cut;
}

SliceCount countSatisfyingCuts(const Slice& slice, const VectorClocks& clocks,
                               control::Budget* budget) {
  GPD_CHECK(slice.complete);
  SliceCount result;
  if (!slice.satisfiable) return result;
  const Computation& comp = clocks.computation();
  const std::vector<Cut> irreducibles = irreduciblesOf(slice);

  // Fast path: when every irreducible advances at most one process past
  // bottom, the sublattice is the product of per-process chains and the
  // count is an exact saturating product — this is also the only path where
  // 2^64 is actually reachable (e.g. 64 independent processes).
  bool independent = true;
  for (const Cut& j : irreducibles) {
    int advanced = 0;
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      advanced += j.last[p] > slice.bottom.last[p];
    }
    if (advanced > 1) {
      independent = false;
      break;
    }
  }
  if (independent) {
    result.count = 1;
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      std::unordered_set<int> levels{slice.bottom.last[p]};
      for (const Cut& j : irreducibles) levels.insert(j.last[p]);
      const std::uint64_t factor = levels.size();
      if (result.count > UINT64_MAX / factor) {
        result.count = UINT64_MAX;
        result.saturated = true;
        return result;
      }
      result.count *= factor;
    }
    return result;
  }

  // General case: close {bottom} under single-J joins. Output-bounded: no
  // oracle calls, one budget charge per reached sublattice cut.
  std::unordered_set<Cut> reached{slice.bottom};
  std::vector<Cut> frontier{slice.bottom};
  while (!frontier.empty()) {
    if (budget != nullptr && !budget->chargeCut()) {
      result.complete = false;
      break;
    }
    const Cut cut = std::move(frontier.back());
    frontier.pop_back();
    for (const Cut& j : irreducibles) {
      Cut next = join(cut, j);
      if (reached.insert(next).second) frontier.push_back(std::move(next));
    }
  }
  result.count = reached.size();
  return result;
}

}  // namespace gpd::detect
