#include "detect/slice.h"

#include <unordered_set>

#include "util/check.h"

namespace gpd::detect {

Slice computeSlice(const VectorClocks& clocks, const ForbiddenFn& oracle) {
  const Computation& comp = clocks.computation();
  Slice slice;
  slice.leastCut.assign(comp.totalEvents(), std::nullopt);

  for (int node = 0; node < comp.totalEvents(); ++node) {
    const EventId e = comp.event(node);
    // Least consistent cut containing e: its causal history.
    Cut start(std::vector<int>(comp.processCount(), 0));
    for (ProcessId q = 0; q < comp.processCount(); ++q) {
      start.last[q] = clocks.clock(e, q);
    }
    start.last[e.process] = std::max(start.last[e.process], e.index);
    LinearResult res = detectLinearFrom(clocks, oracle, std::move(start));
    slice.leastCut[node] = std::move(res.cut);
  }

  // Initial events are in every cut, so satisfiability and the global least
  // cut coincide with any initial event's J.
  const auto& j0 = slice.leastCut[comp.node({0, 0})];
  slice.satisfiable = j0.has_value();
  if (slice.satisfiable) {
    slice.bottom = *j0;
    slice.top = *j0;
    for (const auto& j : slice.leastCut) {
      if (j) slice.top = join(slice.top, *j);
    }
  }
  return slice;
}

bool sliceSatisfies(const Slice& slice, const VectorClocks& clocks,
                    const Cut& cut) {
  if (!slice.satisfiable) return false;
  const Computation& comp = clocks.computation();
  GPD_DCHECK(clocks.isConsistent(cut));
  // C satisfies B ⟺ C equals the join of its boundary events' least cuts
  // (J is monotone along ≤, so boundary events dominate interior ones).
  Cut acc = slice.bottom;
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    const auto& j = slice.leastCut[comp.node({p, cut.last[p]})];
    if (!j) return false;  // an excluded event lies in the cut
    acc = join(acc, *j);
  }
  return acc == cut;
}

std::uint64_t countSatisfyingCuts(const Slice& slice,
                                  const VectorClocks& clocks) {
  if (!slice.satisfiable) return 0;
  // Every satisfying cut is a join of least-cuts; close {bottom} under
  // single-J joins. Output-bounded: no oracle calls, |result| states.
  std::vector<Cut> irreducibles;
  {
    std::unordered_set<Cut> seen;
    for (const auto& j : slice.leastCut) {
      if (j && seen.insert(*j).second) irreducibles.push_back(*j);
    }
  }
  std::unordered_set<Cut> reached{slice.bottom};
  std::vector<Cut> frontier{slice.bottom};
  while (!frontier.empty()) {
    const Cut cut = std::move(frontier.back());
    frontier.pop_back();
    for (const Cut& j : irreducibles) {
      Cut next = join(cut, j);
      if (reached.insert(next).second) frontier.push_back(std::move(next));
    }
  }
  (void)clocks;
  return reached.size();
}

}  // namespace gpd::detect
