// Stable predicates (Chandy–Lamport; the paper's references [1,2,14]).
//
// A predicate is stable on a computation iff once true it stays true:
// φ(C) ∧ C ⊆ D ⟹ φ(D) over consistent cuts. For a stable predicate both
// modalities collapse onto the final cut: possibly(φ) ⟺ definitely(φ) ⟺
// φ(⊤), because the final cut extends every cut and lies on every run.
// This module provides that O(1)-cuts detector plus an exhaustive stability
// checker used to validate that a predicate actually is stable on a trace
// (and in tests, that classic predicates — termination, deadlock,
// token-loss — are, while e.g. "in critical section" is not).
#pragma once

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "lattice/explore.h"

namespace gpd::detect {

struct StableResult {
  bool possibly = false;
  bool definitely = false;  // always equals possibly for stable predicates
};

// Evaluates φ at the final cut. Precondition (unchecked — use isStableOn in
// tests): φ is stable on this computation.
StableResult detectStable(const Computation& comp,
                          const lattice::CutPredicate& phi);

// Exhaustive check that φ is stable on this computation: every consistent
// single-event extension preserves truth. (Single steps suffice: any
// C ⊆ D is a chain of such extensions.) Exponential; validation only.
bool isStableOn(const VectorClocks& clocks, const lattice::CutPredicate& phi);

}  // namespace gpd::detect
