// Polynomial-time singular k-CNF detection for receive-ordered and
// send-ordered computations (paper Sec. 3.2, after Tarafdar–Garg's CPDSC).
//
// Observation 1 turns each clause-group into a *meta-process* whose events
// are partially ordered. When all receive events on every meta-process are
// totally ordered (a receive-ordered computation), the partial order can be
// extended — an arrow from every event to each *independent* receive on its
// meta-process — and linearized into σ. Property P then holds: whenever
// succ(e) ≤ f for events on different meta-processes, e is inconsistent
// with every event of f's meta-process at or after f in σ (the causal path
// from succ(e) enters f's group at a receive r ≤ f, and a receive precedes
// every σ-later event of its group). That makes the CPDHB-style elimination
// scan sound with per-group queues sorted by σ, giving an O((Σ|E|)²) scan.
//
// The send-ordered case is the exact dual: reverse the computation (sends
// become receives, cuts map to complements — computation/reverse.h) and run
// the receive-ordered scan on the image true events.
#pragma once

#include <optional>
#include <vector>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "computation/event.h"
#include "predicates/cnf.h"

namespace gpd::detect {

// Meta-process structure: a partition of (a subset of) the processes.
using Groups = std::vector<std::vector<ProcessId>>;

Groups groupsOfSingularCnf(const CnfPredicate& pred);

// All receive (resp. send) events within each group are pairwise ordered.
bool isReceiveOrdered(const VectorClocks& clocks, const Groups& groups);
bool isSendOrdered(const VectorClocks& clocks, const Groups& groups);

struct CpdscResult {
  enum class Status { Found, NotFound, NotApplicable };
  Status status = Status::NotApplicable;
  std::vector<EventId> witness;
  std::optional<Cut> cut;

  bool found() const { return status == Status::Found; }
  bool applicable() const { return status != Status::NotApplicable; }
};

// Core scan for a receive-ordered computation: finds a pairwise-consistent
// selection with one event from trueEvents[j] (events on group j) per group.
// Returns NotApplicable if the computation is not receive-ordered w.r.t.
// the groups.
CpdscResult scanReceiveOrdered(const VectorClocks& clocks, const Groups& groups,
                               const std::vector<std::vector<EventId>>& trueEvents);

// Dual scan via computation reversal; NotApplicable unless send-ordered.
CpdscResult scanSendOrdered(const VectorClocks& clocks, const Groups& groups,
                            const std::vector<std::vector<EventId>>& trueEvents);

// Sec. 3.2 end-to-end: builds the groups and true events of a singular CNF
// predicate and applies whichever scan is applicable (receive-ordered is
// preferred when both are).
CpdscResult detectSingularSpecialCase(const VectorClocks& clocks,
                                      const VariableTrace& trace,
                                      const CnfPredicate& pred);

}  // namespace gpd::detect
