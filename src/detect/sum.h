// Detection of relational sum predicates Σᵢ xᵢ relop K (paper Sec. 4).
//
// Inequality relops reduce to the extremum of S = Σᵢ xᵢ over all consistent
// cuts. Consistent cuts are exactly the down-closed sets (ideals) of the
// non-initial event poset, and S(C) = S(⊥) + Σ_{e ∈ C} Δ(e) where Δ(e) is
// the change event e applies — so the extremum is a maximum-weight closure
// problem over the event DAG, polynomial via min-cut (src/flow).
//
// Equality (the paper's contribution):
//  * |Δ| ≤ 1 per event: Theorem 4 (intermediate value along lattice paths)
//    gives possibly(S = K) ⟺ (S(⊥) ≤ K ∧ max S ≥ K) ∨ (S(⊥) ≥ K ∧ min S ≤ K)
//    (Theorem 7(1)); the witness is found by walking a path toward the
//    extremal cut until the running sum first hits K.
//  * arbitrary Δ: NP-complete (Theorem 2); detectExactSumExhaustive is the
//    lattice fallback, and src/reduction demonstrates the hardness via
//    subset sum.
//
// definitely(S relop K) is decided exactly against the lattice
// (definitelyExhaustive); Theorem 7(2) reduces definitely(S = K) with
// bounded Δ to the two inequality modalities, which definitelySumEquals
// implements.
#pragma once

#include <cstdint>
#include <optional>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "control/budget.h"
#include "lattice/explore.h"
#include "predicates/relational.h"

namespace gpd::detect {

struct SumExtrema {
  std::int64_t minSum = 0;
  std::int64_t maxSum = 0;
  Cut argMin;
  Cut argMax;
};

// Extremum of S over all consistent cuts, via two max-weight-closure solves.
SumExtrema sumExtrema(const VectorClocks& clocks, const VariableTrace& trace,
                      const std::vector<SumTerm>& terms);

// possibly(Σ xᵢ relop K): returns a witness cut, or nullopt. For
// Relop::Equal the Theorem 4 precondition |Δ| ≤ 1 is enforced (GPD_CHECK);
// all other relops work for arbitrary Δ.
std::optional<Cut> possiblySum(const VectorClocks& clocks,
                               const VariableTrace& trace,
                               const SumPredicate& pred);

// Exhaustive possibly for Relop::Equal with arbitrary Δ (Theorem 2 says
// nothing better exists in general): lattice search.
std::optional<Cut> detectExactSumExhaustive(const VectorClocks& clocks,
                                            const VariableTrace& trace,
                                            const SumPredicate& pred);

// Budgeted lattice search for Relop::Equal with arbitrary Δ. A cut is always
// a genuine witness; complete=false means the lattice was not exhausted, so
// an absent cut is "unknown" rather than "no".
struct ExactSumSearch {
  std::optional<Cut> cut;
  bool complete = true;
  lattice::ExploreResult explore;
};
ExactSumSearch detectExactSumBudgeted(const VectorClocks& clocks,
                                      const VariableTrace& trace,
                                      const SumPredicate& pred,
                                      control::Budget* budget);

// definitely(Σ xᵢ relop K), exact (lattice-based for the inequality
// modalities; Relop::Equal uses the Theorem 7(2) reduction and requires
// |Δ| ≤ 1).
bool definitelySum(const VectorClocks& clocks, const VariableTrace& trace,
                   const SumPredicate& pred);

// Budgeted definitely. decided=false means the budget stopped the lattice
// analysis before either answer was provable; for Relop::Equal the
// Theorem 7(2) disjunction stays sound — a branch proved true decides the
// whole predicate even when the sibling branch was cut short.
struct SumDecision {
  bool decided = true;
  bool holds = false;
};
SumDecision definitelySumBudgeted(const VectorClocks& clocks,
                                  const VariableTrace& trace,
                                  const SumPredicate& pred,
                                  control::Budget* budget);

}  // namespace gpd::detect
