#include "detect/singular_cnf.h"

#include <algorithm>
#include <atomic>

#include "graph/chains.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace gpd::detect {

namespace {

// Runs the CPDHB scan over every selection of one chain per group, stopping
// at the first hit or when the budget trips. `options[j]` lists group j's
// candidate chains.
// Annotates the enumeration span and publishes per-run totals once the
// odometer stops, on every exit path (hit, exhausted, budget trip).
// Templated so it accepts the NullSpan stand-in under GPD_OBS_DISABLED.
template <typename SpanT>
void recordEnumeration(SpanT& span, const SingularCnfResult& result) {
  (void)result;
  span.attrInt("tried", static_cast<std::int64_t>(result.combinationsTried));
  span.attrInt("total", static_cast<std::int64_t>(result.combinationsTotal));
  span.attrStr("outcome", result.found      ? "found"
                          : result.complete ? "exhausted"
                                            : "budget-stopped");
  GPD_OBS_COUNTER_ADD("cpdhb_combinations", result.combinationsTried);
  GPD_OBS_HISTOGRAM("enumeration_combinations", result.combinationsTried);
}

// Parallel form of the odometer scan. Combinations are numbered by their
// linear odometer index (group 0 is the fastest digit, exactly the order
// the sequential scan walks), workers claim contiguous chunks of indices
// in increasing order, and a satisfying combination short-circuits the
// scan via the shared `bestIndex` watermark. Determinism contract:
//  - the reported witness is the LOWEST satisfying index, not the first
//    finisher's — every index below the eventual best is scanned (a chunk
//    is only abandoned for indices above the watermark, and the watermark
//    only ever holds genuine Yes indices);
//  - a combination budget caps the scanned prefix to
//    limit = min(total, remainingCombinations): exactly the indices the
//    sequential odometer would have charged before the CombinationLimit
//    latch. When limit < total and no witness was found, one extra charge
//    latches the same StopReason the sequential scan would have.
// Count-based budgets therefore reproduce sequential verdicts bit-for-bit;
// deadline/cancel budgets remain timing-dependent, as they already are
// sequentially.
template <typename SpanT>
void enumerateSelectionsParallel(
    SpanT& span, const VectorClocks& clocks,
    const std::vector<std::vector<Chain>>& options, control::Budget* budget,
    par::Pool& pool, SingularCnfResult& result) {
  const int m = static_cast<int>(options.size());
  const int workers = pool.threads();
  span.attrInt("threads", workers);
  const std::uint64_t limit = std::min(
      result.combinationsTotal,
      budget != nullptr ? budget->remainingCombinations() : UINT64_MAX);
  const std::uint64_t chunk = std::clamp<std::uint64_t>(
      limit / (static_cast<std::uint64_t>(workers) * 32), 1, 256);

  std::atomic<std::uint64_t> nextStart{0};
  std::atomic<std::uint64_t> bestIndex{UINT64_MAX};
  std::atomic<bool> stopped{false};
  struct WorkerOut {
    std::uint64_t tried = 0;
    std::uint64_t comparisons = 0;
    std::uint64_t foundIndex = UINT64_MAX;
    std::optional<Cut> cut;
    std::vector<EventId> witness;
  };
  std::vector<WorkerOut> outs(static_cast<std::size_t>(workers));

  pool.run([&](int w) {
    GPD_TRACE_SPAN_NAMED(wspan, "par.enumeration_worker");
    wspan.attrInt("worker", w);
    WorkerOut& out = outs[static_cast<std::size_t>(w)];
    std::vector<std::size_t> pick(m, 0);
    std::vector<Chain> chains(m);
    while (true) {
      const std::uint64_t start =
          nextStart.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= limit) break;
      // Chunks are claimed in increasing order, so once the watermark is
      // below this chunk no later chunk can matter either.
      if (start > bestIndex.load(std::memory_order_relaxed)) break;
      if (stopped.load(std::memory_order_relaxed)) break;
      const std::uint64_t end = std::min(limit, start + chunk);
      // Decode the odometer digits at `start`, then step incrementally.
      std::uint64_t rem = start;
      for (int j = 0; j < m; ++j) {
        pick[static_cast<std::size_t>(j)] = rem % options[j].size();
        rem /= options[j].size();
      }
      bool abandon = false;
      for (std::uint64_t i = start; i < end; ++i) {
        if (i > bestIndex.load(std::memory_order_relaxed) ||
            stopped.load(std::memory_order_relaxed)) {
          abandon = true;
          break;
        }
        if (budget != nullptr && !budget->chargeCombination()) {
          stopped.store(true, std::memory_order_relaxed);
          abandon = true;
          break;
        }
        for (int j = 0; j < m; ++j) chains[j] = options[j][pick[j]];
        ++out.tried;
        ConjunctiveResult sub = findConsistentSelection(clocks, chains);
        out.comparisons += sub.comparisons;
        if (sub.found) {
          std::uint64_t cur = bestIndex.load(std::memory_order_relaxed);
          while (i < cur && !bestIndex.compare_exchange_weak(
                                cur, i, std::memory_order_relaxed)) {
          }
          // This worker scans ascending, so its first hit is its lowest;
          // everything above is moot for it.
          out.foundIndex = i;
          out.cut = sub.cut;
          out.witness = std::move(sub.witness);
          abandon = true;
          break;
        }
        // Advance the odometer one step.
        int j = 0;
        while (j < m && ++pick[j] >= options[j].size()) {
          pick[j] = 0;
          ++j;
        }
      }
      if (abandon) break;
    }
    wspan.attrInt("tried", static_cast<std::int64_t>(out.tried));
  });

  for (const WorkerOut& out : outs) {
    result.combinationsTried += out.tried;
    result.comparisons += out.comparisons;
  }
  const std::uint64_t best = bestIndex.load(std::memory_order_relaxed);
  if (best != UINT64_MAX) {
    for (WorkerOut& out : outs) {
      if (out.foundIndex == best) {
        result.found = true;
        result.cut = out.cut;
        result.witness = std::move(out.witness);
        break;
      }
    }
  } else if (stopped.load(std::memory_order_relaxed)) {
    result.complete = false;  // a mid-scan charge failed (deadline/cancel)
  } else if (limit < result.combinationsTotal) {
    // The whole budgeted prefix was scanned without a hit; charge once more
    // so the budget latches CombinationLimit exactly like the sequential
    // scan's next charge would have.
    if (budget != nullptr) budget->chargeCombination();
    result.complete = false;
  }
  recordEnumeration(span, result);
}

SingularCnfResult enumerateSelections(const VectorClocks& clocks,
                                      const std::vector<std::vector<Chain>>& options,
                                      control::Budget* budget, par::Pool* pool) {
  GPD_TRACE_SPAN_NAMED(span, "detect.singular_enumeration");
  SingularCnfResult result;
  // The space size is Π |options[j]|, which overflows uint64 already at
  // 64 two-chain groups; saturate instead of wrapping (a wrap to zero would
  // read as "some clause never true" and fabricate an exact No).
  result.combinationsTotal = 1;
  for (const auto& opts : options) {
    if (opts.empty()) {
      result.combinationsTotal = 0;
      recordEnumeration(span, result);
      return result;  // some clause never true: exact No
    }
    if (result.combinationsTotal > UINT64_MAX / opts.size()) {
      result.combinationsTotal = UINT64_MAX;
    } else {
      result.combinationsTotal *= opts.size();
    }
  }

  // A saturated total breaks linear-index chunking (indices past UINT64_MAX
  // are unaddressable), so such spaces stay on the sequential odometer —
  // they are budget-stopped long before the distinction could matter.
  if (pool != nullptr && result.combinationsTotal != UINT64_MAX) {
    enumerateSelectionsParallel(span, clocks, options, budget, *pool, result);
    return result;
  }

  const int m = static_cast<int>(options.size());
  std::vector<std::size_t> pick(m, 0);
  std::vector<Chain> chains(m);
  while (true) {
    if (budget != nullptr && !budget->chargeCombination()) {
      result.complete = false;  // untried selections remain
      recordEnumeration(span, result);
      return result;
    }
    for (int j = 0; j < m; ++j) chains[j] = options[j][pick[j]];
    ++result.combinationsTried;
    ConjunctiveResult sub = findConsistentSelection(clocks, chains);
    result.comparisons += sub.comparisons;
    if (sub.found) {
      result.found = true;
      result.cut = sub.cut;
      result.witness = std::move(sub.witness);
      recordEnumeration(span, result);
      return result;
    }
    // Advance the odometer.
    int j = 0;
    while (j < m && ++pick[j] >= options[j].size()) {
      pick[j] = 0;
      ++j;
    }
    if (j == m) {
      recordEnumeration(span, result);
      return result;
    }
  }
}

}  // namespace

std::vector<std::vector<EventId>> clauseTrueEvents(
    const VariableTrace& trace, const CnfPredicate& pred,
    const std::vector<char>* admittedNode) {
  const Computation& comp = trace.computation();
  std::vector<std::vector<EventId>> out(pred.clauses.size());
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    for (ProcessId p : pred.clauseProcesses(static_cast<int>(j))) {
      for (int i = 0; i < comp.eventCount(p); ++i) {
        if (admittedNode != nullptr && !(*admittedNode)[comp.node({p, i})]) {
          continue;  // sliced out: no satisfying cut passes through it
        }
        for (const BoolLiteral& l : pred.clauses[j]) {
          if (l.process == p && l.holds(trace, i)) {
            out[j].push_back({p, i});
            break;
          }
        }
      }
    }
  }
  return out;
}

SingularCnfResult detectSingularByProcessEnumeration(
    const VectorClocks& clocks, const VariableTrace& trace,
    const CnfPredicate& pred, control::Budget* budget, par::Pool* pool,
    const std::vector<char>* admittedNode) {
  GPD_CHECK_MSG(pred.isSingular(), "predicate is not singular");
  GPD_TRACE_SPAN_NAMED(span, "detect.process_enumeration");
  span.attrInt("clauses", static_cast<std::int64_t>(pred.clauses.size()));
  const auto trueEvents = clauseTrueEvents(trace, pred, admittedNode);
  // Group j's options: one chain per hosting process (per-process true
  // events are totally ordered by the process order).
  std::vector<std::vector<Chain>> options(pred.clauses.size());
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    for (ProcessId p : pred.clauseProcesses(static_cast<int>(j))) {
      Chain chain;
      for (const EventId& e : trueEvents[j]) {
        if (e.process == p) chain.events.push_back(e);
      }
      if (!chain.events.empty()) options[j].push_back(std::move(chain));
    }
  }
  return enumerateSelections(clocks, options, budget, pool);
}

std::vector<std::vector<Chain>> clauseChainCovers(
    const VectorClocks& clocks, const VariableTrace& trace,
    const CnfPredicate& pred, const std::vector<char>* admittedNode) {
  GPD_TRACE_SPAN("detect.chain_cover");
  const auto trueEvents = clauseTrueEvents(trace, pred, admittedNode);
  std::vector<std::vector<Chain>> covers(pred.clauses.size());
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    const auto& events = trueEvents[j];
    const auto chains = graph::minimumChainCover(
        static_cast<int>(events.size()), [&](int a, int b) {
          return !(events[a] == events[b]) && clocks.leq(events[a], events[b]);
        });
    for (const auto& chain : chains) {
      Chain c;
      for (int idx : chain) c.events.push_back(events[idx]);
      covers[j].push_back(std::move(c));
    }
  }
  return covers;
}

SingularCnfResult detectSingularByChainCover(
    const VectorClocks& clocks, const VariableTrace& trace,
    const CnfPredicate& pred, control::Budget* budget, par::Pool* pool,
    const std::vector<char>* admittedNode) {
  GPD_CHECK_MSG(pred.isSingular(), "predicate is not singular");
  GPD_TRACE_SPAN_NAMED(span, "detect.chain_cover_enumeration");
  span.attrInt("clauses", static_cast<std::int64_t>(pred.clauses.size()));
  return enumerateSelections(
      clocks, clauseChainCovers(clocks, trace, pred, admittedNode), budget,
      pool);
}

}  // namespace gpd::detect
