#include "detect/singular_cnf.h"

#include <algorithm>

#include "graph/chains.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace gpd::detect {

namespace {

// Runs the CPDHB scan over every selection of one chain per group, stopping
// at the first hit or when the budget trips. `options[j]` lists group j's
// candidate chains.
// Annotates the enumeration span and publishes per-run totals once the
// odometer stops, on every exit path (hit, exhausted, budget trip).
// Templated so it accepts the NullSpan stand-in under GPD_OBS_DISABLED.
template <typename SpanT>
void recordEnumeration(SpanT& span, const SingularCnfResult& result) {
  (void)result;
  span.attrInt("tried", static_cast<std::int64_t>(result.combinationsTried));
  span.attrInt("total", static_cast<std::int64_t>(result.combinationsTotal));
  span.attrStr("outcome", result.found      ? "found"
                          : result.complete ? "exhausted"
                                            : "budget-stopped");
  GPD_OBS_COUNTER_ADD("cpdhb_combinations", result.combinationsTried);
  GPD_OBS_HISTOGRAM("enumeration_combinations", result.combinationsTried);
}

SingularCnfResult enumerateSelections(
    const VectorClocks& clocks,
    const std::vector<std::vector<Chain>>& options, control::Budget* budget) {
  GPD_TRACE_SPAN_NAMED(span, "detect.singular_enumeration");
  SingularCnfResult result;
  // The space size is Π |options[j]|, which overflows uint64 already at
  // 64 two-chain groups; saturate instead of wrapping (a wrap to zero would
  // read as "some clause never true" and fabricate an exact No).
  result.combinationsTotal = 1;
  for (const auto& opts : options) {
    if (opts.empty()) {
      result.combinationsTotal = 0;
      recordEnumeration(span, result);
      return result;  // some clause never true: exact No
    }
    if (result.combinationsTotal > UINT64_MAX / opts.size()) {
      result.combinationsTotal = UINT64_MAX;
    } else {
      result.combinationsTotal *= opts.size();
    }
  }

  const int m = static_cast<int>(options.size());
  std::vector<std::size_t> pick(m, 0);
  std::vector<Chain> chains(m);
  while (true) {
    if (budget != nullptr && !budget->chargeCombination()) {
      result.complete = false;  // untried selections remain
      recordEnumeration(span, result);
      return result;
    }
    for (int j = 0; j < m; ++j) chains[j] = options[j][pick[j]];
    ++result.combinationsTried;
    ConjunctiveResult sub = findConsistentSelection(clocks, chains);
    result.comparisons += sub.comparisons;
    if (sub.found) {
      result.found = true;
      result.cut = sub.cut;
      result.witness = std::move(sub.witness);
      recordEnumeration(span, result);
      return result;
    }
    // Advance the odometer.
    int j = 0;
    while (j < m && ++pick[j] >= options[j].size()) {
      pick[j] = 0;
      ++j;
    }
    if (j == m) {
      recordEnumeration(span, result);
      return result;
    }
  }
}

}  // namespace

std::vector<std::vector<EventId>> clauseTrueEvents(const VariableTrace& trace,
                                                   const CnfPredicate& pred) {
  const Computation& comp = trace.computation();
  std::vector<std::vector<EventId>> out(pred.clauses.size());
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    for (ProcessId p : pred.clauseProcesses(static_cast<int>(j))) {
      for (int i = 0; i < comp.eventCount(p); ++i) {
        for (const BoolLiteral& l : pred.clauses[j]) {
          if (l.process == p && l.holds(trace, i)) {
            out[j].push_back({p, i});
            break;
          }
        }
      }
    }
  }
  return out;
}

SingularCnfResult detectSingularByProcessEnumeration(
    const VectorClocks& clocks, const VariableTrace& trace,
    const CnfPredicate& pred, control::Budget* budget) {
  GPD_CHECK_MSG(pred.isSingular(), "predicate is not singular");
  GPD_TRACE_SPAN_NAMED(span, "detect.process_enumeration");
  span.attrInt("clauses", static_cast<std::int64_t>(pred.clauses.size()));
  const auto trueEvents = clauseTrueEvents(trace, pred);
  // Group j's options: one chain per hosting process (per-process true
  // events are totally ordered by the process order).
  std::vector<std::vector<Chain>> options(pred.clauses.size());
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    for (ProcessId p : pred.clauseProcesses(static_cast<int>(j))) {
      Chain chain;
      for (const EventId& e : trueEvents[j]) {
        if (e.process == p) chain.events.push_back(e);
      }
      if (!chain.events.empty()) options[j].push_back(std::move(chain));
    }
  }
  return enumerateSelections(clocks, options, budget);
}

std::vector<std::vector<Chain>> clauseChainCovers(
    const VectorClocks& clocks, const VariableTrace& trace,
    const CnfPredicate& pred) {
  GPD_TRACE_SPAN("detect.chain_cover");
  const auto trueEvents = clauseTrueEvents(trace, pred);
  std::vector<std::vector<Chain>> covers(pred.clauses.size());
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    const auto& events = trueEvents[j];
    const auto chains = graph::minimumChainCover(
        static_cast<int>(events.size()), [&](int a, int b) {
          return !(events[a] == events[b]) && clocks.leq(events[a], events[b]);
        });
    for (const auto& chain : chains) {
      Chain c;
      for (int idx : chain) c.events.push_back(events[idx]);
      covers[j].push_back(std::move(c));
    }
  }
  return covers;
}

SingularCnfResult detectSingularByChainCover(const VectorClocks& clocks,
                                             const VariableTrace& trace,
                                             const CnfPredicate& pred,
                                             control::Budget* budget) {
  GPD_CHECK_MSG(pred.isSingular(), "predicate is not singular");
  GPD_TRACE_SPAN_NAMED(span, "detect.chain_cover_enumeration");
  span.attrInt("clauses", static_cast<std::int64_t>(pred.clauses.size()));
  return enumerateSelections(clocks, clauseChainCovers(clocks, trace, pred),
                             budget);
}

}  // namespace gpd::detect
