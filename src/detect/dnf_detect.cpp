#include "detect/dnf_detect.h"

#include <map>

#include "detect/cpdhb.h"
#include "util/check.h"

namespace gpd::detect {

DnfResult possiblyExpression(const VectorClocks& clocks,
                             const VariableTrace& trace, const BoolExpr& expr,
                             control::Budget* budget) {
  DnfResult result;
  const std::vector<DnfTerm> terms = toDnf(expr);
  result.termsTotal = terms.size();
  const Computation& comp = clocks.computation();

  for (const DnfTerm& term : terms) {
    if (budget != nullptr && !budget->chargeCombination()) {
      result.complete = false;  // untried terms remain
      return result;
    }
    ++result.termsTried;
    GPD_CHECK(!term.empty());
    // Group the term's literals per process: the per-process predicate is
    // their conjunction, and its true events form one chain.
    std::map<ProcessId, std::vector<const BoolLiteral*>> byProcess;
    for (const BoolLiteral& lit : term) byProcess[lit.process].push_back(&lit);

    std::vector<Chain> chains;
    chains.reserve(byProcess.size());
    for (const auto& [p, lits] : byProcess) {
      Chain chain;
      for (int i = 0; i < comp.eventCount(p); ++i) {
        bool all = true;
        for (const BoolLiteral* lit : lits) {
          if (!lit->holds(trace, i)) {
            all = false;
            break;
          }
        }
        if (all) chain.events.push_back({p, i});
      }
      chains.push_back(std::move(chain));
    }
    const ConjunctiveResult sub = findConsistentSelection(clocks, chains);
    if (sub.found) {
      result.cut = sub.cut;
      return result;
    }
  }
  return result;
}

}  // namespace gpd::detect
