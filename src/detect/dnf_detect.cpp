#include "detect/dnf_detect.h"

#include <map>

#include "detect/cpdhb.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace gpd::detect {

DnfResult possiblyExpression(const VectorClocks& clocks,
                             const VariableTrace& trace, const BoolExpr& expr,
                             control::Budget* budget) {
  GPD_TRACE_SPAN_NAMED(span, "detect.dnf");
  DnfResult result;
  // The DNF expansion itself is exponential, so it runs under the same
  // budget as the term loop: a trip mid-distribution yields the terms built
  // so far and an incomplete verdict instead of an unbounded stall.
  const DnfExpansion expansion = toDnfBudgeted(expr, budget);
  const std::vector<DnfTerm>& terms = expansion.terms;
  if (!expansion.complete) result.complete = false;
  result.termsTotal = terms.size();
  const Computation& comp = clocks.computation();
  // Span attrs and the per-run counter are published whichever way the
  // term loop ends; the RAII finisher also covers the budget unwind.
  const auto finish = [&]() {
    span.attrInt("terms_tried", static_cast<std::int64_t>(result.termsTried));
    span.attrInt("terms_total", static_cast<std::int64_t>(result.termsTotal));
    GPD_OBS_COUNTER_ADD("dnf_terms_tried", result.termsTried);
  };

  for (const DnfTerm& term : terms) {
    if (budget != nullptr && !budget->chargeCombination()) {
      result.complete = false;  // untried terms remain
      finish();
      return result;
    }
    ++result.termsTried;
    GPD_CHECK(!term.empty());
    // Group the term's literals per process: the per-process predicate is
    // their conjunction, and its true events form one chain.
    std::map<ProcessId, std::vector<const BoolLiteral*>> byProcess;
    for (const BoolLiteral& lit : term) byProcess[lit.process].push_back(&lit);

    std::vector<Chain> chains;
    chains.reserve(byProcess.size());
    for (const auto& [p, lits] : byProcess) {
      Chain chain;
      for (int i = 0; i < comp.eventCount(p); ++i) {
        bool all = true;
        for (const BoolLiteral* lit : lits) {
          if (!lit->holds(trace, i)) {
            all = false;
            break;
          }
        }
        if (all) chain.events.push_back({p, i});
      }
      chains.push_back(std::move(chain));
    }
    const ConjunctiveResult sub = findConsistentSelection(clocks, chains);
    if (sub.found) {
      result.cut = sub.cut;
      finish();
      return result;
    }
  }
  finish();
  return result;
}

}  // namespace gpd::detect
