#include "detect/definitely_conjunctive.h"

#include <set>

#include "util/check.h"

namespace gpd::detect {

std::vector<TrueInterval> trueIntervals(const VariableTrace& trace,
                                        const LocalPredicate& pred) {
  const Computation& comp = trace.computation();
  std::vector<TrueInterval> out;
  const int count = comp.eventCount(pred.process);
  int start = -1;
  for (int i = 0; i <= count; ++i) {
    const bool holds = i < count && pred.holds(trace, i);
    if (holds && start < 0) start = i;
    if (!holds && start >= 0) {
      out.push_back({{pred.process, start}, {pred.process, i - 1}});
      start = -1;
    }
  }
  return out;
}

namespace {

// lo_p ≺ succ(hi_q); vacuously true when hi_q is the final event of q.
bool startsBeforeEnd(const VectorClocks& clocks, const TrueInterval& p,
                     const TrueInterval& q) {
  const Computation& comp = clocks.computation();
  if (q.hi.index + 1 >= comp.eventCount(q.hi.process)) return true;
  const EventId end{q.hi.process, q.hi.index + 1};
  return clocks.precedes(p.lo, end);
}

}  // namespace

DefinitelyResult definitelyConjunctive(const VectorClocks& clocks,
                                       const VariableTrace& trace,
                                       const ConjunctivePredicate& pred) {
  DefinitelyResult result;
  const int m = static_cast<int>(pred.terms.size());
  if (m == 0) {
    result.holds = true;
    return result;
  }
  std::set<ProcessId> procs;
  std::vector<std::vector<TrueInterval>> queue(m);
  for (int i = 0; i < m; ++i) {
    GPD_CHECK_MSG(procs.insert(pred.terms[i].process).second,
                  "conjunctive predicate has two terms on process "
                      << pred.terms[i].process);
    queue[i] = trueIntervals(trace, pred.terms[i]);
    if (queue[i].empty()) return result;  // never true: not even possibly
  }

  std::vector<std::size_t> head(m, 0);
  const auto cand = [&](int i) -> const TrueInterval& {
    return queue[i][head[i]];
  };

  std::vector<int> work;
  std::vector<char> queued(m, 1);
  for (int i = 0; i < m; ++i) work.push_back(i);
  const auto enqueue = [&](int i) {
    if (!queued[i]) {
      queued[i] = 1;
      work.push_back(i);
    }
  };

  while (!work.empty()) {
    const int i = work.back();
    work.pop_back();
    queued[i] = 0;
    bool advancedI = false;
    for (int j = 0; j < m && !advancedI; ++j) {
      if (j == i) continue;
      while (true) {
        // If cand(j) starts too late for cand(i)'s end, cand(i) is dead: no
        // later interval of j starts earlier.
        ++result.comparisons;
        if (!startsBeforeEnd(clocks, cand(j), cand(i))) {
          if (++head[i] >= queue[i].size()) return result;
          advancedI = true;
          continue;
        }
        ++result.comparisons;
        if (!startsBeforeEnd(clocks, cand(i), cand(j))) {
          if (++head[j] >= queue[j].size()) return result;
          enqueue(j);
          continue;
        }
        break;
      }
    }
    if (advancedI) enqueue(i);
  }

  result.holds = true;
  for (int i = 0; i < m; ++i) result.witness.push_back(cand(i));
  return result;
}

}  // namespace gpd::detect
