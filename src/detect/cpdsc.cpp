#include "detect/cpdsc.h"

#include <algorithm>

#include "computation/reverse.h"
#include "detect/singular_cnf.h"
#include "obs/trace.h"
#include "util/check.h"

namespace gpd::detect {

namespace {

// Receive (or send) events on the group's processes.
std::vector<EventId> groupEventsOfKind(const Computation& comp,
                                       const std::vector<ProcessId>& group,
                                       bool receives) {
  std::vector<EventId> out;
  for (ProcessId p : group) {
    for (int i = 1; i < comp.eventCount(p); ++i) {
      const EventId e{p, i};
      const bool has = receives ? !comp.incomingMessages(e).empty()
                                : !comp.outgoingMessages(e).empty();
      if (has) out.push_back(e);
    }
  }
  return out;
}

bool pairwiseOrdered(const VectorClocks& clocks,
                     const std::vector<EventId>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (!clocks.leq(events[i], events[j]) &&
          !clocks.leq(events[j], events[i])) {
        return false;
      }
    }
  }
  return true;
}

// σ: a linearization of the order extended per meta-process with an arrow
// from every group event to each independent receive of the same group.
// Returns σ position per node. The extension is acyclic for receive-ordered
// computations (Tarafdar–Garg); checked at runtime.
std::vector<int> sigmaPositions(const VectorClocks& clocks,
                                const Groups& groups) {
  const Computation& comp = clocks.computation();
  graph::Dag g = comp.toDag();
  for (const auto& group : groups) {
    const auto receives = groupEventsOfKind(comp, group, /*receives=*/true);
    for (const EventId& r : receives) {
      for (ProcessId p : group) {
        for (int i = 0; i < comp.eventCount(p); ++i) {
          const EventId e{p, i};
          if (clocks.concurrent(e, r)) g.addEdge(comp.node(e), comp.node(r));
        }
      }
    }
  }
  const auto order = g.topologicalOrder();
  GPD_CHECK_MSG(order.has_value(),
                "receive-ordered extension created a cycle (computation is "
                "not receive-ordered?)");
  std::vector<int> pos(comp.totalEvents());
  for (int i = 0; i < comp.totalEvents(); ++i) pos[(*order)[i]] = i;
  return pos;
}

}  // namespace

Groups groupsOfSingularCnf(const CnfPredicate& pred) {
  GPD_CHECK_MSG(pred.isSingular(), "predicate is not singular");
  Groups groups;
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    groups.push_back(pred.clauseProcesses(static_cast<int>(j)));
  }
  return groups;
}

bool isReceiveOrdered(const VectorClocks& clocks, const Groups& groups) {
  for (const auto& group : groups) {
    if (!pairwiseOrdered(
            clocks, groupEventsOfKind(clocks.computation(), group, true))) {
      return false;
    }
  }
  return true;
}

bool isSendOrdered(const VectorClocks& clocks, const Groups& groups) {
  for (const auto& group : groups) {
    if (!pairwiseOrdered(
            clocks, groupEventsOfKind(clocks.computation(), group, false))) {
      return false;
    }
  }
  return true;
}

CpdscResult scanReceiveOrdered(
    const VectorClocks& clocks, const Groups& groups,
    const std::vector<std::vector<EventId>>& trueEvents) {
  GPD_TRACE_SPAN("detect.cpdsc.receive_ordered");
  CpdscResult result;
  GPD_CHECK(groups.size() == trueEvents.size());
  if (!isReceiveOrdered(clocks, groups)) return result;  // NotApplicable

  const Computation& comp = clocks.computation();
  const std::vector<int> sigma = sigmaPositions(clocks, groups);

  const int m = static_cast<int>(groups.size());
  result.status = CpdscResult::Status::NotFound;
  std::vector<std::vector<EventId>> queue(m);
  for (int j = 0; j < m; ++j) {
    queue[j] = trueEvents[j];
    if (queue[j].empty()) return result;
    std::sort(queue[j].begin(), queue[j].end(),
              [&](const EventId& a, const EventId& b) {
                return sigma[comp.node(a)] < sigma[comp.node(b)];
              });
  }

  std::vector<std::size_t> head(m, 0);
  const auto cand = [&](int j) -> const EventId& { return queue[j][head[j]]; };

  std::vector<int> work;
  std::vector<char> queued(m, 1);
  for (int j = 0; j < m; ++j) work.push_back(j);
  const auto enqueue = [&](int j) {
    if (!queued[j]) {
      queued[j] = 1;
      work.push_back(j);
    }
  };

  while (!work.empty()) {
    const int i = work.back();
    work.pop_back();
    queued[i] = 0;
    bool advancedI = false;
    for (int j = 0; j < m && !advancedI; ++j) {
      if (j == i) continue;
      while (true) {
        if (clocks.succLeq(cand(i), cand(j))) {
          // Property P: cand(i) is inconsistent with cand(j) and with every
          // σ-later event of group j — it is dead.
          if (++head[i] >= queue[i].size()) return result;
          advancedI = true;
          continue;
        }
        if (clocks.succLeq(cand(j), cand(i))) {
          if (++head[j] >= queue[j].size()) return result;
          enqueue(j);
          continue;
        }
        break;
      }
    }
    if (advancedI) enqueue(i);
  }

  result.status = CpdscResult::Status::Found;
  for (int j = 0; j < m; ++j) result.witness.push_back(cand(j));
  result.cut = clocks.leastConsistentCutThrough(result.witness);
  return result;
}

CpdscResult scanSendOrdered(
    const VectorClocks& clocks, const Groups& groups,
    const std::vector<std::vector<EventId>>& trueEvents) {
  GPD_TRACE_SPAN("detect.cpdsc.send_ordered");
  CpdscResult result;
  if (!isSendOrdered(clocks, groups)) return result;  // NotApplicable

  // Dual construction: in the reversed computation a cut passes through
  // (p, last - i) iff the corresponding original cut passes through (p, i),
  // and original sends become receives, so the reversed computation is
  // receive-ordered w.r.t. the same groups.
  const Computation& comp = clocks.computation();
  const Computation reversed = reverseComputation(comp);
  const VectorClocks revClocks(reversed);

  std::vector<std::vector<EventId>> revTrue(trueEvents.size());
  for (std::size_t j = 0; j < trueEvents.size(); ++j) {
    for (const EventId& e : trueEvents[j]) {
      revTrue[j].push_back({e.process, comp.eventCount(e.process) - 1 - e.index});
    }
  }

  CpdscResult rev = scanReceiveOrdered(revClocks, groups, revTrue);
  GPD_CHECK_MSG(rev.applicable(),
                "reversal of a send-ordered computation must be receive-ordered");
  if (!rev.found()) {
    result.status = CpdscResult::Status::NotFound;
    return result;
  }
  result.status = CpdscResult::Status::Found;
  GPD_CHECK(rev.cut.has_value());
  result.cut = reverseCut(comp, *rev.cut);
  GPD_CHECK(clocks.isConsistent(*result.cut));
  for (const EventId& re : rev.witness) {
    result.witness.push_back(
        {re.process, comp.eventCount(re.process) - 1 - re.index});
  }
  for (const EventId& e : result.witness) {
    GPD_CHECK(result.cut->passesThrough(e));
  }
  return result;
}

CpdscResult detectSingularSpecialCase(const VectorClocks& clocks,
                                      const VariableTrace& trace,
                                      const CnfPredicate& pred) {
  GPD_TRACE_SPAN_NAMED(span, "detect.cpdsc");
  span.attrInt("clauses", static_cast<std::int64_t>(pred.clauses.size()));
  const Groups groups = groupsOfSingularCnf(pred);
  const auto trueEvents = clauseTrueEvents(trace, pred);
  CpdscResult result = scanReceiveOrdered(clocks, groups, trueEvents);
  if (result.applicable()) return result;
  return scanSendOrdered(clocks, groups, trueEvents);
}

}  // namespace gpd::detect
