#include "detect/stable.h"

namespace gpd::detect {

StableResult detectStable(const Computation& comp,
                          const lattice::CutPredicate& phi) {
  StableResult result;
  result.possibly = phi(finalCut(comp));
  result.definitely = result.possibly;
  return result;
}

bool isStableOn(const VectorClocks& clocks, const lattice::CutPredicate& phi) {
  const Computation& comp = clocks.computation();
  bool stable = true;
  lattice::forEachConsistentCut(clocks, [&](const Cut& cut) {
    if (!phi(cut)) return true;
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      if (cut.last[p] + 1 >= comp.eventCount(p)) continue;
      if (!clocks.enabled(p, cut)) continue;
      Cut succ = cut;
      ++succ.last[p];
      if (!phi(succ)) {
        stable = false;
        return false;
      }
    }
    return true;
  });
  return stable;
}

}  // namespace gpd::detect
