// Efficient definitely(⋀ local predicates) — Garg–Waldecker's strong
// conjunctive predicate algorithm (the "definitely" entry of the paper's
// Figure 1 landscape).
//
// A process is "inside" a maximal true interval I = [lo, hi] from the
// execution of lo until the execution of succ(hi). Two intervals definitely
// overlap — share a moment in *every* run — iff the start of each causally
// precedes the event that ends the other:
//     lo_p ≺ succ(hi_q)  and  lo_q ≺ succ(hi_p)
// (vacuously true when the successor does not exist). Within one run the
// intervals are intervals on a time line, so pairwise intersection implies a
// common moment (Helly in dimension 1); hence a pairwise definitely-
// overlapping selection of intervals, one per process, certifies
// definitely(φ). Garg–Waldecker's theorem states the converse as well, and
// the same elimination discipline as CPDHB finds a selection in polynomial
// time: if lo_p ⊀ succ(hi_q) then every current-or-later interval of p also
// starts too late for q's interval, so q's interval is dead.
//
// This module is property-tested against the exhaustive lattice definitely
// on randomized computations (tests/detect/definitely_conjunctive_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "clocks/vector_clock.h"
#include "predicates/local.h"

namespace gpd::detect {

struct TrueInterval {
  EventId lo;  // first event of the maximal run of true states
  EventId hi;  // last event (inclusive)

  friend bool operator==(const TrueInterval&, const TrueInterval&) = default;
};

// Maximal true intervals of one local predicate, in process order.
std::vector<TrueInterval> trueIntervals(const VariableTrace& trace,
                                        const LocalPredicate& pred);

struct DefinitelyResult {
  bool holds = false;
  // One interval per conjunct (ordered as pred.terms), when holds.
  std::vector<TrueInterval> witness;
  std::uint64_t comparisons = 0;
};

// Processes without a conjunct are treated as always-true (their whole
// history is one interval), matching the possibly-side convention.
DefinitelyResult definitelyConjunctive(const VectorClocks& clocks,
                                       const VariableTrace& trace,
                                       const ConjunctivePredicate& pred);

}  // namespace gpd::detect
