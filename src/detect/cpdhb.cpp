#include "detect/cpdhb.h"

#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace gpd::detect {

namespace {

// One CPDHB scan finished (hit or miss). Counters are bumped once per scan
// with the totals the scan already tracked, so the pairwise-elimination
// loop itself carries no instrumentation.
void recordScan(const ConjunctiveResult& result) {
  (void)result;
  GPD_OBS_COUNTER_ADD("cpdhb_invocations", 1);
  GPD_OBS_COUNTER_ADD("cpdhb_comparisons", result.comparisons);
}

// The actual pairwise-elimination scan; the public wrapper below records
// metrics on whichever exit path is taken.
ConjunctiveResult findConsistentSelectionImpl(const VectorClocks& clocks,
                                              const std::vector<Chain>& chains) {
  ConjunctiveResult result;
  const int n = static_cast<int>(chains.size());
  if (n == 0) {
    // Empty conjunction: trivially true at the initial cut.
    result.found = true;
    result.cut = initialCut(clocks.computation());
    return result;
  }
  for (const Chain& chain : chains) {
    if (chain.events.empty()) return result;
#ifndef NDEBUG
    for (std::size_t i = 0; i + 1 < chain.events.size(); ++i) {
      GPD_DCHECK(clocks.leq(chain.events[i], chain.events[i + 1]));
    }
#endif
  }

  std::vector<std::size_t> head(n, 0);
  const auto cand = [&](int i) -> const EventId& {
    return chains[i].events[head[i]];
  };

  // Work queue: slots whose candidate changed and must be re-checked against
  // the others. Initially everything.
  std::vector<int> work;
  std::vector<char> queued(n, 1);
  for (int i = 0; i < n; ++i) work.push_back(i);

  const auto enqueue = [&](int i) {
    if (!queued[i]) {
      queued[i] = 1;
      work.push_back(i);
    }
  };

  while (!work.empty()) {
    const int i = work.back();
    work.pop_back();
    queued[i] = 0;
    bool advancedI = false;
    for (int j = 0; j < n && !advancedI; ++j) {
      if (j == i) continue;
      // succ(cand(a)) ≤ cand(b) ⟹ cand(a) is dead: advance chain a.
      while (true) {
        ++result.comparisons;
        if (clocks.succLeq(cand(i), cand(j))) {
          if (++head[i] >= chains[i].events.size()) return result;
          advancedI = true;
          continue;
        }
        ++result.comparisons;
        if (clocks.succLeq(cand(j), cand(i))) {
          if (++head[j] >= chains[j].events.size()) return result;
          enqueue(j);
          continue;
        }
        break;
      }
    }
    if (advancedI) enqueue(i);
  }

  // No pair can be eliminated: candidates are pairwise consistent.
  result.witness.reserve(n);
  for (int i = 0; i < n; ++i) result.witness.push_back(cand(i));
  // Deduplicate for the cut construction (two chains may name one event).
  std::vector<EventId> unique(result.witness);
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  result.cut = clocks.leastConsistentCutThrough(unique);
  result.found = true;
  return result;
}

}  // namespace

ConjunctiveResult findConsistentSelection(const VectorClocks& clocks,
                                          const std::vector<Chain>& chains) {
  ConjunctiveResult result = findConsistentSelectionImpl(clocks, chains);
  recordScan(result);
  return result;
}

ConjunctiveResult detectConjunctive(const VectorClocks& clocks,
                                    const VariableTrace& trace,
                                    const ConjunctivePredicate& pred) {
  GPD_TRACE_SPAN_NAMED(span, "detect.cpdhb");
  span.attrInt("terms", static_cast<std::int64_t>(pred.terms.size()));
  std::set<ProcessId> procs;
  for (const LocalPredicate& t : pred.terms) {
    GPD_CHECK_MSG(procs.insert(t.process).second,
                  "conjunctive predicate has two terms on process "
                      << t.process);
  }
  std::vector<Chain> chains;
  chains.reserve(pred.terms.size());
  for (const LocalPredicate& t : pred.terms) {
    Chain chain;
    for (int idx : trueEvents(trace, t)) {
      chain.events.push_back({t.process, idx});
    }
    chains.push_back(std::move(chain));
  }
  return findConsistentSelection(clocks, chains);
}

ConjunctiveResult detectConjunctive(const VariableTrace& trace,
                                    const ConjunctivePredicate& pred) {
  const VectorClocks clocks(trace.computation());
  return detectConjunctive(clocks, trace, pred);
}

}  // namespace gpd::detect
