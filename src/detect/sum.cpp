#include "detect/sum.h"

#include <algorithm>

#include "flow/closure.h"
#include "lattice/explore.h"
#include "obs/trace.h"
#include "util/check.h"

namespace gpd::detect {

namespace {

// Per-event change to S (0 for initial events), plus S at the initial cut.
struct Deltas {
  std::vector<std::int64_t> perNode;
  std::int64_t base = 0;
};

std::int64_t maxAbsEventDelta(const Deltas& d) {
  std::int64_t best = 0;
  for (std::int64_t v : d.perNode) best = std::max(best, std::abs(v));
  return best;
}

Deltas sumDeltas(const VariableTrace& trace, const std::vector<SumTerm>& terms) {
  const Computation& comp = trace.computation();
  Deltas d;
  d.perNode.assign(comp.totalEvents(), 0);
  for (const SumTerm& t : terms) {
    d.base += trace.value(t.process, t.var, 0);
    for (int i = 1; i < comp.eventCount(t.process); ++i) {
      d.perNode[comp.node({t.process, i})] +=
          trace.value(t.process, t.var, i) - trace.value(t.process, t.var, i - 1);
    }
  }
  return d;
}

Cut cutFromClosure(const Computation& comp, const std::vector<char>& inSet) {
  Cut cut(std::vector<int>(comp.processCount(), 0));
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    int i = 1;
    while (i < comp.eventCount(p) && inSet[comp.node({p, i})]) ++i;
    cut.last[p] = i - 1;
  }
  return cut;
}

// Theorem 4 walk: execute the events of `target` one at a time from the
// initial cut (any topological order — every prefix is a consistent cut) and
// return the first cut whose running sum equals K. Requires |Δ| ≤ 1 and K
// between S(⊥) and S(target).
Cut walkUntilSum(const VectorClocks& clocks, const Deltas& deltas,
                 const Cut& target, std::int64_t k) {
  const Computation& comp = clocks.computation();
  Cut cut = initialCut(comp);
  std::int64_t sum = deltas.base;
  if (sum == k) return cut;
  const graph::Dag dag = comp.toDagWithoutInitialEdges();
  const auto order = dag.topologicalOrder();
  GPD_CHECK(order.has_value());
  for (int node : *order) {
    const EventId e = comp.event(node);
    if (e.isInitial() || !target.contains(e)) continue;
    GPD_DCHECK(cut.last[e.process] + 1 == e.index);
    ++cut.last[e.process];
    sum += deltas.perNode[node];
    if (sum == k) return cut;
  }
  GPD_CHECK_MSG(false, "intermediate-value walk missed K — |Δ| > 1?");
  return cut;
}

}  // namespace

SumExtrema sumExtrema(const VectorClocks& clocks, const VariableTrace& trace,
                      const std::vector<SumTerm>& terms) {
  const Computation& comp = clocks.computation();
  const Deltas deltas = sumDeltas(trace, terms);
  // Ideals (down-closed sets) of the event order are closures of the
  // *reversed* DAG; initial events carry weight 0, so whether the closure
  // includes them is irrelevant to the optimum and cutFromClosure only reads
  // non-initial membership.
  const graph::Dag reversed = comp.toDagWithoutInitialEdges().reversed();

  SumExtrema ext;
  const auto maxRes = flow::maxWeightClosure(reversed, deltas.perNode);
  ext.maxSum = deltas.base + maxRes.weight;
  ext.argMax = cutFromClosure(comp, maxRes.inClosure);

  std::vector<std::int64_t> negated(deltas.perNode.size());
  for (std::size_t i = 0; i < negated.size(); ++i) negated[i] = -deltas.perNode[i];
  const auto minRes = flow::maxWeightClosure(reversed, negated);
  ext.minSum = deltas.base - minRes.weight;
  ext.argMin = cutFromClosure(comp, minRes.inClosure);

  GPD_DCHECK(clocks.isConsistent(ext.argMax));
  GPD_DCHECK(clocks.isConsistent(ext.argMin));
  return ext;
}

std::optional<Cut> possiblySum(const VectorClocks& clocks,
                               const VariableTrace& trace,
                               const SumPredicate& pred) {
  GPD_TRACE_SPAN("detect.sum.possibly");
  const SumExtrema ext = sumExtrema(clocks, trace, pred.terms);
  switch (pred.relop) {
    case Relop::Less:
      if (ext.minSum < pred.k) return ext.argMin;
      return std::nullopt;
    case Relop::LessEq:
      if (ext.minSum <= pred.k) return ext.argMin;
      return std::nullopt;
    case Relop::Greater:
      if (ext.maxSum > pred.k) return ext.argMax;
      return std::nullopt;
    case Relop::GreaterEq:
      if (ext.maxSum >= pred.k) return ext.argMax;
      return std::nullopt;
    case Relop::NotEqual:
      if (ext.minSum != pred.k) return ext.argMin;
      if (ext.maxSum != pred.k) return ext.argMax;
      return std::nullopt;  // S is identically K
    case Relop::Equal:
      break;  // handled below
  }
  // Theorem 7(1): with |Δ| ≤ 1, possibly(S = K) ⟺
  // (S(⊥) ≤ K ∧ possibly(S ≥ K)) ∨ (S(⊥) ≥ K ∧ possibly(S ≤ K)).
  const Deltas deltas = sumDeltas(trace, pred.terms);
  GPD_CHECK_MSG(maxAbsEventDelta(deltas) <= 1,
                "Theorem 4 requires every event to change the sum by at most "
                "1; use detectExactSumExhaustive for arbitrary deltas");
  if (deltas.base <= pred.k && ext.maxSum >= pred.k) {
    return walkUntilSum(clocks, deltas, ext.argMax, pred.k);
  }
  if (deltas.base >= pred.k && ext.minSum <= pred.k) {
    return walkUntilSum(clocks, deltas, ext.argMin, pred.k);
  }
  return std::nullopt;
}

std::optional<Cut> detectExactSumExhaustive(const VectorClocks& clocks,
                                            const VariableTrace& trace,
                                            const SumPredicate& pred) {
  return detectExactSumBudgeted(clocks, trace, pred, nullptr).cut;
}

ExactSumSearch detectExactSumBudgeted(const VectorClocks& clocks,
                                      const VariableTrace& trace,
                                      const SumPredicate& pred,
                                      control::Budget* budget) {
  GPD_CHECK(pred.relop == Relop::Equal);
  GPD_TRACE_SPAN("detect.sum.exact_search");
  const lattice::CutSearchResult search = lattice::findSatisfyingCutBudgeted(
      clocks,
      [&](const Cut& cut) { return pred.sumAtCut(trace, cut) == pred.k; },
      budget);
  ExactSumSearch result;
  result.cut = search.witness;
  result.complete = search.complete;
  result.explore = search.explore;
  return result;
}

bool definitelySum(const VectorClocks& clocks, const VariableTrace& trace,
                   const SumPredicate& pred) {
  const SumDecision decision =
      definitelySumBudgeted(clocks, trace, pred, nullptr);
  GPD_CHECK(decision.decided);
  return decision.holds;
}

SumDecision definitelySumBudgeted(const VectorClocks& clocks,
                                  const VariableTrace& trace,
                                  const SumPredicate& pred,
                                  control::Budget* budget) {
  GPD_TRACE_SPAN("detect.sum.definitely");
  SumDecision result;
  if (pred.relop != Relop::Equal) {
    const lattice::DefinitelyDecision d = lattice::definitelyExhaustiveBudgeted(
        clocks,
        [&](const Cut& cut) { return pred.holdsAtCut(trace, cut); }, budget);
    result.decided = d.decided;
    result.holds = d.decided && d.holds;
    return result;
  }
  // Theorem 7(2): with |Δ| ≤ 1, definitely(S = K) ⟺
  // (S(⊥) ≤ K ∧ definitely(S ≥ K)) ∨ (S(⊥) ≥ K ∧ definitely(S ≤ K)).
  // Tri-valued disjunction: a branch decided true settles the predicate even
  // when the other branch ran out of budget; "false" needs every applicable
  // branch decided false.
  const Deltas deltas = sumDeltas(trace, pred.terms);
  GPD_CHECK_MSG(maxAbsEventDelta(deltas) <= 1,
                "Theorem 7(2) requires every event to change the sum by at "
                "most 1");
  const auto sumAt = [&](const Cut& cut) { return pred.sumAtCut(trace, cut); };
  bool anyUndecided = false;
  if (deltas.base <= pred.k) {
    const lattice::DefinitelyDecision d = lattice::definitelyExhaustiveBudgeted(
        clocks, [&](const Cut& c) { return sumAt(c) >= pred.k; }, budget);
    if (d.decided && d.holds) {
      result.holds = true;
      return result;
    }
    anyUndecided |= !d.decided;
  }
  if (deltas.base >= pred.k) {
    const lattice::DefinitelyDecision d = lattice::definitelyExhaustiveBudgeted(
        clocks, [&](const Cut& c) { return sumAt(c) <= pred.k; }, budget);
    if (d.decided && d.holds) {
      result.holds = true;
      return result;
    }
    anyUndecided |= !d.decided;
  }
  result.decided = !anyUndecided;
  result.holds = false;
  return result;
}

}  // namespace gpd::detect
