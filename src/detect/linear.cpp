#include "detect/linear.h"

#include <algorithm>

#include "util/check.h"

namespace gpd::detect {

LinearResult detectLinear(const VectorClocks& clocks, const ForbiddenFn& oracle,
                          control::Budget* budget) {
  return detectLinearFrom(clocks, oracle, initialCut(clocks.computation()),
                          budget);
}

LinearResult detectLinearFrom(const VectorClocks& clocks,
                              const ForbiddenFn& oracle, Cut from,
                              control::Budget* budget) {
  const Computation& comp = clocks.computation();
  GPD_CHECK(clocks.isConsistent(from));
  LinearResult result;
  Cut cut = std::move(from);
  while (true) {
    if (budget != nullptr && !budget->chargeCut()) {
      result.complete = false;
      return result;
    }
    ++result.oracleCalls;
    const std::optional<ProcessId> forbidden = oracle(cut);
    if (!forbidden) {
      GPD_DCHECK(clocks.isConsistent(cut));
      result.cut = cut;
      return result;
    }
    const ProcessId p = *forbidden;
    GPD_CHECK(p >= 0 && p < comp.processCount());
    if (cut.last[p] + 1 >= comp.eventCount(p)) {
      return result;  // p cannot advance: no satisfying cut exists
    }
    // Jump to cut ⊔ history(next event of p): the least consistent cut that
    // advances p. Any satisfying D ⊇ cut advances p, hence contains the
    // event and its causal history — the invariant "every satisfying cut
    // contains the current cut" is preserved.
    const EventId next{p, cut.last[p] + 1};
    for (ProcessId q = 0; q < comp.processCount(); ++q) {
      cut.last[q] = std::max(cut.last[q], clocks.clock(next, q));
    }
    cut.last[p] = std::max(cut.last[p], next.index);
  }
}

ForbiddenFn conjunctiveOracle(const VariableTrace& trace,
                              const ConjunctivePredicate& pred) {
  return [&trace, pred](const Cut& cut) -> std::optional<ProcessId> {
    for (const LocalPredicate& term : pred.terms) {
      if (!term.holdsAtCut(trace, cut)) return term.process;
    }
    return std::nullopt;
  };
}

ForbiddenFn channelsEmptyOracle(const Computation& comp) {
  return [&comp](const Cut& cut) -> std::optional<ProcessId> {
    for (const Message& m : comp.messages()) {
      if (cut.contains(m.send) && !cut.contains(m.receive)) {
        return m.receive.process;
      }
    }
    return std::nullopt;
  };
}

ForbiddenFn terminationOracle(const VariableTrace& trace,
                              const std::string& activeVar) {
  const Computation& comp = trace.computation();
  return [&trace, &comp, activeVar](const Cut& cut) -> std::optional<ProcessId> {
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      if (trace.valueAtCut(cut, p, activeVar) != 0) return p;
    }
    for (const Message& m : comp.messages()) {
      if (cut.contains(m.send) && !cut.contains(m.receive)) {
        return m.receive.process;
      }
    }
    return std::nullopt;
  };
}

}  // namespace gpd::detect
