// Singular-CNF detection by SAT encoding — the Theorem 1 reduction run in
// *reverse*, and the modern engineering alternative to Sec. 3.3's explicit
// enumeration: delegate the NP-complete search to a SAT solver.
//
// Encoding: one propositional variable per candidate true event ("the
// witness cut passes through e"); per clause-group an at-least-one
// constraint; per inconsistent candidate pair (succ(e) ≤ f or succ(f) ≤ e —
// one O(1) vector-clock test each) a binary mutual-exclusion clause; per
// same-process candidate pair likewise. A model picks pairwise-consistent
// true events, one per clause, which Observation 1 turns into a witness
// cut. Exactly the same search space as Sec. 3.3, explored by DPLL's unit
// propagation instead of odometer enumeration.
#pragma once

#include <cstdint>
#include <optional>

#include "clocks/vector_clock.h"
#include "computation/cut.h"
#include "predicates/cnf.h"
#include "sat/cnf.h"

namespace gpd::detect {

struct SatEncodingResult {
  std::optional<Cut> cut;      // witness, when satisfiable
  int variables = 0;           // candidate true events
  std::uint64_t clauses = 0;   // generated SAT clauses
  long long decisions = 0;     // DPLL decisions
};

// Requires pred.isSingular().
SatEncodingResult detectSingularViaSat(const VectorClocks& clocks,
                                       const VariableTrace& trace,
                                       const CnfPredicate& pred);

}  // namespace gpd::detect
