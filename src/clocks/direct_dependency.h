// Fowler–Zwaenepoel direct-dependency tracking.
//
// Instead of full vector clocks, each process tracks only its *direct*
// dependencies: D(e)[q] = largest index of a q-event from which e received a
// message directly (plus its own index). Messages then carry a single scalar
// (the sender's event index) instead of an n-vector — the trade-off many
// practical monitors choose. Full causality is recovered offline by a
// transitive closure over the dependency graph; this module implements both
// halves and the test suite proves the closure equals the Fidge–Mattern
// vector clocks (the classical equivalence).
#pragma once

#include <vector>

#include "computation/computation.h"

namespace gpd {

class DirectDependencyClocks {
 public:
  explicit DirectDependencyClocks(const Computation& c);

  // D(e)[p]: index of the latest event of p that e depends on *directly*
  // (own component = own index; -1 when there is no direct dependency).
  int direct(const EventId& e, ProcessId p) const {
    return direct_[static_cast<std::size_t>(comp_->node(e)) * n_ + p];
  }

  // Offline reconstruction: the transitive closure of the direct
  // dependencies, as full vector clocks (same convention as VectorClocks:
  // component q = largest index of a q-event ≤ e, 0 when only ⊥_q).
  std::vector<int> reconstructClock(const EventId& e) const;

 private:
  const Computation* comp_;
  int n_;
  std::vector<int> direct_;
};

}  // namespace gpd
