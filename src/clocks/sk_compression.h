// Singhal–Kshemkalyani differential vector-clock propagation.
//
// Full Fidge–Mattern piggybacking ships n components on every message. The
// SK technique ships only the components that changed since the sender's
// previous message *to the same receiver*; the receiver, which remembers
// the last values seen from that sender, reconstructs the full timestamp.
// With FIFO channels reconstruction is exact. This module replays a
// recorded computation through the protocol, reporting per-message payload
// sizes and verifying that every reconstructed timestamp equals the true
// vector clock (the A2/A8 bandwidth experiments quantify the savings).
#pragma once

#include <cstdint>
#include <vector>

#include "clocks/vector_clock.h"
#include "computation/computation.h"

namespace gpd {

struct SkCompressionStats {
  std::uint64_t messages = 0;
  std::uint64_t fullComponents = 0;  // n per message (the FM baseline)
  std::uint64_t sentComponents = 0;  // components actually shipped by SK
  bool exact = false;                // all reconstructions matched

  double savings() const {
    return fullComponents == 0
               ? 0.0
               : 1.0 - static_cast<double>(sentComponents) / fullComponents;
  }
};

// Replays the computation's messages through the SK protocol. `exact` is
// guaranteed when every channel is FIFO (isChannelFifo below) — the
// technique's classical requirement; a reordered channel may reconstruct
// stale components (though it can also get lucky).
SkCompressionStats replaySkCompression(const VectorClocks& clocks);

// Whether every directed channel delivered its messages in send order: the
// k-th receive on each channel (receives are totally ordered — they share a
// process) carries the k-th send (sends likewise).
bool isChannelFifo(const Computation& comp);

}  // namespace gpd
