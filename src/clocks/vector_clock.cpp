#include "clocks/vector_clock.h"

#include <algorithm>

#include "util/check.h"

namespace gpd {

VectorClocks::VectorClocks(const Computation& c)
    : comp_(&c), n_(c.processCount()) {
  clocks_.assign(static_cast<std::size_t>(c.totalEvents()) * n_, 0);
  // The initial-precedence edges never raise any coordinate above 0, so the
  // happened-before DAG suffices.
  const graph::Dag dag = c.toDagWithoutInitialEdges();
  const auto order = dag.topologicalOrder();
  GPD_CHECK(order.has_value());
  for (int node : *order) {
    const EventId e = c.event(node);
    int* row = &clocks_[static_cast<std::size_t>(node) * n_];
    if (e.index > 0) {
      // Join of the process predecessor and all message senders.
      const int prev = c.node({e.process, e.index - 1});
      const int* prow = &clocks_[static_cast<std::size_t>(prev) * n_];
      std::copy(prow, prow + n_, row);
      for (int m : c.incomingMessages(e)) {
        const EventId s = c.messages()[m].send;
        const int* srow = &clocks_[static_cast<std::size_t>(c.node(s)) * n_];
        for (int p = 0; p < n_; ++p) row[p] = std::max(row[p], srow[p]);
      }
      row[e.process] = e.index;
    }
    // Initial events keep the all-zero row.
  }
}

bool VectorClocks::leq(const EventId& e, const EventId& f) const {
  GPD_DCHECK(comp_->contains(e) && comp_->contains(f));
  if (e == f) return true;
  if (e.isInitial()) {
    // ⊥ precedes every non-initial event; distinct initials are incomparable.
    return !f.isInitial();
  }
  return clock(f, e.process) >= e.index;
}

bool VectorClocks::pairConsistent(const EventId& e, const EventId& f) const {
  if (e.process == f.process) return e.index == f.index;
  return clock(f, e.process) <= e.index && clock(e, f.process) <= f.index;
}

bool VectorClocks::isConsistent(const Cut& cut) const {
  GPD_DCHECK(cut.processes() == n_);
  for (ProcessId p = 0; p < n_; ++p) {
    const EventId e{p, cut.last[p]};
    for (ProcessId q = 0; q < n_; ++q) {
      if (clock(e, q) > cut.last[q]) return false;
    }
  }
  return true;
}

bool VectorClocks::enabled(ProcessId p, const Cut& cut) const {
  const EventId next{p, cut.last[p] + 1};
  GPD_DCHECK(comp_->contains(next));
  for (ProcessId q = 0; q < n_; ++q) {
    if (q != p && clock(next, q) > cut.last[q]) return false;
  }
  return true;
}

Cut VectorClocks::leastConsistentCutThrough(
    const std::vector<EventId>& events) const {
  GPD_CHECK(!events.empty());
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      GPD_CHECK_MSG(pairConsistent(events[i], events[j]),
                    "events are not pairwise consistent");
    }
  }
  Cut cut(std::vector<int>(n_, 0));
  for (const EventId& e : events) {
    for (ProcessId q = 0; q < n_; ++q) {
      cut.last[q] = std::max(cut.last[q], clock(e, q));
    }
    // The cut must pass through e itself.
    cut.last[e.process] = std::max(cut.last[e.process], e.index);
  }
  GPD_CHECK(isConsistent(cut));
  for (const EventId& e : events) GPD_CHECK(cut.passesThrough(e));
  return cut;
}

}  // namespace gpd
