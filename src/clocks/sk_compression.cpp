#include "clocks/sk_compression.h"

#include <algorithm>
#include <map>
#include <utility>

#include "graph/dag.h"
#include "util/check.h"

namespace gpd {

bool isChannelFifo(const Computation& comp) {
  // Per channel, gather (send index, receive index) pairs; FIFO iff sorting
  // by send index also sorts by receive index.
  std::map<std::pair<ProcessId, ProcessId>,
           std::vector<std::pair<int, int>>>
      channels;
  for (const Message& m : comp.messages()) {
    channels[{m.send.process, m.receive.process}].push_back(
        {m.send.index, m.receive.index});
  }
  for (auto& [ch, pairs] : channels) {
    std::sort(pairs.begin(), pairs.end());
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      if (pairs[i].second < pairs[i - 1].second) return false;
    }
  }
  return true;
}

SkCompressionStats replaySkCompression(const VectorClocks& clocks) {
  const Computation& comp = clocks.computation();
  const int n = comp.processCount();
  SkCompressionStats stats;
  stats.exact = true;

  // Per directed channel: the sender's ledger of last-shipped components and
  // the receiver's reconstruction state.
  using Channel = std::pair<ProcessId, ProcessId>;
  std::map<Channel, std::vector<int>> senderLedger;
  std::map<Channel, std::vector<int>> receiverState;
  // Payload per message index: (component, value) pairs.
  std::vector<std::vector<std::pair<int, int>>> payload(comp.messages().size());

  const auto order = comp.toDagWithoutInitialEdges().topologicalOrder();
  GPD_CHECK(order.has_value());
  for (int node : *order) {
    const EventId e = comp.event(node);
    // Sends: ship only the components that changed since this channel's
    // previous message.
    for (int m : comp.outgoingMessages(e)) {
      const Message& msg = comp.messages()[m];
      const Channel ch{msg.send.process, msg.receive.process};
      auto& ledger = senderLedger.try_emplace(ch, std::vector<int>(n, 0)).first
                         ->second;
      ++stats.messages;
      stats.fullComponents += n;
      for (int q = 0; q < n; ++q) {
        const int v = clocks.clock(e, q);
        if (v != ledger[q]) {
          payload[m].push_back({q, v});
          ledger[q] = v;
        }
      }
      stats.sentComponents += payload[m].size();
    }
    // Receives: reconstruct the sender's timestamp from the channel state
    // plus the delta, and check it against the truth. Exact only when the
    // channel delivered in FIFO order (the technique's classical
    // requirement).
    for (int m : comp.incomingMessages(e)) {
      const Message& msg = comp.messages()[m];
      const Channel ch{msg.send.process, msg.receive.process};
      auto& state = receiverState.try_emplace(ch, std::vector<int>(n, 0)).first
                        ->second;
      for (const auto& [q, v] : payload[m]) state[q] = v;
      for (int q = 0; q < n; ++q) {
        if (state[q] != clocks.clock(msg.send, q)) {
          stats.exact = false;
          break;
        }
      }
    }
  }
  return stats;
}

}  // namespace gpd
