// Fidge–Mattern vector clocks over a computation (paper Sec. 2).
//
// V(e)[p] is the largest index of an event on process p that causally
// precedes-or-equals e (0 when only the initial event ⊥ₚ does). All of the
// paper's order-theoretic tests reduce to O(1) or O(n) clock comparisons:
//
//   e ≤ f                      ⟺  V(f)[proc(e)] ≥ idx(e)          (non-initial e)
//   succ(e) ≤ f                ⟺  V(f)[proc(e)] ≥ idx(e) + 1
//   e, f consistent (Sec. 2.2) ⟺  V(f)[proc(e)] ≤ idx(e) ∧ V(e)[proc(f)] ≤ idx(f)
//   cut C consistent           ⟺  ∀p,q: V(C[p]@p)[q] ≤ C[q]
#pragma once

#include <vector>

#include "computation/computation.h"
#include "computation/cut.h"
#include "computation/event.h"

namespace gpd {

class VectorClocks {
 public:
  explicit VectorClocks(const Computation& c);

  const Computation& computation() const { return *comp_; }

  // V(e)[p].
  int clock(const EventId& e, ProcessId p) const {
    return clocks_[static_cast<std::size_t>(comp_->node(e)) * n_ + p];
  }

  // The full timestamp of e, as sent on the wire by the online monitor.
  std::vector<int> clockVector(const EventId& e) const {
    const int* row = &clocks_[static_cast<std::size_t>(comp_->node(e)) * n_];
    return std::vector<int>(row, row + n_);
  }

  // e ≤ f in the computation's partial order (reflexive).
  bool leq(const EventId& e, const EventId& f) const;

  // e ≺ f (irreflexive).
  bool precedes(const EventId& e, const EventId& f) const {
    return !(e == f) && leq(e, f);
  }

  // Independent (incomparable) events, paper Sec. 2.2.
  bool concurrent(const EventId& e, const EventId& f) const {
    return !(e == f) && !leq(e, f) && !leq(f, e);
  }

  // Some consistent cut passes through both e and f (paper Sec. 2.2:
  // inconsistent iff succ(e) ≤ f or succ(f) ≤ e). For events on the same
  // process this requires e == f.
  bool pairConsistent(const EventId& e, const EventId& f) const;

  // succ(e) ≤ f, the elimination test of the CPDHB algorithm family. False
  // when e is the last event of its process.
  bool succLeq(const EventId& e, const EventId& f) const {
    return clock(f, e.process) >= e.index + 1;
  }

  // Cut consistency (paper Sec. 2.2). O(n²).
  bool isConsistent(const Cut& cut) const;

  // Whether the next event of process p after `cut` may execute: all its
  // causal predecessors outside p are inside the cut. Requires the event
  // {p, cut.last[p]+1} to exist.
  bool enabled(ProcessId p, const Cut& cut) const;

  // The least consistent cut that passes through all the given events, i.e.
  // join of their causal histories. Precondition: the events are pairwise
  // consistent (checked).
  Cut leastConsistentCutThrough(const std::vector<EventId>& events) const;

 private:
  const Computation* comp_;
  int n_;
  std::vector<int> clocks_;  // node-major, n_ entries per event
};

}  // namespace gpd
