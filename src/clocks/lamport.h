// Lamport logical clocks.
//
// Included as the classic weaker timestamping mechanism (Lamport 1978, the
// paper's reference [13]): L is consistent with the causal order
// (e ≺ f ⟹ L(e) < L(f)) but cannot decide concurrency — the A2 ablation
// bench contrasts it with vector clocks.
#pragma once

#include <vector>

#include "computation/computation.h"

namespace gpd {

// Returns L indexed by Computation::node(); initial events get 0 and every
// other event gets 1 + max over its immediate causal predecessors.
std::vector<int> lamportClocks(const Computation& c);

}  // namespace gpd
