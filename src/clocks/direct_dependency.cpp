#include "clocks/direct_dependency.h"

#include <algorithm>

#include "util/check.h"

namespace gpd {

DirectDependencyClocks::DirectDependencyClocks(const Computation& c)
    : comp_(&c), n_(c.processCount()) {
  direct_.assign(static_cast<std::size_t>(c.totalEvents()) * n_, -1);
  for (ProcessId p = 0; p < n_; ++p) {
    for (int i = 0; i < c.eventCount(p); ++i) {
      const EventId e{p, i};
      int* row = &direct_[static_cast<std::size_t>(c.node(e)) * n_];
      row[p] = i;
      // Process order is a direct dependency on the predecessor only via the
      // own component; message receipt records the sender's event index.
      for (int m : c.incomingMessages(e)) {
        const EventId s = c.messages()[m].send;
        row[s.process] = std::max(row[s.process], s.index);
      }
    }
  }
}

std::vector<int> DirectDependencyClocks::reconstructClock(
    const EventId& e) const {
  GPD_CHECK(comp_->contains(e));
  // Work-list closure: start from e's direct row and fold in the direct
  // rows of every dependency discovered, walking each process's prefix.
  std::vector<int> clock(n_, 0);
  std::vector<int> frontier(n_, -1);  // deepest index of p already folded
  clock[e.process] = e.index;
  std::vector<EventId> work{e};
  while (!work.empty()) {
    const EventId cur = work.back();
    work.pop_back();
    for (ProcessId q = 0; q < n_; ++q) {
      const int d = direct(cur, q);
      if (d <= frontier[q]) continue;
      // Every event of q up to index d is in the history; their direct rows
      // must be folded too (but each only once).
      for (int i = frontier[q] + 1; i <= d; ++i) work.push_back({q, i});
      frontier[q] = d;
      clock[q] = std::max(clock[q], d);
    }
  }
  return clock;
}

}  // namespace gpd
