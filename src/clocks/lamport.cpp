#include "clocks/lamport.h"

#include <algorithm>

#include "util/check.h"

namespace gpd {

std::vector<int> lamportClocks(const Computation& c) {
  std::vector<int> clock(c.totalEvents(), 0);
  const graph::Dag dag = c.toDagWithoutInitialEdges();
  const auto order = dag.topologicalOrder();
  GPD_CHECK(order.has_value());
  for (int node : *order) {
    const EventId e = c.event(node);
    if (e.isInitial()) continue;
    int best = clock[c.node({e.process, e.index - 1})];
    for (int m : c.incomingMessages(e)) {
      best = std::max(best, clock[c.node(c.messages()[m].send)]);
    }
    clock[node] = best + 1;
  }
  return clock;
}

}  // namespace gpd
