// Exhaustive exploration of the lattice of consistent cuts.
//
// This is the Cooper–Marzullo style baseline (paper reference [5]): it
// decides possibly(φ) and definitely(φ) for *arbitrary* global predicates by
// breadth-first search over consistent cuts, level by level. Exponential in
// the number of processes — the whole point of the paper's algorithms is to
// avoid it — but exact, so it is the ground truth every efficient detector
// is validated against, and the comparison baseline in the benches.
//
// Every entry point has a budgeted form (control/budget.h): the BFS loop
// charges one cut per visit/expansion and reports its live frontier bytes
// per level, so a wall-clock deadline, a cut cap, or a frontier-memory cap
// turns an exponential blowup into an explicit incomplete result instead of
// a hang or an OOM.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "clocks/vector_clock.h"
#include "computation/computation.h"
#include "computation/cut.h"
#include "control/budget.h"
#include "par/pool.h"

namespace gpd::lattice {

// A global predicate as a boolean function of a consistent cut (paper
// Sec. 2.3). Variable-based predicate classes adapt to this via
// predicates/eval.h.
using CutPredicate = std::function<bool(const Cut&)>;

// Restriction of the BFS to a sublattice (the slice-first pre-pass): called
// with the advanced process and the successor cut; returning false prunes
// that successor from the frontier. Soundness is the caller's business — the
// BFS then only covers the cuts reachable through admitted successors (for a
// slice restriction: every cut whose events are all included and that lies
// below the slice top, which contains every satisfying cut of any predicate
// implying the sliced one). Must be safe to call concurrently in the
// parallel forms.
using CutAdmit = std::function<bool(ProcessId, const Cut&)>;

// How an exploration ended. Callers that stop the visit early (searches)
// must be able to tell their own stop from true exhaustion — and both from
// a budget stop, which leaves part of the lattice unexamined.
enum class ExploreEnd {
  Exhausted,        // every consistent cut was visited
  VisitorStopped,   // visit returned false
  BudgetExhausted,  // the budget tripped; the lattice was NOT covered
};

struct ExploreResult {
  std::uint64_t cutsVisited = 0;
  ExploreEnd end = ExploreEnd::Exhausted;
  // Widest BFS frontier observed (cuts of one level plus the next level
  // under construction) — the measured signal behind memory budgets.
  std::uint64_t peakFrontierCuts = 0;
  std::uint64_t peakFrontierBytes = 0;
};

// Visits every consistent cut exactly once in level order (level = number of
// non-initial events). Stops early when `visit` returns false
// (VisitorStopped) or when the budget trips (BudgetExhausted); the result
// separates the two from genuine exhaustion.
// `restrict` (optional) prunes successors from the frontier; the restricted
// BFS visits, level by level, exactly the full BFS's visit order filtered to
// the admitted region (the admitted sublattice's generator sets coincide,
// so the relative order of common cuts is preserved).
ExploreResult exploreConsistentCuts(const VectorClocks& clocks,
                                    const std::function<bool(const Cut&)>& visit,
                                    control::Budget* budget = nullptr,
                                    const CutAdmit* restriction = nullptr);

// Back-compat wrapper: the visit count of an unbudgeted exploration.
std::uint64_t forEachConsistentCut(const VectorClocks& clocks,
                                   const std::function<bool(const Cut&)>& visit);

// Three-valued possibly(φ) search: `complete` is true when the answer is
// exact (a witness was found, or the whole lattice was searched); false
// means the budget stopped the search first — no witness is *not* a "no".
struct CutSearchResult {
  std::optional<Cut> witness;
  bool complete = true;
  ExploreResult explore;
};

CutSearchResult findSatisfyingCutBudgeted(const VectorClocks& clocks,
                                          const CutPredicate& phi,
                                          control::Budget* budget = nullptr,
                                          const CutAdmit* restriction = nullptr);

// Level-synchronous parallel form of findSatisfyingCutBudgeted: pool
// workers scan disjoint contiguous slices of each antichain frontier and
// their per-worker next-frontiers merge back in slice order, reproducing
// the sequential BFS frontier order exactly. The witness is the frontier's
// lowest-position satisfying cut (not the first finisher's), so the
// verdict, witness, and complete flag are bit-identical to the sequential
// search for any thread count under count/frontier budgets; cutsVisited
// may differ once the short-circuit races the scan. A cut budget caps each
// frontier to the exact prefix the sequential scan would have charged
// before its CutLimit latch. phi must be safe to call concurrently (the
// library's variable-based predicates are: evaluation is pure const
// reads of the trace).
CutSearchResult findSatisfyingCutParallel(const VectorClocks& clocks,
                                          const CutPredicate& phi,
                                          par::Pool& pool,
                                          control::Budget* budget = nullptr,
                                          const CutAdmit* restriction = nullptr);

// possibly(φ): some consistent cut satisfies φ. Returns a witness cut.
std::optional<Cut> findSatisfyingCut(const VectorClocks& clocks,
                                     const CutPredicate& phi);

bool possiblyExhaustive(const VectorClocks& clocks, const CutPredicate& phi);

// Three-valued definitely(φ): `decided` is false when the budget stopped
// the ¬φ-path search before it could prove either direction.
struct DefinitelyDecision {
  bool decided = true;
  bool holds = false;
  ExploreResult explore;
};

DefinitelyDecision definitelyExhaustiveBudgeted(const VectorClocks& clocks,
                                                const CutPredicate& phi,
                                                control::Budget* budget = nullptr);

// Parallel form of definitelyExhaustiveBudgeted with the same slice-order
// partitioning and determinism contract as findSatisfyingCutParallel.
DefinitelyDecision definitelyExhaustiveParallel(const VectorClocks& clocks,
                                                const CutPredicate& phi,
                                                par::Pool& pool,
                                                control::Budget* budget = nullptr);

// definitely(φ): every run passes through a cut satisfying φ. Equivalent to:
// no monotone path of ¬φ-cuts from the initial to the final cut.
bool definitelyExhaustive(const VectorClocks& clocks, const CutPredicate& phi);

struct LatticeStats {
  std::uint64_t cutCount = 0;   // number of consistent cuts counted so far
  int levels = 0;               // height of the lattice (final level + 1)
  std::uint64_t maxWidth = 0;   // widest level
  bool complete = true;         // false when a budget stopped the BFS early
};

// Counts the lattice level by level. The lattice can be exponential in the
// computation (PAPER.md), so a caller that is not prepared to wait must pass
// a Budget: each counted cut is charged as one cut, and when the budget
// trips the partial stats come back with complete == false.
LatticeStats latticeStats(const VectorClocks& clocks,
                          control::Budget* budget = nullptr);

}  // namespace gpd::lattice
