// Exhaustive exploration of the lattice of consistent cuts.
//
// This is the Cooper–Marzullo style baseline (paper reference [5]): it
// decides possibly(φ) and definitely(φ) for *arbitrary* global predicates by
// breadth-first search over consistent cuts, level by level. Exponential in
// the number of processes — the whole point of the paper's algorithms is to
// avoid it — but exact, so it is the ground truth every efficient detector
// is validated against, and the comparison baseline in the benches.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "clocks/vector_clock.h"
#include "computation/computation.h"
#include "computation/cut.h"

namespace gpd::lattice {

// A global predicate as a boolean function of a consistent cut (paper
// Sec. 2.3). Variable-based predicate classes adapt to this via
// predicates/eval.h.
using CutPredicate = std::function<bool(const Cut&)>;

// Visits every consistent cut exactly once in level order (level = number of
// non-initial events). Stops early when `visit` returns false. Returns the
// number of cuts visited.
std::uint64_t forEachConsistentCut(const VectorClocks& clocks,
                                   const std::function<bool(const Cut&)>& visit);

// possibly(φ): some consistent cut satisfies φ. Returns a witness cut.
std::optional<Cut> findSatisfyingCut(const VectorClocks& clocks,
                                     const CutPredicate& phi);

bool possiblyExhaustive(const VectorClocks& clocks, const CutPredicate& phi);

// definitely(φ): every run passes through a cut satisfying φ. Equivalent to:
// no monotone path of ¬φ-cuts from the initial to the final cut.
bool definitelyExhaustive(const VectorClocks& clocks, const CutPredicate& phi);

struct LatticeStats {
  std::uint64_t cutCount = 0;   // number of consistent cuts
  int levels = 0;               // height of the lattice (final level + 1)
  std::uint64_t maxWidth = 0;   // widest level
};

LatticeStats latticeStats(const VectorClocks& clocks);

}  // namespace gpd::lattice
