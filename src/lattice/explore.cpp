#include "lattice/explore.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace gpd::lattice {

namespace {

// Expands `cut` by every enabled event, appending the successors that pass
// `admit` (called with the advanced process) and were not seen before to
// `next`.
template <typename Admit>
void expand(const VectorClocks& clocks, const Cut& cut,
            std::unordered_set<Cut>& seen, std::vector<Cut>& next,
            const Admit& admit) {
  const Computation& comp = clocks.computation();
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    if (cut.last[p] + 1 >= comp.eventCount(p)) continue;
    if (!clocks.enabled(p, cut)) continue;
    Cut succ = cut;
    ++succ.last[p];
    if (!admit(p, succ)) continue;
    if (seen.insert(succ).second) next.push_back(succ);
  }
}

constexpr auto kAdmitAll = [](ProcessId, const Cut&) { return true; };

// Approximate live bytes of one stored cut (vector header + components).
std::uint64_t cutBytes(const Computation& comp) {
  return sizeof(Cut) +
         static_cast<std::uint64_t>(comp.processCount()) * sizeof(int);
}

// Records one BFS level's live frontier (current level + next level under
// construction) in `result` and charges the budget. Returns false when the
// frontier limit trips.
bool noteFrontier(ExploreResult& result, std::uint64_t perCut,
                  std::uint64_t liveCuts, control::Budget* budget) {
  result.peakFrontierCuts = std::max(result.peakFrontierCuts, liveCuts);
  const std::uint64_t liveBytes = liveCuts * perCut;
  result.peakFrontierBytes = std::max(result.peakFrontierBytes, liveBytes);
  if (budget != nullptr && !budget->noteFrontierBytes(liveBytes)) {
    result.end = ExploreEnd::BudgetExhausted;
    return false;
  }
  return true;
}

// Publishes one finished exploration to the metrics registry. Recorded
// once per run (not per cut) so the BFS hot loop carries no extra code.
void recordExploration(const char* what, const ExploreResult& result) {
  (void)what;
  (void)result;
  GPD_OBS_COUNTER_ADD("lattice_explorations", 1);
  GPD_OBS_COUNTER_ADD("cuts_enumerated", result.cutsVisited);
  GPD_OBS_GAUGE_MAX("frontier_bytes_peak", result.peakFrontierBytes);
  GPD_OBS_GAUGE_MAX("frontier_cuts_peak", result.peakFrontierCuts);
}

const char* toString(ExploreEnd end) {
  switch (end) {
    case ExploreEnd::Exhausted:
      return "exhausted";
    case ExploreEnd::VisitorStopped:
      return "visitor-stopped";
    case ExploreEnd::BudgetExhausted:
      return "budget-exhausted";
  }
  return "?";
}

}  // namespace

ExploreResult exploreConsistentCuts(
    const VectorClocks& clocks, const std::function<bool(const Cut&)>& visit,
    control::Budget* budget, const CutAdmit* restriction) {
  const auto admit = [&](ProcessId p, const Cut& succ) {
    return restriction == nullptr || (*restriction)(p, succ);
  };
  GPD_TRACE_SPAN_NAMED(span, "lattice.explore");
  const Computation& comp = clocks.computation();
  const std::uint64_t perCut = cutBytes(comp);
  ExploreResult result;
  // One exit path annotates and records, whichever way the BFS ends —
  // including a budget/cancel unwind (the span closes via RAII regardless).
  const auto finish = [&]() -> ExploreResult& {
    span.attrInt("cuts", static_cast<std::int64_t>(result.cutsVisited));
    span.attrStr("end", toString(result.end));
    recordExploration("explore", result);
    return result;
  };
  std::vector<Cut> level{initialCut(comp)};
  while (!level.empty()) {
    std::unordered_set<Cut> seen;
    std::vector<Cut> next;
    for (const Cut& cut : level) {
      if (budget != nullptr && !budget->chargeCut()) {
        result.end = ExploreEnd::BudgetExhausted;
        return finish();
      }
      ++result.cutsVisited;
      if (!visit(cut)) {
        result.end = ExploreEnd::VisitorStopped;
        return finish();
      }
      expand(clocks, cut, seen, next, admit);
    }
    if (!noteFrontier(result, perCut, level.size() + next.size(), budget)) {
      return finish();
    }
    level = std::move(next);
  }
  return finish();
}

std::uint64_t forEachConsistentCut(
    const VectorClocks& clocks, const std::function<bool(const Cut&)>& visit) {
  return exploreConsistentCuts(clocks, visit, nullptr).cutsVisited;
}

CutSearchResult findSatisfyingCutBudgeted(const VectorClocks& clocks,
                                          const CutPredicate& phi,
                                          control::Budget* budget,
                                          const CutAdmit* restriction) {
  CutSearchResult result;
  result.explore = exploreConsistentCuts(
      clocks,
      [&](const Cut& cut) {
        if (phi(cut)) {
          result.witness = cut;
          return false;
        }
        return true;
      },
      budget, restriction);
  // Exact iff a witness surfaced or the whole lattice was examined.
  result.complete = result.witness.has_value() ||
                    result.explore.end == ExploreEnd::Exhausted;
  return result;
}

CutSearchResult findSatisfyingCutParallel(const VectorClocks& clocks,
                                          const CutPredicate& phi,
                                          par::Pool& pool,
                                          control::Budget* budget,
                                          const CutAdmit* restriction) {
  const auto admit = [&](ProcessId p, const Cut& succ) {
    return restriction == nullptr || (*restriction)(p, succ);
  };
  GPD_TRACE_SPAN_NAMED(span, "lattice.explore_par");
  const int workers = pool.threads();
  span.attrInt("threads", workers);
  const Computation& comp = clocks.computation();
  const std::uint64_t perCut = cutBytes(comp);
  CutSearchResult result;
  ExploreResult& ex = result.explore;
  const auto finish = [&]() -> CutSearchResult& {
    span.attrInt("cuts", static_cast<std::int64_t>(ex.cutsVisited));
    span.attrStr("end", toString(ex.end));
    recordExploration("explore", ex);
    result.complete =
        result.witness.has_value() || ex.end == ExploreEnd::Exhausted;
    return result;
  };

  std::vector<Cut> level{initialCut(comp)};
  std::vector<std::vector<Cut>> nexts(static_cast<std::size_t>(workers));
  std::vector<std::uint64_t> visited(static_cast<std::size_t>(workers), 0);
  while (!level.empty()) {
    // Cap this frontier to the exact prefix the sequential scan would have
    // charged before its CutLimit latch: positions past `eligible` are the
    // cuts the sequential loop never reached.
    const std::uint64_t eligible = std::min<std::uint64_t>(
        level.size(),
        budget != nullptr ? budget->remainingCuts() : UINT64_MAX);
    std::atomic<std::uint64_t> bestPos{UINT64_MAX};
    std::atomic<bool> stopped{false};
    pool.run([&](int w) {
      const std::uint64_t begin =
          eligible * static_cast<std::uint64_t>(w) /
          static_cast<std::uint64_t>(workers);
      const std::uint64_t endPos =
          eligible * static_cast<std::uint64_t>(w + 1) /
          static_cast<std::uint64_t>(workers);
      if (begin >= endPos) return;
      GPD_TRACE_SPAN_NAMED(wspan, "par.lattice_worker");
      wspan.attrInt("worker", w);
      std::unordered_set<Cut> seen;
      std::vector<Cut>& next = nexts[static_cast<std::size_t>(w)];
      for (std::uint64_t pos = begin; pos < endPos; ++pos) {
        // A satisfying cut at a lower position makes everything above it
        // moot; the watermark only ever holds genuine witnesses, so no
        // position below the eventual lowest one is ever skipped.
        if (pos > bestPos.load(std::memory_order_relaxed) ||
            stopped.load(std::memory_order_relaxed)) {
          return;
        }
        if (budget != nullptr && !budget->chargeCut()) {
          stopped.store(true, std::memory_order_relaxed);
          return;
        }
        ++visited[static_cast<std::size_t>(w)];
        const Cut& cut = level[pos];
        if (phi(cut)) {
          std::uint64_t cur = bestPos.load(std::memory_order_relaxed);
          while (pos < cur && !bestPos.compare_exchange_weak(
                                  cur, pos, std::memory_order_relaxed)) {
          }
          return;
        }
        expand(clocks, cut, seen, next, admit);
      }
    });
    for (std::uint64_t& count : visited) {
      ex.cutsVisited += count;
      count = 0;
    }
    const std::uint64_t best = bestPos.load(std::memory_order_relaxed);
    if (best != UINT64_MAX) {
      result.witness = level[best];
      ex.end = ExploreEnd::VisitorStopped;
      return finish();
    }
    if (stopped.load(std::memory_order_relaxed)) {
      ex.end = ExploreEnd::BudgetExhausted;
      return finish();
    }
    if (eligible < level.size()) {
      // The sequential scan's next charge would have latched CutLimit;
      // reproduce that latch so the reported StopReason matches.
      if (budget != nullptr) budget->chargeCut();
      ex.end = ExploreEnd::BudgetExhausted;
      return finish();
    }
    // Ordered merge: slices are contiguous and ascending, so concatenating
    // the per-worker next-frontiers in worker order walks the successors in
    // the sequential generation order; first-occurrence dedup then yields
    // exactly the sequential next level.
    std::unordered_set<Cut> seen;
    std::vector<Cut> next;
    for (std::vector<Cut>& part : nexts) {
      for (Cut& cut : part) {
        if (seen.insert(cut).second) next.push_back(std::move(cut));
      }
      part.clear();
    }
    if (!noteFrontier(ex, perCut, level.size() + next.size(), budget)) {
      return finish();
    }
    level = std::move(next);
  }
  return finish();
}

std::optional<Cut> findSatisfyingCut(const VectorClocks& clocks,
                                     const CutPredicate& phi) {
  return findSatisfyingCutBudgeted(clocks, phi, nullptr).witness;
}

bool possiblyExhaustive(const VectorClocks& clocks, const CutPredicate& phi) {
  return findSatisfyingCut(clocks, phi).has_value();
}

DefinitelyDecision definitelyExhaustiveBudgeted(const VectorClocks& clocks,
                                                const CutPredicate& phi,
                                                control::Budget* budget) {
  // A run avoids φ iff it is a monotone path of ¬φ-cuts from ⊥ to ⊤.
  DefinitelyDecision decision;
  const Computation& comp = clocks.computation();
  const std::uint64_t perCut = cutBytes(comp);
  const Cut bottom = initialCut(comp);
  const Cut top = finalCut(comp);
  if (phi(bottom)) {  // every run starts at ⊥
    decision.holds = true;
    return decision;
  }
  if (bottom == top) {
    decision.holds = false;
    return decision;
  }
  std::vector<Cut> level{bottom};
  const auto notPhi = [&](ProcessId, const Cut& c) { return !phi(c); };
  while (!level.empty()) {
    std::unordered_set<Cut> seen;
    std::vector<Cut> next;
    for (const Cut& cut : level) {
      if (budget != nullptr && !budget->chargeCut()) {
        decision.decided = false;
        decision.explore.end = ExploreEnd::BudgetExhausted;
        return decision;
      }
      ++decision.explore.cutsVisited;
      expand(clocks, cut, seen, next, notPhi);
    }
    for (const Cut& cut : next) {
      if (cut == top) {  // an all-¬φ run exists
        decision.holds = false;
        decision.explore.end = ExploreEnd::VisitorStopped;
        return decision;
      }
    }
    if (!noteFrontier(decision.explore, perCut, level.size() + next.size(),
                      budget)) {
      decision.decided = false;
      return decision;
    }
    level = std::move(next);
  }
  decision.holds = true;
  return decision;
}

DefinitelyDecision definitelyExhaustiveParallel(const VectorClocks& clocks,
                                                const CutPredicate& phi,
                                                par::Pool& pool,
                                                control::Budget* budget) {
  GPD_TRACE_SPAN_NAMED(span, "lattice.definitely_par");
  const int workers = pool.threads();
  span.attrInt("threads", workers);
  DefinitelyDecision decision;
  const Computation& comp = clocks.computation();
  const std::uint64_t perCut = cutBytes(comp);
  const Cut bottom = initialCut(comp);
  const Cut top = finalCut(comp);
  if (phi(bottom)) {  // every run starts at ⊥
    decision.holds = true;
    return decision;
  }
  if (bottom == top) {
    decision.holds = false;
    return decision;
  }
  const auto notPhi = [&](ProcessId, const Cut& c) { return !phi(c); };
  std::vector<Cut> level{bottom};
  std::vector<std::vector<Cut>> nexts(static_cast<std::size_t>(workers));
  std::vector<std::uint64_t> visited(static_cast<std::size_t>(workers), 0);
  while (!level.empty()) {
    const std::uint64_t eligible = std::min<std::uint64_t>(
        level.size(),
        budget != nullptr ? budget->remainingCuts() : UINT64_MAX);
    std::atomic<bool> stopped{false};
    pool.run([&](int w) {
      const std::uint64_t begin =
          eligible * static_cast<std::uint64_t>(w) /
          static_cast<std::uint64_t>(workers);
      const std::uint64_t endPos =
          eligible * static_cast<std::uint64_t>(w + 1) /
          static_cast<std::uint64_t>(workers);
      if (begin >= endPos) return;
      GPD_TRACE_SPAN_NAMED(wspan, "par.lattice_worker");
      wspan.attrInt("worker", w);
      std::unordered_set<Cut> seen;
      std::vector<Cut>& next = nexts[static_cast<std::size_t>(w)];
      for (std::uint64_t pos = begin; pos < endPos; ++pos) {
        if (stopped.load(std::memory_order_relaxed)) return;
        if (budget != nullptr && !budget->chargeCut()) {
          stopped.store(true, std::memory_order_relaxed);
          return;
        }
        ++visited[static_cast<std::size_t>(w)];
        expand(clocks, level[pos], seen, next, notPhi);
      }
    });
    for (std::uint64_t& count : visited) {
      decision.explore.cutsVisited += count;
      count = 0;
    }
    if (stopped.load(std::memory_order_relaxed)) {
      decision.decided = false;
      decision.explore.end = ExploreEnd::BudgetExhausted;
      return decision;
    }
    if (eligible < level.size()) {
      if (budget != nullptr) budget->chargeCut();  // latch CutLimit
      decision.decided = false;
      decision.explore.end = ExploreEnd::BudgetExhausted;
      return decision;
    }
    std::unordered_set<Cut> seen;
    std::vector<Cut> next;
    for (std::vector<Cut>& part : nexts) {
      for (Cut& cut : part) {
        if (seen.insert(cut).second) next.push_back(std::move(cut));
      }
      part.clear();
    }
    for (const Cut& cut : next) {
      if (cut == top) {  // an all-¬φ run exists
        decision.holds = false;
        decision.explore.end = ExploreEnd::VisitorStopped;
        return decision;
      }
    }
    if (!noteFrontier(decision.explore, perCut, level.size() + next.size(),
                      budget)) {
      decision.decided = false;
      return decision;
    }
    level = std::move(next);
  }
  decision.holds = true;
  return decision;
}

bool definitelyExhaustive(const VectorClocks& clocks, const CutPredicate& phi) {
  const DefinitelyDecision decision =
      definitelyExhaustiveBudgeted(clocks, phi, nullptr);
  GPD_CHECK(decision.decided);
  return decision.holds;
}

LatticeStats latticeStats(const VectorClocks& clocks,
                          control::Budget* budget) {
  LatticeStats stats;
  const Computation& comp = clocks.computation();
  std::vector<Cut> level{initialCut(comp)};
  while (!level.empty()) {
    stats.cutCount += level.size();
    stats.maxWidth = std::max<std::uint64_t>(stats.maxWidth, level.size());
    ++stats.levels;
    std::unordered_set<Cut> seen;
    std::vector<Cut> next;
    for (const Cut& cut : level) {
      if (budget != nullptr && !budget->chargeCut()) {
        stats.complete = false;
        return stats;
      }
      expand(clocks, cut, seen, next, kAdmitAll);
    }
    level = std::move(next);
  }
  return stats;
}

}  // namespace gpd::lattice
