#include "lattice/explore.h"

#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace gpd::lattice {

namespace {

// Expands `cut` by every enabled event, appending the successors that pass
// `admit` and were not seen before to `next`.
template <typename Admit>
void expand(const VectorClocks& clocks, const Cut& cut,
            std::unordered_set<Cut>& seen, std::vector<Cut>& next,
            const Admit& admit) {
  const Computation& comp = clocks.computation();
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    if (cut.last[p] + 1 >= comp.eventCount(p)) continue;
    if (!clocks.enabled(p, cut)) continue;
    Cut succ = cut;
    ++succ.last[p];
    if (!admit(succ)) continue;
    if (seen.insert(succ).second) next.push_back(succ);
  }
}

}  // namespace

std::uint64_t forEachConsistentCut(
    const VectorClocks& clocks, const std::function<bool(const Cut&)>& visit) {
  const Computation& comp = clocks.computation();
  std::uint64_t visited = 0;
  std::vector<Cut> level{initialCut(comp)};
  while (!level.empty()) {
    std::unordered_set<Cut> seen;
    std::vector<Cut> next;
    for (const Cut& cut : level) {
      ++visited;
      if (!visit(cut)) return visited;
      expand(clocks, cut, seen, next, [](const Cut&) { return true; });
    }
    level = std::move(next);
  }
  return visited;
}

std::optional<Cut> findSatisfyingCut(const VectorClocks& clocks,
                                     const CutPredicate& phi) {
  std::optional<Cut> witness;
  forEachConsistentCut(clocks, [&](const Cut& cut) {
    if (phi(cut)) {
      witness = cut;
      return false;
    }
    return true;
  });
  return witness;
}

bool possiblyExhaustive(const VectorClocks& clocks, const CutPredicate& phi) {
  return findSatisfyingCut(clocks, phi).has_value();
}

bool definitelyExhaustive(const VectorClocks& clocks, const CutPredicate& phi) {
  // A run avoids φ iff it is a monotone path of ¬φ-cuts from ⊥ to ⊤.
  const Computation& comp = clocks.computation();
  const Cut bottom = initialCut(comp);
  const Cut top = finalCut(comp);
  if (phi(bottom)) return true;  // every run starts at ⊥
  if (bottom == top) return false;
  std::vector<Cut> level{bottom};
  const auto notPhi = [&](const Cut& c) { return !phi(c); };
  while (!level.empty()) {
    std::unordered_set<Cut> seen;
    std::vector<Cut> next;
    for (const Cut& cut : level) {
      expand(clocks, cut, seen, next, notPhi);
    }
    for (const Cut& cut : next) {
      if (cut == top) return false;  // an all-¬φ run exists
    }
    level = std::move(next);
  }
  return true;
}

LatticeStats latticeStats(const VectorClocks& clocks) {
  LatticeStats stats;
  const Computation& comp = clocks.computation();
  std::vector<Cut> level{initialCut(comp)};
  while (!level.empty()) {
    stats.cutCount += level.size();
    stats.maxWidth = std::max<std::uint64_t>(stats.maxWidth, level.size());
    ++stats.levels;
    std::unordered_set<Cut> seen;
    std::vector<Cut> next;
    for (const Cut& cut : level) {
      expand(clocks, cut, seen, next, [](const Cut&) { return true; });
    }
    level = std::move(next);
  }
  return stats;
}

}  // namespace gpd::lattice
