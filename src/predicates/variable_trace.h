// Per-process variable histories attached to a computation.
//
// The paper's predicates are functions of per-process variables: boolean
// variables for (singular) CNF predicates, integers for relational ones.
// A VariableTrace records, for every event of every process, the value of
// each variable *after* that event executed (index 0 = the value established
// by the initial event). The value of a variable at a cut is its value after
// the last included event of its process.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "computation/computation.h"
#include "computation/cut.h"

namespace gpd {

class VariableTrace {
 public:
  explicit VariableTrace(const Computation& c) : comp_(&c), vars_(c.processCount()) {}

  const Computation& computation() const { return *comp_; }

  // Defines variable `name` on process p. `values[i]` is the value after
  // event (p, i); values.size() must equal eventCount(p). Redefinition is an
  // error.
  void define(ProcessId p, std::string name, std::vector<std::int64_t> values);

  // Convenience: boolean history (stored as 0/1).
  void defineBool(ProcessId p, std::string name, const std::vector<bool>& values);

  bool has(ProcessId p, std::string_view name) const;

  // Names of the variables defined on process p, sorted (deterministic).
  std::vector<std::string> variableNames(ProcessId p) const;

  // A copy of this trace bound to `other`, which must have the same shape
  // (process count and per-process event counts). Used by predicate control:
  // added synchronization edges change the order but not the events, so the
  // variable histories carry over verbatim.
  VariableTrace rebindTo(const Computation& other) const;

  std::int64_t value(ProcessId p, std::string_view name, int eventIndex) const;

  std::int64_t valueAtCut(const Cut& cut, ProcessId p,
                          std::string_view name) const {
    return value(p, name, cut.last[p]);
  }

  // Largest |value_after − value_before| over consecutive events of p —
  // Theorems 4–7 require this to be ≤ 1 for every variable in the sum.
  std::int64_t maxAbsDelta(ProcessId p, std::string_view name) const;

  // Event indices on p where the variable is non-zero (the "true events" of
  // a boolean variable).
  std::vector<int> trueEventIndices(ProcessId p, std::string_view name) const;

 private:
  const std::vector<std::int64_t>& history(ProcessId p,
                                           std::string_view name) const;

  const Computation* comp_;
  std::vector<std::unordered_map<std::string, std::vector<std::int64_t>>> vars_;
};

}  // namespace gpd
