#include "predicates/local.h"

#include <sstream>

#include "util/check.h"

namespace gpd {

bool compare(std::int64_t lhs, Relop op, std::int64_t rhs) {
  switch (op) {
    case Relop::Less:
      return lhs < rhs;
    case Relop::LessEq:
      return lhs <= rhs;
    case Relop::Greater:
      return lhs > rhs;
    case Relop::GreaterEq:
      return lhs >= rhs;
    case Relop::Equal:
      return lhs == rhs;
    case Relop::NotEqual:
      return lhs != rhs;
  }
  GPD_CHECK_MSG(false, "invalid relop");
  return false;
}

std::string toString(Relop op) {
  switch (op) {
    case Relop::Less:
      return "<";
    case Relop::LessEq:
      return "<=";
    case Relop::Greater:
      return ">";
    case Relop::GreaterEq:
      return ">=";
    case Relop::Equal:
      return "==";
    case Relop::NotEqual:
      return "!=";
  }
  return "?";
}

LocalPredicate varTrue(ProcessId p, std::string var) {
  LocalPredicate pred;
  pred.process = p;
  pred.label = var;
  pred.holds = [p, var = std::move(var)](const VariableTrace& t, int idx) {
    return t.value(p, var, idx) != 0;
  };
  return pred;
}

LocalPredicate varFalse(ProcessId p, std::string var) {
  LocalPredicate pred;
  pred.process = p;
  pred.label = "!" + var;
  pred.holds = [p, var = std::move(var)](const VariableTrace& t, int idx) {
    return t.value(p, var, idx) == 0;
  };
  return pred;
}

LocalPredicate varCompare(ProcessId p, std::string var, Relop op,
                          std::int64_t k) {
  LocalPredicate pred;
  pred.process = p;
  std::ostringstream label;
  label << var << ' ' << toString(op) << ' ' << k;
  pred.label = label.str();
  pred.holds = [p, var = std::move(var), op, k](const VariableTrace& t,
                                                int idx) {
    return compare(t.value(p, var, idx), op, k);
  };
  return pred;
}

std::vector<int> trueEvents(const VariableTrace& trace,
                            const LocalPredicate& pred) {
  std::vector<int> out;
  const int count = trace.computation().eventCount(pred.process);
  for (int i = 0; i < count; ++i) {
    if (pred.holds(trace, i)) out.push_back(i);
  }
  return out;
}

}  // namespace gpd
