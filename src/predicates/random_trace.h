// Random variable histories for property tests and benchmarks.
#pragma once

#include <string>

#include "predicates/variable_trace.h"
#include "util/rng.h"

namespace gpd {

// Defines a boolean variable `name` on every process: each event flips or
// holds the value at random; `trueDensity` is the per-event probability of
// being true.
void defineRandomBools(VariableTrace& trace, const std::string& name,
                       double trueDensity, Rng& rng);

// Defines an integer variable on every process whose per-event change is
// uniform in [-maxStep, +maxStep], starting at `initial`.
void defineRandomCounters(VariableTrace& trace, const std::string& name,
                          std::int64_t initial, int maxStep, Rng& rng);

}  // namespace gpd
