#include "predicates/random_trace.h"

#include "util/check.h"

namespace gpd {

void defineRandomBools(VariableTrace& trace, const std::string& name,
                       double trueDensity, Rng& rng) {
  const Computation& comp = trace.computation();
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    std::vector<std::int64_t> values(comp.eventCount(p));
    for (auto& v : values) v = rng.chance(trueDensity) ? 1 : 0;
    trace.define(p, name, std::move(values));
  }
}

void defineRandomCounters(VariableTrace& trace, const std::string& name,
                          std::int64_t initial, int maxStep, Rng& rng) {
  GPD_CHECK(maxStep >= 0);
  const Computation& comp = trace.computation();
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    std::vector<std::int64_t> values(comp.eventCount(p));
    std::int64_t v = initial;
    values[0] = v;
    for (int i = 1; i < comp.eventCount(p); ++i) {
      v += rng.uniform(-maxStep, maxStep);
      values[i] = v;
    }
    trace.define(p, name, std::move(values));
  }
}

}  // namespace gpd
