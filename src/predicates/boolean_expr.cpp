#include "predicates/boolean_expr.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <tuple>

#include "util/check.h"

namespace gpd {

BoolExprPtr BoolExpr::var(ProcessId process, std::string name) {
  GPD_CHECK(process >= 0);
  return BoolExprPtr(
      new BoolExpr(Kind::Var, process, std::move(name), {}));
}

BoolExprPtr BoolExpr::negate(BoolExprPtr e) {
  GPD_CHECK(e != nullptr);
  return BoolExprPtr(new BoolExpr(Kind::Not, -1, "", {std::move(e)}));
}

BoolExprPtr BoolExpr::conjunction(std::vector<BoolExprPtr> es) {
  GPD_CHECK(!es.empty());
  for (const auto& e : es) GPD_CHECK(e != nullptr);
  return BoolExprPtr(new BoolExpr(Kind::And, -1, "", std::move(es)));
}

BoolExprPtr BoolExpr::disjunction(std::vector<BoolExprPtr> es) {
  GPD_CHECK(!es.empty());
  for (const auto& e : es) GPD_CHECK(e != nullptr);
  return BoolExprPtr(new BoolExpr(Kind::Or, -1, "", std::move(es)));
}

bool BoolExpr::evaluate(const VariableTrace& trace, const Cut& cut) const {
  switch (kind_) {
    case Kind::Var:
      return trace.valueAtCut(cut, process_, name_) != 0;
    case Kind::Not:
      return !child()->evaluate(trace, cut);
    case Kind::And:
      for (const auto& c : children_) {
        if (!c->evaluate(trace, cut)) return false;
      }
      return true;
    case Kind::Or:
      for (const auto& c : children_) {
        if (c->evaluate(trace, cut)) return true;
      }
      return false;
  }
  GPD_CHECK(false);
  return false;
}

std::string BoolExpr::toString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::Var:
      os << name_ << "@p" << process_;
      break;
    case Kind::Not:
      os << "!(" << child()->toString() << ')';
      break;
    case Kind::And:
    case Kind::Or: {
      os << '(';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) os << (kind_ == Kind::And ? " & " : " | ");
        os << children_[i]->toString();
      }
      os << ')';
      break;
    }
  }
  return os.str();
}

namespace {

bool literalLess(const BoolLiteral& a, const BoolLiteral& b) {
  return std::tie(a.process, a.var, a.positive) <
         std::tie(b.process, b.var, b.positive);
}

bool literalEq(const BoolLiteral& a, const BoolLiteral& b) {
  return a.process == b.process && a.var == b.var && a.positive == b.positive;
}

// Merges two terms; nullopt when contradictory.
std::optional<DnfTerm> mergeTerms(const DnfTerm& a, const DnfTerm& b) {
  DnfTerm out = a;
  for (const BoolLiteral& lit : b) out.push_back(lit);
  std::sort(out.begin(), out.end(), literalLess);
  out.erase(std::unique(out.begin(), out.end(), literalEq), out.end());
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i].process == out[i + 1].process && out[i].var == out[i + 1].var &&
        out[i].positive != out[i + 1].positive) {
      return std::nullopt;  // x ∧ ¬x
    }
  }
  return out;
}

// DNF of the expression under a polarity (negation pushed inward on the
// fly). Distribution makes the result exponential in the expression, so
// every expansion loop polls keepGoing(); once `*stopped` is set the whole
// recursion unwinds and the caller reports an incomplete expansion.
std::vector<DnfTerm> dnfOf(const BoolExpr& e, bool positive,
                           control::Budget* budget, bool* stopped) {
  if (*stopped) return {};
  switch (e.kind()) {
    case BoolExpr::Kind::Var:
      return {{BoolLiteral{e.process(), e.name(), positive}}};
    case BoolExpr::Kind::Not:
      return dnfOf(*e.child(), !positive, budget, stopped);
    case BoolExpr::Kind::And:
    case BoolExpr::Kind::Or: {
      // Under negation, And behaves as Or and vice versa (De Morgan).
      const bool isAnd = (e.kind() == BoolExpr::Kind::And) == positive;
      if (!isAnd) {
        std::vector<DnfTerm> out;
        for (const auto& c : e.children()) {
          if (budget != nullptr && !budget->keepGoing()) *stopped = true;
          if (*stopped) break;
          for (auto& term : dnfOf(*c, positive, budget, stopped)) {
            out.push_back(std::move(term));
          }
        }
        return out;
      }
      // Conjunction: distribute (cross product of the children's terms).
      std::vector<DnfTerm> acc{DnfTerm{}};
      for (const auto& c : e.children()) {
        const std::vector<DnfTerm> childTerms =
            dnfOf(*c, positive, budget, stopped);
        if (*stopped) break;
        std::vector<DnfTerm> next;
        for (const DnfTerm& a : acc) {
          for (const DnfTerm& b : childTerms) {
            if (budget != nullptr && !budget->keepGoing()) *stopped = true;
            if (*stopped) break;
            if (auto merged = mergeTerms(a, b)) next.push_back(std::move(*merged));
          }
          if (*stopped) break;
        }
        acc = std::move(next);
        if (*stopped || acc.empty()) break;  // stopped or all contradicted
      }
      return acc;
    }
  }
  GPD_CHECK(false);
  return {};
}

}  // namespace

DnfExpansion toDnfBudgeted(const BoolExpr& expr, control::Budget* budget) {
  DnfExpansion out;
  bool stopped = false;
  std::vector<DnfTerm> terms = dnfOf(expr, true, budget, &stopped);
  out.complete = !stopped;
  // Deduplicate identical terms.
  std::sort(terms.begin(), terms.end(),
            [](const DnfTerm& a, const DnfTerm& b) {
              return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                                  b.end(), literalLess);
            });
  terms.erase(std::unique(terms.begin(), terms.end(),
                          [](const DnfTerm& a, const DnfTerm& b) {
                            return a.size() == b.size() &&
                                   std::equal(a.begin(), a.end(), b.begin(),
                                              literalEq);
                          }),
              terms.end());
  out.terms = std::move(terms);
  return out;
}

std::vector<DnfTerm> toDnf(const BoolExpr& expr) {
  return toDnfBudgeted(expr, nullptr).terms;
}

}  // namespace gpd
