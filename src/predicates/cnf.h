// CNF predicates over per-process boolean variables (paper Sec. 2.3/3).
//
// A predicate in CNF is *singular* iff no two clauses contain variables from
// the same process; a singular k-CNF predicate has exactly k literals per
// clause. Singular 1-CNF is exactly the conjunctive predicate class. The
// paper's Theorem 1 shows detection is NP-complete for k ≥ 2; Sections
// 3.2/3.3 give the algorithms implemented in src/detect.
#pragma once

#include <string>
#include <vector>

#include "predicates/variable_trace.h"

namespace gpd {

struct BoolLiteral {
  ProcessId process = 0;
  std::string var;
  bool positive = true;

  bool holds(const VariableTrace& trace, int eventIndex) const {
    return (trace.value(process, var, eventIndex) != 0) == positive;
  }
};

using CnfClause = std::vector<BoolLiteral>;

struct CnfPredicate {
  std::vector<CnfClause> clauses;

  // No two clauses contain variables from the same process.
  bool isSingular() const;

  // Every clause has exactly k literals.
  bool isKCnf(int k) const;

  // The set of processes hosting clause j's variables (duplicates removed).
  std::vector<ProcessId> clauseProcesses(int j) const;

  bool holdsAtCut(const VariableTrace& trace, const Cut& cut) const;

  std::string toString() const;
};

}  // namespace gpd
