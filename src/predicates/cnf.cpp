#include "predicates/cnf.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace gpd {

bool CnfPredicate::isSingular() const {
  std::set<ProcessId> seen;
  for (std::size_t j = 0; j < clauses.size(); ++j) {
    for (ProcessId p : clauseProcesses(static_cast<int>(j))) {
      if (!seen.insert(p).second) return false;
    }
  }
  return true;
}

bool CnfPredicate::isKCnf(int k) const {
  for (const CnfClause& c : clauses) {
    if (static_cast<int>(c.size()) != k) return false;
  }
  return true;
}

std::vector<ProcessId> CnfPredicate::clauseProcesses(int j) const {
  std::vector<ProcessId> out;
  for (const BoolLiteral& l : clauses[j]) out.push_back(l.process);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool CnfPredicate::holdsAtCut(const VariableTrace& trace, const Cut& cut) const {
  for (const CnfClause& clause : clauses) {
    bool sat = false;
    for (const BoolLiteral& l : clause) {
      if (l.holds(trace, cut.last[l.process])) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::string CnfPredicate::toString() const {
  std::ostringstream os;
  for (std::size_t j = 0; j < clauses.size(); ++j) {
    if (j) os << " & ";
    os << '(';
    for (std::size_t i = 0; i < clauses[j].size(); ++i) {
      if (i) os << " | ";
      const BoolLiteral& l = clauses[j][i];
      if (!l.positive) os << '!';
      os << l.var << "@p" << l.process;
    }
    os << ')';
  }
  return os.str();
}

}  // namespace gpd
