#include "predicates/variable_trace.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace gpd {

void VariableTrace::define(ProcessId p, std::string name,
                           std::vector<std::int64_t> values) {
  GPD_CHECK(p >= 0 && p < comp_->processCount());
  GPD_CHECK_MSG(static_cast<int>(values.size()) == comp_->eventCount(p),
                "variable '" << name << "' on p" << p << " has "
                             << values.size() << " values, expected "
                             << comp_->eventCount(p));
  const auto [it, inserted] = vars_[p].emplace(std::move(name), std::move(values));
  GPD_CHECK_MSG(inserted, "variable '" << it->first << "' redefined on p" << p);
}

void VariableTrace::defineBool(ProcessId p, std::string name,
                               const std::vector<bool>& values) {
  std::vector<std::int64_t> ints(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) ints[i] = values[i] ? 1 : 0;
  define(p, std::move(name), std::move(ints));
}

bool VariableTrace::has(ProcessId p, std::string_view name) const {
  GPD_CHECK(p >= 0 && p < comp_->processCount());
  return vars_[p].find(std::string(name)) != vars_[p].end();
}

VariableTrace VariableTrace::rebindTo(const Computation& other) const {
  GPD_CHECK_MSG(other.processCount() == comp_->processCount(),
                "rebind target has a different process count");
  for (ProcessId p = 0; p < comp_->processCount(); ++p) {
    GPD_CHECK_MSG(other.eventCount(p) == comp_->eventCount(p),
                  "rebind target has a different event count on p" << p);
  }
  VariableTrace out(other);
  out.vars_ = vars_;
  return out;
}

std::vector<std::string> VariableTrace::variableNames(ProcessId p) const {
  GPD_CHECK(p >= 0 && p < comp_->processCount());
  std::vector<std::string> names;
  names.reserve(vars_[p].size());
  for (const auto& [name, _] : vars_[p]) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

const std::vector<std::int64_t>& VariableTrace::history(
    ProcessId p, std::string_view name) const {
  GPD_CHECK(p >= 0 && p < comp_->processCount());
  const auto it = vars_[p].find(std::string(name));
  GPD_CHECK_MSG(it != vars_[p].end(),
                "variable '" << name << "' not defined on p" << p);
  return it->second;
}

std::int64_t VariableTrace::value(ProcessId p, std::string_view name,
                                  int eventIndex) const {
  const auto& h = history(p, name);
  GPD_CHECK(eventIndex >= 0 && eventIndex < static_cast<int>(h.size()));
  return h[eventIndex];
}

std::int64_t VariableTrace::maxAbsDelta(ProcessId p,
                                        std::string_view name) const {
  const auto& h = history(p, name);
  std::int64_t best = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    best = std::max(best, std::abs(h[i] - h[i - 1]));
  }
  return best;
}

std::vector<int> VariableTrace::trueEventIndices(ProcessId p,
                                                 std::string_view name) const {
  const auto& h = history(p, name);
  std::vector<int> out;
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (h[i] != 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace gpd
