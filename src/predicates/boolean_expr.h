// Arbitrary boolean expressions over local predicates, and their
// decomposition into conjunctive detections (Stoller–Schneider, the paper's
// reference [15]: reduce a structured predicate to multiple CPDHB
// instances).
//
// An expression is built from per-process boolean variables with ¬, ∧, ∨.
// possibly() distributes over ∨, so converting to DNF — with unsatisfiable
// and per-process-contradictory disjuncts pruned — turns detection into one
// weak-conjunctive detection per disjunct. The DNF can be exponentially
// larger than the expression (detection of arbitrary expressions is
// NP-complete), which is exactly the "practical only if the number of
// generated problems is small" caveat the paper quotes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/budget.h"
#include "predicates/cnf.h"
#include "predicates/variable_trace.h"

namespace gpd {

class BoolExpr;
using BoolExprPtr = std::shared_ptr<const BoolExpr>;

class BoolExpr {
 public:
  enum class Kind { Var, Not, And, Or };

  static BoolExprPtr var(ProcessId process, std::string name);
  static BoolExprPtr negate(BoolExprPtr e);
  static BoolExprPtr conjunction(std::vector<BoolExprPtr> es);
  static BoolExprPtr disjunction(std::vector<BoolExprPtr> es);

  Kind kind() const { return kind_; }
  // Var accessors.
  ProcessId process() const { return process_; }
  const std::string& name() const { return name_; }
  // Not accessor.
  const BoolExprPtr& child() const { return children_.front(); }
  // And/Or accessor.
  const std::vector<BoolExprPtr>& children() const { return children_; }

  bool evaluate(const VariableTrace& trace, const Cut& cut) const;

  std::string toString() const;

 private:
  BoolExpr(Kind kind, ProcessId process, std::string name,
           std::vector<BoolExprPtr> children)
      : kind_(kind),
        process_(process),
        name_(std::move(name)),
        children_(std::move(children)) {}

  Kind kind_;
  ProcessId process_ = -1;
  std::string name_;
  std::vector<BoolExprPtr> children_;
};

// One DNF disjunct: a set of literals (process, variable, polarity). Kept
// satisfiable by construction: no contradictory pair survives pruning.
using DnfTerm = std::vector<BoolLiteral>;

// Negation-normal-form + distribution, pruning contradictory terms and
// deduplicating literals. The result is empty iff the expression is
// unsatisfiable by propositional structure alone.
//
// Distribution is the exponential step, so the budgeted form polls
// Budget::keepGoing() inside every expansion loop (keepGoing does not touch
// the cut/combination meters, keeping detection counts bit-identical across
// budget configurations) and reports complete == false when the budget
// stopped it; the terms produced so far are still well-formed.
struct DnfExpansion {
  std::vector<DnfTerm> terms;
  bool complete = true;
};

DnfExpansion toDnfBudgeted(const BoolExpr& expr, control::Budget* budget);

// Unbudgeted convenience form: runs to completion.
std::vector<DnfTerm> toDnf(const BoolExpr& expr);

}  // namespace gpd
