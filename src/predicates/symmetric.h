// Symmetric predicates over per-process boolean variables (paper Sec. 4.3).
//
// A boolean predicate is symmetric iff it is invariant under permutation of
// its variables, which holds iff it is determined by the *number* of true
// variables: φ(x₁…xₙ) ⟺ Σxᵢ ∈ T for some T ⊆ {0…n} (paper's citation of
// Kohavi). possibly(φ) therefore distributes into the disjunction
// ∨_{t∈T} possibly(Σxᵢ = t), each disjunct decided by the Theorem 7
// exact-sum detector (boolean variables change by at most 1 per event).
#pragma once

#include <string>
#include <vector>

#include "predicates/relational.h"
#include "predicates/variable_trace.h"

namespace gpd {

struct SymmetricPredicate {
  std::vector<SumTerm> vars;    // boolean (0/1) variables
  std::vector<int> trueCounts;  // T: predicate holds iff #true ∈ T
  std::string name;

  int arity() const { return static_cast<int>(vars.size()); }

  bool holdsAtCut(const VariableTrace& trace, const Cut& cut) const;

  // The equivalent disjunction of exact-sum predicates.
  std::vector<SumPredicate> asExactSums() const;
};

// x₁ ⊕ x₂ ⊕ … ⊕ xₙ: an odd number of variables is true.
SymmetricPredicate exclusiveOr(std::vector<SumTerm> vars);

// Neither the true side nor the false side holds a strict majority:
// #true = n/2 (requires even arity to be satisfiable; T is empty otherwise).
SymmetricPredicate absenceOfSimpleMajority(std::vector<SumTerm> vars);

// Neither side reaches two thirds: n/3 < #true < 2n/3 (strict, matching the
// paper's "absence of two-third majority" with ⌈…⌉ bounds).
SymmetricPredicate absenceOfTwoThirdsMajority(std::vector<SumTerm> vars);

// Exactly k variables true ("exactly k tokens").
SymmetricPredicate exactlyK(std::vector<SumTerm> vars, int k);

// Not all variables equal: 0 < #true < n.
SymmetricPredicate notAllEqual(std::vector<SumTerm> vars);

// All variables equal: #true ∈ {0, n}.
SymmetricPredicate allEqual(std::vector<SumTerm> vars);

}  // namespace gpd
