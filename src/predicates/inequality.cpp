#include "predicates/inequality.h"

#include <set>

#include "util/check.h"

namespace gpd {

bool IneqClausePredicate::isSingular() const {
  std::set<ProcessId> seen;
  for (const IneqClause& clause : clauses) {
    std::set<ProcessId> here;
    for (const IneqAtom& a : clause) here.insert(a.process);
    for (ProcessId p : here) {
      if (!seen.insert(p).second) return false;
    }
  }
  return true;
}

bool IneqClausePredicate::holdsAtCut(const VariableTrace& trace,
                                     const Cut& cut) const {
  for (const IneqClause& clause : clauses) {
    bool sat = false;
    for (const IneqAtom& a : clause) {
      if (a.holds(trace, cut.last[a.process])) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

CnfPredicate lowerToCnf(VariableTrace& trace, const IneqClausePredicate& pred,
                        const std::string& prefix) {
  const Computation& comp = trace.computation();
  CnfPredicate cnf;
  for (std::size_t j = 0; j < pred.clauses.size(); ++j) {
    CnfClause clause;
    for (std::size_t i = 0; i < pred.clauses[j].size(); ++i) {
      const IneqAtom& atom = pred.clauses[j][i];
      GPD_CHECK_MSG(atom.relop != Relop::Equal,
                    "Corollary 2 excludes equality atoms");
      const std::string name =
          prefix + "_" + std::to_string(j) + "_" + std::to_string(i);
      std::vector<std::int64_t> values(comp.eventCount(atom.process));
      for (int e = 0; e < comp.eventCount(atom.process); ++e) {
        values[e] = atom.holds(trace, e) ? 1 : 0;
      }
      trace.define(atom.process, name, std::move(values));
      clause.push_back({atom.process, name, /*positive=*/true});
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

}  // namespace gpd
