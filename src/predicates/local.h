// Local predicates (paper Sec. 2.3): boolean functions of a single process's
// variables, evaluated at an event of that process. "True events" of a local
// predicate are the events where it holds; a cut satisfies the predicate iff
// it passes through a true event (equivalently, the last included event of
// the process is true).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "predicates/variable_trace.h"

namespace gpd {

enum class Relop { Less, LessEq, Greater, GreaterEq, Equal, NotEqual };

bool compare(std::int64_t lhs, Relop op, std::int64_t rhs);
std::string toString(Relop op);

struct LocalPredicate {
  ProcessId process = 0;
  std::string label;  // human-readable, e.g. "x3 >= 2"
  std::function<bool(const VariableTrace&, int eventIndex)> holds;

  bool holdsAtCut(const VariableTrace& trace, const Cut& cut) const {
    return holds(trace, cut.last[process]);
  }
};

// Factories for the common shapes.
LocalPredicate varTrue(ProcessId p, std::string var);
LocalPredicate varFalse(ProcessId p, std::string var);
LocalPredicate varCompare(ProcessId p, std::string var, Relop op,
                          std::int64_t k);

// Event indices on the predicate's process where it holds.
std::vector<int> trueEvents(const VariableTrace& trace,
                            const LocalPredicate& pred);

// A conjunction of local predicates on pairwise distinct processes
// (paper Sec. 2.3; Garg–Waldecker's predicate class).
struct ConjunctivePredicate {
  std::vector<LocalPredicate> terms;

  bool holdsAtCut(const VariableTrace& trace, const Cut& cut) const {
    for (const auto& t : terms) {
      if (!t.holdsAtCut(trace, cut)) return false;
    }
    return true;
  }
};

}  // namespace gpd
