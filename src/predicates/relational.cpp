#include "predicates/relational.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace gpd {

std::int64_t SumPredicate::eventDeltaBound(const VariableTrace& trace) const {
  const Computation& comp = trace.computation();
  std::vector<std::int64_t> perNode(comp.totalEvents(), 0);
  for (const SumTerm& t : terms) {
    for (int i = 1; i < comp.eventCount(t.process); ++i) {
      perNode[comp.node({t.process, i})] +=
          trace.value(t.process, t.var, i) - trace.value(t.process, t.var, i - 1);
    }
  }
  std::int64_t bound = 0;
  for (std::int64_t v : perNode) bound = std::max(bound, std::abs(v));
  return bound;
}

std::string SumPredicate::toString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i) os << " + ";
    os << terms[i].var << "@p" << terms[i].process;
  }
  os << ' ' << gpd::toString(relop) << ' ' << k;
  return os.str();
}

}  // namespace gpd
