#include "predicates/symmetric.h"

#include <algorithm>

#include "util/check.h"

namespace gpd {

bool SymmetricPredicate::holdsAtCut(const VariableTrace& trace,
                                    const Cut& cut) const {
  int count = 0;
  for (const SumTerm& t : vars) {
    const std::int64_t v = trace.valueAtCut(cut, t.process, t.var);
    GPD_DCHECK(v == 0 || v == 1);
    if (v != 0) ++count;
  }
  return std::find(trueCounts.begin(), trueCounts.end(), count) !=
         trueCounts.end();
}

std::vector<SumPredicate> SymmetricPredicate::asExactSums() const {
  std::vector<SumPredicate> out;
  for (int t : trueCounts) {
    SumPredicate s;
    s.terms = vars;
    s.relop = Relop::Equal;
    s.k = t;
    out.push_back(std::move(s));
  }
  return out;
}

namespace {
SymmetricPredicate make(std::vector<SumTerm> vars, std::vector<int> counts,
                        std::string name) {
  SymmetricPredicate p;
  p.vars = std::move(vars);
  p.trueCounts = std::move(counts);
  p.name = std::move(name);
  return p;
}
}  // namespace

SymmetricPredicate exclusiveOr(std::vector<SumTerm> vars) {
  std::vector<int> odd;
  for (int t = 1; t <= static_cast<int>(vars.size()); t += 2) odd.push_back(t);
  return make(std::move(vars), std::move(odd), "xor");
}

SymmetricPredicate absenceOfSimpleMajority(std::vector<SumTerm> vars) {
  const int n = static_cast<int>(vars.size());
  std::vector<int> counts;
  if (n % 2 == 0) counts.push_back(n / 2);
  return make(std::move(vars), std::move(counts), "no-simple-majority");
}

SymmetricPredicate absenceOfTwoThirdsMajority(std::vector<SumTerm> vars) {
  const int n = static_cast<int>(vars.size());
  std::vector<int> counts;
  for (int t = 0; t <= n; ++t) {
    if (3 * t > n && 3 * t < 2 * n) counts.push_back(t);
  }
  return make(std::move(vars), std::move(counts), "no-two-thirds-majority");
}

SymmetricPredicate exactlyK(std::vector<SumTerm> vars, int k) {
  GPD_CHECK(k >= 0 && k <= static_cast<int>(vars.size()));
  return make(std::move(vars), {k}, "exactly-" + std::to_string(k));
}

SymmetricPredicate notAllEqual(std::vector<SumTerm> vars) {
  std::vector<int> counts;
  for (int t = 1; t + 1 <= static_cast<int>(vars.size()); ++t) {
    counts.push_back(t);
  }
  return make(std::move(vars), std::move(counts), "not-all-equal");
}

SymmetricPredicate allEqual(std::vector<SumTerm> vars) {
  const int n = static_cast<int>(vars.size());
  return make(std::move(vars), {0, n}, "all-equal");
}

}  // namespace gpd
