// Relational (sum) predicates: Σᵢ xᵢ relop K (paper Sec. 4, after
// Tomlinson–Garg, equality included as the paper's extension).
//
// Each term names an integer variable on a process. The paper's results:
//   relop ∈ {<, ≤, >, ≥}  — polynomial (prior work; here via min-cut).
//   relop =               — NP-complete with arbitrary per-event changes
//                           (Thm 2), polynomial when every event changes its
//                           variable by at most 1 (Thms 4–7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predicates/local.h"
#include "predicates/variable_trace.h"

namespace gpd {

struct SumTerm {
  ProcessId process = 0;
  std::string var;
};

struct SumPredicate {
  std::vector<SumTerm> terms;
  Relop relop = Relop::Equal;
  std::int64_t k = 0;

  std::int64_t sumAtCut(const VariableTrace& trace, const Cut& cut) const {
    std::int64_t sum = 0;
    for (const SumTerm& t : terms) {
      sum += trace.valueAtCut(cut, t.process, t.var);
    }
    return sum;
  }

  bool holdsAtCut(const VariableTrace& trace, const Cut& cut) const {
    return compare(sumAtCut(trace, cut), relop, k);
  }

  // Max over terms of the per-variable per-event |Δ|.
  std::int64_t deltaBound(const VariableTrace& trace) const {
    std::int64_t bound = 0;
    for (const SumTerm& t : terms) {
      bound = std::max(bound, trace.maxAbsDelta(t.process, t.var));
    }
    return bound;
  }

  // Max over events of |ΔS| — the change a single event applies to the whole
  // sum (terms sharing a process accumulate). The Theorem 4/7 precondition
  // is eventDeltaBound(trace) <= 1.
  std::int64_t eventDeltaBound(const VariableTrace& trace) const;

  std::string toString() const;
};

}  // namespace gpd
