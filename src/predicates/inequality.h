// Inequality-clause predicates (paper Corollary 2).
//
// Conjunctions of clauses (x relop a) ∨ (y relop b) ∨ …, relop ∈
// {<, ≤, >, ≥, ≠}, where no two clauses contain variables from the same
// process. Corollary 2 proves detection NP-complete by the transformation
// implemented here: each atom becomes a derived boolean variable on its
// process, turning the predicate into a singular CNF predicate over the
// derived variables — detected by any singular-CNF algorithm in src/detect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predicates/cnf.h"
#include "predicates/local.h"
#include "predicates/variable_trace.h"

namespace gpd {

struct IneqAtom {
  ProcessId process = 0;
  std::string var;
  Relop relop = Relop::GreaterEq;  // Equal is excluded (Corollary 2's class)
  std::int64_t k = 0;

  bool holds(const VariableTrace& trace, int eventIndex) const {
    return compare(trace.value(process, var, eventIndex), relop, k);
  }
};

using IneqClause = std::vector<IneqAtom>;

struct IneqClausePredicate {
  std::vector<IneqClause> clauses;

  bool isSingular() const;
  bool holdsAtCut(const VariableTrace& trace, const Cut& cut) const;
};

// Lowers the predicate to a positive singular CNF over fresh boolean
// variables ("<prefix>_<clause>_<atom>") which are *defined into* `trace`.
// The returned CNF holds at a cut iff the original predicate does. Use a
// distinct prefix to lower several predicates into one trace.
CnfPredicate lowerToCnf(VariableTrace& trace, const IneqClausePredicate& pred,
                        const std::string& prefix = "__ineq");

}  // namespace gpd
