// Monotonic wall-clock stopwatch for benchmark harnesses.
#pragma once

#include <chrono>

namespace gpd {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsedMillis() const { return elapsedSeconds() * 1e3; }
  double elapsedMicros() const { return elapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gpd
