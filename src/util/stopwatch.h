// Monotonic wall-clock stopwatch and the library's single steady-clock
// time source.
//
// Everything that reads the monotonic clock — bench harnesses, the obs span
// tracer, and control/budget deadlines — goes through steadyNowNanos() so
// there is exactly one definition of "now" to reason about (and one place
// to stub it if a platform ever needs a different clock).
#pragma once

#include <chrono>
#include <cstdint>

namespace gpd {

// Nanoseconds on the process-wide steady clock. Monotonic, comparable
// across threads; the epoch is unspecified (use differences only).
inline std::uint64_t steadyNowNanos() {
  // The one sanctioned direct clock read: every other site must come here.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // srclint: allow(gpd-clock-discipline)
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class Stopwatch {
 public:
  Stopwatch() : startNs_(steadyNowNanos()) {}

  void reset() { startNs_ = steadyNowNanos(); }

  std::uint64_t elapsedNanos() const { return steadyNowNanos() - startNs_; }

  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

  double elapsedMillis() const {
    return static_cast<double>(elapsedNanos()) * 1e-6;
  }
  double elapsedMicros() const {
    return static_cast<double>(elapsedNanos()) * 1e-3;
  }

 private:
  std::uint64_t startNs_;
};

}  // namespace gpd
