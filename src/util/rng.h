// Deterministic pseudo-random number generation.
//
// All randomized components of the library (workload generators, random
// computations, property tests, benchmarks) take an explicit Rng so that
// every experiment is reproducible from a seed. The generator is
// xoshiro256**, seeded through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace gpd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  // Raw 64 random bits (xoshiro256**).
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    GPD_CHECK(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t r;
    do {
      r = next();
    } while (r >= limit);
    return lo + static_cast<std::int64_t>(r % span);
  }

  // Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    GPD_CHECK(n > 0);
    return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(n) - 1));
  }

  // Uniform double in [0, 1).
  double real() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // True with probability p (clamped to [0,1]).
  bool chance(double p) { return real() < p; }

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  // Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    GPD_CHECK(!v.empty());
    return v[index(v.size())];
  }

  // Derive an independent child generator (for parallel or per-case seeding).
  Rng fork() { return Rng(next() ^ 0xd1342543de82ef95ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace gpd
