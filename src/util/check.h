// Lightweight runtime-assertion helpers used across the library.
//
// GPD_CHECK is always on (library invariants and precondition violations are
// programming errors; we fail fast with a location-tagged exception rather
// than corrupting a detection result). GPD_DCHECK compiles out in NDEBUG
// builds and guards hot-path-only checks.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gpd {

// Thrown when a GPD_CHECK fails; carries "file:line: message". A
// CheckFailure always means a *library* bug or API-contract violation —
// an internal invariant broke. Callers should treat it as unrecoverable.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

// Thrown when externally supplied data (a trace file, a command line, a
// checkpoint stream) is malformed. Unlike CheckFailure this is *not* a bug:
// callers are expected to catch it, report the message, and carry on.
// gpdtool maps InputError to exit code 1 and CheckFailure to exit code 2.
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {
[[noreturn]] inline void checkFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace internal

}  // namespace gpd

#define GPD_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::gpd::internal::checkFail(__FILE__, __LINE__, #expr, "");     \
  } while (0)

#define GPD_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream os_;                                        \
      os_ << msg;                                                    \
      ::gpd::internal::checkFail(__FILE__, __LINE__, #expr, os_.str()); \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define GPD_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define GPD_DCHECK(expr) GPD_CHECK(expr)
#endif

// Input validation: throws gpd::InputError with the streamed message when
// `expr` is false. Use for data that crosses the library boundary (files,
// argv, wire payloads) — never for internal invariants.
#define GPD_INPUT_CHECK(expr, msg)        \
  do {                                    \
    if (!(expr)) {                        \
      std::ostringstream os_;             \
      os_ << msg;                         \
      throw ::gpd::InputError(os_.str()); \
    }                                     \
  } while (0)
