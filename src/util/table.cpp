#include "util/table.h"

#include <algorithm>
#include <ostream>

#include "util/check.h"

namespace gpd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GPD_CHECK(!header_.empty());
}

void Table::addRow(std::vector<std::string> row) {
  GPD_CHECK_MSG(row.size() == header_.size(),
                "row has " << row.size() << " cells, header has "
                           << header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::printCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace gpd
