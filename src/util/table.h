// Aligned-column table printer used by the benchmark harnesses to emit the
// rows each experiment reports (EXPERIMENTS.md quotes these tables).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpd {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Each cell is pre-formatted text; row length must match the header.
  void addRow(std::vector<std::string> row);

  // Convenience: formats arithmetic values with operator<<.
  template <typename... Ts>
  void row(const Ts&... cells) {
    addRow({format(cells)...});
  }

  // Pretty-prints with aligned columns.
  void print(std::ostream& os) const;

  // Machine-readable CSV (no alignment padding).
  void printCsv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string format(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpd

#include <sstream>

namespace gpd {
template <typename T>
std::string Table::format(const T& v) {
  if constexpr (std::is_convertible_v<T, std::string>) {
    return std::string(v);
  } else {
    std::ostringstream os;
    os << v;
    return os.str();
  }
}
}  // namespace gpd
