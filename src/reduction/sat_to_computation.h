// Theorem 1 / Figure 3: the reduction from non-monotone 3-SAT to detection
// of a singular 2-CNF predicate.
//
// For each clause two processes are created hosting boolean variables y, z
// with predicate clause (y ∨ z); each literal of the formula gets one *true
// event*, and for every pair of conflicting literal occurrences an arrow
// (message) runs from the successor of the positive occurrence's true event
// to the negative occurrence's true event, making exactly the conflicting
// selections inconsistent. The formula is satisfiable iff some consistent
// cut satisfies the predicate, and a witness cut decodes into a satisfying
// assignment.
//
// Together with sat/nonmonotone.h (3-CNF → non-monotone 3-CNF) this yields
// solveSatViaDetection: a complete SAT decision procedure whose engine is
// the predicate detector — the executable form of the NP-hardness proof.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "computation/computation.h"
#include "computation/cut.h"
#include "predicates/cnf.h"
#include "sat/cnf.h"

namespace gpd::reduction {

// Result of gadget-oriented preprocessing: duplicate literals removed,
// tautological clauses dropped, unit clauses propagated.
struct SimplifiedFormula {
  bool unsatisfiable = false;       // empty clause derived
  sat::Cnf formula;                 // remaining clauses, each 2–3 literals
  std::vector<int> forced;          // per original variable: -1 / 0 / 1
};

// Requires every clause of `cnf` to have at most three literals.
SimplifiedFormula simplifyForGadget(const sat::Cnf& cnf);

struct SatGadget {
  // unique_ptrs keep addresses stable: trace and literal bookkeeping refer
  // into *computation.
  std::unique_ptr<Computation> computation;
  std::unique_ptr<VariableTrace> trace;
  CnfPredicate predicate;  // singular 2-CNF: (y_j ∨ z_j) per clause

  // occurrences[j][i]: the true event of clause j's i-th literal.
  std::vector<std::vector<EventId>> occurrenceEvents;
  // literal identity parallel to occurrenceEvents.
  std::vector<std::vector<sat::Lit>> occurrenceLits;

  // Decodes a witness cut into an assignment of the gadget formula's
  // variables (unconstrained variables default to false).
  sat::Assignment decode(const Cut& cut, int numVars) const;
};

// Requires a simplified non-monotone formula: every clause has 2–3 literals,
// no duplicate or conflicting literals within a clause, and 3-clauses have
// at least one positive and one negative literal.
SatGadget buildSatGadget(const sat::Cnf& formula);

// The full pipeline of Sec. 3.1 run forward: 3-CNF → non-monotone 3-CNF →
// simplify → gadget → singular-2-CNF detection → assignment. Returns a
// satisfying assignment of `threeCnf` or nullopt. The result is verified
// against the formula before being returned.
std::optional<sat::Assignment> solveSatViaDetection(const sat::Cnf& threeCnf);

}  // namespace gpd::reduction
