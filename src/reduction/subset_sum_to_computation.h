// Theorem 2: the reduction from subset sum to detecting
// possibly(Σᵢ xᵢ = K) with arbitrary per-event increments.
//
// One process per element; each process has a single event that raises its
// variable from 0 to the element's size. There are no messages, so every
// subset of events forms a consistent cut, and a cut's sum is exactly the
// sum of the chosen elements: the instance has a subset summing to K iff
// possibly(Σ xᵢ = K) holds. This is the executable form of the paper's
// NP-completeness proof for the arbitrary-Δ case, and bench_sum_nphard uses
// it to compare the detector-as-subset-sum-solver against the DP solver.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "computation/computation.h"
#include "computation/cut.h"
#include "predicates/relational.h"

namespace gpd::reduction {

struct SubsetSumGadget {
  std::unique_ptr<Computation> computation;
  std::unique_ptr<VariableTrace> trace;
  SumPredicate predicate;  // Σ xᵢ = target

  // Decodes a witness cut into element indices (processes whose event is
  // inside the cut).
  std::vector<int> decode(const Cut& cut) const;
};

// Sizes must be positive (Garey–Johnson SP13).
SubsetSumGadget buildSubsetSumGadget(const std::vector<std::int64_t>& sizes,
                                     std::int64_t target);

// Decides the subset-sum instance by exhaustive detection on the gadget
// (exponential, as Theorem 2 demands of any detection-based approach);
// returns a witness subset. Cross-validated against sat::solveSubsetSum.
std::optional<std::vector<int>> solveSubsetSumViaDetection(
    const std::vector<std::int64_t>& sizes, std::int64_t target);

}  // namespace gpd::reduction
