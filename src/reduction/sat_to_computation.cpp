#include "reduction/sat_to_computation.h"

#include <algorithm>

#include "clocks/vector_clock.h"
#include "detect/singular_cnf.h"
#include "sat/nonmonotone.h"
#include "util/check.h"

namespace gpd::reduction {

namespace {

// Removes duplicate literals; returns nullopt for tautological clauses.
std::optional<sat::Clause> normalizeClause(const sat::Clause& clause) {
  sat::Clause out;
  for (const sat::Lit& l : clause) {
    if (std::find(out.begin(), out.end(), l) != out.end()) continue;
    if (std::find(out.begin(), out.end(), l.negated()) != out.end()) {
      return std::nullopt;  // x ∨ ¬x: always true
    }
    out.push_back(l);
  }
  return out;
}

}  // namespace

SimplifiedFormula simplifyForGadget(const sat::Cnf& cnf) {
  SimplifiedFormula result;
  result.formula.numVars = cnf.numVars;
  result.forced.assign(cnf.numVars, -1);

  std::vector<sat::Clause> clauses;
  for (const sat::Clause& c : cnf.clauses) {
    GPD_CHECK_MSG(c.size() <= 3, "clause wider than three literals");
    if (auto norm = normalizeClause(c)) clauses.push_back(std::move(*norm));
  }

  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<sat::Clause> next;
    for (const sat::Clause& c : clauses) {
      sat::Clause reduced;
      bool satisfied = false;
      for (const sat::Lit& l : c) {
        const int f = result.forced[l.var];
        if (f < 0) {
          reduced.push_back(l);
        } else if ((f == 1) == l.positive) {
          satisfied = true;
          break;
        }
        // Falsified literals are dropped.
      }
      if (satisfied) continue;
      if (reduced.empty()) {
        result.unsatisfiable = true;
        return result;
      }
      if (reduced.size() == 1) {
        const sat::Lit unit = reduced[0];
        const int want = unit.positive ? 1 : 0;
        if (result.forced[unit.var] >= 0 && result.forced[unit.var] != want) {
          result.unsatisfiable = true;
          return result;
        }
        result.forced[unit.var] = want;
        changed = true;
        continue;
      }
      next.push_back(std::move(reduced));
    }
    clauses = std::move(next);
  }
  result.formula.clauses = std::move(clauses);
  return result;
}

SatGadget buildSatGadget(const sat::Cnf& formula) {
  const int m = static_cast<int>(formula.clauses.size());
  GPD_CHECK(m >= 1);

  // Reorder each clause so 3-clauses put a positive literal first and a
  // negative literal last (the paper's l1/l3 convention); record the mapping
  // back to the clause's original literal order.
  struct Placement {
    sat::Lit lit;
    EventId trueEvent;
  };
  std::vector<std::vector<sat::Lit>> ordered(m);
  for (int j = 0; j < m; ++j) {
    sat::Clause c = formula.clauses[j];
    GPD_CHECK_MSG(c.size() == 2 || c.size() == 3,
                  "gadget clauses must have 2 or 3 literals — run "
                  "simplifyForGadget first");
    if (c.size() == 3) {
      auto pos = std::find_if(c.begin(), c.end(),
                              [](const sat::Lit& l) { return l.positive; });
      GPD_CHECK_MSG(pos != c.end(), "3-clause without a positive literal");
      std::iter_swap(c.begin(), pos);
      auto neg = std::find_if(c.begin() + 1, c.end(),
                              [](const sat::Lit& l) { return !l.positive; });
      GPD_CHECK_MSG(neg != c.end(), "3-clause without a negative literal");
      std::iter_swap(c.end() - 1, neg);
    }
    ordered[j] = std::move(c);
  }

  SatGadget gadget;
  ComputationBuilder builder(2 * m);
  // Per-occurrence true events, in `ordered` literal order.
  std::vector<std::vector<EventId>> trueEvent(m);
  for (int j = 0; j < m; ++j) {
    const ProcessId py = 2 * j;      // hosts y_j (literals l1 [, l3])
    const ProcessId pz = 2 * j + 1;  // hosts z_j (literal l2)
    if (ordered[j].size() == 2) {
      const EventId ty = builder.appendEvent(py);  // true event for l1
      builder.appendEvent(py);                     // false event
      const EventId tz = builder.appendEvent(pz);  // true event for l2
      builder.appendEvent(pz);                     // false event
      trueEvent[j] = {ty, tz};
    } else {
      const EventId t1 = builder.appendEvent(py);  // true event for l1 (+)
      builder.appendEvent(py);                     // false event
      const EventId t3 = builder.appendEvent(py);  // true event for l3 (−)
      const EventId t2 = builder.appendEvent(pz);  // true event for l2
      builder.appendEvent(pz);                     // false event
      trueEvent[j] = {t1, t2, t3};
    }
  }

  // Conflict arrows: succ(true event of positive occurrence) → true event of
  // the conflicting negative occurrence.
  for (int j1 = 0; j1 < m; ++j1) {
    for (std::size_t i1 = 0; i1 < ordered[j1].size(); ++i1) {
      const sat::Lit a = ordered[j1][i1];
      if (!a.positive) continue;
      for (int j2 = 0; j2 < m; ++j2) {
        for (std::size_t i2 = 0; i2 < ordered[j2].size(); ++i2) {
          const sat::Lit b = ordered[j2][i2];
          if (b.positive || b.var != a.var) continue;
          const EventId src = trueEvent[j1][i1];
          builder.addMessage({src.process, src.index + 1}, trueEvent[j2][i2]);
        }
      }
    }
  }

  gadget.computation =
      std::make_unique<Computation>(std::move(builder).build());
  gadget.trace = std::make_unique<VariableTrace>(*gadget.computation);

  // Variable histories: each process's variable is true exactly at the true
  // events of the literals it hosts.
  for (int j = 0; j < m; ++j) {
    const ProcessId py = 2 * j;
    const ProcessId pz = 2 * j + 1;
    std::vector<std::int64_t> yHist(gadget.computation->eventCount(py), 0);
    std::vector<std::int64_t> zHist(gadget.computation->eventCount(pz), 0);
    for (const EventId& t : trueEvent[j]) {
      (t.process == py ? yHist : zHist)[t.index] = 1;
    }
    gadget.trace->define(py, "y", std::move(yHist));
    gadget.trace->define(pz, "z", std::move(zHist));
    gadget.predicate.clauses.push_back(
        {{py, "y", true}, {pz, "z", true}});
  }
  GPD_CHECK(gadget.predicate.isSingular());
  GPD_CHECK(gadget.predicate.isKCnf(2));

  gadget.occurrenceEvents = std::move(trueEvent);
  gadget.occurrenceLits = std::move(ordered);
  return gadget;
}

sat::Assignment SatGadget::decode(const Cut& cut, int numVars) const {
  std::vector<int> value(numVars, -1);
  for (std::size_t j = 0; j < occurrenceEvents.size(); ++j) {
    for (std::size_t i = 0; i < occurrenceEvents[j].size(); ++i) {
      if (!cut.passesThrough(occurrenceEvents[j][i])) continue;
      const sat::Lit lit = occurrenceLits[j][i];
      const int want = lit.positive ? 1 : 0;
      GPD_CHECK_MSG(value[lit.var] < 0 || value[lit.var] == want,
                    "conflicting literals selected — gadget arrows broken");
      value[lit.var] = want;
    }
  }
  sat::Assignment a(numVars, false);
  for (int v = 0; v < numVars; ++v) a[v] = value[v] == 1;
  return a;
}

std::optional<sat::Assignment> solveSatViaDetection(const sat::Cnf& threeCnf) {
  const sat::NonMonotoneTransform t = sat::toNonMonotone(threeCnf);
  const SimplifiedFormula simp = simplifyForGadget(t.formula);
  if (simp.unsatisfiable) return std::nullopt;

  sat::Assignment full(t.formula.numVars, false);
  for (int v = 0; v < t.formula.numVars; ++v) {
    if (simp.forced[v] >= 0) full[v] = simp.forced[v] == 1;
  }

  if (!simp.formula.clauses.empty()) {
    const SatGadget gadget = buildSatGadget(simp.formula);
    const VectorClocks clocks(*gadget.computation);
    const detect::SingularCnfResult res = detect::detectSingularByChainCover(
        clocks, *gadget.trace, gadget.predicate);
    if (!res.found) return std::nullopt;
    GPD_CHECK(res.cut.has_value());
    const sat::Assignment decoded = gadget.decode(*res.cut, t.formula.numVars);
    for (int v = 0; v < t.formula.numVars; ++v) {
      if (simp.forced[v] < 0) full[v] = decoded[v];
    }
  }

  GPD_CHECK_MSG(satisfies(t.formula, full),
                "detection produced a non-satisfying assignment");
  sat::Assignment original = projectAssignment(t, full);
  GPD_CHECK(satisfies(threeCnf, original));
  return original;
}

}  // namespace gpd::reduction
