#include "reduction/subset_sum_to_computation.h"

#include "clocks/vector_clock.h"
#include "detect/sum.h"
#include "util/check.h"

namespace gpd::reduction {

SubsetSumGadget buildSubsetSumGadget(const std::vector<std::int64_t>& sizes,
                                     std::int64_t target) {
  GPD_CHECK(!sizes.empty());
  for (std::int64_t s : sizes) GPD_CHECK_MSG(s > 0, "sizes must be positive");

  const int n = static_cast<int>(sizes.size());
  ComputationBuilder builder(n);
  for (ProcessId p = 0; p < n; ++p) builder.appendEvent(p);

  SubsetSumGadget gadget;
  gadget.computation = std::make_unique<Computation>(std::move(builder).build());
  gadget.trace = std::make_unique<VariableTrace>(*gadget.computation);
  for (ProcessId p = 0; p < n; ++p) {
    gadget.trace->define(p, "x", {0, sizes[p]});
    gadget.predicate.terms.push_back({p, "x"});
  }
  gadget.predicate.relop = Relop::Equal;
  gadget.predicate.k = target;
  return gadget;
}

std::vector<int> SubsetSumGadget::decode(const Cut& cut) const {
  std::vector<int> subset;
  for (ProcessId p = 0; p < computation->processCount(); ++p) {
    if (cut.last[p] == 1) subset.push_back(p);
  }
  return subset;
}

std::optional<std::vector<int>> solveSubsetSumViaDetection(
    const std::vector<std::int64_t>& sizes, std::int64_t target) {
  if (sizes.empty()) {
    if (target == 0) return std::vector<int>{};
    return std::nullopt;
  }
  const SubsetSumGadget gadget = buildSubsetSumGadget(sizes, target);
  const VectorClocks clocks(*gadget.computation);
  const auto cut =
      detect::detectExactSumExhaustive(clocks, *gadget.trace, gadget.predicate);
  if (!cut) return std::nullopt;
  std::vector<int> subset = gadget.decode(*cut);
  std::int64_t sum = 0;
  for (int i : subset) sum += sizes[i];
  GPD_CHECK(sum == target);
  return subset;
}

}  // namespace gpd::reduction
