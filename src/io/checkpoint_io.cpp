#include "io/checkpoint_io.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace gpd::io {

namespace {

constexpr char kMagic[] = "gpd-checkpoint";
constexpr int kVersion = 1;
// Structural sanity bounds: a checkpoint claiming more than this is corrupt
// (or hostile), not big.
constexpr long long kMaxProcesses = 1 << 20;
constexpr long long kMaxQueueLen = 1 << 26;

void writeClock(std::ostream& os, const char* keyword,
                const std::vector<int>& clock) {
  os << keyword;
  for (int v : clock) os << ' ' << v;
  os << '\n';
}

class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  std::string word(const char* what) {
    std::string w;
    GPD_INPUT_CHECK(static_cast<bool>(is_ >> w),
                    "checkpoint truncated while reading " << what);
    return w;
  }

  void keyword(const char* expected) {
    const std::string w = word(expected);
    GPD_INPUT_CHECK(w == expected, "checkpoint: expected '" << expected
                                                            << "', got '" << w
                                                            << "'");
  }

  long long integer(const char* what, long long lo, long long hi) {
    long long v = 0;
    GPD_INPUT_CHECK(static_cast<bool>(is_ >> v),
                    "checkpoint: malformed integer in " << what);
    GPD_INPUT_CHECK(v >= lo && v <= hi,
                    "checkpoint: " << what << " value " << v
                                   << " out of range [" << lo << ", " << hi
                                   << "]");
    return v;
  }

  std::uint64_t counter(const char* what) {
    std::uint64_t v = 0;
    GPD_INPUT_CHECK(static_cast<bool>(is_ >> v),
                    "checkpoint: malformed counter in " << what);
    return v;
  }

  std::vector<int> clock(const char* keywordName, int n) {
    keyword(keywordName);
    std::vector<int> v(n);
    for (int& x : v) {
      x = static_cast<int>(integer(keywordName, std::numeric_limits<int>::min(),
                                   std::numeric_limits<int>::max()));
    }
    return v;
  }

 private:
  std::istream& is_;
};

}  // namespace

void writeCheckpoint(std::ostream& os, const monitor::SessionSnapshot& snap) {
  const int n = snap.monitor.processes;
  GPD_CHECK_MSG(n >= 1, "checkpoint of an empty session");
  os << kMagic << ' ' << kVersion << '\n';
  os << "processes " << n << '\n';
  os << "now " << snap.now << '\n';
  os << "next";
  for (std::uint64_t s : snap.nextSeq) os << ' ' << s;
  os << '\n';
  os << "health";
  for (int h : snap.health) os << ' ' << h;
  os << '\n';
  os << "gaps";
  for (int p = 0; p < n; ++p) {
    os << ' ' << int(snap.gapActive[p]) << ' ' << snap.gapDeadline[p] << ' '
       << snap.gapRetriesLeft[p];
  }
  os << '\n';
  os << "announced";
  for (int p = 0; p < n; ++p) {
    os << ' ' << int(snap.endAnnounced[p]) << ' ' << snap.announcedCount[p];
  }
  os << '\n';
  os << "evicted";
  for (std::uint64_t e : snap.evictedUpper) os << ' ' << e;
  os << '\n';
  const monitor::SessionStats& st = snap.stats;
  os << "stats " << st.delivered << ' ' << st.duplicates << ' ' << st.buffered
     << ' ' << st.bufferEvicted << ' ' << st.nacksSent << ' '
     << st.gapsDetected << ' ' << st.gapsRecovered << ' ' << st.backpressured
     << ' ' << st.degradedStreams << '\n';
  os << "monitor " << int(snap.monitor.detected) << ' '
     << int(snap.monitor.degraded) << ' ' << snap.monitor.comparisons << ' '
     << snap.monitor.enqueued << ' ' << snap.monitor.overflowDropped << ' '
     << snap.monitor.overflowRejected << '\n';
  os << "lastown";
  for (int v : snap.monitor.lastOwn) os << ' ' << v;
  os << '\n';
  for (int p = 0; p < n; ++p) {
    os << "queue " << p << ' ' << snap.monitor.queues[p].size() << '\n';
    for (const auto& clock : snap.monitor.queues[p]) {
      writeClock(os, "clock", clock);
    }
  }
  for (int p = 0; p < n; ++p) {
    os << "buffer " << p << ' ' << snap.buffers[p].size() << '\n';
    for (const auto& [seq, clock] : snap.buffers[p]) {
      os << "slot " << seq;
      for (int v : clock) os << ' ' << v;
      os << '\n';
    }
  }
  if (snap.monitor.detected) {
    for (const auto& w : snap.monitor.witness) writeClock(os, "witness", w);
  }
  // Optional trailer (version 1 stays readable by files that omit it): the
  // per-report slice counters, written only when non-trivial so checkpoints
  // from slice-free sessions are byte-identical to the pre-slice format.
  if (snap.monitor.sliceAborts != 0 || snap.monitor.pendingFullScan) {
    os << "slices " << snap.monitor.sliceAborts << ' '
       << int(snap.monitor.pendingFullScan) << '\n';
  }
  os << "end\n";
  GPD_CHECK_MSG(os.good(), "checkpoint write failed");
}

monitor::SessionSnapshot readCheckpoint(std::istream& is) {
  Reader r(is);
  GPD_INPUT_CHECK(r.word("magic") == kMagic, "not a gpd-checkpoint stream");
  const long long version = r.integer("version", 0, 1 << 20);
  GPD_INPUT_CHECK(version == kVersion,
                  "unsupported checkpoint version " << version);

  monitor::SessionSnapshot snap;
  r.keyword("processes");
  const int n = static_cast<int>(r.integer("processes", 1, kMaxProcesses));
  snap.monitor.processes = n;
  r.keyword("now");
  snap.now = r.counter("now");

  r.keyword("next");
  snap.nextSeq.resize(n);
  for (auto& s : snap.nextSeq) s = r.counter("next");
  r.keyword("health");
  snap.health.resize(n);
  for (auto& h : snap.health) h = static_cast<int>(r.integer("health", 0, 2));
  r.keyword("gaps");
  snap.gapActive.resize(n);
  snap.gapDeadline.resize(n);
  snap.gapRetriesLeft.resize(n);
  for (int p = 0; p < n; ++p) {
    snap.gapActive[p] = static_cast<char>(r.integer("gaps", 0, 1));
    snap.gapDeadline[p] = r.counter("gaps");
    snap.gapRetriesLeft[p] =
        static_cast<int>(r.integer("gaps", 0, kMaxQueueLen));
  }
  r.keyword("announced");
  snap.endAnnounced.resize(n);
  snap.announcedCount.resize(n);
  for (int p = 0; p < n; ++p) {
    snap.endAnnounced[p] = static_cast<char>(r.integer("announced", 0, 1));
    snap.announcedCount[p] = r.counter("announced");
  }
  r.keyword("evicted");
  snap.evictedUpper.resize(n);
  for (auto& e : snap.evictedUpper) e = r.counter("evicted");
  r.keyword("stats");
  monitor::SessionStats& st = snap.stats;
  st.delivered = r.counter("stats");
  st.duplicates = r.counter("stats");
  st.buffered = r.counter("stats");
  st.bufferEvicted = r.counter("stats");
  st.nacksSent = r.counter("stats");
  st.gapsDetected = r.counter("stats");
  st.gapsRecovered = r.counter("stats");
  st.backpressured = r.counter("stats");
  st.degradedStreams = static_cast<int>(r.integer("stats", 0, kMaxProcesses));
  r.keyword("monitor");
  snap.monitor.detected = r.integer("monitor", 0, 1) != 0;
  snap.monitor.degraded = r.integer("monitor", 0, 1) != 0;
  snap.monitor.comparisons = r.counter("monitor");
  snap.monitor.enqueued = r.counter("monitor");
  snap.monitor.overflowDropped = r.counter("monitor");
  snap.monitor.overflowRejected = r.counter("monitor");
  snap.monitor.lastOwn = r.clock("lastown", n);

  snap.monitor.queues.resize(n);
  for (int p = 0; p < n; ++p) {
    r.keyword("queue");
    GPD_INPUT_CHECK(r.integer("queue process", 0, n - 1) == p,
                    "checkpoint: queues out of order");
    const long long len = r.integer("queue length", 0, kMaxQueueLen);
    snap.monitor.queues[p].reserve(static_cast<std::size_t>(len));
    for (long long i = 0; i < len; ++i) {
      snap.monitor.queues[p].push_back(r.clock("clock", n));
    }
  }
  snap.buffers.resize(n);
  for (int p = 0; p < n; ++p) {
    r.keyword("buffer");
    GPD_INPUT_CHECK(r.integer("buffer process", 0, n - 1) == p,
                    "checkpoint: buffers out of order");
    const long long len = r.integer("buffer length", 0, kMaxQueueLen);
    for (long long i = 0; i < len; ++i) {
      r.keyword("slot");
      const std::uint64_t seq = r.counter("slot seq");
      std::vector<int> clock(n);
      for (int& x : clock) {
        x = static_cast<int>(r.integer("slot", std::numeric_limits<int>::min(),
                                       std::numeric_limits<int>::max()));
      }
      snap.buffers[p].emplace_back(seq, std::move(clock));
    }
  }
  if (snap.monitor.detected) {
    snap.monitor.witness.reserve(n);
    for (int p = 0; p < n; ++p) {
      snap.monitor.witness.push_back(r.clock("witness", n));
    }
  }
  std::string trailer = r.word("end");
  if (trailer == "slices") {
    snap.monitor.sliceAborts = r.counter("slices");
    snap.monitor.pendingFullScan = r.integer("slices", 0, 1) != 0;
    trailer = r.word("end");
  }
  GPD_INPUT_CHECK(trailer == "end",
                  "checkpoint: expected 'end', got '" << trailer << "'");
  return snap;
}

void saveCheckpoint(const std::string& path,
                    const monitor::SessionSnapshot& snap) {
  std::ofstream os(path);
  GPD_INPUT_CHECK(os.is_open(), "cannot open '" << path << "' for writing");
  writeCheckpoint(os, snap);
}

monitor::SessionSnapshot loadCheckpoint(const std::string& path) {
  std::ifstream is(path);
  GPD_INPUT_CHECK(is.is_open(), "cannot open '" << path << "' for reading");
  return readCheckpoint(is);
}

void atomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    GPD_INPUT_CHECK(os.is_open(), "cannot open '" << tmp << "' for writing");
    os.write(contents.data(),
             static_cast<std::streamsize>(contents.size()));
    os.flush();
    GPD_INPUT_CHECK(os.good(), "write to '" << tmp << "' failed");
  }
  GPD_INPUT_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot rename '" << tmp << "' over '" << path << "'");
}

void saveCheckpointAtomic(const std::string& path,
                          const monitor::SessionSnapshot& snap) {
  std::ostringstream os;
  writeCheckpoint(os, snap);
  atomicWriteFile(path, os.str());
}

}  // namespace gpd::io
