#include "io/trace_io.h"

#include <cstdint>
#include <fstream>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "util/check.h"

namespace gpd::io {

namespace {
constexpr const char* kMagic = kTraceMagic;
constexpr int kVersion = kTraceVersion;
constexpr long long kMaxProcesses = kTraceMaxProcesses;
constexpr long long kMaxTotalEvents = kTraceMaxTotalEvents;

bool whitespaceFree(const std::string& s) {
  return !s.empty() &&
         s.find_first_of(" \t\r\n") == std::string::npos;
}

// Tokenized view of one trace line, with line-numbered InputErrors.
class Line {
 public:
  Line(std::string text, int number) : tokens_(std::move(text)), number_(number) {}

  int number() const { return number_; }

  std::string word(const char* what) {
    std::string w;
    GPD_INPUT_CHECK(static_cast<bool>(tokens_ >> w),
                    "line " << number_ << ": missing " << what);
    return w;
  }

  long long integer(const char* what, long long lo, long long hi) {
    std::string w = word(what);
    long long v = 0;
    std::size_t used = 0;
    try {
      v = std::stoll(w, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    GPD_INPUT_CHECK(used == w.size() && !w.empty(),
                    "line " << number_ << ": '" << w << "' is not an integer ("
                            << what << ")");
    GPD_INPUT_CHECK(v >= lo && v <= hi,
                    "line " << number_ << ": " << what << " " << v
                            << " out of range [" << lo << ", " << hi << "]");
    return v;
  }

  void expectDone() {
    std::string extra;
    GPD_INPUT_CHECK(!(tokens_ >> extra),
                    "line " << number_ << ": unexpected trailing '" << extra
                            << "'");
  }

 private:
  std::istringstream tokens_;
  int number_;
};

// Reads lines, skipping blank ones, tracking the line number.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  // Returns the next non-blank line, or nullopt at end of stream.
  std::optional<Line> next() {
    std::string text;
    while (std::getline(is_, text)) {
      ++number_;
      if (text.find_first_not_of(" \t\r") == std::string::npos) continue;
      return Line(std::move(text), number_);
    }
    return std::nullopt;
  }

  Line require(const char* what) {
    auto line = next();
    GPD_INPUT_CHECK(line.has_value(),
                    "truncated trace: missing " << what << " (after line "
                                                << number_ << ")");
    return std::move(*line);
  }

 private:
  std::istream& is_;
  int number_ = 0;
};

}  // namespace

void writeTrace(std::ostream& os, const Computation& comp,
                const VariableTrace& trace) {
  GPD_CHECK(&trace.computation() == &comp);
  os << kMagic << ' ' << kVersion << '\n';
  os << "processes " << comp.processCount() << '\n';
  os << "events";
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    os << ' ' << comp.eventCount(p);
  }
  os << '\n';
  for (const Message& m : comp.messages()) {
    os << "message " << m.send.process << ' ' << m.send.index << ' '
       << m.receive.process << ' ' << m.receive.index << '\n';
  }
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    for (const std::string& name : trace.variableNames(p)) {
      GPD_CHECK_MSG(whitespaceFree(name),
                    "variable name '" << name << "' is not serializable");
      os << "var " << p << ' ' << name;
      for (int i = 0; i < comp.eventCount(p); ++i) {
        os << ' ' << trace.value(p, name, i);
      }
      os << '\n';
    }
  }
  os << "end\n";
  GPD_CHECK_MSG(os.good(), "trace write failed");
}

TraceFile readTrace(std::istream& is) {
  LineReader lines(is);

  {
    Line header = lines.require("header");
    GPD_INPUT_CHECK(header.word("magic") == kMagic,
                    "line " << header.number() << ": not a gpd-trace stream");
    const long long version =
        header.integer("version", 0, std::numeric_limits<long long>::max());
    GPD_INPUT_CHECK(version == kVersion,
                    "line " << header.number() << ": unsupported trace version "
                            << version);
    header.expectDone();
  }

  int processes = 0;
  {
    Line line = lines.require("'processes' line");
    GPD_INPUT_CHECK(line.word("keyword") == "processes",
                    "line " << line.number() << ": expected 'processes'");
    processes = static_cast<int>(line.integer("process count", 1, kMaxProcesses));
    line.expectDone();
  }

  std::vector<int> counts(processes);
  {
    Line line = lines.require("'events' line");
    GPD_INPUT_CHECK(line.word("keyword") == "events",
                    "line " << line.number() << ": expected 'events'");
    long long total = 0;
    for (int& c : counts) {
      c = static_cast<int>(line.integer("event count", 1, kMaxTotalEvents));
      total += c;
      GPD_INPUT_CHECK(total <= kMaxTotalEvents,
                      "line " << line.number() << ": total event count "
                              << total << " exceeds the " << kMaxTotalEvents
                              << " limit");
    }
    line.expectDone();
  }

  ComputationBuilder builder(processes);
  for (ProcessId p = 0; p < processes; ++p) {
    for (int i = 1; i < counts[p]; ++i) builder.appendEvent(p);
  }

  struct PendingVar {
    ProcessId process;
    std::string name;
    std::vector<std::int64_t> values;
  };
  std::vector<PendingVar> vars;
  std::set<std::pair<ProcessId, std::string>> varsSeen;
  std::set<std::tuple<int, int, int, int>> messagesSeen;

  bool sawEnd = false;
  while (auto maybeLine = lines.next()) {
    Line& line = *maybeLine;
    const std::string keyword = line.word("keyword");
    if (keyword == "end") {
      line.expectDone();
      sawEnd = true;
      break;
    }
    if (keyword == "message") {
      const int sp = static_cast<int>(line.integer("send process", 0, processes - 1));
      const int si = static_cast<int>(line.integer("send index", 1, counts[sp] - 1));
      const int rp = static_cast<int>(line.integer("receive process", 0, processes - 1));
      GPD_INPUT_CHECK(rp != sp, "line " << line.number()
                                        << ": message from process " << sp
                                        << " to itself");
      const int ri = static_cast<int>(line.integer("receive index", 1, counts[rp] - 1));
      line.expectDone();
      GPD_INPUT_CHECK(messagesSeen.emplace(sp, si, rp, ri).second,
                      "line " << line.number() << ": duplicate message "
                              << sp << ":" << si << " -> " << rp << ":" << ri);
      builder.addMessage({sp, si}, {rp, ri});
    } else if (keyword == "var") {
      PendingVar v;
      v.process = static_cast<ProcessId>(line.integer("var process", 0, processes - 1));
      v.name = line.word("variable name");
      GPD_INPUT_CHECK(varsSeen.emplace(v.process, v.name).second,
                      "line " << line.number() << ": duplicate variable '"
                              << v.name << "' on process " << v.process);
      v.values.resize(counts[v.process]);
      for (auto& x : v.values) {
        x = line.integer("var value", std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max());
      }
      line.expectDone();
      vars.push_back(std::move(v));
    } else {
      GPD_INPUT_CHECK(false, "line " << line.number()
                                     << ": unknown trace keyword '" << keyword
                                     << "'");
    }
  }
  GPD_INPUT_CHECK(sawEnd, "trace stream missing 'end'");
  {
    auto trailing = lines.next();
    GPD_INPUT_CHECK(!trailing.has_value(),
                    "line " << trailing->number()
                            << ": content after 'end'");
  }

  TraceFile file;
  try {
    file.computation = std::make_unique<Computation>(std::move(builder).build());
  } catch (const CheckFailure&) {
    // The builder validates causal acyclicity; a cycle here means the input
    // describes an impossible computation, not a library bug.
    throw InputError("trace describes a cyclic computation");
  }
  file.trace = std::make_unique<VariableTrace>(*file.computation);
  for (auto& v : vars) {
    file.trace->define(v.process, std::move(v.name), std::move(v.values));
  }
  return file;
}

void saveTrace(const std::string& path, const Computation& comp,
               const VariableTrace& trace) {
  std::ofstream os(path);
  GPD_CHECK_MSG(os.is_open(), "cannot open '" << path << "' for writing");
  writeTrace(os, comp, trace);
}

TraceFile loadTrace(const std::string& path) {
  std::ifstream is(path);
  GPD_INPUT_CHECK(is.is_open(), "cannot open '" << path << "' for reading");
  return readTrace(is);
}

}  // namespace gpd::io
