#include "io/trace_io.h"

#include <fstream>
#include <sstream>

#include "util/check.h"

namespace gpd::io {

namespace {
constexpr char kMagic[] = "gpd-trace";
constexpr int kVersion = 1;

bool whitespaceFree(const std::string& s) {
  return !s.empty() &&
         s.find_first_of(" \t\r\n") == std::string::npos;
}
}  // namespace

void writeTrace(std::ostream& os, const Computation& comp,
                const VariableTrace& trace) {
  GPD_CHECK(&trace.computation() == &comp);
  os << kMagic << ' ' << kVersion << '\n';
  os << "processes " << comp.processCount() << '\n';
  os << "events";
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    os << ' ' << comp.eventCount(p);
  }
  os << '\n';
  for (const Message& m : comp.messages()) {
    os << "message " << m.send.process << ' ' << m.send.index << ' '
       << m.receive.process << ' ' << m.receive.index << '\n';
  }
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    for (const std::string& name : trace.variableNames(p)) {
      GPD_CHECK_MSG(whitespaceFree(name),
                    "variable name '" << name << "' is not serializable");
      os << "var " << p << ' ' << name;
      for (int i = 0; i < comp.eventCount(p); ++i) {
        os << ' ' << trace.value(p, name, i);
      }
      os << '\n';
    }
  }
  os << "end\n";
  GPD_CHECK_MSG(os.good(), "trace write failed");
}

TraceFile readTrace(std::istream& is) {
  std::string word;
  int version = 0;
  GPD_CHECK_MSG(is >> word && word == kMagic && is >> version,
                "not a gpd-trace stream");
  GPD_CHECK_MSG(version == kVersion, "unsupported trace version " << version);

  int processes = 0;
  GPD_CHECK_MSG(is >> word && word == "processes" && is >> processes &&
                    processes >= 1,
                "malformed 'processes' line");

  std::vector<int> counts(processes);
  GPD_CHECK_MSG(static_cast<bool>(is >> word) && word == "events",
                "malformed 'events' line");
  for (int& c : counts) {
    GPD_CHECK_MSG(static_cast<bool>(is >> c) && c >= 1, "bad event count");
  }

  ComputationBuilder builder(processes);
  for (ProcessId p = 0; p < processes; ++p) {
    for (int i = 1; i < counts[p]; ++i) builder.appendEvent(p);
  }

  struct PendingVar {
    ProcessId process;
    std::string name;
    std::vector<std::int64_t> values;
  };
  std::vector<PendingVar> vars;

  bool sawEnd = false;
  while (is >> word) {
    if (word == "end") {
      sawEnd = true;
      break;
    }
    if (word == "message") {
      int sp, si, rp, ri;
      GPD_CHECK_MSG(static_cast<bool>(is >> sp >> si >> rp >> ri),
                    "malformed 'message' line");
      builder.addMessage({sp, si}, {rp, ri});  // builder validates ranges
    } else if (word == "var") {
      PendingVar v;
      GPD_CHECK_MSG(static_cast<bool>(is >> v.process >> v.name),
                    "malformed 'var' line");
      GPD_CHECK_MSG(v.process >= 0 && v.process < processes,
                    "var on unknown process " << v.process);
      v.values.resize(counts[v.process]);
      for (auto& x : v.values) {
        GPD_CHECK_MSG(static_cast<bool>(is >> x), "truncated 'var' values");
      }
      vars.push_back(std::move(v));
    } else {
      GPD_CHECK_MSG(false, "unknown trace keyword '" << word << "'");
    }
  }
  GPD_CHECK_MSG(sawEnd, "trace stream missing 'end'");

  TraceFile file;
  file.computation = std::make_unique<Computation>(std::move(builder).build());
  file.trace = std::make_unique<VariableTrace>(*file.computation);
  for (auto& v : vars) {
    file.trace->define(v.process, std::move(v.name), std::move(v.values));
  }
  return file;
}

void saveTrace(const std::string& path, const Computation& comp,
               const VariableTrace& trace) {
  std::ofstream os(path);
  GPD_CHECK_MSG(os.is_open(), "cannot open '" << path << "' for writing");
  writeTrace(os, comp, trace);
}

TraceFile loadTrace(const std::string& path) {
  std::ifstream is(path);
  GPD_CHECK_MSG(is.is_open(), "cannot open '" << path << "' for reading");
  return readTrace(is);
}

}  // namespace gpd::io
