// Persistence for recorded computations and their variable traces.
//
// A line-oriented text format, versioned and self-describing:
//
//   gpd-trace 1
//   processes 3
//   events 5 4 6              # total events per process, incl. the initial
//   message 0 2 1 3           # send (proc, idx) -> receive (proc, idx)
//   var 0 cs 0 1 1 0 0        # process, name, value after each event
//   end
//
// Variable names must be whitespace-free. Loading validates structure
// (ranges, duplicate lines, hostile-sized counts, truncation — each rejected
// with a line-numbered gpd::InputError) and causal acyclicity (via
// ComputationBuilder; a cyclic input is likewise an InputError, never a
// CheckFailure). The loader returns owning pointers because the trace refers
// into the computation.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "computation/computation.h"
#include "predicates/variable_trace.h"

namespace gpd::io {

// Format constants, shared with the lenient parser in src/analyze (one
// source of truth for magic, version and the hostile-input bounds: counts
// above these are rejected before they can drive allocations).
inline constexpr char kTraceMagic[] = "gpd-trace";
inline constexpr int kTraceVersion = 1;
inline constexpr long long kTraceMaxProcesses = 1 << 20;
inline constexpr long long kTraceMaxTotalEvents = 1 << 26;

struct TraceFile {
  std::unique_ptr<Computation> computation;
  std::unique_ptr<VariableTrace> trace;
};

void writeTrace(std::ostream& os, const Computation& comp,
                const VariableTrace& trace);

TraceFile readTrace(std::istream& is);

// Convenience file-path wrappers.
void saveTrace(const std::string& path, const Computation& comp,
               const VariableTrace& trace);
TraceFile loadTrace(const std::string& path);

}  // namespace gpd::io
