// Persistence for the resilient online checker (monitor/session.h).
//
// A restarted checker process restores its MonitorSession from the last
// checkpoint and keeps going; notifications replayed by the transport after
// the restore are absorbed by the session's sequence-number dedup, so a
// checkpoint round-trip never changes the verdict.
//
// Line-oriented text, versioned and self-describing like trace_io:
//
//   gpd-checkpoint 1
//   processes 2
//   now 17
//   next 3 1
//   ...
//   queue 0 2
//   clock 1 0
//   clock 3 1
//   ...
//   end
//
// Loading validates structure (throwing gpd::InputError on malformed data)
// and defers semantic validation (program order, buffer ordering) to
// MonitorSession::restore.
#pragma once

#include <iosfwd>
#include <string>

#include "monitor/session.h"

namespace gpd::io {

void writeCheckpoint(std::ostream& os, const monitor::SessionSnapshot& snap);
monitor::SessionSnapshot readCheckpoint(std::istream& is);

// Convenience file-path wrappers.
void saveCheckpoint(const std::string& path,
                    const monitor::SessionSnapshot& snap);
monitor::SessionSnapshot loadCheckpoint(const std::string& path);

// Crash-safe file replacement: writes `contents` to `path + ".tmp"` and
// renames it over `path`, so a reader (or a restart after SIGKILL mid-write)
// sees either the old complete file or the new complete file, never a torn
// one. Throws gpd::InputError if the path cannot be written.
void atomicWriteFile(const std::string& path, const std::string& contents);

// saveCheckpoint via atomicWriteFile — the periodic-checkpoint form used by
// `gpdtool monitor --checkpoint-every` and the gpdd service, where a crash
// can land mid-write and the previous checkpoint must survive.
void saveCheckpointAtomic(const std::string& path,
                          const monitor::SessionSnapshot& snap);

}  // namespace gpd::io
