#include "computation/computation.h"

#include "util/check.h"

namespace gpd {

EventKind Computation::kind(const EventId& e) const {
  GPD_CHECK(contains(e));
  if (e.isInitial()) return EventKind::Initial;
  const bool sends = !outgoing_[node(e)].empty();
  const bool receives = !incoming_[node(e)].empty();
  if (sends && receives) return EventKind::SendReceive;
  if (sends) return EventKind::Send;
  if (receives) return EventKind::Receive;
  return EventKind::Internal;
}

EventId Computation::event(int node) const {
  GPD_CHECK(node >= 0 && node < total_);
  // offsets_ is sorted; find the owning process by scan (process counts are
  // small) — callers on hot paths keep EventIds around instead.
  ProcessId p = 0;
  while (p + 1 < processCount() && offsets_[p + 1] <= node) ++p;
  return {p, node - offsets_[p]};
}

graph::Dag Computation::toDagWithoutInitialEdges() const {
  graph::Dag g(total_);
  for (ProcessId p = 0; p < processCount(); ++p) {
    for (int i = 0; i + 1 < eventCount(p); ++i) {
      g.addEdge(node({p, i}), node({p, i + 1}));
    }
  }
  for (const Message& m : messages_) {
    g.addEdge(node(m.send), node(m.receive));
  }
  return g;
}

graph::Dag Computation::toDag() const {
  graph::Dag g = toDagWithoutInitialEdges();
  // ⊥_p precedes the first non-initial event of every *other* process (its
  // own is already covered by the process edge).
  for (ProcessId p = 0; p < processCount(); ++p) {
    for (ProcessId q = 0; q < processCount(); ++q) {
      if (p != q && eventCount(q) > 1) {
        g.addEdge(node({p, 0}), node({q, 1}));
      }
    }
  }
  return g;
}

ComputationBuilder::ComputationBuilder(int processCount)
    : eventCounts_(processCount, 1) {
  GPD_CHECK(processCount >= 1);
}

EventId ComputationBuilder::appendEvent(ProcessId p) {
  GPD_CHECK(p >= 0 && p < static_cast<int>(eventCounts_.size()));
  return {p, eventCounts_[p]++};
}

void ComputationBuilder::addMessage(EventId send, EventId receive) {
  GPD_CHECK(send.process >= 0 &&
            send.process < static_cast<int>(eventCounts_.size()));
  GPD_CHECK(receive.process >= 0 &&
            receive.process < static_cast<int>(eventCounts_.size()));
  GPD_CHECK(send.index >= 1 && send.index < eventCounts_[send.process]);
  GPD_CHECK(receive.index >= 1 && receive.index < eventCounts_[receive.process]);
  GPD_CHECK_MSG(send.process != receive.process,
                "messages must cross processes");
  messages_.push_back({send, receive});
}

Computation ComputationBuilder::build() && {
  Computation c;
  c.eventCounts_ = std::move(eventCounts_);
  c.offsets_.resize(c.eventCounts_.size());
  int total = 0;
  for (std::size_t p = 0; p < c.eventCounts_.size(); ++p) {
    c.offsets_[p] = total;
    total += c.eventCounts_[p];
  }
  c.total_ = total;
  c.messages_ = std::move(messages_);
  c.incoming_.assign(total, {});
  c.outgoing_.assign(total, {});
  for (std::size_t m = 0; m < c.messages_.size(); ++m) {
    c.outgoing_[c.node(c.messages_[m].send)].push_back(static_cast<int>(m));
    c.incoming_[c.node(c.messages_[m].receive)].push_back(static_cast<int>(m));
  }
  GPD_CHECK_MSG(c.toDagWithoutInitialEdges().isAcyclic(),
                "message edges create a causal cycle");
  return c;
}

}  // namespace gpd
