// Event identities in a distributed computation (paper Sec. 2.1).
//
// Every process executes a sequence of events; index 0 is the fictitious
// *initial event* ⊥ that establishes the process's initial state and, per the
// paper's model, precedes every non-initial event of every process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace gpd {

using ProcessId = int;

struct EventId {
  ProcessId process = 0;
  int index = 0;  // position on the process; 0 is the initial event

  bool isInitial() const { return index == 0; }

  friend bool operator==(const EventId&, const EventId&) = default;
  // Lexicographic; handy for deterministic containers, *not* the causal order.
  friend auto operator<=>(const EventId&, const EventId&) = default;
};

// A message edge: `send` is the send (or send-receive) event, `receive` the
// corresponding receive event. Channels are reliable but not FIFO, and an
// event may be both a send and a receive (paper Sec. 2.1).
struct Message {
  EventId send;
  EventId receive;

  friend bool operator==(const Message&, const Message&) = default;
};

enum class EventKind { Initial, Internal, Send, Receive, SendReceive };

}  // namespace gpd

template <>
struct std::hash<gpd::EventId> {
  std::size_t operator()(const gpd::EventId& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.process)) << 32) |
        static_cast<std::uint32_t>(e.index));
  }
};
