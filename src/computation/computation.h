// The distributed-computation model of the paper (Sec. 2.1).
//
// A Computation is an immutable irreflexive partial order (E, ≺) over the
// events of an execution: per-process total orders, message edges, and the
// convention that each process's initial event precedes every non-initial
// event. Build one with ComputationBuilder (acyclicity is validated), obtain
// one from the simulator (src/sim), or generate random ones (random.h).
#pragma once

#include <vector>

#include "computation/event.h"
#include "graph/dag.h"

namespace gpd {

class Computation {
 public:
  int processCount() const { return static_cast<int>(eventCounts_.size()); }

  // Number of events on process p, including the initial event (≥ 1).
  int eventCount(ProcessId p) const { return eventCounts_[p]; }

  // Total number of events across processes.
  int totalEvents() const { return total_; }

  bool contains(const EventId& e) const {
    return e.process >= 0 && e.process < processCount() && e.index >= 0 &&
           e.index < eventCount(e.process);
  }

  const std::vector<Message>& messages() const { return messages_; }

  // Messages received by / sent from a given event (non-empty only for
  // send / receive / send-receive events).
  const std::vector<int>& incomingMessages(const EventId& e) const {
    return incoming_[node(e)];
  }
  const std::vector<int>& outgoingMessages(const EventId& e) const {
    return outgoing_[node(e)];
  }

  EventKind kind(const EventId& e) const;

  // Dense node numbering over all events (process-major), for graph work.
  int node(const EventId& e) const { return offsets_[e.process] + e.index; }
  EventId event(int node) const;

  // The event order as a DAG over node() numbering: process edges, message
  // edges, and the initial-precedes-everything edges of the paper's model.
  graph::Dag toDag() const;

  // As above but *without* the initial-precedence edges: exactly the
  // happened-before edges induced by process order and messages. Vector
  // clocks are computed on this graph (the initial edges add nothing since
  // every cut contains every initial event).
  graph::Dag toDagWithoutInitialEdges() const;

 private:
  friend class ComputationBuilder;
  Computation() = default;

  std::vector<int> eventCounts_;
  std::vector<int> offsets_;
  int total_ = 0;
  std::vector<Message> messages_;
  std::vector<std::vector<int>> incoming_;  // per node: message indices
  std::vector<std::vector<int>> outgoing_;
};

class ComputationBuilder {
 public:
  explicit ComputationBuilder(int processCount);

  // Appends a non-initial event to process p; returns its EventId.
  // (The initial event at index 0 exists implicitly.)
  EventId appendEvent(ProcessId p);

  // Declares that `send` sends a message received by `receive`. Both events
  // must already exist and be non-initial, on distinct processes.
  void addMessage(EventId send, EventId receive);

  // Validates acyclicity of the resulting order and returns the computation.
  Computation build() &&;

 private:
  std::vector<int> eventCounts_;
  std::vector<Message> messages_;
};

}  // namespace gpd
