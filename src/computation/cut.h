// Cuts of a computation (paper Sec. 2.2).
//
// A cut is prefix-closed per process, so it is fully described by the index
// of the last included event on each process. Because initial events precede
// everything, every cut includes index 0 of every process; the initial cut is
// the all-zero vector. Consistency is a property checked against the causal
// order (see clocks::VectorClocks::isConsistent).
#pragma once

#include <string>
#include <vector>

#include "computation/computation.h"
#include "computation/event.h"

namespace gpd {

struct Cut {
  // last[p] = index of the last event of process p inside the cut (≥ 0).
  std::vector<int> last;

  Cut() = default;
  explicit Cut(std::vector<int> v) : last(std::move(v)) {}

  int processes() const { return static_cast<int>(last.size()); }

  // The cut passes through event e iff e is the last included event of its
  // process (paper Sec. 2.2).
  bool passesThrough(const EventId& e) const { return last[e.process] == e.index; }

  bool contains(const EventId& e) const { return e.index <= last[e.process]; }

  // Number of non-initial events in the cut — the cut's level in the lattice.
  int level() const {
    int sum = 0;
    for (int v : last) sum += v;
    return sum;
  }

  // Lattice order: C ⊆ D componentwise.
  bool subsetOf(const Cut& o) const {
    for (std::size_t p = 0; p < last.size(); ++p) {
      if (last[p] > o.last[p]) return false;
    }
    return true;
  }

  friend bool operator==(const Cut&, const Cut&) = default;

  std::string toString() const;
};

// Componentwise min / max — the lattice meet and join (the consistent cuts of
// a computation are closed under both).
Cut meet(const Cut& a, const Cut& b);
Cut join(const Cut& a, const Cut& b);

// The all-zero initial cut and the all-events final cut.
Cut initialCut(const Computation& c);
Cut finalCut(const Computation& c);

}  // namespace gpd

template <>
struct std::hash<gpd::Cut> {
  std::size_t operator()(const gpd::Cut& c) const noexcept {
    // FNV-1a over the component indices.
    std::size_t h = 1469598103934665603ULL;
    for (int v : c.last) {
      h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL;
      h *= 1099511628211ULL;
    }
    return h;
  }
};
