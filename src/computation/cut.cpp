#include "computation/cut.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace gpd {

std::string Cut::toString() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t p = 0; p < last.size(); ++p) {
    if (p) os << ' ';
    os << last[p];
  }
  os << ']';
  return os.str();
}

Cut meet(const Cut& a, const Cut& b) {
  GPD_CHECK(a.last.size() == b.last.size());
  Cut out;
  out.last.resize(a.last.size());
  for (std::size_t p = 0; p < a.last.size(); ++p) {
    out.last[p] = std::min(a.last[p], b.last[p]);
  }
  return out;
}

Cut join(const Cut& a, const Cut& b) {
  GPD_CHECK(a.last.size() == b.last.size());
  Cut out;
  out.last.resize(a.last.size());
  for (std::size_t p = 0; p < a.last.size(); ++p) {
    out.last[p] = std::max(a.last[p], b.last[p]);
  }
  return out;
}

Cut initialCut(const Computation& c) {
  return Cut(std::vector<int>(c.processCount(), 0));
}

Cut finalCut(const Computation& c) {
  Cut out;
  out.last.resize(c.processCount());
  for (ProcessId p = 0; p < c.processCount(); ++p) {
    out.last[p] = c.eventCount(p) - 1;
  }
  return out;
}

}  // namespace gpd
