#include "computation/reverse.h"

#include "util/check.h"

namespace gpd {

EventId reverseEvent(const Computation& c, const EventId& e) {
  GPD_DCHECK(c.contains(e));
  const int last = c.eventCount(e.process) - 1;
  // Non-initial (p, i) ↦ (p, last + 1 - i); the initial event maps outside
  // the non-initial range and is intentionally not part of the message
  // correspondence (initial events never send or receive).
  GPD_CHECK_MSG(e.index >= 1, "initial events have no reversed image");
  return {e.process, last + 1 - e.index};
}

Computation reverseComputation(const Computation& c) {
  ComputationBuilder b(c.processCount());
  for (ProcessId p = 0; p < c.processCount(); ++p) {
    for (int i = 1; i < c.eventCount(p); ++i) b.appendEvent(p);
  }
  for (const Message& m : c.messages()) {
    b.addMessage(reverseEvent(c, m.receive), reverseEvent(c, m.send));
  }
  return std::move(b).build();
}

Cut reverseCut(const Computation& c, const Cut& cut) {
  GPD_DCHECK(cut.processes() == c.processCount());
  Cut out;
  out.last.resize(cut.last.size());
  for (ProcessId p = 0; p < c.processCount(); ++p) {
    out.last[p] = c.eventCount(p) - 1 - cut.last[p];
  }
  return out;
}

}  // namespace gpd
