#include "computation/random.h"

#include "util/check.h"

namespace gpd {

Computation randomComputation(const RandomComputationOptions& opt, Rng& rng) {
  GPD_CHECK(opt.processes >= 1);
  GPD_CHECK(opt.eventsPerProcess >= 0);

  ComputationBuilder builder(opt.processes);

  // Assign virtual times, strictly increasing along each process.
  std::vector<std::vector<std::int64_t>> time(opt.processes);
  for (ProcessId p = 0; p < opt.processes; ++p) {
    std::int64_t t = 0;
    time[p].push_back(0);  // initial event
    for (int i = 0; i < opt.eventsPerProcess; ++i) {
      t += rng.uniform(1, 10);
      time[p].push_back(t);
      builder.appendEvent(p);
    }
  }

  if (opt.processes < 2) return std::move(builder).build();

  const std::size_t stride = static_cast<std::size_t>(opt.eventsPerProcess) + 1;
  std::vector<char> receives(opt.processes * stride, 0);
  std::vector<char> sends(opt.processes * stride, 0);
  auto flat = [&](EventId e) {
    return static_cast<std::size_t>(e.process) * stride + e.index;
  };

  for (ProcessId p = 0; p < opt.processes; ++p) {
    for (int i = 1; i <= opt.eventsPerProcess; ++i) {
      if (!rng.chance(opt.messageProbability)) continue;
      if (!opt.allowSendReceive && receives[flat({p, i})]) continue;
      // Pick a receiver event strictly later in virtual time.
      ProcessId q = static_cast<ProcessId>(rng.index(opt.processes - 1));
      if (q >= p) ++q;
      std::vector<int> candidates;
      for (int j = 1; j <= opt.eventsPerProcess; ++j) {
        if (time[q][j] <= time[p][i]) continue;
        if (!opt.allowSendReceive && sends[flat({q, j})]) continue;
        candidates.push_back(j);
      }
      if (candidates.empty()) continue;
      const int j = rng.pick(candidates);
      builder.addMessage({p, i}, {q, j});
      sends[flat({p, i})] = 1;
      receives[flat({q, j})] = 1;
    }
  }
  return std::move(builder).build();
}

Computation randomGroupedComputation(const GroupedComputationOptions& opt,
                                     Rng& rng) {
  GPD_CHECK(opt.groups >= 1 && opt.groupSize >= 1);
  GPD_CHECK(opt.eventsPerProcess >= 0);
  const int n = opt.groups * opt.groupSize;
  ComputationBuilder builder(n);

  std::vector<std::vector<std::int64_t>> time(n);
  for (ProcessId p = 0; p < n; ++p) {
    std::int64_t t = 0;
    time[p].push_back(0);
    for (int i = 0; i < opt.eventsPerProcess; ++i) {
      t += rng.uniform(1, 10);
      time[p].push_back(t);
      builder.appendEvent(p);
    }
  }
  if (n < 2) return std::move(builder).build();

  const auto designated = [&](int group) { return group * opt.groupSize; };

  for (ProcessId p = 0; p < n; ++p) {
    if (opt.discipline == OrderingDiscipline::SendOrdered &&
        p != designated(p / opt.groupSize)) {
      continue;  // only the group's first process may send
    }
    for (int i = 1; i <= opt.eventsPerProcess; ++i) {
      if (!rng.chance(opt.messageProbability)) continue;
      // Pick a receiver process under the discipline.
      ProcessId q;
      if (opt.discipline == OrderingDiscipline::ReceiveOrdered) {
        // Any group's designated receiver other than p itself.
        std::vector<ProcessId> receivers;
        for (int g = 0; g < opt.groups; ++g) {
          if (designated(g) != p) receivers.push_back(designated(g));
        }
        if (receivers.empty()) continue;
        q = rng.pick(receivers);
      } else {
        q = static_cast<ProcessId>(rng.index(n - 1));
        if (q >= p) ++q;
      }
      std::vector<int> candidates;
      for (int j = 1; j <= opt.eventsPerProcess; ++j) {
        if (time[q][j] > time[p][i]) candidates.push_back(j);
      }
      if (candidates.empty()) continue;
      builder.addMessage({p, i}, {q, rng.pick(candidates)});
    }
  }
  return std::move(builder).build();
}

}  // namespace gpd
