// Computation reversal.
//
// Reversing the causal order maps consistent cuts to complements of
// consistent cuts, turning send events into receive events. Sec. 3.2's
// send-ordered special case is detected by running the receive-ordered
// algorithm on the reversed computation (see detect/cpdsc.h for the cut and
// event correspondences).
#pragma once

#include "computation/computation.h"
#include "computation/cut.h"

namespace gpd {

// The reversed computation: process p keeps its event count; non-initial
// event (p, i) maps to (p, eventCount(p) - i), and message s → r maps to
// rev(r) → rev(s).
Computation reverseComputation(const Computation& c);

// Event correspondence. Maps (p, i) to (p, eventCount(p) - 1 - i + 1) =
// (p, eventCount(p) - i) for non-initial events; the image of the *last*
// event is the reversed initial event and vice versa. Self-inverse.
EventId reverseEvent(const Computation& c, const EventId& e);

// Cut correspondence: the reversed image of a cut's complement. A cut C of
// the original is consistent iff reverseCut(C) is consistent in the
// reversed computation, and C passes through (p, i) iff reverseCut(C)
// passes through (p, eventCount(p) - 1 - i). Self-inverse.
Cut reverseCut(const Computation& c, const Cut& cut);

}  // namespace gpd
