// Random computation generator.
//
// Property tests compare every efficient detector against exhaustive lattice
// enumeration over thousands of these; benchmarks sweep their parameters.
// Acyclicity is guaranteed by construction: every event gets a virtual
// timestamp increasing along process order, and messages only travel forward
// in virtual time.
#pragma once

#include "computation/computation.h"
#include "util/rng.h"

namespace gpd {

struct RandomComputationOptions {
  int processes = 4;
  int eventsPerProcess = 8;          // non-initial events per process
  double messageProbability = 0.4;   // chance an event sends a message
  // When false, receive events never also send (the restrictive model the
  // paper notes its results also hold for).
  bool allowSendReceive = true;
};

Computation randomComputation(const RandomComputationOptions& opt, Rng& rng);

// Structured generator for the singular-CNF experiments: processes are
// partitioned into consecutive groups of `groupSize` (process p belongs to
// group p / groupSize — the clause groups of a singular k-CNF predicate).
// The ordering discipline constrains message endpoints so the computation is
// receive-ordered / send-ordered per group (paper Sec. 3.2):
//   ReceiveOrdered — every message into a group is received by the group's
//                    first process, so the group's receives form a chain;
//   SendOrdered    — only each group's first process sends messages;
//   None           — unconstrained (the general, NP-hard regime).
enum class OrderingDiscipline { None, ReceiveOrdered, SendOrdered };

struct GroupedComputationOptions {
  int groups = 3;
  int groupSize = 2;
  int eventsPerProcess = 8;
  double messageProbability = 0.4;
  OrderingDiscipline discipline = OrderingDiscipline::None;
};

Computation randomGroupedComputation(const GroupedComputationOptions& opt,
                                     Rng& rng);

}  // namespace gpd
