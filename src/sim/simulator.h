// Discrete-event simulator for asynchronous message-passing systems.
//
// The paper's model (Sec. 2.1) made executable: processes run user-defined
// Programs, communicate over reliable (by default non-FIFO) channels with
// random delays, and the simulator records the resulting distributed
// computation — the event partial order plus per-event variable values — as
// a Computation + VariableTrace ready for the detectors. Everything is
// deterministic given the seed.
//
// Event mapping: a process's Program::onInit runs at its initial event
// (index 0) and may only initialize variables and schedule timers (initial
// events neither send nor receive in the paper's model). Every message
// delivery and every timer expiry executes exactly one event on its process;
// sends performed inside a handler are stamped on that event, so an event
// can be a send, a receive, or both.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "computation/computation.h"
#include "predicates/variable_trace.h"
#include "util/rng.h"

namespace gpd::sim {

struct SimMessage {
  int type = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  ProcessId from = -1;  // filled in by the simulator
  // Fidge–Mattern timestamp of the send event, piggybacked by the engine on
  // every message (component q = index of the last event of process q in the
  // sender's causal history). This is how real monitored systems ship
  // causality, and what the in-simulation checker consumes.
  std::vector<int> senderClock;
};

// Handed to Program callbacks; valid only during the callback.
class ProcessContext {
 public:
  virtual ~ProcessContext() = default;

  virtual ProcessId self() const = 0;
  virtual int processCount() const = 0;
  virtual std::int64_t now() const = 0;

  // Sends a message (delivered after a random delay). Not allowed in onInit.
  virtual void send(ProcessId to, int type, std::int64_t a = 0,
                    std::int64_t b = 0) = 0;

  // Schedules Program::onTimer(tag) on this process after `delay` time units.
  virtual void schedule(int tag, std::int64_t delay) = 0;

  // Local variables (recorded into the trace after the current event).
  // Unset variables read 0.
  virtual void setVar(const std::string& name, std::int64_t value) = 0;
  virtual std::int64_t getVar(const std::string& name) const = 0;

  // Per-process deterministic randomness.
  virtual Rng& rng() = 0;

  // The process's current vector clock (updated before the callback runs, so
  // during onMessage it already includes the received message's history).
  virtual const std::vector<int>& clock() const = 0;
};

// Per-process behavior. One instance per process.
class Program {
 public:
  virtual ~Program() = default;

  // Runs at the initial event. May set variables and schedule timers only.
  virtual void onInit(ProcessContext& ctx) = 0;

  // One event per delivered message.
  virtual void onMessage(ProcessContext& ctx, const SimMessage& msg) = 0;

  // One event per expired timer.
  virtual void onTimer(ProcessContext& ctx, int tag) { (void)ctx, (void)tag; }
};

struct SimOptions {
  std::uint64_t seed = 1;
  std::int64_t minDelay = 1;   // message/timer delay bounds (inclusive)
  std::int64_t maxDelay = 10;
  bool fifoChannels = false;   // clamp per-channel delivery order
  int maxTotalEvents = 100000; // safety cap on non-initial events
  // Fault injection: each message is dropped in the "channel" with this
  // probability. The send event still happens (and still stamps the trace);
  // the receive never does — exactly how a lossy network looks to the
  // recorded computation. Lossy channels break the reliable-channel
  // assumption of the paper's model, so use only to exercise fault-facing
  // predicates (token loss, missed commits).
  double messageLossProbability = 0.0;
  // Each message is delivered a second time with this probability (an
  // at-least-once channel). The duplicate is a separate receive event of the
  // same send, with its own random delay — programs written for exactly-once
  // delivery will misbehave, which is the point: it exercises dedup logic
  // and fault-facing predicates under realistic transports.
  double messageDuplicationProbability = 0.0;
  // Burst delay: with burstDelayProbability a message is stalled by an extra
  // burstDelayUnits time units before delivery (a congested or flapping
  // link), clumping deliveries together without dropping anything.
  double burstDelayProbability = 0.0;
  std::int64_t burstDelayUnits = 50;
};

struct SimResult {
  // unique_ptrs keep addresses stable: trace refers into *computation.
  std::unique_ptr<Computation> computation;
  std::unique_ptr<VariableTrace> trace;
  int droppedActions = 0;      // actions unexecuted due to the event cap
  int droppedMessages = 0;     // messages lost to channel fault injection
  int duplicatedMessages = 0;  // extra deliveries from duplication injection
  int delayedMessages = 0;     // deliveries stalled by burst-delay injection
};

// Runs the simulation to quiescence (empty action queue) or the event cap.
// programs.size() determines the process count.
SimResult runSimulation(const SimOptions& options,
                        std::vector<std::unique_ptr<Program>> programs);

}  // namespace gpd::sim
