#include "sim/simulator.h"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>

#include "util/check.h"

namespace gpd::sim {

namespace {

struct Action {
  std::int64_t time = 0;
  std::uint64_t seq = 0;  // tie-breaker for determinism
  ProcessId proc = 0;
  bool isTimer = false;
  int timerTag = 0;
  SimMessage message;
  EventId sendEvent;  // for deliveries: the sender's event

  // Min-heap ordering.
  bool operator>(const Action& o) const {
    return std::tie(time, seq) > std::tie(o.time, o.seq);
  }
};

class Engine;

class ContextImpl final : public ProcessContext {
 public:
  ContextImpl(Engine& engine, ProcessId proc, bool allowSend)
      : engine_(&engine), proc_(proc), allowSend_(allowSend) {}

  ProcessId self() const override { return proc_; }
  int processCount() const override;
  std::int64_t now() const override;
  void send(ProcessId to, int type, std::int64_t a, std::int64_t b) override;
  void schedule(int tag, std::int64_t delay) override;
  void setVar(const std::string& name, std::int64_t value) override;
  std::int64_t getVar(const std::string& name) const override;
  Rng& rng() override;
  const std::vector<int>& clock() const override;

 private:
  friend class Engine;
  Engine* engine_;
  ProcessId proc_;
  bool allowSend_;
};

class Engine {
 public:
  Engine(const SimOptions& options, std::vector<std::unique_ptr<Program>> programs)
      : options_(options),
        programs_(std::move(programs)),
        n_(static_cast<int>(programs_.size())),
        builder_(n_),
        rootRng_(options.seed) {
    GPD_CHECK(n_ >= 1);
    GPD_CHECK(options.minDelay >= 1 && options.maxDelay >= options.minDelay);
    state_.resize(n_);
    changeLog_.resize(n_);
    eventCount_.assign(n_, 1);  // the initial event
    clock_.assign(n_, std::vector<int>(n_, 0));
    // Independent stream derived from the seed (not forked from rootRng_, so
    // enabling fault injection does not perturb the delay streams).
    lossRng_.reseed(options.seed ^ 0x5bf03635f0935bd1ULL);
    procRng_.reserve(n_);
    for (int p = 0; p < n_; ++p) procRng_.push_back(rootRng_.fork());
    if (options.fifoChannels) channelClock_.resize(n_ * n_, 0);
  }

  SimResult run() {
    // Initial events.
    for (ProcessId p = 0; p < n_; ++p) {
      changeLog_[p].emplace_back();  // slot for event 0
      ContextImpl ctx(*this, p, /*allowSend=*/false);
      currentChanges_ = &changeLog_[p].back();
      programs_[p]->onInit(ctx);
      currentChanges_ = nullptr;
    }
    // Main loop.
    int executed = 0;
    int dropped = 0;
    while (!queue_.empty()) {
      const Action action = queue_.top();
      queue_.pop();
      if (executed >= options_.maxTotalEvents) {
        ++dropped;
        continue;
      }
      ++executed;
      time_ = action.time;
      const ProcessId p = action.proc;
      const EventId event = builder_.appendEvent(p);
      ++eventCount_[p];
      changeLog_[p].emplace_back();
      currentChanges_ = &changeLog_[p].back();
      currentEvent_ = event;
      // Online Fidge–Mattern: merge the piggybacked send timestamp, then
      // tick the own component.
      if (!action.isTimer) {
        for (int q = 0; q < n_; ++q) {
          clock_[p][q] = std::max(clock_[p][q], action.message.senderClock[q]);
        }
      }
      clock_[p][p] = event.index;
      ContextImpl ctx(*this, p, /*allowSend=*/true);
      if (action.isTimer) {
        programs_[p]->onTimer(ctx, action.timerTag);
      } else {
        builder_.addMessage(action.sendEvent, event);
        programs_[p]->onMessage(ctx, action.message);
      }
      currentChanges_ = nullptr;
    }

    SimResult result;
    result.droppedActions = dropped;
    result.droppedMessages = droppedMessages_;
    result.duplicatedMessages = duplicatedMessages_;
    result.delayedMessages = delayedMessages_;
    result.computation =
        std::make_unique<Computation>(std::move(builder_).build());
    result.trace = std::make_unique<VariableTrace>(*result.computation);
    buildTrace(*result.computation, *result.trace);
    return result;
  }

 private:
  friend class ContextImpl;

  std::int64_t randomDelay(ProcessId p) {
    return procRng_[p].uniform(options_.minDelay, options_.maxDelay);
  }

  void enqueue(Action action) {
    action.seq = nextSeq_++;
    queue_.push(std::move(action));
  }

  void doSend(ProcessId from, ProcessId to, int type, std::int64_t a,
              std::int64_t b) {
    GPD_CHECK(to >= 0 && to < n_);
    GPD_CHECK_MSG(to != from, "self-sends are not modeled");
    if (options_.messageLossProbability > 0 &&
        lossRng_.chance(options_.messageLossProbability)) {
      ++droppedMessages_;
      return;  // lost in the channel: no delivery is ever scheduled
    }
    scheduleDelivery(from, to, type, a, b);
    if (options_.messageDuplicationProbability > 0 &&
        lossRng_.chance(options_.messageDuplicationProbability)) {
      // At-least-once channel: a second, independently delayed delivery of
      // the same send (its own receive event and message edge).
      ++duplicatedMessages_;
      scheduleDelivery(from, to, type, a, b);
    }
  }

  void scheduleDelivery(ProcessId from, ProcessId to, int type, std::int64_t a,
                        std::int64_t b) {
    Action action;
    action.time = time_ + randomDelay(from);
    if (options_.burstDelayProbability > 0 &&
        lossRng_.chance(options_.burstDelayProbability)) {
      ++delayedMessages_;
      action.time += options_.burstDelayUnits;  // stalled link, then flushed
    }
    if (options_.fifoChannels) {
      auto& clock = channelClock_[from * n_ + to];
      action.time = std::max(action.time, clock + 1);
      clock = action.time;
    }
    action.proc = to;
    action.message = {type, a, b, from, clock_[from]};
    action.sendEvent = currentEvent_;
    enqueue(std::move(action));
  }

  void doSchedule(ProcessId p, int tag, std::int64_t delay) {
    GPD_CHECK(delay >= 1);
    Action action;
    action.time = time_ + delay;
    action.proc = p;
    action.isTimer = true;
    action.timerTag = tag;
    enqueue(std::move(action));
  }

  void buildTrace(const Computation& comp, VariableTrace& trace) {
    for (ProcessId p = 0; p < n_; ++p) {
      // Names in first-seen order for determinism.
      std::vector<std::string> names;
      for (const auto& changes : changeLog_[p]) {
        for (const auto& [name, _] : changes) {
          if (std::find(names.begin(), names.end(), name) == names.end()) {
            names.push_back(name);
          }
        }
      }
      for (const auto& name : names) {
        std::vector<std::int64_t> history(comp.eventCount(p), 0);
        std::int64_t value = 0;
        for (int i = 0; i < comp.eventCount(p); ++i) {
          for (const auto& [n, v] : changeLog_[p][i]) {
            if (n == name) value = v;
          }
          history[i] = value;
        }
        trace.define(p, name, std::move(history));
      }
    }
  }

  const SimOptions options_;
  std::vector<std::unique_ptr<Program>> programs_;
  const int n_;
  ComputationBuilder builder_;
  Rng rootRng_;
  Rng lossRng_;  // reseeded from rootRng_ in the constructor
  int droppedMessages_ = 0;
  int duplicatedMessages_ = 0;
  int delayedMessages_ = 0;
  std::vector<Rng> procRng_;

  std::priority_queue<Action, std::vector<Action>, std::greater<>> queue_;
  std::uint64_t nextSeq_ = 0;
  std::int64_t time_ = 0;
  EventId currentEvent_;
  std::vector<int> eventCount_;
  std::vector<std::vector<int>> clock_;     // per-process Fidge–Mattern clock
  std::vector<std::int64_t> channelClock_;  // fifo mode: last delivery time

  // Per process: map of current variable values, and per-event change lists.
  using Changes = std::vector<std::pair<std::string, std::int64_t>>;
  std::vector<std::unordered_map<std::string, std::int64_t>> state_;
  std::vector<std::vector<Changes>> changeLog_;
  Changes* currentChanges_ = nullptr;
};

int ContextImpl::processCount() const { return engine_->n_; }
std::int64_t ContextImpl::now() const { return engine_->time_; }

void ContextImpl::send(ProcessId to, int type, std::int64_t a, std::int64_t b) {
  GPD_CHECK_MSG(allowSend_, "initial events cannot send (schedule a timer)");
  engine_->doSend(proc_, to, type, a, b);
}

void ContextImpl::schedule(int tag, std::int64_t delay) {
  engine_->doSchedule(proc_, tag, delay);
}

void ContextImpl::setVar(const std::string& name, std::int64_t value) {
  engine_->state_[proc_][name] = value;
  GPD_CHECK(engine_->currentChanges_ != nullptr);
  engine_->currentChanges_->emplace_back(name, value);
}

std::int64_t ContextImpl::getVar(const std::string& name) const {
  const auto& state = engine_->state_[proc_];
  const auto it = state.find(name);
  return it == state.end() ? 0 : it->second;
}

Rng& ContextImpl::rng() { return engine_->procRng_[proc_]; }

const std::vector<int>& ContextImpl::clock() const {
  return engine_->clock_[proc_];
}

}  // namespace

SimResult runSimulation(const SimOptions& options,
                        std::vector<std::unique_ptr<Program>> programs) {
  Engine engine(options, std::move(programs));
  return engine.run();
}

}  // namespace gpd::sim
