// Canonical distributed workloads, simulated into traces for the detectors.
//
// These are the scenarios the paper's introduction motivates: debugging a
// distributed mutual-exclusion algorithm (detect concurrent critical
// sections), monitoring token counts (relational predicates), leader
// election (conjunctive "two leaders" violation / definite commit), voting
// (symmetric majority predicates), deadlock (dining philosophers), plus the
// classical protocols the predicate-detection literature grew out of:
// Chandy–Lamport snapshots and Dijkstra–Scholten termination detection.
// Each generator optionally injects the bug the associated predicate is
// meant to catch, so experiments can measure true positives and true
// negatives.
#pragma once

#include "sim/simulator.h"

namespace gpd::sim {

// --- Token-ring mutual exclusion -------------------------------------------
// `tokens` tokens circulate a ring of `processes`; a holder enters its
// critical section ("cs" = 1), exits, and forwards the token, for `rounds`
// rounds per process. Variables: "cs" (0/1), "tokens" (held count).
struct TokenRingOptions {
  int processes = 5;
  int tokens = 1;
  int rounds = 3;
  std::uint64_t seed = 1;
  // Bug: this process enters its critical section once without the token.
  int rogueProcess = -1;       // -1: disabled
  // Bug: the token is dropped on this hop count (token loss).
  int dropTokenAtHop = -1;     // -1: disabled
  // Bug: the token is duplicated on this hop count.
  int duplicateTokenAtHop = -1;
  // When ≥ 0: send a notification message (type kCsNotification) to this
  // process id on every critical-section entry — the hook the in-simulation
  // checker (monitor/insim.h) attaches to.
  ProcessId notifyChecker = -1;
};

// Message type of the CS-entry notifications sent when notifyChecker ≥ 0.
inline constexpr int kCsNotification = 100;

SimResult tokenRing(const TokenRingOptions& options);

// One ring member, for embedding into larger systems (e.g. ring + checker);
// `self` must be < options.processes.
std::unique_ptr<Program> makeTokenRingProcess(const TokenRingOptions& options,
                                              ProcessId self);

// --- Ricart–Agrawala mutual exclusion ---------------------------------------
// The classical permission-based algorithm: a requester broadcasts a
// Lamport-timestamped REQUEST and enters its critical section after
// collecting a REPLY from every peer; peers defer their reply while they
// hold or have an older claim. Correct runs never violate mutual exclusion
// — which the detectors verify — while `rudeProcess` (a peer that always
// replies immediately, never deferring) reintroduces the race.
// Variables: "cs" (0/1), "requesting" (0/1), "completed" (CS entries done).
struct RicartAgrawalaOptions {
  int processes = 4;
  int rounds = 2;      // CS entries per process
  int rudeProcess = -1;  // bug: this process never defers replies
  std::uint64_t seed = 1;
};

SimResult ricartAgrawala(const RicartAgrawalaOptions& options);

// --- Chang–Roberts leader election -----------------------------------------
// Ring election on random unique ids; the max id wins and announces.
// Variables: "leader" (0/1: declared itself leader), "done" (0/1: learned
// the leader). With `duplicateMaxId`, two processes share the max id — the
// classic bug making two leaders possible.
struct LeaderElectionOptions {
  int processes = 5;
  std::uint64_t seed = 1;
  bool duplicateMaxId = false;
};

SimResult leaderElection(const LeaderElectionOptions& options);

// --- Two-phase voting --------------------------------------------------------
// Process 0 coordinates: requests votes from every other process, each votes
// yes with probability `yesProbability`, the coordinator commits iff all
// voted yes. Variables: voters carry "yes" (0/1) and "voted" (0/1); the
// coordinator carries "committed"/"aborted" (0/1).
struct VotingOptions {
  int processes = 6;  // 1 coordinator + 5 voters
  double yesProbability = 0.7;
  std::uint64_t seed = 1;
};

SimResult voting(const VotingOptions& options);

// --- Dining philosophers -----------------------------------------------------
// The paper's deadlock-detection motivation: n philosophers on a ring, fork
// i managed by philosopher i, philosopher i needing forks i and (i+1) mod n.
// With `orderedAcquisition` false each philosopher grabs its own fork first
// and then requests the neighbour's — the classic hold-and-wait pattern that
// can deadlock (the run quiesces with everyone waiting). With it true, forks
// are acquired in global index order, which provably excludes deadlock.
// Variables: "waiting", "eating", "meals" (completed eat rounds).
struct PhilosophersOptions {
  int philosophers = 4;
  int meals = 2;               // target meals per philosopher
  bool orderedAcquisition = false;
  std::uint64_t seed = 1;
};

SimResult diningPhilosophers(const PhilosophersOptions& options);

// --- Bank transfers with a Chandy–Lamport snapshot ---------------------------
// Processes exchange money over FIFO channels while process 0 initiates a
// Chandy–Lamport snapshot: record local state, flood markers, record
// in-transit messages per channel until that channel's marker arrives
// (the paper's reference [2], and the classic stable-predicate machinery).
// Variables: "balance"; after recording, "recorded" (0/1), "snapBalance"
// (state recorded), "snapInTransit" (recorded channel amounts into this
// process), "snapComplete" (all markers received).
// The snapshot cut — each process at its recording event — is consistent
// (FIFO channels guarantee it), and recorded balances + recorded in-transit
// sum to the system total: both are asserted in the test suite.
struct SnapshotBankOptions {
  int processes = 4;
  std::int64_t initialBalance = 100;
  int transfersPerProcess = 5;
  std::int64_t snapshotDelay = 7;  // when process 0 initiates
  std::uint64_t seed = 1;
};

SimResult snapshotBank(const SnapshotBankOptions& options);

// --- Diffusing computation with Dijkstra–Scholten termination detection ------
// Process 0 (the root) starts a diffusing computation: WORK messages activate
// passive processes, active processes may spawn more WORK, and activity dies
// out. The Dijkstra–Scholten overlay tracks an engagement tree with deficit
// counters (every WORK is eventually ACKed; a process detaches only when
// passive with zero deficit), so the root's declaration — variable
// "terminated" on process 0 — is sound: at the declaration's causal cut the
// whole computation is passive with no message in flight (asserted in the
// test suite against the linear-predicate termination oracle).
// Variables: "active" (0/1), "worked" (work steps executed); root also has
// "terminated" (0/1).
struct DiffusingOptions {
  int processes = 5;
  int totalWorkBudget = 12;   // global cap on WORK messages spawned
  double spawnProbability = 0.6;
  std::uint64_t seed = 1;
};

SimResult diffusingComputation(const DiffusingOptions& options);

// --- Producer–consumer -------------------------------------------------------
// `producers` processes each send `itemsPerProducer` items to random
// consumers. Variables: "produced" on producers, "consumed" on consumers —
// Σ produced − Σ consumed is the in-flight item count, a bounded-Δ sum.
struct ProducerConsumerOptions {
  int producers = 3;
  int consumers = 3;
  int itemsPerProducer = 5;
  std::uint64_t seed = 1;
};

SimResult producerConsumer(const ProducerConsumerOptions& options);

}  // namespace gpd::sim
