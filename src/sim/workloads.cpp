#include "sim/workloads.h"

#include <algorithm>
#include <tuple>

#include "util/check.h"

namespace gpd::sim {

namespace {

// ---------------------------------------------------------------------------
// Token ring.

class TokenRingProcess final : public Program {
 public:
  TokenRingProcess(const TokenRingOptions& opt, ProcessId self)
      : opt_(opt), self_(self) {}

  enum Timers { kStart = 1, kExitCs = 2, kRogueEnter = 3, kRogueExit = 4 };
  enum Messages { kToken = 1 };

  void onInit(ProcessContext& ctx) override {
    ctx.setVar("cs", 0);
    ctx.setVar("tokens", self_ < opt_.tokens ? 1 : 0);
    if (self_ < opt_.tokens) ctx.schedule(kStart, 1 + self_);
    if (self_ == opt_.rogueProcess) {
      ctx.schedule(kRogueEnter, 5);
    }
  }

  void onTimer(ProcessContext& ctx, int tag) override {
    switch (tag) {
      case kStart:
        enterCs(ctx);
        break;
      case kExitCs:
        ctx.setVar("cs", ctx.getVar("cs") - 1);
        forwardToken(ctx);
        break;
      case kRogueEnter:
        // The bug: enters the critical section without holding a token.
        ctx.setVar("cs", ctx.getVar("cs") + 1);
        notifyEntry(ctx);
        ctx.schedule(kRogueExit, 6);
        break;
      case kRogueExit:
        ctx.setVar("cs", ctx.getVar("cs") - 1);
        break;
    }
  }

  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    GPD_CHECK(msg.type == kToken);
    const std::int64_t hop = msg.a;
    ctx.setVar("tokens", ctx.getVar("tokens") + 1);
    if (hop >= static_cast<std::int64_t>(opt_.rounds) * opt_.processes) {
      return;  // enough rounds: hold the token, let the run quiesce
    }
    hopCount_ = hop;
    enterCs(ctx);
  }

 private:
  void enterCs(ProcessContext& ctx) {
    ctx.setVar("cs", ctx.getVar("cs") + 1);
    notifyEntry(ctx);
    ctx.schedule(kExitCs, 1 + static_cast<int>(ctx.rng().index(4)));
  }

  void notifyEntry(ProcessContext& ctx) {
    if (opt_.notifyChecker >= 0) {
      ctx.send(opt_.notifyChecker, kCsNotification);
    }
  }

  void forwardToken(ProcessContext& ctx) {
    ctx.setVar("tokens", ctx.getVar("tokens") - 1);
    const std::int64_t hop = hopCount_ + 1;
    if (hop == opt_.dropTokenAtHop) return;  // token lost in the "channel"
    const ProcessId next = (self_ + 1) % opt_.processes;
    ctx.send(next, kToken, hop);
    if (hop == opt_.duplicateTokenAtHop) {
      ctx.send(next, kToken, hop);  // spurious duplicate
    }
  }

  const TokenRingOptions opt_;
  const ProcessId self_;
  std::int64_t hopCount_ = 0;
};

// ---------------------------------------------------------------------------
// Ricart–Agrawala mutual exclusion.

class RicartAgrawalaProcess final : public Program {
 public:
  RicartAgrawalaProcess(const RicartAgrawalaOptions& opt, ProcessId self)
      : opt_(opt), self_(self) {}

  enum Timers { kWantCs = 1, kExitCs = 2 };
  enum Messages { kRequest = 1, kReply = 2 };

  void onInit(ProcessContext& ctx) override {
    ctx.setVar("cs", 0);
    ctx.setVar("requesting", 0);
    ctx.setVar("completed", 0);
    ctx.schedule(kWantCs, 1 + static_cast<int>(ctx.rng().index(8)));
  }

  void onTimer(ProcessContext& ctx, int tag) override {
    if (tag == kWantCs) {
      requesting_ = true;
      myTs_ = ++lamport_;
      replies_ = 0;
      ctx.setVar("requesting", 1);
      for (ProcessId p = 0; p < opt_.processes; ++p) {
        if (p != self_) ctx.send(p, kRequest, myTs_, self_);
      }
      if (opt_.processes == 1) enterCs(ctx);
    } else {
      GPD_CHECK(tag == kExitCs && inCs_);
      inCs_ = false;
      requesting_ = false;
      ctx.setVar("cs", 0);
      ctx.setVar("requesting", 0);
      ctx.setVar("completed", ++completed_);
      for (ProcessId p : deferred_) ctx.send(p, kReply, ++lamport_);
      deferred_.clear();
      if (completed_ < opt_.rounds) {
        ctx.schedule(kWantCs, 1 + static_cast<int>(ctx.rng().index(8)));
      }
    }
  }

  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    lamport_ = std::max(lamport_, msg.a) + 1;
    if (msg.type == kRequest) {
      const std::int64_t ts = msg.a;
      const ProcessId from = msg.from;
      // Defer while in the CS or while holding an older claim — unless this
      // process is the injected "rude" peer that never defers.
      const bool mineOlder =
          requesting_ &&
          std::tie(myTs_, self_) < std::tie(ts, from);
      const bool defer = (inCs_ || mineOlder) && self_ != opt_.rudeProcess;
      if (defer) {
        deferred_.push_back(from);
      } else {
        ctx.send(from, kReply, ++lamport_);
      }
    } else {
      GPD_CHECK(msg.type == kReply);
      if (requesting_ && !inCs_ && ++replies_ == opt_.processes - 1) {
        enterCs(ctx);
      }
    }
  }

 private:
  void enterCs(ProcessContext& ctx) {
    inCs_ = true;
    ctx.setVar("cs", 1);
    ctx.schedule(kExitCs, 1 + static_cast<int>(ctx.rng().index(4)));
  }

  const RicartAgrawalaOptions opt_;
  const ProcessId self_;
  std::int64_t lamport_ = 0;
  bool requesting_ = false;
  bool inCs_ = false;
  std::int64_t myTs_ = 0;
  int replies_ = 0;
  int completed_ = 0;
  std::vector<ProcessId> deferred_;
};

// ---------------------------------------------------------------------------
// Chang–Roberts leader election.

class ElectionProcess final : public Program {
 public:
  ElectionProcess(ProcessId self, int n, std::int64_t id)
      : self_(self), n_(n), id_(id) {}

  enum Timers { kStart = 1 };
  enum Messages { kElection = 1, kElected = 2 };

  void onInit(ProcessContext& ctx) override {
    ctx.setVar("leader", 0);
    ctx.setVar("done", 0);
    ctx.setVar("id", id_);
    ctx.schedule(kStart, 1 + static_cast<int>(ctx.rng().index(5)));
  }

  void onTimer(ProcessContext& ctx, int tag) override {
    GPD_CHECK(tag == kStart);
    ctx.send(next(), kElection, id_);
  }

  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    if (msg.type == kElection) {
      const std::int64_t candidate = msg.a;
      if (candidate > id_) {
        ctx.send(next(), kElection, candidate);
      } else if (candidate == id_) {
        // Our own id made it around: we are the leader. (With duplicated
        // max ids, *both* owners see "their" id return — the bug.)
        ctx.setVar("leader", 1);
        ctx.setVar("done", 1);
        ctx.send(next(), kElected, id_);
      }
      // candidate < id_: swallow; our own id is already circulating.
    } else if (msg.type == kElected) {
      if (ctx.getVar("done") == 0) {
        ctx.setVar("done", 1);
        ctx.send(next(), kElected, msg.a);
      }
    }
  }

 private:
  ProcessId next() const { return (self_ + 1) % n_; }

  const ProcessId self_;
  const int n_;
  const std::int64_t id_;
};

// ---------------------------------------------------------------------------
// Two-phase voting.

class VotingProcess final : public Program {
 public:
  VotingProcess(const VotingOptions& opt, ProcessId self)
      : opt_(opt), self_(self) {}

  enum Timers { kStart = 1 };
  enum Messages { kVoteRequest = 1, kVote = 2, kDecision = 3 };

  void onInit(ProcessContext& ctx) override {
    if (self_ == 0) {
      ctx.setVar("committed", 0);
      ctx.setVar("aborted", 0);
      ctx.schedule(kStart, 1);
    } else {
      ctx.setVar("yes", 0);
      ctx.setVar("voted", 0);
    }
  }

  void onTimer(ProcessContext& ctx, int tag) override {
    GPD_CHECK(tag == kStart && self_ == 0);
    for (ProcessId p = 1; p < opt_.processes; ++p) {
      ctx.send(p, kVoteRequest);
    }
  }

  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    if (msg.type == kVoteRequest) {
      const bool yes = ctx.rng().chance(opt_.yesProbability);
      ctx.setVar("yes", yes ? 1 : 0);
      ctx.setVar("voted", 1);
      ctx.send(0, kVote, yes ? 1 : 0);
    } else if (msg.type == kVote) {
      ++votes_;
      yesVotes_ += static_cast<int>(msg.a);
      if (votes_ == opt_.processes - 1) {
        const bool commit = yesVotes_ == votes_;
        ctx.setVar(commit ? "committed" : "aborted", 1);
        for (ProcessId p = 1; p < opt_.processes; ++p) {
          ctx.send(p, kDecision, commit ? 1 : 0);
        }
      }
    }
    // kDecision: no state we track.
  }

 private:
  const VotingOptions opt_;
  const ProcessId self_;
  int votes_ = 0;
  int yesVotes_ = 0;
};

// ---------------------------------------------------------------------------
// Dining philosophers (Chandy–Misra-style fork managers).

class PhilosopherProcess final : public Program {
 public:
  PhilosopherProcess(const PhilosophersOptions& opt, ProcessId self)
      : opt_(opt), self_(self) {}

  enum Timers { kHungry = 1, kDoneEating = 2 };
  enum Messages { kRequest = 1, kGrant = 2, kRelease = 3 };

  void onInit(ProcessContext& ctx) override {
    ctx.setVar("waiting", 0);
    ctx.setVar("eating", 0);
    ctx.setVar("meals", 0);
    forkFree_ = true;  // fork self_ starts at its manager
    ctx.schedule(kHungry, 1 + static_cast<int>(ctx.rng().index(6)));
  }

  void onTimer(ProcessContext& ctx, int tag) override {
    if (tag == kHungry) {
      ctx.setVar("waiting", 1);
      acquire(ctx, firstFork());
    } else {
      GPD_CHECK(tag == kDoneEating);
      ctx.setVar("eating", 0);
      ctx.setVar("meals", ++meals_);
      releaseBoth(ctx);
      if (meals_ < opt_.meals) {
        ctx.schedule(kHungry, 2 + static_cast<int>(ctx.rng().index(5)));
      }
    }
  }

  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    const int fork = static_cast<int>(msg.a);
    switch (msg.type) {
      case kRequest:
        GPD_CHECK(fork == self_);  // we manage exactly fork self_
        if (forkFree_) {
          forkFree_ = false;
          ctx.send(msg.from, kGrant, fork);
        } else {
          deferred_.push_back(msg.from);
        }
        break;
      case kGrant:
        onForkAcquired(ctx, fork);
        break;
      case kRelease:
        GPD_CHECK(fork == self_);
        serveNext(ctx);
        break;
      default:
        GPD_CHECK(false);
    }
  }

 private:
  int leftFork() const { return self_; }
  int rightFork() const { return (self_ + 1) % opt_.philosophers; }

  // With ordered acquisition, take the lower-numbered fork first (the
  // classic deadlock-freedom fix); otherwise always own-fork first.
  int firstFork() const {
    if (opt_.orderedAcquisition) return std::min(leftFork(), rightFork());
    return leftFork();
  }
  int secondFork() const {
    return firstFork() == leftFork() ? rightFork() : leftFork();
  }

  void acquire(ProcessContext& ctx, int fork) {
    if (fork == self_) {
      // Self-managed: take it or queue ourselves behind remote requesters.
      if (forkFree_) {
        forkFree_ = false;
        onForkAcquired(ctx, fork);
      } else {
        deferred_.push_back(self_);
      }
    } else {
      ctx.send(fork, kRequest, fork);
    }
  }

  void onForkAcquired(ProcessContext& ctx, int fork) {
    held_.push_back(fork);
    if (static_cast<int>(held_.size()) == 1) {
      acquire(ctx, secondFork());
    } else {
      ctx.setVar("waiting", 0);
      ctx.setVar("eating", 1);
      ctx.schedule(kDoneEating, 1 + static_cast<int>(ctx.rng().index(3)));
    }
  }

  void releaseBoth(ProcessContext& ctx) {
    for (int fork : held_) {
      if (fork == self_) {
        serveNext(ctx);
      } else {
        ctx.send(fork, kRelease, fork);
      }
    }
    held_.clear();
  }

  // Our fork came free: hand it to the next waiter (possibly ourselves).
  void serveNext(ProcessContext& ctx) {
    if (deferred_.empty()) {
      forkFree_ = true;
      return;
    }
    const ProcessId next = deferred_.front();
    deferred_.erase(deferred_.begin());
    if (next == self_) {
      onForkAcquired(ctx, self_);
    } else {
      ctx.send(next, kGrant, self_);
    }
  }

  const PhilosophersOptions opt_;
  const ProcessId self_;
  bool forkFree_ = true;
  std::vector<ProcessId> deferred_;
  std::vector<int> held_;
  int meals_ = 0;
};

// ---------------------------------------------------------------------------
// Diffusing computation with Dijkstra–Scholten termination detection.

class DiffusingProcess final : public Program {
 public:
  DiffusingProcess(const DiffusingOptions& opt, ProcessId self)
      : opt_(opt), self_(self) {}

  enum Timers { kStart = 1, kStep = 2 };
  enum Messages { kWork = 1, kAck = 2 };

  void onInit(ProcessContext& ctx) override {
    ctx.setVar("active", 0);
    ctx.setVar("worked", 0);
    if (self_ == 0) {
      ctx.setVar("terminated", 0);
      ctx.schedule(kStart, 1);
    }
  }

  void onTimer(ProcessContext& ctx, int tag) override {
    if (tag == kStart) {
      GPD_CHECK(self_ == 0);
      activate(ctx, opt_.totalWorkBudget);
      return;
    }
    GPD_CHECK(tag == kStep && active_);
    ctx.setVar("worked", ctx.getVar("worked") + 1);
    maybeSpawn(ctx);
    if (--stepsLeft_ > 0) {
      ctx.schedule(kStep, 1 + static_cast<int>(ctx.rng().index(3)));
    } else {
      active_ = false;
      ctx.setVar("active", 0);
      tryDetach(ctx);
    }
  }

  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    if (msg.type == kAck) {
      GPD_CHECK(deficit_ > 0);
      --deficit_;
      tryDetach(ctx);
      return;
    }
    GPD_CHECK(msg.type == kWork);
    const bool detached = !active_ && deficit_ == 0 && parent_ < 0;
    if (detached && self_ != 0) {
      // First engagement (or a fresh one after detaching): the sender
      // becomes our parent; its WORK is acknowledged only when we detach.
      parent_ = msg.from;
      activate(ctx, msg.a);
    } else {
      // Already engaged (the root counts as permanently engaged): any
      // further WORK is acknowledged immediately; if we are passive we
      // reactivate to do the new work (detachment stays deferred while the
      // deficit or activity persists).
      // Dijkstra–Scholten soundness, checked at runtime: once the root has
      // declared termination no WORK can still be in flight.
      GPD_CHECK_MSG(self_ != 0 || ctx.getVar("terminated") == 0,
                    "WORK arrived after the root declared termination");
      ctx.send(msg.from, kAck);
      if (!active_) activate(ctx, msg.a);
    }
  }

 private:
  void activate(ProcessContext& ctx, std::int64_t budget) {
    active_ = true;
    budget_ = budget;
    stepsLeft_ = 1 + static_cast<int>(ctx.rng().index(2));
    ctx.setVar("active", 1);
    ctx.schedule(kStep, 1 + static_cast<int>(ctx.rng().index(3)));
  }

  void maybeSpawn(ProcessContext& ctx) {
    if (budget_ <= 0 || !ctx.rng().chance(opt_.spawnProbability)) return;
    // Budget splitting keeps the global WORK count ≤ totalWorkBudget.
    const std::int64_t grant = (budget_ - 1) / 2;
    budget_ -= 1 + grant;
    ProcessId to = static_cast<ProcessId>(ctx.rng().index(opt_.processes - 1));
    if (to >= self_) ++to;
    ctx.send(to, kWork, grant);
    ++deficit_;
  }

  void tryDetach(ProcessContext& ctx) {
    if (active_ || deficit_ != 0) return;
    if (self_ == 0) {
      ctx.setVar("terminated", 1);  // Dijkstra–Scholten declaration
    } else if (parent_ >= 0) {
      ctx.send(parent_, kAck);
      parent_ = -1;
    }
  }

  const DiffusingOptions opt_;
  const ProcessId self_;
  bool active_ = false;
  std::int64_t budget_ = 0;
  int stepsLeft_ = 0;
  int deficit_ = 0;
  ProcessId parent_ = -1;
};

// ---------------------------------------------------------------------------
// Bank transfers with a Chandy–Lamport snapshot.

class BankProcess final : public Program {
 public:
  BankProcess(const SnapshotBankOptions& opt, ProcessId self)
      : opt_(opt), self_(self) {}

  enum Timers { kTransfer = 1, kInitiateSnapshot = 2 };
  enum Messages { kMoney = 1, kMarker = 2 };

  void onInit(ProcessContext& ctx) override {
    ctx.setVar("balance", opt_.initialBalance);
    ctx.setVar("recorded", 0);
    ctx.setVar("snapComplete", 0);
    ctx.schedule(kTransfer, 1 + static_cast<int>(ctx.rng().index(4)));
    if (self_ == 0) ctx.schedule(kInitiateSnapshot, opt_.snapshotDelay);
  }

  void onTimer(ProcessContext& ctx, int tag) override {
    if (tag == kTransfer) {
      transferSomething(ctx);
      if (++transfers_ < opt_.transfersPerProcess) {
        ctx.schedule(kTransfer, 1 + static_cast<int>(ctx.rng().index(5)));
      }
    } else {
      GPD_CHECK(tag == kInitiateSnapshot && self_ == 0);
      if (!recorded_) startRecording(ctx);
    }
  }

  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    if (msg.type == kMoney) {
      ctx.setVar("balance", ctx.getVar("balance") + msg.a);
      // Channel recording: money arriving after our record, on a channel
      // whose marker has not yet arrived, was in transit at snapshot time.
      if (recorded_ && !markerFrom_[msg.from]) {
        inTransit_ += msg.a;
        ctx.setVar("snapInTransit", inTransit_);
      }
    } else {
      GPD_CHECK(msg.type == kMarker);
      if (!recorded_) startRecording(ctx);
      markerFrom_[msg.from] = true;
      if (++markers_ == opt_.processes - 1) ctx.setVar("snapComplete", 1);
    }
  }

 private:
  void transferSomething(ProcessContext& ctx) {
    const std::int64_t balance = ctx.getVar("balance");
    if (balance <= 0 || opt_.processes < 2) return;
    const std::int64_t amount = ctx.rng().uniform(1, std::max<std::int64_t>(
                                                        1, balance / 3));
    ProcessId to = static_cast<ProcessId>(ctx.rng().index(opt_.processes - 1));
    if (to >= self_) ++to;
    ctx.setVar("balance", balance - amount);
    ctx.send(to, kMoney, amount);
  }

  void startRecording(ProcessContext& ctx) {
    recorded_ = true;
    markerFrom_.assign(opt_.processes, false);
    ctx.setVar("recorded", 1);
    ctx.setVar("snapBalance", ctx.getVar("balance"));
    ctx.setVar("snapInTransit", 0);
    for (ProcessId p = 0; p < opt_.processes; ++p) {
      if (p != self_) ctx.send(p, kMarker);
    }
  }

  const SnapshotBankOptions opt_;
  const ProcessId self_;
  int transfers_ = 0;
  bool recorded_ = false;
  int markers_ = 0;
  std::int64_t inTransit_ = 0;
  std::vector<bool> markerFrom_;
};

// ---------------------------------------------------------------------------
// Producer–consumer.

class ProducerConsumerProcess final : public Program {
 public:
  ProducerConsumerProcess(const ProducerConsumerOptions& opt, ProcessId self)
      : opt_(opt), self_(self) {}

  enum Timers { kProduce = 1 };
  enum Messages { kItem = 1 };

  bool isProducer() const { return self_ < opt_.producers; }

  void onInit(ProcessContext& ctx) override {
    if (isProducer()) {
      ctx.setVar("produced", 0);
      ctx.schedule(kProduce, 1 + static_cast<int>(ctx.rng().index(3)));
    } else {
      ctx.setVar("consumed", 0);
    }
  }

  void onTimer(ProcessContext& ctx, int tag) override {
    GPD_CHECK(tag == kProduce);
    if (sent_ >= opt_.itemsPerProducer) return;
    ++sent_;
    ctx.setVar("produced", sent_);
    const ProcessId consumer =
        opt_.producers + static_cast<ProcessId>(ctx.rng().index(opt_.consumers));
    ctx.send(consumer, kItem);
    ctx.schedule(kProduce, 1 + static_cast<int>(ctx.rng().index(4)));
  }

  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    GPD_CHECK(msg.type == kItem);
    ctx.setVar("consumed", ctx.getVar("consumed") + 1);
  }

 private:
  const ProducerConsumerOptions opt_;
  const ProcessId self_;
  int sent_ = 0;
};

}  // namespace

SimResult tokenRing(const TokenRingOptions& options) {
  GPD_CHECK(options.processes >= 2);
  GPD_CHECK(options.tokens >= 0 && options.tokens <= options.processes);
  std::vector<std::unique_ptr<Program>> programs;
  for (ProcessId p = 0; p < options.processes; ++p) {
    programs.push_back(makeTokenRingProcess(options, p));
  }
  SimOptions sim;
  sim.seed = options.seed;
  return runSimulation(sim, std::move(programs));
}

std::unique_ptr<Program> makeTokenRingProcess(const TokenRingOptions& options,
                                              ProcessId self) {
  GPD_CHECK(self >= 0 && self < options.processes);
  return std::make_unique<TokenRingProcess>(options, self);
}

SimResult ricartAgrawala(const RicartAgrawalaOptions& options) {
  GPD_CHECK(options.processes >= 1);
  GPD_CHECK(options.rounds >= 1);
  std::vector<std::unique_ptr<Program>> programs;
  for (ProcessId p = 0; p < options.processes; ++p) {
    programs.push_back(std::make_unique<RicartAgrawalaProcess>(options, p));
  }
  SimOptions sim;
  sim.seed = options.seed;
  return runSimulation(sim, std::move(programs));
}

SimResult leaderElection(const LeaderElectionOptions& options) {
  GPD_CHECK(options.processes >= 2);
  Rng rng(options.seed);
  // Unique random ids via a shuffled range.
  std::vector<std::int64_t> ids(options.processes);
  for (int i = 0; i < options.processes; ++i) ids[i] = i + 1;
  rng.shuffle(ids);
  if (options.duplicateMaxId) {
    // Give the max id to a second (non-adjacent if possible) process.
    int maxAt = 0;
    for (int i = 1; i < options.processes; ++i) {
      if (ids[i] > ids[maxAt]) maxAt = i;
    }
    const int other =
        (maxAt + std::max(2, options.processes / 2)) % options.processes;
    ids[other] = ids[maxAt];
  }
  std::vector<std::unique_ptr<Program>> programs;
  for (ProcessId p = 0; p < options.processes; ++p) {
    programs.push_back(
        std::make_unique<ElectionProcess>(p, options.processes, ids[p]));
  }
  SimOptions sim;
  sim.seed = options.seed;
  return runSimulation(sim, std::move(programs));
}

SimResult voting(const VotingOptions& options) {
  GPD_CHECK(options.processes >= 2);
  std::vector<std::unique_ptr<Program>> programs;
  for (ProcessId p = 0; p < options.processes; ++p) {
    programs.push_back(std::make_unique<VotingProcess>(options, p));
  }
  SimOptions sim;
  sim.seed = options.seed;
  return runSimulation(sim, std::move(programs));
}

SimResult diningPhilosophers(const PhilosophersOptions& options) {
  GPD_CHECK(options.philosophers >= 2);
  GPD_CHECK(options.meals >= 1);
  std::vector<std::unique_ptr<Program>> programs;
  for (ProcessId p = 0; p < options.philosophers; ++p) {
    programs.push_back(std::make_unique<PhilosopherProcess>(options, p));
  }
  SimOptions sim;
  sim.seed = options.seed;
  return runSimulation(sim, std::move(programs));
}

SimResult diffusingComputation(const DiffusingOptions& options) {
  GPD_CHECK(options.processes >= 2);
  GPD_CHECK(options.totalWorkBudget >= 0);
  std::vector<std::unique_ptr<Program>> programs;
  for (ProcessId p = 0; p < options.processes; ++p) {
    programs.push_back(std::make_unique<DiffusingProcess>(options, p));
  }
  SimOptions sim;
  sim.seed = options.seed;
  return runSimulation(sim, std::move(programs));
}

SimResult snapshotBank(const SnapshotBankOptions& options) {
  GPD_CHECK(options.processes >= 2);
  GPD_CHECK(options.initialBalance >= 1);
  std::vector<std::unique_ptr<Program>> programs;
  for (ProcessId p = 0; p < options.processes; ++p) {
    programs.push_back(std::make_unique<BankProcess>(options, p));
  }
  SimOptions sim;
  sim.seed = options.seed;
  sim.fifoChannels = true;  // Chandy–Lamport requires FIFO channels
  return runSimulation(sim, std::move(programs));
}

SimResult producerConsumer(const ProducerConsumerOptions& options) {
  GPD_CHECK(options.producers >= 1 && options.consumers >= 1);
  std::vector<std::unique_ptr<Program>> programs;
  const int n = options.producers + options.consumers;
  for (ProcessId p = 0; p < n; ++p) {
    programs.push_back(std::make_unique<ProducerConsumerProcess>(options, p));
  }
  SimOptions sim;
  sim.seed = options.seed;
  return runSimulation(sim, std::move(programs));
}

}  // namespace gpd::sim
