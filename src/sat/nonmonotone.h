// 3-CNF → non-monotone 3-CNF transformation (paper Sec. 3.1).
//
// The Theorem 1 reduction needs every 3-literal clause to contain at least
// one positive and one negative literal. An all-positive clause (a ∨ b ∨ c)
// is replaced, with a fresh variable y ≡ ¬c, by
//   (a ∨ b ∨ ¬y) ∧ (y ∨ c) ∧ (¬y ∨ ¬c),
// and symmetrically for all-negative clauses. The transform is
// equisatisfiable and satisfying assignments project back.
#pragma once

#include "sat/cnf.h"

namespace gpd::sat {

struct NonMonotoneTransform {
  Cnf formula;       // non-monotone; first `originalVars` variables coincide
  int originalVars;  // number of variables in the input formula
};

// Requires every clause of `cnf` to have at most three literals.
NonMonotoneTransform toNonMonotone(const Cnf& cnf);

// Projects an assignment of the transformed formula to the original one.
Assignment projectAssignment(const NonMonotoneTransform& t, const Assignment& a);

}  // namespace gpd::sat
