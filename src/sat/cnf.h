// Propositional CNF formulas.
//
// Substrate for the paper's NP-completeness machinery: Sec. 3.1 reduces
// non-monotone 3-SAT to singular 2-CNF detection, and the test suite
// round-trips those reductions against the DPLL solver in sat/dpll.h.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"

namespace gpd::sat {

struct Lit {
  int var = 0;           // 0-based variable index
  bool positive = true;  // true: v, false: ¬v

  Lit negated() const { return {var, !positive}; }
  friend bool operator==(const Lit&, const Lit&) = default;
};

using Clause = std::vector<Lit>;

struct Cnf {
  int numVars = 0;
  std::vector<Clause> clauses;

  int addVar() { return numVars++; }
  void addClause(Clause c) { clauses.push_back(std::move(c)); }
};

using Assignment = std::vector<bool>;  // size == numVars

// True iff the assignment satisfies every clause.
bool satisfies(const Cnf& cnf, const Assignment& a);

// Uniform random k-CNF: each clause has k distinct variables with random
// polarities. Requires numVars >= k.
Cnf randomKCnf(int numVars, int numClauses, int k, Rng& rng);

// A clause is non-monotone-admissible iff it has at most three literals and,
// when it has exactly three, contains at least one positive and one negative
// literal (paper Sec. 3.1).
bool isNonMonotone(const Cnf& cnf);

// Human-readable rendering, e.g. "(x0 | !x2) & (x1)".
std::string toString(const Cnf& cnf);

}  // namespace gpd::sat
