#include "sat/subset_sum.h"

#include <unordered_map>

#include "util/check.h"

namespace gpd::sat {

std::optional<std::vector<int>> solveSubsetSum(
    const std::vector<std::int64_t>& sizes, std::int64_t target) {
  for (std::int64_t s : sizes) GPD_CHECK_MSG(s > 0, "sizes must be positive");
  if (target < 0) return std::nullopt;

  // reachable[sum] = index of the last element used to first reach `sum`.
  std::unordered_map<std::int64_t, int> reachable;
  reachable.reserve(1024);
  reachable[0] = -1;
  for (int i = 0; i < static_cast<int>(sizes.size()); ++i) {
    // Snapshot keys first: extending while iterating would allow reusing
    // element i more than once.
    std::vector<std::int64_t> sums;
    sums.reserve(reachable.size());
    for (const auto& [sum, _] : reachable) sums.push_back(sum);
    for (std::int64_t sum : sums) {
      const std::int64_t next = sum + sizes[i];
      if (next > target) continue;
      reachable.try_emplace(next, i);
    }
    if (reachable.count(target)) break;
  }

  const auto hit = reachable.find(target);
  if (hit == reachable.end()) return std::nullopt;

  // Reconstruct: walk back through "first reached via element i" markers.
  // Because try_emplace never overwrites, sum − sizes[i] was reachable using
  // only elements with smaller index, so the walk terminates at 0.
  std::vector<int> witness;
  std::int64_t sum = target;
  while (sum != 0) {
    const int i = reachable.at(sum);
    GPD_CHECK(i >= 0);
    witness.push_back(i);
    sum -= sizes[i];
  }
  std::int64_t total = 0;
  for (int i : witness) total += sizes[i];
  GPD_CHECK(total == target);
  return witness;
}

}  // namespace gpd::sat
