// Subset-sum decision with witness (Garey–Johnson problem SP13).
//
// Theorem 2 of the paper reduces subset sum to detecting possibly(Σxᵢ = K)
// with arbitrary per-event increments; this exact solver is the independent
// oracle for that reduction and the comparison baseline in bench_sum_nphard.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace gpd::sat {

// Returns indices of a subset of `sizes` summing exactly to `target`, or
// nullopt if none exists. Sizes must be positive. Pseudo-polynomial
// O(n · #reachable sums) dynamic program over reachable sums ≤ target.
std::optional<std::vector<int>> solveSubsetSum(
    const std::vector<std::int64_t>& sizes, std::int64_t target);

}  // namespace gpd::sat
