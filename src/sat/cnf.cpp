#include "sat/cnf.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace gpd::sat {

bool satisfies(const Cnf& cnf, const Assignment& a) {
  GPD_CHECK(static_cast<int>(a.size()) == cnf.numVars);
  for (const Clause& c : cnf.clauses) {
    bool sat = false;
    for (const Lit& l : c) {
      if (a[l.var] == l.positive) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

Cnf randomKCnf(int numVars, int numClauses, int k, Rng& rng) {
  GPD_CHECK(k >= 1 && numVars >= k && numClauses >= 0);
  Cnf cnf;
  cnf.numVars = numVars;
  for (int i = 0; i < numClauses; ++i) {
    Clause c;
    std::vector<int> vars;
    while (static_cast<int>(vars.size()) < k) {
      const int v = static_cast<int>(rng.index(numVars));
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        vars.push_back(v);
      }
    }
    for (int v : vars) c.push_back({v, rng.chance(0.5)});
    cnf.addClause(std::move(c));
  }
  return cnf;
}

bool isNonMonotone(const Cnf& cnf) {
  for (const Clause& c : cnf.clauses) {
    if (c.size() > 3) return false;
    if (c.size() == 3) {
      int pos = 0;
      int neg = 0;
      for (const Lit& l : c) (l.positive ? pos : neg)++;
      if (pos == 0 || neg == 0) return false;
    }
  }
  return true;
}

std::string toString(const Cnf& cnf) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
    if (i) os << " & ";
    os << '(';
    for (std::size_t j = 0; j < cnf.clauses[i].size(); ++j) {
      if (j) os << " | ";
      const Lit& l = cnf.clauses[i][j];
      if (!l.positive) os << '!';
      os << 'x' << l.var;
    }
    os << ')';
  }
  return os.str();
}

}  // namespace gpd::sat
