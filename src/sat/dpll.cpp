#include "sat/dpll.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace gpd::sat {

namespace {

constexpr signed char kUnset = -1;

struct Solver {
  const Cnf& cnf;
  control::Budget* budget;
  bool stopped = false;  // budget tripped somewhere in the search
  DpllStats stats;
  std::vector<signed char> value;  // per var: kUnset / 0 / 1

  Solver(const Cnf& f, control::Budget* b)
      : cnf(f), budget(b), value(f.numVars, kUnset) {}

  // Clause status under the current partial assignment.
  enum class ClauseState { Satisfied, Conflict, Unit, Open };

  ClauseState classify(const Clause& c, Lit* unit) const {
    int unassigned = 0;
    for (const Lit& l : c) {
      const signed char v = value[l.var];
      if (v == kUnset) {
        ++unassigned;
        if (unassigned == 1 && unit) *unit = l;
      } else if ((v == 1) == l.positive) {
        return ClauseState::Satisfied;
      }
    }
    if (unassigned == 0) return ClauseState::Conflict;
    if (unassigned == 1) return ClauseState::Unit;
    return ClauseState::Open;
  }

  // Repeatedly applies unit clauses; records assignments in `trail`.
  // Returns false on conflict.
  bool propagate(std::vector<int>& trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      if (budget != nullptr && !budget->keepGoing()) {
        stopped = true;
        return false;  // conflict-shaped unwind; `stopped` overrides UNSAT
      }
      for (const Clause& c : cnf.clauses) {
        Lit unit;
        switch (classify(c, &unit)) {
          case ClauseState::Conflict:
            return false;
          case ClauseState::Unit:
            value[unit.var] = unit.positive ? 1 : 0;
            trail.push_back(unit.var);
            ++stats.propagations;
            changed = true;
            break;
          default:
            break;
        }
      }
    }
    return true;
  }

  // Assigns every pure literal (appearing with a single polarity among
  // not-yet-satisfied clauses).
  void assignPureLiterals(std::vector<int>& trail) {
    std::vector<signed char> seen(cnf.numVars, 0);  // bit 1: pos, bit 2: neg
    for (const Clause& c : cnf.clauses) {
      if (classify(c, nullptr) == ClauseState::Satisfied) continue;
      for (const Lit& l : c) {
        if (value[l.var] == kUnset) {
          seen[l.var] |= l.positive ? 1 : 2;
        }
      }
    }
    for (int v = 0; v < cnf.numVars; ++v) {
      if (value[v] == kUnset && (seen[v] == 1 || seen[v] == 2)) {
        value[v] = (seen[v] == 1) ? 1 : 0;
        trail.push_back(v);
      }
    }
  }

  // Unassigned variable occurring in the most unsatisfied clauses; -1 if all
  // clauses are satisfied or no variable is free.
  int pickBranchVar() const {
    std::vector<int> score(cnf.numVars, 0);
    bool anyOpen = false;
    for (const Clause& c : cnf.clauses) {
      if (classify(c, nullptr) == ClauseState::Satisfied) continue;
      anyOpen = true;
      for (const Lit& l : c) {
        if (value[l.var] == kUnset) ++score[l.var];
      }
    }
    if (!anyOpen) return -1;
    int best = -1;
    for (int v = 0; v < cnf.numVars; ++v) {
      if (value[v] == kUnset && score[v] > 0 &&
          (best < 0 || score[v] > score[best])) {
        best = v;
      }
    }
    return best;
  }

  bool solve() {
    std::vector<int> trail;
    if (!propagate(trail)) {
      undo(trail);
      return false;
    }
    assignPureLiterals(trail);
    const int branch = pickBranchVar();
    if (branch < 0) {
      // No open clause; check no conflict slipped through (it cannot, since
      // propagate succeeded and pure literals never falsify a clause).
      return true;
    }
    if (budget != nullptr && !budget->chargeCombination()) {
      stopped = true;
      undo(trail);
      return false;
    }
    ++stats.decisions;
    for (const signed char tryValue : {1, 0}) {
      value[branch] = tryValue;
      if (solve()) return true;
      value[branch] = kUnset;
      if (stopped) break;  // don't explore the sibling once the budget trips
    }
    undo(trail);
    return false;
  }

  void undo(const std::vector<int>& trail) {
    for (int v : trail) value[v] = kUnset;
  }
};

}  // namespace

DpllResult solveDpllBudgeted(const Cnf& cnf, control::Budget* budget) {
  GPD_TRACE_SPAN_NAMED(span, "sat.dpll");
  span.attrInt("vars", cnf.numVars);
  span.attrInt("clauses", static_cast<std::int64_t>(cnf.clauses.size()));
  GPD_CHECK(cnf.numVars >= 0);
  for (const Clause& c : cnf.clauses) {
    for (const Lit& l : c) GPD_CHECK(l.var >= 0 && l.var < cnf.numVars);
  }
  Solver solver(cnf, budget);
  const bool sat = solver.solve();
  DpllResult result;
  result.stats = solver.stats;
  // Whole-search totals in one shot; the recursive solve() stays untouched.
  span.attrInt("decisions", static_cast<std::int64_t>(solver.stats.decisions));
  GPD_OBS_COUNTER_ADD("dpll_decisions", solver.stats.decisions);
  GPD_OBS_COUNTER_ADD("dpll_propagations", solver.stats.propagations);
  if (sat) {
    Assignment a(cnf.numVars, false);
    for (int v = 0; v < cnf.numVars; ++v) a[v] = solver.value[v] == 1;
    GPD_CHECK(satisfies(cnf, a));
    result.outcome = SatOutcome::Satisfiable;
    result.assignment = std::move(a);
  } else {
    // A false return means UNSAT only when no budget stop polluted the
    // search tree — a stopped branch may have hidden a model.
    result.outcome =
        solver.stopped ? SatOutcome::Unknown : SatOutcome::Unsatisfiable;
  }
  return result;
}

std::optional<Assignment> solveDpll(const Cnf& cnf, DpllStats* stats) {
  DpllResult result = solveDpllBudgeted(cnf, nullptr);
  if (stats) *stats = result.stats;
  return std::move(result.assignment);
}

}  // namespace gpd::sat
