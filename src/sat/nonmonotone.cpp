#include "sat/nonmonotone.h"

#include "util/check.h"

namespace gpd::sat {

NonMonotoneTransform toNonMonotone(const Cnf& cnf) {
  NonMonotoneTransform t;
  t.originalVars = cnf.numVars;
  t.formula.numVars = cnf.numVars;
  for (const Clause& c : cnf.clauses) {
    GPD_CHECK_MSG(c.size() <= 3, "clause has more than three literals");
    if (c.size() < 3) {
      t.formula.addClause(c);
      continue;
    }
    int pos = 0;
    int neg = 0;
    for (const Lit& l : c) (l.positive ? pos : neg)++;
    if (pos > 0 && neg > 0) {
      t.formula.addClause(c);
      continue;
    }
    // Monotone 3-clause: replace the last literal L by an equivalent literal
    // R over a fresh variable y, chosen with the *opposite* polarity symbol
    // so the rewritten 3-clause mixes polarities. R ≡ L is enforced by the
    // two binary clauses (¬R ∨ L) ∧ (R ∨ ¬L), which are polarity-mixed too.
    const int y = t.formula.addVar();
    const Lit replacement{y, !c[2].positive};
    t.formula.addClause({c[0], c[1], replacement});
    t.formula.addClause({replacement.negated(), c[2]});
    t.formula.addClause({replacement, c[2].negated()});
  }
  GPD_CHECK(isNonMonotone(t.formula));
  return t;
}

Assignment projectAssignment(const NonMonotoneTransform& t, const Assignment& a) {
  GPD_CHECK(static_cast<int>(a.size()) == t.formula.numVars);
  return Assignment(a.begin(), a.begin() + t.originalVars);
}

}  // namespace gpd::sat
