// DPLL satisfiability solver.
//
// Complete solver with unit propagation, pure-literal elimination and a
// most-occurrences branching heuristic. It is the independent oracle against
// which the Theorem 1 reduction (SAT → predicate detection) is validated,
// and is itself usable to *solve* detection instances through the reverse
// reduction demonstrated in examples/sat_via_detection.cpp.
#pragma once

#include <optional>

#include "sat/cnf.h"

namespace gpd::sat {

struct DpllStats {
  long long decisions = 0;
  long long propagations = 0;
};

// Returns a satisfying assignment, or nullopt if the formula is
// unsatisfiable. Deterministic.
std::optional<Assignment> solveDpll(const Cnf& cnf, DpllStats* stats = nullptr);

}  // namespace gpd::sat
