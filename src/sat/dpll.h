// DPLL satisfiability solver.
//
// Complete solver with unit propagation, pure-literal elimination and a
// most-occurrences branching heuristic. It is the independent oracle against
// which the Theorem 1 reduction (SAT → predicate detection) is validated,
// and is itself usable to *solve* detection instances through the reverse
// reduction demonstrated in examples/sat_via_detection.cpp.
#pragma once

#include <optional>

#include "control/budget.h"
#include "sat/cnf.h"

namespace gpd::sat {

struct DpllStats {
  long long decisions = 0;
  long long propagations = 0;
};

// Three-valued outcome for budgeted solving: Unknown means the search was
// stopped by the budget before either a model or a refutation was found.
enum class SatOutcome { Satisfiable, Unsatisfiable, Unknown };

struct DpllResult {
  SatOutcome outcome = SatOutcome::Unknown;
  std::optional<Assignment> assignment;  // set iff Satisfiable
  DpllStats stats;
};

// Returns a satisfying assignment, or nullopt if the formula is
// unsatisfiable. Deterministic.
std::optional<Assignment> solveDpll(const Cnf& cnf, DpllStats* stats = nullptr);

// Budgeted variant: each branching decision charges one combination against
// the budget (propagation between decisions polls the deadline cheaply).
// With budget == nullptr this is exactly solveDpll. A Satisfiable result
// always carries a verified model regardless of budget state.
DpllResult solveDpllBudgeted(const Cnf& cnf, control::Budget* budget);

}  // namespace gpd::sat
