#include "monitor/online.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace gpd::monitor {

ConjunctiveMonitor::ConjunctiveMonitor(int processes, MonitorOptions options)
    : n_(processes),
      options_(options),
      queue_(processes),
      lastOwn_(processes, -1) {
  GPD_CHECK(processes >= 1);
}

ReportStatus ConjunctiveMonitor::offer(int p, std::vector<int> vectorClock) {
  GPD_CHECK(p >= 0 && p < n_);
  GPD_CHECK(static_cast<int>(vectorClock.size()) == n_);
  if (detected_) return ReportStatus::Detected;
  // Program order: the process's own component must increase, even relative
  // to notifications that have since been eliminated from the queue.
  GPD_CHECK_MSG(lastOwn_[p] < vectorClock[p],
                "out-of-order notification from process " << p);
  if (options_.maxQueuePerProcess != 0 &&
      queue_[p].size() >= options_.maxQueuePerProcess) {
    if (options_.overflowPolicy == OverflowPolicy::Backpressure) {
      ++overflowRejected_;
      return ReportStatus::Rejected;
    }
    ++overflowDropped_;
    degraded_ = true;
    lastOwn_[p] = vectorClock[p];  // the drop still consumes its slot in
                                   // program order
    return ReportStatus::Dropped;
  }
  lastOwn_[p] = vectorClock[p];
  queue_[p].push_back(std::move(vectorClock));
  ++enqueued_;
  // Invariant between reports: the present heads are pairwise stable (no
  // elimination applies among them). A notification that lands behind an
  // existing head changes nothing; only a new *head* must be re-checked —
  // unless an aborted slice left the invariant unverified.
  if (queue_[p].size() > 1 && !pendingFullScan_) return ReportStatus::Accepted;
  return tryDetect(p) ? ReportStatus::Detected : ReportStatus::Accepted;
}

bool ConjunctiveMonitor::report(int p, std::vector<int> vectorClock) {
  const ReportStatus status = offer(p, std::move(vectorClock));
  GPD_CHECK_MSG(status != ReportStatus::Rejected,
                "report() on a full queue — use offer() with backpressure");
  return status == ReportStatus::Detected;
}

bool ConjunctiveMonitor::tryDetect(int changed) {
  // Elimination: heads e (of p) and f (of q) cannot both be in a witness if
  // succ(e) ≤ f, i.e. f's history contains an event of p beyond e — then e
  // is also dead against everything after f on q's queue, so pop it.
  // A process with an empty queue simply pauses detection; popped entries
  // stay popped (they are dead against every future notification too).
  const std::uint64_t sliceStart = comparisons_;
  const std::uint64_t slice = options_.maxComparisonsPerReport;
  std::vector<int> work;
  std::vector<char> queued(n_, 0);
  if (pendingFullScan_) {
    // The previous scan was cut short, so stale head pairs may still be
    // eliminable: re-check every process before trusting the heads.
    for (int p = 0; p < n_; ++p) {
      work.push_back(p);
      queued[p] = 1;
    }
  } else {
    work.push_back(changed);
    queued[changed] = 1;
  }
  while (!work.empty()) {
    const int p = work.back();
    work.pop_back();
    queued[p] = 0;
    if (queue_[p].empty()) continue;
    bool advanced = true;
    while (advanced && !queue_[p].empty()) {
      if (slice != 0 && comparisons_ - sliceStart >= slice) {
        // Out of slice: abort without announcing anything. Every pop so far
        // was a correct elimination, but head stability is unverified — the
        // next scan starts from scratch and the monitor is now inconclusive
        // when silent (same contract as a Degrade drop).
        pendingFullScan_ = true;
        degraded_ = true;
        ++sliceAborts_;
        GPD_OBS_COUNTER_ADD("monitor_slice_aborts", 1);
        return false;
      }
      advanced = false;
      const auto& e = queue_[p].front();
      for (int q = 0; q < n_; ++q) {
        if (q == p || queue_[q].empty()) continue;
        const auto& f = queue_[q].front();
        ++comparisons_;
        if (f[p] > e[p]) {  // succ(e) ≤ f: e is dead
          queue_[p].pop_front();
          if (!queued[p]) {
            queued[p] = 1;
            work.push_back(p);  // its new head needs a full pass
          }
          advanced = true;
          break;
        }
        ++comparisons_;
        if (e[q] > f[q]) {  // succ(f) ≤ e: f is dead
          queue_[q].pop_front();
          if (!queued[q]) {
            queued[q] = 1;
            work.push_back(q);
          }
        }
      }
    }
  }
  pendingFullScan_ = false;  // completed scan: heads are pairwise stable
  for (int p = 0; p < n_; ++p) {
    if (queue_[p].empty()) return false;
  }
  // All heads present and no elimination applies: pairwise consistent.
  witness_.clear();
  for (int p = 0; p < n_; ++p) witness_.push_back(queue_[p].front());
  detected_ = true;
  return true;
}

std::size_t ConjunctiveMonitor::shedQueuedTail(std::size_t keepPerQueue) {
  if (detected_) return 0;  // verdict is final; nothing left to protect
  std::size_t dropped = 0;
  for (int p = 0; p < n_; ++p) {
    while (queue_[p].size() > keepPerQueue) {
      queue_[p].pop_back();
      ++dropped;
    }
    // lastOwn_[p] stays where it was: the dropped notifications consumed
    // their program-order slots, and a session feeding us never re-offers a
    // sequence number it already delivered.
  }
  if (dropped > 0) {
    overflowDropped_ += dropped;
    degraded_ = true;
    GPD_OBS_COUNTER_ADD("monitor_shed_dropped", dropped);
  }
  return dropped;
}

const std::vector<std::vector<int>>& ConjunctiveMonitor::witness() const {
  GPD_CHECK_MSG(detected_, "no witness before detection");
  return witness_;
}

MonitorSnapshot ConjunctiveMonitor::snapshot() const {
  MonitorSnapshot snap;
  snap.processes = n_;
  snap.queues.reserve(n_);
  for (const auto& q : queue_) {
    snap.queues.emplace_back(q.begin(), q.end());
  }
  snap.lastOwn = lastOwn_;
  snap.detected = detected_;
  snap.degraded = degraded_;
  snap.witness = witness_;
  snap.comparisons = comparisons_;
  snap.enqueued = enqueued_;
  snap.overflowDropped = overflowDropped_;
  snap.overflowRejected = overflowRejected_;
  snap.sliceAborts = sliceAborts_;
  snap.pendingFullScan = pendingFullScan_;
  return snap;
}

ConjunctiveMonitor ConjunctiveMonitor::restore(const MonitorSnapshot& snap,
                                               MonitorOptions options) {
  GPD_INPUT_CHECK(snap.processes >= 1, "monitor snapshot: no processes");
  GPD_INPUT_CHECK(
      static_cast<int>(snap.queues.size()) == snap.processes &&
          static_cast<int>(snap.lastOwn.size()) == snap.processes,
      "monitor snapshot: per-process arrays disagree with process count");
  ConjunctiveMonitor mon(snap.processes, options);
  for (int p = 0; p < snap.processes; ++p) {
    int prevOwn = -1;
    for (const auto& clock : snap.queues[p]) {
      GPD_INPUT_CHECK(
          static_cast<int>(clock.size()) == snap.processes,
          "monitor snapshot: timestamp width disagrees with process count");
      GPD_INPUT_CHECK(clock[p] > prevOwn,
                      "monitor snapshot: queue of process "
                          << p << " violates program order");
      prevOwn = clock[p];
    }
    GPD_INPUT_CHECK(prevOwn <= snap.lastOwn[p],
                    "monitor snapshot: lastOwn behind queue of process " << p);
    mon.queue_[p].assign(snap.queues[p].begin(), snap.queues[p].end());
  }
  if (snap.detected) {
    GPD_INPUT_CHECK(
        static_cast<int>(snap.witness.size()) == snap.processes,
        "monitor snapshot: detected without a full witness");
    for (const auto& w : snap.witness) {
      GPD_INPUT_CHECK(
          static_cast<int>(w.size()) == snap.processes,
          "monitor snapshot: witness width disagrees with process count");
    }
  }
  mon.lastOwn_ = snap.lastOwn;
  mon.detected_ = snap.detected;
  mon.degraded_ = snap.degraded;
  mon.witness_ = snap.witness;
  mon.comparisons_ = snap.comparisons;
  mon.enqueued_ = snap.enqueued;
  mon.overflowDropped_ = snap.overflowDropped;
  mon.overflowRejected_ = snap.overflowRejected;
  mon.sliceAborts_ = snap.sliceAborts;
  mon.pendingFullScan_ = snap.pendingFullScan;
  return mon;
}

}  // namespace gpd::monitor
