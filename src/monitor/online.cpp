#include "monitor/online.h"

#include "util/check.h"

namespace gpd::monitor {

ConjunctiveMonitor::ConjunctiveMonitor(int processes)
    : n_(processes), queue_(processes) {
  GPD_CHECK(processes >= 1);
}

bool ConjunctiveMonitor::report(int p, std::vector<int> vectorClock) {
  GPD_CHECK(p >= 0 && p < n_);
  GPD_CHECK(static_cast<int>(vectorClock.size()) == n_);
  if (detected_) return true;
  if (!queue_[p].empty()) {
    // Program order: the process's own component must increase.
    GPD_CHECK_MSG(queue_[p].back()[p] < vectorClock[p],
                  "out-of-order notification from process " << p);
  }
  queue_[p].push_back(std::move(vectorClock));
  ++enqueued_;
  // Invariant between reports: the present heads are pairwise stable (no
  // elimination applies among them). A notification that lands behind an
  // existing head changes nothing; only a new *head* must be re-checked.
  if (queue_[p].size() > 1) return false;
  return tryDetect(p);
}

bool ConjunctiveMonitor::tryDetect(int changed) {
  // Elimination: heads e (of p) and f (of q) cannot both be in a witness if
  // succ(e) ≤ f, i.e. f's history contains an event of p beyond e — then e
  // is also dead against everything after f on q's queue, so pop it.
  // A process with an empty queue simply pauses detection; popped entries
  // stay popped (they are dead against every future notification too).
  std::vector<int> work{changed};
  std::vector<char> queued(n_, 0);
  queued[changed] = 1;
  while (!work.empty()) {
    const int p = work.back();
    work.pop_back();
    queued[p] = 0;
    if (queue_[p].empty()) continue;
    bool advanced = true;
    while (advanced && !queue_[p].empty()) {
      advanced = false;
      const auto& e = queue_[p].front();
      for (int q = 0; q < n_; ++q) {
        if (q == p || queue_[q].empty()) continue;
        const auto& f = queue_[q].front();
        ++comparisons_;
        if (f[p] > e[p]) {  // succ(e) ≤ f: e is dead
          queue_[p].pop_front();
          if (!queued[p]) {
            queued[p] = 1;
            work.push_back(p);  // its new head needs a full pass
          }
          advanced = true;
          break;
        }
        ++comparisons_;
        if (e[q] > f[q]) {  // succ(f) ≤ e: f is dead
          queue_[q].pop_front();
          if (!queued[q]) {
            queued[q] = 1;
            work.push_back(q);
          }
        }
      }
    }
  }
  for (int p = 0; p < n_; ++p) {
    if (queue_[p].empty()) return false;
  }
  // All heads present and no elimination applies: pairwise consistent.
  witness_.clear();
  for (int p = 0; p < n_; ++p) witness_.push_back(queue_[p].front());
  detected_ = true;
  return true;
}

const std::vector<std::vector<int>>& ConjunctiveMonitor::witness() const {
  GPD_CHECK_MSG(detected_, "no witness before detection");
  return witness_;
}

}  // namespace gpd::monitor
