// Online weak-conjunctive predicate detection (Garg–Waldecker's checker).
//
// Offline, CPDHB scans a recorded trace. Online, each application process
// reports a vector-timestamped notification whenever its local predicate
// becomes true; a checker process keeps one queue per process and runs the
// same elimination incrementally, announcing detection the moment the queue
// heads become pairwise consistent. Notifications may interleave arbitrarily
// across processes (channels to the checker need not be synchronized), but
// each process's own notifications must arrive in program order — feed the
// checker through a MonitorSession (session.h) when the transport can drop,
// duplicate, or reorder.
//
// Queues are bounded (MonitorOptions::maxQueuePerProcess) with an explicit
// overflow policy; there is no configuration under which the monitor gives a
// silent wrong answer:
//   * Backpressure — a notification that would overflow is refused
//     (ReportStatus::Rejected); the caller still owns it and may re-offer
//     after eliminations make room.
//   * Degrade — the notification is dropped and the monitor permanently
//     enters the degraded state: detection stays sound (a witness is still a
//     genuine witness), but "not detected" now means "unknown" because a
//     dropped notification can only mask detections, never fabricate them.
//
// Timestamps use the library convention V[p] = index of the last event of
// process p in the reporting event's causal history (own component = the
// event's index).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace gpd::monitor {

enum class OverflowPolicy {
  Backpressure,  // refuse the notification, caller retries
  Degrade,       // drop it and latch the degraded flag
};

struct MonitorOptions {
  // Maximum pending (not yet eliminated) notifications per process.
  // 0 = unbounded (the pre-resilience behavior; use only in tests).
  std::size_t maxQueuePerProcess = 1 << 20;
  OverflowPolicy overflowPolicy = OverflowPolicy::Backpressure;
  // Per-report elimination time slice, in head comparisons (0 = unlimited).
  // When one notification's elimination cascade exceeds the slice, the scan
  // is aborted and the monitor latches degraded instead of stalling the
  // report path: detection stays sound (Detected is only announced after a
  // *completed* scan, and the next scan re-checks every queue head), but a
  // detection may be delayed or — once degraded — missed, never fabricated.
  std::uint64_t maxComparisonsPerReport = 0;
};

enum class ReportStatus {
  Accepted,  // enqueued, no detection yet
  Detected,  // detection has fired (now or previously)
  Rejected,  // Backpressure overflow: notification NOT absorbed, re-offer later
  Dropped,   // Degrade overflow: notification lost, monitor is now degraded
};

// Plain-data image of a monitor, for checkpoint/restore (io/checkpoint_io).
struct MonitorSnapshot {
  int processes = 0;
  std::vector<std::vector<std::vector<int>>> queues;
  std::vector<int> lastOwn;  // last accepted own-component per process
  bool detected = false;
  bool degraded = false;
  std::vector<std::vector<int>> witness;
  std::uint64_t comparisons = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t overflowDropped = 0;
  std::uint64_t overflowRejected = 0;
  std::uint64_t sliceAborts = 0;
  bool pendingFullScan = false;
};

class ConjunctiveMonitor {
 public:
  explicit ConjunctiveMonitor(int processes, MonitorOptions options = {});

  int processes() const { return n_; }
  const MonitorOptions& options() const { return options_; }

  // Feeds one true-event notification from process p. The notification's
  // own component must exceed that of every earlier notification from p
  // (program order), even across eliminations.
  ReportStatus offer(int p, std::vector<int> vectorClock);

  // Legacy wrapper: returns true once detection has fired. Requires queue
  // headroom — offer() returning Rejected here is a caller bug (use offer()
  // directly when backpressure is possible).
  bool report(int p, std::vector<int> vectorClock);

  bool detected() const { return detected_; }

  // True once a notification has been lost to the Degrade overflow policy:
  // detection results remain sound but absence of detection is inconclusive.
  bool degraded() const { return degraded_; }

  std::size_t queueSize(int p) const { return queue_[p].size(); }

  // The witness timestamps (one per process), available once detected.
  const std::vector<std::vector<int>>& witness() const;

  // Load shedding (the gpdd memory ladder): truncates every queue to its
  // first keepPerQueue entries, dropping the rest. Dropping queued
  // notifications has exactly the Degrade-overflow semantics — the monitor
  // latches degraded (absence of detection becomes inconclusive) but can
  // never fabricate a detection, because detection only ever compares
  // notifications that are still queued. Returns the number dropped.
  std::size_t shedQueuedTail(std::size_t keepPerQueue);

  // Totals for the A3 overhead bench and the resilience stats.
  std::uint64_t comparisons() const { return comparisons_; }
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t overflowDropped() const { return overflowDropped_; }
  std::uint64_t overflowRejected() const { return overflowRejected_; }
  // Elimination scans aborted by maxComparisonsPerReport.
  std::uint64_t sliceAborts() const { return sliceAborts_; }

  // Checkpointing. restore() validates the snapshot (throws InputError on a
  // structurally inconsistent one, e.g. from a corrupt checkpoint file).
  MonitorSnapshot snapshot() const;
  static ConjunctiveMonitor restore(const MonitorSnapshot& snap,
                                    MonitorOptions options = {});

 private:
  bool tryDetect(int changed);

  int n_;
  MonitorOptions options_;
  std::vector<std::deque<std::vector<int>>> queue_;
  std::vector<int> lastOwn_;  // -1 before the first notification
  bool detected_ = false;
  bool degraded_ = false;
  std::vector<std::vector<int>> witness_;
  std::uint64_t comparisons_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t overflowDropped_ = 0;
  std::uint64_t overflowRejected_ = 0;
  std::uint64_t sliceAborts_ = 0;
  // An aborted scan leaves head-stability unverified; the next scan must
  // re-check every queue head before Detected may be announced.
  bool pendingFullScan_ = false;
};

}  // namespace gpd::monitor
