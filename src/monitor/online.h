// Online weak-conjunctive predicate detection (Garg–Waldecker's checker).
//
// Offline, CPDHB scans a recorded trace. Online, each application process
// reports a vector-timestamped notification whenever its local predicate
// becomes true; a checker process keeps one queue per process and runs the
// same elimination incrementally, announcing detection the moment the queue
// heads become pairwise consistent. Notifications may interleave arbitrarily
// across processes (channels to the checker need not be synchronized), but
// each process's own notifications must arrive in program order.
//
// Timestamps use the library convention V[p] = index of the last event of
// process p in the reporting event's causal history (own component = the
// event's index).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace gpd::monitor {

class ConjunctiveMonitor {
 public:
  explicit ConjunctiveMonitor(int processes);

  int processes() const { return n_; }

  // Feeds one true-event notification from process p. Returns true if this
  // notification completed a detection (idempotent once detected).
  bool report(int p, std::vector<int> vectorClock);

  bool detected() const { return detected_; }

  // The witness timestamps (one per process), available once detected.
  const std::vector<std::vector<int>>& witness() const;

  // Totals for the A3 overhead bench.
  std::uint64_t comparisons() const { return comparisons_; }
  std::uint64_t enqueued() const { return enqueued_; }

 private:
  bool tryDetect(int changed);

  int n_;
  std::vector<std::deque<std::vector<int>>> queue_;
  bool detected_ = false;
  std::vector<std::vector<int>> witness_;
  std::uint64_t comparisons_ = 0;
  std::uint64_t enqueued_ = 0;
};

}  // namespace gpd::monitor
