#include "monitor/slice.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace gpd::monitor {

OnlineSlice::OnlineSlice(int processes)
    : n_(processes),
      own_(processes),
      clocks_(processes),
      resolvedOnProcess_(processes, 0) {
  GPD_CHECK(processes >= 1);
}

int OnlineSlice::advance(std::vector<int>& cut) {
  // Greedy least fixpoint: every process must sit at a notification event,
  // so lift each coordinate to the first notification at or past it and
  // fold that notification's causal history in; repeat until stable. The
  // fixpoint only grows, so the result is the least satisfying cut above
  // the start — independent of the lift order.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int q = 0; q < n_; ++q) {
      const auto it =
          std::lower_bound(own_[q].begin(), own_[q].end(), cut[q]);
      if (it == own_[q].end()) return q;  // q has not reported this far yet
      const std::size_t idx =
          static_cast<std::size_t>(it - own_[q].begin());
      const std::vector<int>& nclock = clocks_[q][idx];
      bool lifted = false;
      for (int r = 0; r < n_; ++r) {
        if (nclock[r] > cut[r]) {
          cut[r] = nclock[r];
          lifted = true;
        }
      }
      if (lifted) {
        changed = true;
        ++advanceSteps_;
      }
    }
  }
  return -1;
}

void OnlineSlice::countResolved(int p) {
  ++resolvedOnProcess_[p];
  GPD_OBS_COUNTER_ADD("monitor_slice_resolved", 1);
}

void OnlineSlice::resolveOrPark(int p, int index, std::vector<int> cut) {
  const int blocked = advance(cut);
  if (blocked >= 0) {
    PendingEntry entry;
    entry.process = p;
    entry.index = index;
    entry.cut = std::move(cut);
    pending_.push_back(std::move(entry));
    pendingBlockedOn_.push_back(blocked);
    return;
  }
  Irreducible irr;
  irr.process = p;
  irr.index = index;
  irr.cut = std::move(cut);
  resolved_.push_back(std::move(irr));
  countResolved(p);
}

void OnlineSlice::retryPending(int arrived) {
  // A new notification can only unblock entries waiting on its process.
  // Extract the matches first, then retry: a retried entry may re-park on
  // `arrived` (its fixpoint still needs a later notification), and it must
  // not be retried again within this call.
  std::vector<PendingEntry> retry;
  for (std::size_t i = 0; i < pending_.size();) {
    if (pendingBlockedOn_[i] != arrived) {
      ++i;
      continue;
    }
    retry.push_back(std::move(pending_[i]));
    pending_[i] = std::move(pending_.back());
    pendingBlockedOn_[i] = pendingBlockedOn_.back();
    pending_.pop_back();
    pendingBlockedOn_.pop_back();
  }
  for (PendingEntry& entry : retry) {
    resolveOrPark(entry.process, entry.index, std::move(entry.cut));
  }
}

void OnlineSlice::offer(int p, const std::vector<int>& clock) {
  GPD_CHECK(p >= 0 && p < n_);
  GPD_CHECK(static_cast<int>(clock.size()) == n_);
  if (degraded_) return;
  const int ownIndex = clock[p];
  GPD_INPUT_CHECK(own_[p].empty() || own_[p].back() < ownIndex,
                  "online slice: notification of process "
                      << p << " violates program order (own component "
                      << ownIndex << " after " << own_[p].back() << ")");
  own_[p].push_back(ownIndex);
  clocks_[p].push_back(clock);
  ++notifications_;
  GPD_OBS_COUNTER_ADD("monitor_slice_notifications", 1);
  // J(e) starts from e's causal history — the least consistent cut
  // containing e.
  resolveOrPark(p, ownIndex, clock);
  retryPending(p);
}

OnlineSliceStats OnlineSlice::stats() const {
  OnlineSliceStats s;
  s.notifications = notifications_;
  s.resolved = resolved_.size();
  s.pending = pending_.size();
  s.advanceSteps = advanceSteps_;
  s.shedNotifications = shedNotifications_;
  s.degraded = degraded_;
  s.upperBoundCuts = 1;
  for (int p = 0; p < n_; ++p) {
    const std::uint64_t factor = resolvedOnProcess_[p] + 1;
    if (s.upperBoundCuts > UINT64_MAX / factor) {
      s.upperBoundCuts = UINT64_MAX;
      s.upperBoundSaturated = true;
      break;
    }
    s.upperBoundCuts *= factor;
  }
  return s;
}

std::size_t OnlineSlice::bytesRetained() const {
  const std::size_t perClock = sizeof(std::vector<int>) +
                               static_cast<std::size_t>(n_) * sizeof(int);
  std::size_t clockCount = 0;
  for (int p = 0; p < n_; ++p) clockCount += clocks_[p].size();
  return clockCount * (perClock + sizeof(int)) +
         pending_.size() * (perClock + sizeof(PendingEntry)) +
         resolved_.size() * (perClock + sizeof(Irreducible));
}

std::size_t OnlineSlice::shed() {
  std::size_t dropped = pending_.size();
  for (int p = 0; p < n_; ++p) {
    dropped += clocks_[p].size();
    clocks_[p].clear();
    clocks_[p].shrink_to_fit();
    own_[p].clear();
    own_[p].shrink_to_fit();
  }
  pending_.clear();
  pending_.shrink_to_fit();
  pendingBlockedOn_.clear();
  pendingBlockedOn_.shrink_to_fit();
  resolved_.clear();
  resolved_.shrink_to_fit();
  shedNotifications_ += dropped;
  if (!degraded_) {
    degraded_ = true;
    GPD_OBS_COUNTER_ADD("monitor_slice_shed", 1);
  }
  return dropped;
}

}  // namespace gpd::monitor
