// Bridges offline traces to the online checker: replays a recorded
// computation's true events, in the order of a given run, as the
// notification stream the application processes would have sent.
//
// Two transports are provided:
//   * replayConjunctive — the ideal transport (exactly-once, in order),
//     feeding a bare ConjunctiveMonitor;
//   * replayConjunctiveFaulty — a seeded faulty transport (drop, duplicate,
//     bounded reorder, burst delay) feeding a MonitorSession, with the
//     session's NACKs serviced from the transport's retained send log so
//     every resilience claim can be tested against the offline CPDHB ground
//     truth on the same trace.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "clocks/vector_clock.h"
#include "monitor/online.h"
#include "monitor/session.h"
#include "predicates/local.h"
#include "util/rng.h"

namespace gpd::monitor {

struct ReplayResult {
  bool detected = false;
  // Notifications fed before detection fired (all of them if it never did).
  std::uint64_t notificationsSent = 0;
};

// `runOrder` is a linear extension of the computation's event DAG (node
// ids); the predicate must have one term per process of the computation
// (the classic Garg–Waldecker setting). Initial events are reported first
// (they precede everything).
ReplayResult replayConjunctive(const VectorClocks& clocks,
                               const VariableTrace& trace,
                               const ConjunctivePredicate& pred,
                               const std::vector<int>& runOrder,
                               ConjunctiveMonitor& monitor);

// Seeded fault schedule for a notification stream. All faults are applied
// per notification, independently, from the Rng passed to the replay.
struct FaultOptions {
  // Probability a notification copy is lost in the channel. Retransmissions
  // are subject to the same loss (that is how retries get exhausted).
  double dropProbability = 0.0;
  // Probability a notification is delivered twice.
  double duplicateProbability = 0.0;
  // Probability a notification is delayed behind up to reorderMaxDistance
  // later notifications (bounded out-of-order delivery).
  double reorderProbability = 0.0;
  int reorderMaxDistance = 4;
  // Burst delay: with this probability a notification *starts a burst* — it
  // and the following burstLength-1 notifications are all held back together
  // by reorderMaxDistance positions (a stalled-then-flushed channel).
  double burstProbability = 0.0;
  int burstLength = 4;
};

struct ResilientReplayResult {
  Verdict verdict = Verdict::Undecided;
  bool detected = false;
  std::uint64_t notificationsSent = 0;   // original stream, pre-fault
  std::uint64_t wireDeliveries = 0;      // copies handed to the session
  std::uint64_t dropped = 0;             // copies lost (incl. retransmissions)
  std::uint64_t duplicated = 0;          // extra copies injected
  std::uint64_t reordered = 0;           // notifications delivered late
  std::uint64_t nacksSent = 0;
  std::uint64_t retransmissions = 0;     // copies resent in answer to NACKs
  int degradedStreams = 0;
};

// Side-channel hooks into the faulty replay. `onCheckpoint` fires at a
// quiescent point (between deliveries) every checkpointEveryDeliveries wire
// deliveries with the live session — gpdtool monitor --checkpoint-every
// writes an atomic point-in-time checkpoint from it, so a crash at any
// moment leaves a complete, loadable file on disk.
struct ReplayHooks {
  std::uint64_t checkpointEveryDeliveries = 0;  // 0 = never
  std::function<void(const MonitorSession&)> onCheckpoint;
};

// Replays the run through a faulty transport into `session`. The transport
// retains everything it was asked to send, services the session's NACKs
// from that log (each retransmitted copy again subject to dropProbability),
// announces per-process end-of-stream, and then ticks the session until the
// verdict settles (Detected / NotDetected / Degraded — never Undecided).
ResilientReplayResult replayConjunctiveFaulty(
    const VectorClocks& clocks, const VariableTrace& trace,
    const ConjunctivePredicate& pred, const std::vector<int>& runOrder,
    MonitorSession& session, const FaultOptions& faults, Rng& rng,
    const ReplayHooks& hooks = {});

}  // namespace gpd::monitor
