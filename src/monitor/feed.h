// Bridges offline traces to the online checker: replays a recorded
// computation's true events, in the order of a given run, as the
// notification stream the application processes would have sent.
#pragma once

#include <vector>

#include "clocks/vector_clock.h"
#include "monitor/online.h"
#include "predicates/local.h"

namespace gpd::monitor {

struct ReplayResult {
  bool detected = false;
  // Notifications fed before detection fired (all of them if it never did).
  std::uint64_t notificationsSent = 0;
};

// `runOrder` is a linear extension of the computation's event DAG (node
// ids); the predicate must have one term per process of the computation
// (the classic Garg–Waldecker setting). Initial events are reported first
// (they precede everything).
ReplayResult replayConjunctive(const VectorClocks& clocks,
                               const VariableTrace& trace,
                               const ConjunctivePredicate& pred,
                               const std::vector<int>& runOrder,
                               ConjunctiveMonitor& monitor);

}  // namespace gpd::monitor
