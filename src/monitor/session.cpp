#include "monitor/session.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace gpd::monitor {

const char* toString(StreamHealth h) {
  switch (h) {
    case StreamHealth::Healthy: return "healthy";
    case StreamHealth::Recovering: return "recovering";
    case StreamHealth::Degraded: return "degraded";
  }
  return "?";
}

const char* toString(Verdict v) {
  switch (v) {
    case Verdict::Detected: return "detected";
    case Verdict::Undecided: return "undecided";
    case Verdict::Degraded: return "degraded";
    case Verdict::NotDetected: return "not-detected";
  }
  return "?";
}

MonitorSession::MonitorSession(int processes, SessionOptions options,
                               NackFn nack)
    : n_(processes),
      options_(options),
      nack_(std::move(nack)),
      monitor_(processes, options.monitor),
      nextSeq_(processes, 0),
      buffer_(processes),
      health_(processes, StreamHealth::Healthy),
      gap_(processes),
      endAnnounced_(processes, 0),
      announcedCount_(processes, 0),
      evictedUpper_(processes, 0) {
  GPD_CHECK(processes >= 1);
  GPD_CHECK(options.reorderWindow >= 1);
  GPD_CHECK(options.maxRetries >= 1);
  GPD_CHECK(options.retryTimeout >= 1);
  if (options.enableSlice) slice_.emplace(processes);
}

ReportStatus MonitorSession::offerToMonitor(int p, std::vector<int> clock) {
  std::vector<int> copy;
  if (slice_) copy = clock;  // retained only when the monitor consumes it
  const ReportStatus status = monitor_.offer(p, std::move(clock));
  if (slice_ && status != ReportStatus::Rejected) slice_->offer(p, copy);
  return status;
}

Delivery MonitorSession::deliver(int p, std::uint64_t seq,
                                 std::vector<int> clock) {
  GPD_CHECK(p >= 0 && p < n_);
  GPD_OBS_COUNTER_ADD("monitor_notifications", 1);
  if (monitor_.detected()) return Delivery::Detected;
  ++now_;

  Delivery outcome;
  if (seq < nextSeq_[p] || buffer_[p].count(seq)) {
    // Replayed by the transport (duplicate, or retransmission of something
    // that arrived meanwhile): suppress.
    ++stats_.duplicates;
    outcome = Delivery::Duplicate;
  } else if (seq == nextSeq_[p]) {
    const ReportStatus status = offerToMonitor(p, std::move(clock));
    if (status == ReportStatus::Rejected) {
      ++stats_.backpressured;
      runTimers();
      return Delivery::Rejected;  // not consumed: the caller re-offers
    }
    ++stats_.delivered;
    nextSeq_[p] = seq + 1;
    drainBuffer(p);
    closeGapIfFilled(p);
    outcome =
        monitor_.detected() ? Delivery::Detected : Delivery::Delivered;
  } else if (health_[p] == StreamHealth::Degraded) {
    // The gap before this notification is unrecoverable and already written
    // off: skip over it. Program order still holds (sequence numbers, and
    // therefore own clock components, only move forward).
    const ReportStatus status = offerToMonitor(p, std::move(clock));
    if (status == ReportStatus::Rejected) {
      ++stats_.backpressured;
      runTimers();
      return Delivery::Rejected;
    }
    ++stats_.delivered;
    nextSeq_[p] = seq + 1;
    outcome =
        monitor_.detected() ? Delivery::Detected : Delivery::Delivered;
  } else {
    // Early arrival: park it and start (or continue) gap recovery.
    buffer_[p].emplace(seq, std::move(clock));
    ++stats_.buffered;
    if (buffer_[p].size() > options_.reorderWindow) {
      // Evict the farthest-future entry; it rejoins the missing set. Its seq
      // is remembered in evictedUpper_ so subsequent NACKs for this stream
      // still cover it even though the buffer no longer knows about it.
      const auto last = std::prev(buffer_[p].end());
      evictedUpper_[p] = std::max(evictedUpper_[p], last->first + 1);
      buffer_[p].erase(last);
      ++stats_.bufferEvicted;
    }
    if (!gap_[p].active) openGap(p);
    outcome = Delivery::Buffered;
  }
  runTimers();
  return outcome;
}

void MonitorSession::tick() {
  if (monitor_.detected()) return;
  ++now_;
  runTimers();
}

void MonitorSession::announceEnd(int p, std::uint64_t count) {
  GPD_CHECK(p >= 0 && p < n_);
  GPD_INPUT_CHECK(count >= nextSeq_[p],
                  "end-of-stream for process "
                      << p << " announces " << count
                      << " notifications but " << nextSeq_[p]
                      << " were already consumed");
  std::uint64_t seenUpper = evictedUpper_[p];
  if (!buffer_[p].empty()) {
    seenUpper = std::max(seenUpper, std::prev(buffer_[p].end())->first + 1);
  }
  GPD_INPUT_CHECK(count >= seenUpper,
                  "end-of-stream for process "
                      << p << " announces " << count
                      << " notifications but sequence number "
                      << (seenUpper - 1) << " was already received");
  endAnnounced_[p] = 1;
  announcedCount_[p] = count;
  if (monitor_.detected() || health_[p] == StreamHealth::Degraded) return;
  if (nextSeq_[p] < count && !gap_[p].active) {
    openGap(p);  // trailing loss: now visible, recover it like any gap
  }
  closeGapIfFilled(p);
}

bool MonitorSession::hasActiveGaps() const {
  if (monitor_.detected()) return false;
  for (const Gap& g : gap_) {
    if (g.active) return true;
  }
  return false;
}

Verdict MonitorSession::verdict() const {
  if (monitor_.detected()) return Verdict::Detected;
  if (hasActiveGaps()) return Verdict::Undecided;
  bool degraded = monitor_.degraded();
  for (int p = 0; p < n_; ++p) {
    degraded = degraded || health_[p] == StreamHealth::Degraded;
  }
  if (degraded) return Verdict::Degraded;
  for (int p = 0; p < n_; ++p) {
    // Without a complete stream, absence of detection proves nothing yet.
    if (!endAnnounced_[p] || nextSeq_[p] < announcedCount_[p]) {
      return Verdict::Undecided;
    }
  }
  return Verdict::NotDetected;
}

void MonitorSession::degradeStream(int p) {
  GPD_CHECK(p >= 0 && p < n_);
  if (health_[p] != StreamHealth::Degraded) doDegrade(p);
}

void MonitorSession::runTimers() {
  for (int p = 0; p < n_; ++p) {
    // A buffered head may have become deliverable after monitor
    // backpressure cleared; keep trying on every logical step.
    drainBuffer(p);
    closeGapIfFilled(p);
    Gap& g = gap_[p];
    if (!g.active || now_ < g.deadline) continue;
    if (g.retriesLeft > 0) {
      sendNack(p);
      --g.retriesLeft;
      g.deadline = now_ + options_.retryTimeout;
    } else {
      doDegrade(p);
    }
  }
}

void MonitorSession::openGap(int p) {
  Gap& g = gap_[p];
  g.active = true;
  g.retriesLeft = options_.maxRetries - 1;  // the immediate NACK is retry #1
  g.deadline = now_ + options_.retryTimeout;
  health_[p] = StreamHealth::Recovering;
  ++stats_.gapsDetected;
  GPD_OBS_COUNTER_ADD("monitor_gaps_detected", 1);
  sendNack(p);
}

std::uint64_t MonitorSession::missingUpperBound(int p) const {
  std::uint64_t upper = nextSeq_[p];  // == nothing missing
  if (!buffer_[p].empty()) {
    upper = std::max(upper, std::prev(buffer_[p].end())->first);
  }
  // An evicted entry is missing again but invisible in the buffer; keep
  // re-requesting it until it is consumed.
  upper = std::max(upper, evictedUpper_[p]);
  if (endAnnounced_[p] && announcedCount_[p] > 0) {
    upper = std::max(upper, announcedCount_[p]);
  }
  return upper == nextSeq_[p] ? nextSeq_[p] : upper - 1;
}

void MonitorSession::sendNack(int p) {
  ++stats_.nacksSent;
  GPD_OBS_COUNTER_ADD("monitor_nacks_sent", 1);
  if (nack_) nack_(p, nextSeq_[p], missingUpperBound(p));
}

void MonitorSession::closeGapIfFilled(int p) {
  if (!gap_[p].active) return;
  if (!buffer_[p].empty()) return;
  if (endAnnounced_[p] && nextSeq_[p] < announcedCount_[p]) return;
  gap_[p].active = false;
  health_[p] = StreamHealth::Healthy;
  ++stats_.gapsRecovered;
  GPD_OBS_COUNTER_ADD("monitor_gaps_recovered", 1);
}

void MonitorSession::drainBuffer(int p) {
  auto& buf = buffer_[p];
  while (!buf.empty() && buf.begin()->first == nextSeq_[p]) {
    auto head = buf.begin();
    // offer() takes its argument by value, so moving here would leave a
    // moved-from entry behind on rejection; pass a copy and erase only once
    // the monitor has accepted it.
    const ReportStatus status = offerToMonitor(p, head->second);
    if (status == ReportStatus::Rejected) {
      ++stats_.backpressured;
      return;  // keep it buffered; retried on the next logical step
    }
    ++stats_.delivered;
    nextSeq_[p] = head->first + 1;
    buf.erase(head);
  }
}

std::size_t MonitorSession::shedMemory(std::size_t keepPerQueue) {
  if (monitor_.detected()) return 0;  // verdict is final; memory goes at close
  std::size_t dropped = 0;
  for (int p = 0; p < n_; ++p) {
    if (buffer_[p].empty()) continue;
    // The buffered suffix is discarded, not released: everything in it (and
    // the gap before it) is now permanently missing, so remember its upper
    // bound for END-count validation and mark the stream Degraded.
    evictedUpper_[p] =
        std::max(evictedUpper_[p], std::prev(buffer_[p].end())->first + 1);
    dropped += buffer_[p].size();
    stats_.bufferEvicted += buffer_[p].size();
    buffer_[p].clear();
    gap_[p].active = false;
    if (health_[p] != StreamHealth::Degraded) {
      health_[p] = StreamHealth::Degraded;
      ++stats_.degradedStreams;
      GPD_OBS_COUNTER_ADD("monitor_degraded_streams", 1);
    }
  }
  dropped += monitor_.shedQueuedTail(keepPerQueue);
  if (slice_) dropped += slice_->shed();
  return dropped;
}

void MonitorSession::doDegrade(int p) {
  gap_[p].active = false;
  health_[p] = StreamHealth::Degraded;
  ++stats_.degradedStreams;
  GPD_OBS_COUNTER_ADD("monitor_degraded_streams", 1);
  // Release the buffered suffix in program order. Detection on what *did*
  // arrive is still sound; only completeness is lost.
  for (auto& [seq, clock] : buffer_[p]) {
    const ReportStatus status = offerToMonitor(p, std::move(clock));
    if (status == ReportStatus::Rejected) {
      // Queue full and the stream is already incomplete — drop, it cannot
      // make the verdict any less conclusive than Degraded.
      ++stats_.backpressured;
    } else {
      ++stats_.delivered;
    }
    nextSeq_[p] = seq + 1;
  }
  buffer_[p].clear();
}

SessionSnapshot MonitorSession::snapshot() const {
  SessionSnapshot snap;
  snap.monitor = monitor_.snapshot();
  snap.now = now_;
  snap.nextSeq = nextSeq_;
  snap.buffers.resize(n_);
  for (int p = 0; p < n_; ++p) {
    snap.buffers[p].assign(buffer_[p].begin(), buffer_[p].end());
  }
  snap.health.reserve(n_);
  for (StreamHealth h : health_) snap.health.push_back(static_cast<int>(h));
  snap.gapActive.resize(n_);
  snap.gapDeadline.resize(n_);
  snap.gapRetriesLeft.resize(n_);
  for (int p = 0; p < n_; ++p) {
    snap.gapActive[p] = gap_[p].active;
    snap.gapDeadline[p] = gap_[p].deadline;
    snap.gapRetriesLeft[p] = gap_[p].retriesLeft;
  }
  snap.endAnnounced = endAnnounced_;
  snap.announcedCount = announcedCount_;
  snap.evictedUpper = evictedUpper_;
  snap.stats = stats_;
  return snap;
}

MonitorSession MonitorSession::restore(const SessionSnapshot& snap,
                                       SessionOptions options, NackFn nack) {
  const int n = snap.monitor.processes;
  GPD_INPUT_CHECK(
      static_cast<int>(snap.nextSeq.size()) == n &&
          static_cast<int>(snap.buffers.size()) == n &&
          static_cast<int>(snap.health.size()) == n &&
          static_cast<int>(snap.gapActive.size()) == n &&
          static_cast<int>(snap.gapDeadline.size()) == n &&
          static_cast<int>(snap.gapRetriesLeft.size()) == n &&
          static_cast<int>(snap.endAnnounced.size()) == n &&
          static_cast<int>(snap.announcedCount.size()) == n &&
          static_cast<int>(snap.evictedUpper.size()) == n,
      "session snapshot: per-process arrays disagree with process count");
  MonitorSession s(std::max(n, 1), options, std::move(nack));
  s.monitor_ = ConjunctiveMonitor::restore(snap.monitor, options.monitor);
  s.now_ = snap.now;
  s.nextSeq_ = snap.nextSeq;
  for (int p = 0; p < n; ++p) {
    std::uint64_t prev = 0;
    bool first = true;
    for (const auto& [seq, clock] : snap.buffers[p]) {
      GPD_INPUT_CHECK(seq >= snap.nextSeq[p],
                      "session snapshot: buffered seq already consumed");
      GPD_INPUT_CHECK(first || seq > prev,
                      "session snapshot: reorder buffer of process "
                          << p << " is not strictly ascending");
      first = false;
      GPD_INPUT_CHECK(static_cast<int>(clock.size()) == n,
                      "session snapshot: buffered timestamp width disagrees "
                      "with process count");
      prev = seq;
      s.buffer_[p].emplace(seq, clock);
    }
    GPD_INPUT_CHECK(snap.health[p] >= 0 && snap.health[p] <= 2,
                    "session snapshot: bad stream health value");
    s.health_[p] = static_cast<StreamHealth>(snap.health[p]);
    s.gap_[p].active = snap.gapActive[p] != 0;
    s.gap_[p].deadline = snap.gapDeadline[p];
    s.gap_[p].retriesLeft = snap.gapRetriesLeft[p];
    GPD_INPUT_CHECK(s.gap_[p].retriesLeft >= 0,
                    "session snapshot: negative retry budget");
  }
  s.endAnnounced_ = snap.endAnnounced;
  s.announcedCount_ = snap.announcedCount;
  s.evictedUpper_ = snap.evictedUpper;
  s.stats_ = snap.stats;
  if (s.slice_) {
    // The slice is not checkpointed: a restored run has missed the
    // pre-crash notifications, so its slice can never claim completeness.
    s.slice_->latchDegraded();
  }
  return s;
}

}  // namespace gpd::monitor
