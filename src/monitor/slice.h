// Online incremental computation slicing (Garg–Mittal) for the weak
// conjunctive predicate the checker monitors.
//
// Offline, detect/slice.h builds the slice of a regular predicate by running
// the linear detector from every event's causal history. Online, the
// checker only ever learns about *true* events — the vector-timestamped
// notifications — and they arrive incrementally. This module maintains the
// slice of "every process sits at a notification event" as notifications
// stream in: for each notification e it computes the join-irreducible
// J(e) = the least satisfying cut containing e, by the same greedy
// least-fixpoint the linear detector runs, restricted to the notification
// lists (each process's own components are strictly increasing, so "the
// first true event of q at or past index i" is one binary search).
//
// Per-report cost is amortized flat: each fixpoint step lifts some
// coordinate to a strictly later notification, a notification is parked
// ("pending") the moment a needed process has not reported far enough yet
// and is retried only when that process reports again — so every
// (notification, lift) pair is paid for at most once across the whole run.
//
// Incrementality is canonical: J(e) is a least fixpoint over per-process
// lists that only grow at the tail, so the resolved cuts are independent of
// the cross-process arrival interleaving — feeding the same notifications
// in any order (or rebuilding from scratch) yields the same irreducibles.
//
// Like the monitor itself, the slice degrades instead of lying: shed()
// frees the retained clocks and latches `degraded` — already-resolved
// irreducibles remain genuine least cuts, but no further ones are produced
// and the sublattice bound becomes a lower estimate.
#pragma once

#include <cstdint>
#include <vector>

namespace gpd::monitor {

struct OnlineSliceStats {
  std::uint64_t notifications = 0;  // clocks absorbed
  std::uint64_t resolved = 0;       // irreducibles J(e) computed
  std::uint64_t pending = 0;        // parked, waiting on another process
  std::uint64_t advanceSteps = 0;   // fixpoint lift operations performed
  // Saturating Π_p (resolved irreducibles hosted on p + 1): an upper bound
  // on the satisfying sublattice the resolved slice spans (each factor
  // counts p's distinct J frontier levels plus bottom).
  std::uint64_t upperBoundCuts = 1;
  bool upperBoundSaturated = false;
  std::uint64_t shedNotifications = 0;  // dropped by shed()
  bool degraded = false;                // shed or restored mid-stream
};

class OnlineSlice {
 public:
  explicit OnlineSlice(int processes);

  int processes() const { return n_; }

  // One resolved join-irreducible: the least satisfying cut containing the
  // notification at `index` (own component) of `process`. The cut uses the
  // library timestamp convention: cut[q] = index of the last event of q in
  // the cut, -1 = none (before q's first notification is never satisfying,
  // so resolved cuts have every component ≥ 0).
  struct Irreducible {
    int process = 0;
    int index = 0;
    std::vector<int> cut;
  };

  // Absorbs one notification of process p (clock[q] = index of the last
  // event of q in the causal history; own component strictly increasing per
  // process — exactly what MonitorSession delivers). Resolves J for it and
  // for any parked notifications this arrival unblocks. No-op once
  // degraded.
  void offer(int p, const std::vector<int>& clock);

  // Every irreducible resolved so far, in resolution order.
  const std::vector<Irreducible>& resolved() const { return resolved_; }

  OnlineSliceStats stats() const;
  bool degraded() const { return degraded_; }

  // Approximate live memory of the retained clocks, parked entries, and
  // resolved cuts — input to the gpdd load-shedding ladder.
  std::size_t bytesRetained() const;

  // Load shedding: frees everything retained and latches degraded. Returns
  // the number of notifications (retained + parked) dropped.
  std::size_t shed();

  // Latches degraded without freeing anything — used after a session
  // restore (the slice is not part of snapshots, so a restored run has
  // missed the pre-crash notifications and can no longer claim
  // completeness).
  void latchDegraded() { degraded_ = true; }

 private:
  struct PendingEntry {
    int process = 0;
    int index = 0;
    std::vector<int> cut;  // fixpoint progress so far
  };

  // Runs the greedy fixpoint on `cut`; returns the blocking process, or -1
  // when `cut` converged to a satisfying least cut.
  int advance(std::vector<int>& cut);
  void resolveOrPark(int p, int index, std::vector<int> cut);
  void retryPending(int arrived);
  void countResolved(int p);

  int n_;
  // Per process: own components (strictly ascending) and the matching full
  // clocks of every notification seen.
  std::vector<std::vector<int>> own_;
  std::vector<std::vector<std::vector<int>>> clocks_;
  std::vector<PendingEntry> pending_;  // parked fixpoints, by blocking process
  std::vector<int> pendingBlockedOn_;
  std::vector<Irreducible> resolved_;
  std::vector<std::uint64_t> resolvedOnProcess_;
  std::uint64_t notifications_ = 0;
  std::uint64_t advanceSteps_ = 0;
  std::uint64_t shedNotifications_ = 0;
  bool degraded_ = false;
};

}  // namespace gpd::monitor
