// In-simulation online detection: the full Garg–Waldecker deployment, end
// to end, inside the simulated system.
//
// A ring of token-passing processes is extended with one *checker* process.
// Every critical-section entry sends a notification message to the checker;
// the simulator piggybacks Fidge–Mattern timestamps on all messages (as a
// real instrumented system would), and the checker feeds each notification
// into one streaming ConjunctiveMonitor per process pair, raising an alarm
// variable the moment a pair of CS entries is causally concurrent — i.e.
// possibly(CSᵢ ∧ CSⱼ) became detectable *while the system runs*.
//
// Channels are FIFO in this deployment (the checker's per-process queues
// need program-order delivery, as in the original protocol).
#pragma once

#include <utility>
#include <vector>

#include "computation/event.h"
#include "sim/workloads.h"

namespace gpd::monitor {

struct InSimMonitorResult {
  sim::SimResult run;  // the recorded computation (ring + checker process)
  bool alarm = false;  // checker raised the mutual-exclusion alarm
  // Pairs whose monitors fired, in detection order.
  std::vector<std::pair<ProcessId, ProcessId>> firedPairs;
  // Value of the checker's "alarms" variable at the end of the run (equals
  // firedPairs.size(); also recorded in the trace itself).
  std::int64_t alarmsInTrace = 0;
};

// Runs `options` (its notifyChecker field is overwritten) with a checker as
// process id options.processes.
InSimMonitorResult monitoredTokenRing(sim::TokenRingOptions options);

}  // namespace gpd::monitor
