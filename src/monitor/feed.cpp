#include "monitor/feed.h"

#include "util/check.h"

namespace gpd::monitor {

ReplayResult replayConjunctive(const VectorClocks& clocks,
                               const VariableTrace& trace,
                               const ConjunctivePredicate& pred,
                               const std::vector<int>& runOrder,
                               ConjunctiveMonitor& monitor) {
  const Computation& comp = clocks.computation();
  GPD_CHECK(monitor.processes() == comp.processCount());
  GPD_CHECK(static_cast<int>(runOrder.size()) == comp.totalEvents());

  // Which local predicate guards each process.
  std::vector<const LocalPredicate*> term(comp.processCount(), nullptr);
  for (const LocalPredicate& t : pred.terms) {
    GPD_CHECK_MSG(term[t.process] == nullptr,
                  "two conjuncts on process " << t.process);
    term[t.process] = &t;
  }
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    GPD_CHECK_MSG(term[p] != nullptr, "process " << p << " has no conjunct");
  }

  ReplayResult result;
  for (int node : runOrder) {
    const EventId e = comp.event(node);
    if (!term[e.process]->holds(trace, e.index)) continue;
    ++result.notificationsSent;
    if (monitor.report(e.process, clocks.clockVector(e))) {
      result.detected = true;
      break;
    }
  }
  return result;
}

}  // namespace gpd::monitor
