#include "monitor/feed.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"
#include "util/check.h"

namespace gpd::monitor {

namespace {

// One local-predicate term per process, the classic Garg–Waldecker setting.
std::vector<const LocalPredicate*> termPerProcess(
    const Computation& comp, const ConjunctivePredicate& pred) {
  std::vector<const LocalPredicate*> term(comp.processCount(), nullptr);
  for (const LocalPredicate& t : pred.terms) {
    GPD_CHECK_MSG(term[t.process] == nullptr,
                  "two conjuncts on process " << t.process);
    term[t.process] = &t;
  }
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    GPD_CHECK_MSG(term[p] != nullptr, "process " << p << " has no conjunct");
  }
  return term;
}

}  // namespace

ReplayResult replayConjunctive(const VectorClocks& clocks,
                               const VariableTrace& trace,
                               const ConjunctivePredicate& pred,
                               const std::vector<int>& runOrder,
                               ConjunctiveMonitor& monitor) {
  const Computation& comp = clocks.computation();
  GPD_CHECK(monitor.processes() == comp.processCount());
  GPD_CHECK(static_cast<int>(runOrder.size()) == comp.totalEvents());

  const auto term = termPerProcess(comp, pred);
  ReplayResult result;
  for (int node : runOrder) {
    const EventId e = comp.event(node);
    if (!term[e.process]->holds(trace, e.index)) continue;
    ++result.notificationsSent;
    if (monitor.report(e.process, clocks.clockVector(e))) {
      result.detected = true;
      break;
    }
  }
  return result;
}

ResilientReplayResult replayConjunctiveFaulty(
    const VectorClocks& clocks, const VariableTrace& trace,
    const ConjunctivePredicate& pred, const std::vector<int>& runOrder,
    MonitorSession& session, const FaultOptions& faults, Rng& rng,
    const ReplayHooks& hooks) {
  const Computation& comp = clocks.computation();
  const int n = comp.processCount();
  GPD_CHECK(session.processes() == n);
  GPD_CHECK(static_cast<int>(runOrder.size()) == comp.totalEvents());
  GPD_CHECK(faults.reorderMaxDistance >= 1 && faults.burstLength >= 1);

  const auto term = termPerProcess(comp, pred);

  // The per-process send log: what each application process put on the wire,
  // indexed by sequence number. This is what NACKs are serviced from.
  std::vector<std::vector<std::vector<int>>> log(n);
  struct Sent {
    int process;
    std::uint64_t seq;
  };
  std::vector<Sent> stream;
  for (int node : runOrder) {
    const EventId e = comp.event(node);
    if (!term[e.process]->holds(trace, e.index)) continue;
    stream.push_back({e.process, log[e.process].size()});
    log[e.process].push_back(clocks.clockVector(e));
  }

  ResilientReplayResult result;
  result.notificationsSent = stream.size();

  // Fault-schedule the wire. Delivery order is by key (stable): item i's
  // on-time key is 2i; a copy delayed by d positions gets key 2(i+d)+1, so
  // it lands just after the on-time copy of item i+d.
  struct WireItem {
    std::uint64_t key;
    int process;
    std::uint64_t seq;
  };
  std::vector<WireItem> wire;
  wire.reserve(stream.size());
  std::uint64_t burstRemaining = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Sent& s = stream[i];
    if (burstRemaining == 0 && rng.chance(faults.burstProbability)) {
      burstRemaining = faults.burstLength;
    }
    std::uint64_t key = 2 * i;
    bool late = false;
    if (burstRemaining > 0) {
      --burstRemaining;
      key += 2 * static_cast<std::uint64_t>(faults.reorderMaxDistance) + 1;
      late = true;
    } else if (rng.chance(faults.reorderProbability)) {
      key += 2 * (rng.index(faults.reorderMaxDistance) + 1) + 1;
      late = true;
    }
    if (late) ++result.reordered;
    if (rng.chance(faults.dropProbability)) {
      ++result.dropped;
    } else {
      wire.push_back({key, s.process, s.seq});
    }
    if (rng.chance(faults.duplicateProbability)) {
      ++result.duplicated;
      const std::uint64_t dupKey =
          2 * i + 2 * rng.index(faults.reorderMaxDistance + 1) + 1;
      if (rng.chance(faults.dropProbability)) {
        ++result.dropped;
      } else {
        wire.push_back({dupKey, s.process, s.seq});
      }
    }
  }
  std::stable_sort(wire.begin(), wire.end(),
                   [](const WireItem& a, const WireItem& b) {
                     return a.key < b.key;
                   });

  // The session's NACKs are queued here and serviced from the send log with
  // transport latency (one retransmission per pump step), each copy subject
  // to the same loss as any other.
  std::deque<Sent> retransmitQ;
  session.onNack([&](int p, std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t s = lo; s <= hi && s < log[p].size(); ++s) {
      retransmitQ.push_back({p, s});
    }
  });

  std::uint64_t untilCheckpoint = hooks.checkpointEveryDeliveries;
  auto deliverCopy = [&](int p, std::uint64_t seq) {
    bool consumed = false;
    for (int attempt = 0; attempt < 64 && !consumed; ++attempt) {
      ++result.wireDeliveries;
      consumed = session.deliver(p, seq, log[p][seq]) != Delivery::Rejected;
      // Backpressure: give eliminations a chance, then re-offer.
      if (!consumed) session.tick();
    }
    if (!consumed) session.degradeStream(p);  // monitor queue stuck full
    // Periodic checkpoint: between deliveries the session is quiescent, so
    // the snapshot is a complete point-in-time state.
    if (hooks.checkpointEveryDeliveries != 0 && hooks.onCheckpoint &&
        result.wireDeliveries >= untilCheckpoint) {
      hooks.onCheckpoint(session);
      untilCheckpoint =
          result.wireDeliveries + hooks.checkpointEveryDeliveries;
    }
  };

  for (const WireItem& item : wire) {
    if (session.detected()) break;
    deliverCopy(item.process, item.seq);
    if (!retransmitQ.empty()) {
      const Sent r = retransmitQ.front();
      retransmitQ.pop_front();
      if (rng.chance(faults.dropProbability)) {
        ++result.dropped;
      } else {
        ++result.retransmissions;
        GPD_OBS_COUNTER_ADD("monitor_retransmits", 1);
        deliverCopy(r.process, r.seq);
      }
    }
  }

  if (!session.detected()) {
    for (int p = 0; p < n; ++p) session.announceEnd(p, log[p].size());
  }

  // Settle: service remaining retransmissions and tick out retry timers
  // until every gap is either recovered or degraded.
  // Generous can't-converge backstop, not a performance bound: every gap
  // episode is limited to maxRetries NACKs, so the loop always terminates.
  const std::uint64_t bound =
      1000000 + static_cast<std::uint64_t>(n) *
                    (session.options().maxRetries + 1) *
                    session.options().retryTimeout +
      stream.size() * (session.options().maxRetries + 2) * 8;
  std::uint64_t steps = 0;
  while (!session.detected() && session.hasActiveGaps()) {
    GPD_CHECK_MSG(++steps <= bound, "faulty replay did not settle");
    if (!retransmitQ.empty()) {
      const Sent r = retransmitQ.front();
      retransmitQ.pop_front();
      if (rng.chance(faults.dropProbability)) {
        ++result.dropped;
        continue;
      }
      ++result.retransmissions;
      GPD_OBS_COUNTER_ADD("monitor_retransmits", 1);
      deliverCopy(r.process, r.seq);
    } else {
      session.tick();
    }
  }

  result.verdict = session.verdict();
  result.detected = session.detected();
  result.nacksSent = session.stats().nacksSent;
  result.degradedStreams = session.stats().degradedStreams;
  return result;
}

}  // namespace gpd::monitor
