#include "monitor/insim.h"

#include "monitor/online.h"
#include "util/check.h"

namespace gpd::monitor {

namespace {

// The checker: one 2-slot streaming monitor per ring pair, fed from the
// engine-piggybacked timestamps of incoming notifications.
class CheckerProcess final : public sim::Program {
 public:
  explicit CheckerProcess(int ringSize) : n_(ringSize) {
    for (ProcessId i = 0; i < n_; ++i) {
      for (ProcessId j = i + 1; j < n_; ++j) {
        pairs_.push_back({i, j});
        monitors_.emplace_back(2);
      }
    }
  }

  static std::string pairVar(ProcessId i, ProcessId j) {
    return "fired_" + std::to_string(i) + "_" + std::to_string(j);
  }

  void onInit(sim::ProcessContext& ctx) override {
    ctx.setVar("alarms", 0);
    for (const auto& [i, j] : pairs_) ctx.setVar(pairVar(i, j), 0);
  }

  void onMessage(sim::ProcessContext& ctx, const sim::SimMessage& msg) override {
    GPD_CHECK(msg.type == sim::kCsNotification);
    const ProcessId reporter = msg.from;
    GPD_CHECK(reporter >= 0 && reporter < n_);
    for (std::size_t k = 0; k < pairs_.size(); ++k) {
      const auto [i, j] = pairs_[k];
      if (reporter != i && reporter != j) continue;
      if (monitors_[k].detected()) continue;
      // Project the piggybacked timestamp onto the pair's two components;
      // the checker's own component is irrelevant (it never sends into the
      // ring, so it is never in a ring event's history).
      std::vector<int> stamp{msg.senderClock[i], msg.senderClock[j]};
      const int slot = reporter == i ? 0 : 1;
      if (monitors_[k].report(slot, std::move(stamp))) {
        ctx.setVar(pairVar(i, j), 1);
        ctx.setVar("alarms", ctx.getVar("alarms") + 1);
      }
    }
  }

 private:
  const int n_;
  std::vector<std::pair<ProcessId, ProcessId>> pairs_;
  std::vector<ConjunctiveMonitor> monitors_;
};

}  // namespace

InSimMonitorResult monitoredTokenRing(sim::TokenRingOptions options) {
  const int n = options.processes;
  options.notifyChecker = n;

  std::vector<std::unique_ptr<sim::Program>> programs;
  for (ProcessId p = 0; p < n; ++p) {
    programs.push_back(sim::makeTokenRingProcess(options, p));
  }
  programs.push_back(std::make_unique<CheckerProcess>(n));

  sim::SimOptions simOptions;
  simOptions.seed = options.seed;
  simOptions.fifoChannels = true;  // the checker requires program order

  InSimMonitorResult result;
  result.run = sim::runSimulation(simOptions, std::move(programs));
  // The checker records detections in its own trace variables.
  const Cut fin = finalCut(*result.run.computation);
  for (ProcessId i = 0; i < n; ++i) {
    for (ProcessId j = i + 1; j < n; ++j) {
      if (result.run.trace->valueAtCut(fin, n, CheckerProcess::pairVar(i, j)) !=
          0) {
        result.firedPairs.push_back({i, j});
      }
    }
  }
  result.alarm = !result.firedPairs.empty();
  result.alarmsInTrace = result.run.trace->valueAtCut(fin, n, "alarms");
  return result;
}

}  // namespace gpd::monitor
