// Resilient notification layer for the online checker.
//
// ConjunctiveMonitor assumes an ideal transport: every notification arrives
// exactly once and in per-process program order. MonitorSession restores
// those assumptions on top of a faulty transport. Each application process
// stamps its notifications with a per-process sequence number (0, 1, 2, …);
// the session then provides, per process stream:
//
//   * duplicate suppression — a sequence number already consumed is dropped;
//   * a bounded reorder buffer — notifications arriving early are parked
//     until the gap before them fills, then released in program order;
//   * gap detection and recovery — a visible gap (an early arrival, or an
//     end-of-stream announcement with sequence numbers still missing)
//     triggers a NACK callback asking the transport to retransmit the
//     missing range; retries are paced by a logical clock (one tick per
//     deliver()/tick() call) with a configurable timeout and bounded count;
//   * graceful degradation — when retries are exhausted (or the reorder
//     buffer overflows unrecoverably) the stream is marked Degraded: the
//     buffered suffix is released to the monitor (still in program order,
//     so detection stays *sound*), and the session's verdict reports
//     Degraded instead of NotDetected, because missing notifications can
//     mask a detection. The session never reports a wrong verdict: Detected
//     is always a genuine witness; "NotDetected" is only claimed when every
//     stream was delivered completely.
//
// The NACK callback must not re-enter the session; a transport should queue
// the retransmission and deliver it from its own pump loop (see
// monitor/feed.h for the reference harness).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "monitor/online.h"
#include "monitor/slice.h"

namespace gpd::monitor {

enum class StreamHealth {
  Healthy,     // no outstanding gap
  Recovering,  // gap detected, NACK sent, waiting for retransmission
  Degraded,    // retries exhausted: stream incomplete beyond repair
};

enum class Verdict {
  Detected,     // a genuine witness was found (sound even under faults)
  Undecided,    // streams still have recoverable gaps outstanding
  Degraded,     // no detection, and ≥1 stream (or the monitor) is degraded:
                // the answer is "unknown", not "no"
  NotDetected,  // no detection and every delivered stream is intact
};

const char* toString(StreamHealth h);
const char* toString(Verdict v);

struct SessionOptions {
  MonitorOptions monitor;
  // Max early (out-of-order) notifications parked per process. An overflow
  // evicts the farthest-future entry; it becomes part of the gap and is
  // re-requested by NACK like any other missing sequence number.
  std::size_t reorderWindow = 256;
  // NACKs sent per gap before the stream degrades (≥ 1).
  int maxRetries = 3;
  // Logical ticks (deliver()/tick() calls) between successive NACKs for the
  // same gap, and between the last NACK and degradation (≥ 1).
  std::uint64_t retryTimeout = 64;
  // Maintain the online slice (monitor/slice.h) of the monitored predicate:
  // every notification the monitor consumes also feeds the incremental
  // J-computation, and slice() exposes the resolved irreducibles and the
  // sublattice bound. Off by default — the slice retains every consumed
  // clock, and it is not part of snapshots (a restored session's slice
  // starts degraded), so the crash-recovery byte-identity of sliceless
  // deployments is untouched.
  bool enableSlice = false;
};

// Retransmit request: please resend process `process`, sequence numbers
// [firstSeq, lastSeq] inclusive.
using NackFn =
    std::function<void(int process, std::uint64_t firstSeq,
                       std::uint64_t lastSeq)>;

enum class Delivery {
  Delivered,  // handed to the monitor (possibly releasing buffered successors)
  Buffered,   // early: parked in the reorder buffer, gap recovery scheduled
  Duplicate,  // sequence number already consumed: suppressed
  Rejected,   // monitor backpressure: NOT consumed, re-offer later
  Detected,   // detection has fired (now or previously)
};

struct SessionStats {
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t buffered = 0;
  std::uint64_t bufferEvicted = 0;
  std::uint64_t nacksSent = 0;
  std::uint64_t gapsDetected = 0;
  std::uint64_t gapsRecovered = 0;
  std::uint64_t backpressured = 0;
  int degradedStreams = 0;
};

// Plain-data image of a session, for checkpoint/restore (io/checkpoint_io).
struct SessionSnapshot {
  MonitorSnapshot monitor;
  std::uint64_t now = 0;
  std::vector<std::uint64_t> nextSeq;
  // Per process, the reorder buffer as (seq, clock), ascending by seq.
  std::vector<std::vector<std::pair<std::uint64_t, std::vector<int>>>> buffers;
  std::vector<int> health;  // StreamHealth as int
  std::vector<char> gapActive;
  std::vector<std::uint64_t> gapDeadline;
  std::vector<int> gapRetriesLeft;
  std::vector<char> endAnnounced;
  std::vector<std::uint64_t> announcedCount;
  // Per process, one past the highest seq ever evicted from the reorder
  // buffer (0 = none); keeps NACKs covering evicted entries.
  std::vector<std::uint64_t> evictedUpper;
  SessionStats stats;
};

class MonitorSession {
 public:
  explicit MonitorSession(int processes, SessionOptions options = {},
                          NackFn nack = {});

  int processes() const { return n_; }
  const SessionOptions& options() const { return options_; }

  // Replaces the retransmit callback (e.g. after restore()).
  void onNack(NackFn nack) { nack_ = std::move(nack); }

  // Feeds one notification from the transport. Advances the logical clock
  // and runs due retry timers for every stream.
  Delivery deliver(int process, std::uint64_t seq, std::vector<int> clock);

  // Advances the logical clock without a delivery (transport idle); drives
  // retry timeouts and eventual degradation of unfilled gaps.
  void tick();

  // Declares that process p sent exactly `count` notifications (seq 0 ..
  // count-1). Makes trailing losses visible as gaps so they get NACKed.
  void announceEnd(int p, std::uint64_t count);

  // True while some stream has a gap that is still within its retry budget.
  // The transport pump should keep delivering/ticking until this clears.
  bool hasActiveGaps() const;

  // Current standing. Undecided while recoverable gaps are outstanding or
  // not every stream's end has been announced (absence of detection is not
  // yet meaningful); the transport pump reads the final value once its
  // stream is exhausted and hasActiveGaps() is false.
  Verdict verdict() const;

  bool detected() const { return monitor_.detected(); }
  StreamHealth health(int p) const { return health_[p]; }

  // Operator escape hatch: declare stream p unrecoverable now (e.g. the
  // transport knows the producer died). Releases its buffered suffix.
  void degradeStream(int p);

  const SessionStats& stats() const { return stats_; }
  const ConjunctiveMonitor& monitor() const { return monitor_; }

  // The online slice, or nullptr when SessionOptions::enableSlice is off.
  const OnlineSlice* slice() const { return slice_ ? &*slice_ : nullptr; }

  // Live memory retained by the slice (0 when disabled) — added to the
  // queue/buffer estimate by the gpdd shedding ladder.
  std::size_t sliceBytes() const {
    return slice_ ? slice_->bytesRetained() : 0;
  }

  // Notifications currently parked in the reorder buffers (all processes).
  // The gpdd service uses this, with the monitor queue sizes, to estimate a
  // session's live memory for the load-shedding ladder.
  std::size_t bufferedCount() const {
    std::size_t total = 0;
    for (const auto& b : buffer_) total += b.size();
    return total;
  }

  // Load shedding (the gpdd memory ladder). Frees memory *now*: reorder
  // buffers are cleared outright (degradeStream would release them into the
  // monitor queues, moving bytes instead of freeing them) and each monitor
  // queue is truncated to keepPerQueue entries. Every stream that loses
  // buffered notifications is latched Degraded — the gap they covered is now
  // unrecoverable — so the verdict can only widen to Degraded, never lie.
  // Returns the number of notifications dropped.
  std::size_t shedMemory(std::size_t keepPerQueue);

  // Checkpointing. restore() validates (throws InputError on inconsistent
  // snapshots); the NACK callback is not part of the snapshot — pass it
  // again or set it with onNack().
  SessionSnapshot snapshot() const;
  static MonitorSession restore(const SessionSnapshot& snap,
                                SessionOptions options = {}, NackFn nack = {});

 private:
  struct Gap {
    bool active = false;
    std::uint64_t deadline = 0;
    int retriesLeft = 0;
  };

  void runTimers();
  void openGap(int p);
  void sendNack(int p);
  std::uint64_t missingUpperBound(int p) const;  // last seq worth NACKing
  void closeGapIfFilled(int p);
  void drainBuffer(int p);
  void doDegrade(int p);
  // monitor_.offer plus the slice feed: every notification the monitor
  // consumes (any status but Rejected) is also handed to the online slice.
  ReportStatus offerToMonitor(int p, std::vector<int> clock);

  int n_;
  SessionOptions options_;
  NackFn nack_;
  ConjunctiveMonitor monitor_;
  std::uint64_t now_ = 0;
  std::vector<std::uint64_t> nextSeq_;
  std::vector<std::map<std::uint64_t, std::vector<int>>> buffer_;
  std::vector<StreamHealth> health_;
  std::vector<Gap> gap_;
  std::vector<char> endAnnounced_;
  std::vector<std::uint64_t> announcedCount_;
  std::vector<std::uint64_t> evictedUpper_;
  SessionStats stats_;
  std::optional<OnlineSlice> slice_;
};

}  // namespace gpd::monitor
