#include "par/pool.h"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace gpd::par {

// Generation-stamped broadcast: run() publishes the job under the mutex and
// bumps `generation`; each worker runs the job exactly once per generation
// and reports back through `remaining`. Workers park on the condition
// variable between runs, so an idle pool costs nothing but memory.
struct Pool::Impl {
  std::mutex mutex;
  std::condition_variable wake;   // workers wait here for a new generation
  std::condition_variable done;   // run() waits here for remaining == 0
  const std::function<void(int)>* job = nullptr;
  std::uint64_t generation = 0;
  int remaining = 0;
  bool shutdown = false;
  std::exception_ptr firstError;
  std::vector<std::thread> workers;

  void workerLoop(int index) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* body = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        body = job;
      }
      try {
        (*body)(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!firstError) firstError = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--remaining == 0) done.notify_all();
      }
    }
  }
};

Pool::Pool(int threads) : threads_(threads < 1 ? 1 : threads), impl_(new Impl) {
  impl_->workers.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->workerLoop(i); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void Pool::run(const std::function<void(int)>& body) {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  GPD_CHECK_MSG(impl_->remaining == 0, "par::Pool::run is not reentrant");
  impl_->job = &body;
  impl_->remaining = threads_;
  impl_->firstError = nullptr;
  ++impl_->generation;
  impl_->wake.notify_all();
  impl_->done.wait(lock, [&] { return impl_->remaining == 0; });
  impl_->job = nullptr;
  if (impl_->firstError) {
    std::exception_ptr err = impl_->firstError;
    impl_->firstError = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

int envThreads() {
  // Read once at pool construction, before any worker exists; nothing in
  // the process mutates the environment.
  const char* raw = std::getenv("GPD_THREADS");  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == nullptr || *end != '\0' || v < 1 || v > 4096) return 0;
  return static_cast<int>(v);
}

}  // namespace gpd::par
