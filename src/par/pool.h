// gpd::par — a small fixed-size worker pool for the parallel detection
// kernels.
//
// Every super-polynomial kernel in the library (lattice BFS, the Sec. 3.3
// k^m / Π cⱼ CPDHB enumerations) has an embarrassingly-parallel outer loop:
// independent combinations, or independent cuts of one antichain frontier.
// The Pool owns that parallelism: a fixed set of worker threads created
// once and reused across runs, with one primitive — run(body) invokes
// body(workerIndex) on every worker concurrently and blocks until all of
// them return. The *drivers* (detect/singular_cnf, lattice/explore) own the
// work partitioning on top of it, because each has its own determinism
// contract (lowest-index witness, sequential frontier order).
//
// Determinism contract (library-wide): for any thread count, a parallel
// kernel returns bit-identical verdicts and witnesses to its sequential
// form — Yes selects the lowest combination/frontier index, never the
// first finisher, and combination-count budgets cap the scanned index
// prefix exactly like the sequential odometer. Only the progress counters
// (combinations tried before the short-circuit, cuts visited) may differ.
//
// Exceptions thrown by a worker are captured and rethrown from run() on
// the calling thread (first one wins; the others are dropped after every
// worker has unwound), so GPD_CHECK failures keep their normal semantics.
//
// Thread count resolution (CLI and benches): --threads N beats the
// GPD_THREADS environment variable; neither set means "no pool" — callers
// keep the plain sequential path.
#pragma once

#include <cstdint>
#include <functional>

namespace gpd::par {

class Pool {
 public:
  // Spawns `threads` workers (clamped to >= 1). The pool is reusable: any
  // number of run() calls may follow, sequentially.
  explicit Pool(int threads);
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int threads() const { return threads_; }

  // Invokes body(w) for every worker index w in [0, threads()) on the
  // pool's threads, concurrently, and returns when all invocations have
  // finished. Not reentrant: body must not call run() on the same pool.
  // If any invocation throws, one of the exceptions is rethrown here after
  // every worker has unwound.
  void run(const std::function<void(int worker)>& body);

 private:
  struct Impl;
  int threads_;
  Impl* impl_;
};

// Thread count requested by the GPD_THREADS environment variable; 0 when
// unset, empty, or not a positive integer (0 means "run sequentially,
// no pool").
int envThreads();

}  // namespace gpd::par
