// Dinic's maximum-flow / minimum-cut algorithm.
//
// The relational-predicate detectors (paper Sec. 4, citing Chase–Garg and
// Tomlinson–Garg) need the extremum of Σᵢ xᵢ over all consistent cuts; that
// optimization is a maximum-weight closure problem, solved here by min-cut.
#pragma once

#include <cstdint>
#include <vector>

namespace gpd::flow {

class MaxFlow {
 public:
  explicit MaxFlow(int n);

  // Adds a directed edge with the given capacity; returns an edge id usable
  // with flowOn(). Capacity must be non-negative.
  int addEdge(int from, int to, std::int64_t capacity);

  // Computes the maximum s-t flow. May be called once per instance.
  std::int64_t solve(int source, int sink);

  // Flow pushed through edge `id` (valid after solve()).
  std::int64_t flowOn(int id) const;

  // After solve(): nodes reachable from the source in the residual graph,
  // i.e. the source side of a minimum cut.
  std::vector<char> minCutSourceSide() const;

  int size() const { return static_cast<int>(head_.size()); }

 private:
  struct Edge {
    int to;
    std::int64_t cap;  // residual capacity
  };

  bool bfsLevels();
  std::int64_t dfsAugment(int u, std::int64_t limit);

  std::vector<Edge> edges_;                // paired: edge 2k and its reverse 2k+1
  std::vector<std::vector<int>> head_;     // adjacency: edge indices per node
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::int64_t> initialCap_;   // per forward edge, for flowOn()
  int source_ = -1;
  int sink_ = -1;
  bool solved_ = false;
};

}  // namespace gpd::flow
