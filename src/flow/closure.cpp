#include "flow/closure.h"

#include <limits>

#include "flow/maxflow.h"
#include "util/check.h"

namespace gpd::flow {

ClosureResult maxWeightClosure(const graph::Dag& g,
                               const std::vector<std::int64_t>& weight) {
  const int n = g.size();
  GPD_CHECK(static_cast<int>(weight.size()) == n);

  // Standard construction: source → u with cap w(u) for positive weights,
  // u → sink with cap −w(u) for negative ones, and an infinite-capacity arc
  // per graph edge. Source side of the min cut = optimal closure.
  MaxFlow mf(n + 2);
  const int source = n;
  const int sink = n + 1;
  std::int64_t positiveTotal = 0;
  for (int u = 0; u < n; ++u) {
    if (weight[u] > 0) {
      positiveTotal += weight[u];
      mf.addEdge(source, u, weight[u]);
    } else if (weight[u] < 0) {
      mf.addEdge(u, sink, -weight[u]);
    }
  }
  // "Infinite" capacity: strictly larger than any possible finite cut.
  const std::int64_t inf = positiveTotal + 1;
  for (int u = 0; u < n; ++u) {
    for (int v : g.successors(u)) mf.addEdge(u, v, inf);
  }
  const std::int64_t cut = mf.solve(source, sink);

  ClosureResult res;
  res.weight = positiveTotal - cut;
  const std::vector<char> side = mf.minCutSourceSide();
  res.inClosure.assign(n, 0);
  for (int u = 0; u < n; ++u) res.inClosure[u] = side[u];
  GPD_CHECK(res.weight >= 0);  // empty closure is always available
  return res;
}

}  // namespace gpd::flow
