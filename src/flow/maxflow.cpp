#include "flow/maxflow.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.h"

namespace gpd::flow {

MaxFlow::MaxFlow(int n) : head_(n) { GPD_CHECK(n >= 0); }

int MaxFlow::addEdge(int from, int to, std::int64_t capacity) {
  GPD_CHECK(from >= 0 && from < size() && to >= 0 && to < size());
  GPD_CHECK(capacity >= 0);
  GPD_CHECK_MSG(!solved_, "cannot add edges after solve()");
  const int id = static_cast<int>(initialCap_.size());
  head_[from].push_back(static_cast<int>(edges_.size()));
  edges_.push_back({to, capacity});
  head_[to].push_back(static_cast<int>(edges_.size()));
  edges_.push_back({from, 0});
  initialCap_.push_back(capacity);
  return id;
}

bool MaxFlow::bfsLevels() {
  level_.assign(size(), -1);
  std::queue<int> q;
  level_[source_] = 0;
  q.push(source_);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int e : head_[u]) {
      const Edge& edge = edges_[e];
      if (edge.cap > 0 && level_[edge.to] < 0) {
        level_[edge.to] = level_[u] + 1;
        q.push(edge.to);
      }
    }
  }
  return level_[sink_] >= 0;
}

std::int64_t MaxFlow::dfsAugment(int u, std::int64_t limit) {
  if (u == sink_) return limit;
  for (; iter_[u] < head_[u].size(); ++iter_[u]) {
    const int e = head_[u][iter_[u]];
    Edge& edge = edges_[e];
    if (edge.cap <= 0 || level_[edge.to] != level_[u] + 1) continue;
    const std::int64_t pushed = dfsAugment(edge.to, std::min(limit, edge.cap));
    if (pushed > 0) {
      edge.cap -= pushed;
      edges_[e ^ 1].cap += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlow::solve(int source, int sink) {
  GPD_CHECK(source >= 0 && source < size() && sink >= 0 && sink < size());
  GPD_CHECK(source != sink);
  GPD_CHECK_MSG(!solved_, "solve() may be called once");
  source_ = source;
  sink_ = sink;
  std::int64_t total = 0;
  while (bfsLevels()) {
    iter_.assign(size(), 0);
    while (true) {
      const std::int64_t pushed =
          dfsAugment(source_, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  solved_ = true;
  return total;
}

std::int64_t MaxFlow::flowOn(int id) const {
  GPD_CHECK(solved_);
  GPD_CHECK(id >= 0 && id < static_cast<int>(initialCap_.size()));
  return initialCap_[id] - edges_[2 * id].cap;
}

std::vector<char> MaxFlow::minCutSourceSide() const {
  GPD_CHECK(solved_);
  std::vector<char> side(size(), 0);
  std::queue<int> q;
  side[source_] = 1;
  q.push(source_);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int e : head_[u]) {
      const Edge& edge = edges_[e];
      if (edge.cap > 0 && !side[edge.to]) {
        side[edge.to] = 1;
        q.push(edge.to);
      }
    }
  }
  return side;
}

}  // namespace gpd::flow
