// Maximum-weight closure (project selection).
//
// A closure of a directed graph is a node set S such that u ∈ S and u → v
// imply v ∈ S. Maximizing total node weight over closures reduces to a
// minimum s-t cut (Picard 1976). The detect module uses this on the reversed
// event DAG: consistent cuts of a computation are exactly the down-closed
// event sets, and the extremum of a sum Σᵢ xᵢ over consistent cuts is
// f(⊥) + maxWeightClosure(reversed DAG, per-event Δ weights).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.h"

namespace gpd::flow {

struct ClosureResult {
  std::int64_t weight = 0;     // total weight of the chosen closure
  std::vector<char> inClosure; // indicator per node
};

// Returns a maximum-weight closure of `g` (closed under successors). The
// empty set is a valid closure, so the result weight is always ≥ 0.
ClosureResult maxWeightClosure(const graph::Dag& g,
                               const std::vector<std::int64_t>& weight);

}  // namespace gpd::flow
