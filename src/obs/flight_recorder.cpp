#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/check.h"
#include "util/stopwatch.h"

namespace gpd {
namespace obs {

namespace {

// Header line, NUL-padded to kHeadOffset; the binary head counter follows.
constexpr char kMagic[] = "gpdfr1";

std::atomic<std::uint64_t>* headPtr(char* base) {
  return reinterpret_cast<std::atomic<std::uint64_t>*>(
      base + FlightRecorder::kHeadOffset);
}

// Async-signal-safe uint64 → decimal. Returns the digit count.
std::size_t formatUint(std::uint64_t v, char* out) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

bool writeFully(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FlightRecorder::~FlightRecorder() {
  if (base_ != nullptr) {
    ::munmap(base_, (1 + static_cast<std::size_t>(slots_)) * kSlotBytes);
  }
}

void FlightRecorder::openRing(const std::string& path, std::uint32_t slots) {
  GPD_INPUT_CHECK(slots >= 1, "flight recorder needs at least one slot");
  GPD_INPUT_CHECK(base_ == nullptr, "flight recorder already armed");
  const std::size_t bytes = (1 + static_cast<std::size_t>(slots)) * kSlotBytes;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw InputError("flight recorder: cannot create " + path);
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    throw InputError("flight recorder: cannot size " + path);
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    throw InputError("flight recorder: cannot map " + path);
  }
  base_ = static_cast<char*>(map);
  slots_ = slots;
  path_ = path;
  std::memset(base_, 0, bytes);
  std::snprintf(base_, kHeadOffset, "%s slots=%u slot=%zu\n", kMagic, slots,
                kSlotBytes);
  headPtr(base_)->store(0, std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::recorded() const {
  if (base_ == nullptr) return 0;
  return headPtr(base_)->load(std::memory_order_relaxed);
}

void FlightRecorder::record(const char* kind, const char* fmt, ...) {
  if (base_ == nullptr) return;
  const std::uint64_t index =
      headPtr(base_)->fetch_add(1, std::memory_order_relaxed);
  char* slot = base_ + (1 + index % slots_) * kSlotBytes;
  char line[kSlotBytes];
  int n = std::snprintf(line, sizeof(line), "#%llu t=%llu %s ",
                        static_cast<unsigned long long>(index),
                        static_cast<unsigned long long>(steadyNowNanos()),
                        kind);
  if (n < 0) return;
  if (static_cast<std::size_t>(n) < sizeof(line)) {
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(line + n, sizeof(line) - static_cast<std::size_t>(n), fmt,
                   args);
    va_end(args);
  }
  line[kSlotBytes - 1] = '\0';
  // One memcpy of the whole slot: a crash tears at most this slot, and the
  // leading index digit mismatch lets load() detect the tear.
  std::memcpy(slot, line, kSlotBytes);
}

bool FlightRecorder::dumpToFd(int fd, const char* reason) const {
  if (base_ == nullptr) return true;
  char header[256];
  std::size_t n = 0;
  const char* prefix = "gpdfr dump reason=";
  for (const char* p = prefix; *p != '\0'; ++p) header[n++] = *p;
  for (const char* p = reason; *p != '\0' && n < 200; ++p) header[n++] = *p;
  const char* mid = " recorded=";
  for (const char* p = mid; *p != '\0'; ++p) header[n++] = *p;
  const std::uint64_t head = headPtr(base_)->load(std::memory_order_relaxed);
  n += formatUint(head, header + n);
  header[n++] = '\n';
  if (!writeFully(fd, header, n)) return false;

  const std::uint64_t live = head < slots_ ? head : slots_;
  for (std::uint64_t i = 0; i < live; ++i) {
    const std::uint64_t index = head - live + i;  // oldest → newest
    const char* slot = base_ + (1 + index % slots_) * kSlotBytes;
    std::size_t len = 0;
    while (len < kSlotBytes && slot[len] != '\0') ++len;
    if (len == 0) continue;
    if (!writeFully(fd, slot, len)) return false;
    if (!writeFully(fd, "\n", 1)) return false;
  }
  return writeFully(fd, "gpdfr end\n", 10);
}

bool FlightRecorder::dumpNow(const char* path, const char* reason) const {
  if (base_ == nullptr) return true;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dumpToFd(fd, reason);
  ::close(fd);
  return ok;
}

FlightRecorder::Dump FlightRecorder::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InputError("flight recorder: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.size() < kSlotBytes ||
      data.compare(0, std::strlen(kMagic), kMagic) != 0) {
    throw InputError("flight recorder: bad magic in " + path);
  }
  unsigned slots = 0;
  unsigned slotBytes = 0;
  if (std::sscanf(data.c_str(), "gpdfr1 slots=%u slot=%u", &slots,
                  &slotBytes) != 2 ||
      slots == 0 || slotBytes != kSlotBytes) {
    throw InputError("flight recorder: bad geometry in " + path);
  }
  const std::size_t expected =
      (1 + static_cast<std::size_t>(slots)) * kSlotBytes;
  if (data.size() != expected) {
    throw InputError("flight recorder: truncated ring " + path);
  }
  Dump dump;
  dump.slots = slots;
  std::uint64_t head = 0;
  std::memcpy(&head, data.data() + kHeadOffset, sizeof(head));
  dump.recorded = head;
  for (unsigned i = 0; i < slots; ++i) {
    const char* slot = data.data() + (1 + static_cast<std::size_t>(i)) *
                                         kSlotBytes;
    if (slot[0] != '#') continue;  // empty or torn slot
    std::size_t len = 0;
    while (len < kSlotBytes && slot[len] != '\0') ++len;
    Entry e;
    e.text.assign(slot, len);
    char* end = nullptr;
    e.index = std::strtoull(e.text.c_str() + 1, &end, 10);
    if (end == e.text.c_str() + 1 || *end != ' ') continue;  // torn
    dump.entries.push_back(std::move(e));
  }
  std::sort(dump.entries.begin(), dump.entries.end(),
            [](const Entry& a, const Entry& b) { return a.index < b.index; });
  return dump;
}

}  // namespace obs
}  // namespace gpd
