#ifndef GPD_OBS_LOG_H_
#define GPD_OBS_LOG_H_
// Structured, leveled logging for the service layer (DESIGN.md §16).
//
// The service binaries (gpdd, gpdd_loadgen) used to write interleaved raw
// lines to stderr; this module replaces them with one thread-safe emitter
// that renders either human-readable text or JSON lines, filters by level,
// and rate-limits per (level, component) so a hot failure path cannot flood
// an operator's terminal.  The srclint check `gpd-log-discipline` enforces
// that src/service and the service tools route through here.
//
// Two tiers mirror the metrics module:
//   - The free functions (error/warn/info/debug, Event) always compile and
//     always work, even under GPD_OBS_DISABLED — a kill-switch build must
//     still be able to report "recovered 12 sessions" or a fatal error.
//   - The GPD_LOG_* macros are for hot paths (per-pump debug events); under
//     GPD_OBS_DISABLED they compile to nothing, preserving the <2%
//     default-on overhead contract without losing operator-facing output.
//
// rawStderr() is the single sanctioned escape hatch for genuinely
// unstructured output (CLI usage text); everything else is an event.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <iosfwd>

namespace gpd {
namespace obs {
namespace log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// "debug" | "info" | "warn" | "error" → Level; throws InputError on junk.
Level parseLevel(const std::string& text);
const char* levelName(Level level);

enum class Format { kText, kJson };

// Process-wide configuration; all setters are thread-safe.
void setLevel(Level level);       // default kInfo
void setFormat(Format format);    // default kText
void setSink(std::ostream* sink); // nullptr restores stderr (the default)
// At most `maxPerSec` emitted events per (level, component) per second;
// excess events are dropped and surface as suppressed=N on the next emitted
// event of that stream. 0 disables the limit. Default 50.
void setRateLimitPerSec(std::uint32_t maxPerSec);
Level currentLevel();
bool enabled(Level level);

// The sanctioned raw-stderr stream for unstructured CLI surface text
// (usage banners).  Lives here so `std::cerr` appears nowhere else in the
// service layer and gpd-log-discipline stays a purely syntactic check.
std::ostream& rawStderr();

// One structured event.  Build, chain kv()s, and it emits on destruction:
//
//   log::Event(log::Level::kInfo, "gpdd", "follower attached")
//       .kv("epoch", epoch).kv("socket", path);
class Event {
 public:
  Event(Level level, const char* component, std::string message);
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  Event& kv(const char* key, const std::string& value);
  Event& kv(const char* key, const char* value);
  Event& kv(const char* key, std::int64_t value);
  Event& kv(const char* key, std::uint64_t value);
  Event& kv(const char* key, int value);
  Event& kv(const char* key, unsigned value);
  Event& kv(const char* key, double value);

 private:
  struct Field {
    std::string key;
    std::string value;
    bool quoted;  // true → string in JSON, false → bare number
  };
  bool active_;
  Level level_;
  const char* component_;
  std::string message_;
  std::vector<Field> fields_;
};

// Shorthands for the common no-field / message-only case.
void error(const char* component, const std::string& message);
void warn(const char* component, const std::string& message);
void info(const char* component, const std::string& message);
void debug(const char* component, const std::string& message);

#ifndef GPD_OBS_DISABLED

#define GPD_LOG_DEBUG(component, message) \
  ::gpd::obs::log::Event(::gpd::obs::log::Level::kDebug, component, message)
#define GPD_LOG_INFO(component, message) \
  ::gpd::obs::log::Event(::gpd::obs::log::Level::kInfo, component, message)
#define GPD_LOG_WARN(component, message) \
  ::gpd::obs::log::Event(::gpd::obs::log::Level::kWarn, component, message)
#define GPD_LOG_ERROR(component, message) \
  ::gpd::obs::log::Event(::gpd::obs::log::Level::kError, component, message)

#else  // GPD_OBS_DISABLED

// Hot-path macro events compile to a discarded empty struct; the message
// argument is never evaluated and kv() chains inline to nothing.
struct NullEvent {
  template <typename K, typename V>
  NullEvent& kv(const K&, const V&) {
    return *this;
  }
};

#define GPD_LOG_DEBUG(component, message) ::gpd::obs::log::NullEvent {}
#define GPD_LOG_INFO(component, message) ::gpd::obs::log::NullEvent {}
#define GPD_LOG_WARN(component, message) ::gpd::obs::log::NullEvent {}
#define GPD_LOG_ERROR(component, message) ::gpd::obs::log::NullEvent {}

#endif  // GPD_OBS_DISABLED

}  // namespace log
}  // namespace obs
}  // namespace gpd

#endif  // GPD_OBS_LOG_H_
