#ifndef GPD_OBS_FLIGHT_RECORDER_H_
#define GPD_OBS_FLIGHT_RECORDER_H_
// Crash flight recorder: a bounded ring of recent service events that
// survives any way the process can die (DESIGN.md §16).
//
// The ring lives in a file mapped MAP_SHARED, so every record() lands in
// the kernel page cache immediately: after a SIGKILL — which cannot be
// caught — the ring file still holds the last N events for the chaos
// harness to validate.  For catchable ends (SIGSEGV/SIGABRT, CheckFailure
// quarantine, SIGTERM drain) gpdd additionally writes a rendered postmortem
// via the async-signal-safe dump path.
//
// File layout: one header slot plus `slots` fixed-size text slots of
// kSlotBytes each.  The header carries a magic/geometry line and, at byte
// offset kHeadOffset, a binary monotonic event counter.  Slot for event i
// is 1 + i % slots; each slot holds one NUL-padded line
// "#<i> t=<nanos> <kind> <details>".  A crash can tear at most the one
// slot being written; load() skips torn slots instead of failing.
//
// record() is cheap (fetch_add + vsnprintf into the mapping, no syscalls,
// no locks) but not async-signal-safe; dumpToFd()/dumpNow() are
// async-signal-safe (open/write only, hand-rolled formatting).

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace gpd {
namespace obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kSlotBytes = 192;
  static constexpr std::size_t kHeadOffset = 128;

  FlightRecorder() = default;
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Creates (or truncates) the ring file and maps it. Throws InputError
  // when the file cannot be created/mapped; GPD_INPUT_CHECKs slots >= 1.
  void openRing(const std::string& path, std::uint32_t slots);

  bool armed() const { return base_ != nullptr; }
  const std::string& path() const { return path_; }
  std::uint64_t recorded() const;

  // Appends one event; printf-style details. No-op when not armed.
  void record(const char* kind, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  // Async-signal-safe: writes a postmortem (header line with `reason` and
  // the ring oldest→newest) to an already-open fd. Returns false on any
  // short write. No-op (true) when not armed.
  bool dumpToFd(int fd, const char* reason) const;

  // Async-signal-safe: O_CREAT|O_TRUNC `path` and dumpToFd into it.
  bool dumpNow(const char* path, const char* reason) const;

  // One recovered ring entry and a parsed ring file.
  struct Entry {
    std::uint64_t index = 0;
    std::string text;  // full slot line, "#<i> t=<nanos> <kind> ..."
  };
  struct Dump {
    std::uint64_t recorded = 0;  // header event counter
    std::uint32_t slots = 0;
    std::vector<Entry> entries;  // index-ascending; torn slots skipped
  };

  // Parses a ring file (as left behind by a kill) or rejects it with
  // InputError (bad magic, bad geometry, size mismatch).
  static Dump load(const std::string& path);

 private:
  std::string path_;
  char* base_ = nullptr;       // mapping of (1 + slots_) * kSlotBytes bytes
  std::uint32_t slots_ = 0;
};

}  // namespace obs
}  // namespace gpd

// Recording compiles out under the obs kill switch; the ring file itself is
// still created (CLI surface intact) and dumps stay well-formed, they just
// carry zero events.
#ifndef GPD_OBS_DISABLED
#define GPD_FR_RECORD(recorder, kind, ...)             \
  do {                                                 \
    if ((recorder).armed()) {                          \
      (recorder).record(kind, __VA_ARGS__);            \
    }                                                  \
  } while (0)
#else
#define GPD_FR_RECORD(recorder, kind, ...) \
  do {                                     \
    (void)sizeof(recorder);                \
  } while (0)
#endif  // GPD_OBS_DISABLED

#endif  // GPD_OBS_FLIGHT_RECORDER_H_
