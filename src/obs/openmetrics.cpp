#include "obs/openmetrics.h"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace gpd::obs {

namespace {

// The per-tenant gauge fields the engine publishes under flat names
// (engine.cpp publishTenantMetrics). Longest suffix first: tenant names may
// themselves contain underscores, and "_sessions" is a suffix of none of
// the others, but "_ev_bytes" vs "_bytes"-style collisions are avoided by
// checking in this order.
constexpr const char* kTenantFields[] = {
    "budget_exhausted",
    "ev_bytes",
    "sessions",
    "sheds",
};

constexpr char kTenantPrefix[] = "gpdd_tenant_";

// Splits a flat per-tenant gauge name into (tenant, field); false when the
// name is not a per-tenant gauge.
bool splitTenantGauge(const std::string& name, std::string* tenant,
                      std::string* field) {
  const std::string prefix = kTenantPrefix;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  for (const char* f : kTenantFields) {
    const std::string suffix = std::string("_") + f;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    *tenant = name.substr(prefix.size(),
                          name.size() - prefix.size() - suffix.size());
    *field = f;
    return true;
  }
  return false;
}

// Upper bound of log2 bucket i as a decimal string: bucket 0 holds value 0,
// bucket i holds [2^(i-1), 2^i), whose largest integer is 2^i - 1.
std::string bucketLe(int i) {
  if (i == 0) return "0";
  if (i >= 64) return "18446744073709551615";  // 2^64 - 1
  return std::to_string((1ull << i) - 1);
}

}  // namespace

std::string escapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void renderOpenMetrics(
    std::ostream& os, const MetricsSnapshot& snap,
    const std::vector<std::pair<std::string, std::string>>& buildInfo) {
  for (const auto& [name, value] : snap.counters) {
    os << "# TYPE " << name << " counter\n";
    os << name << "_total " << value << "\n";
  }

  // Plain gauges stream through; per-tenant flat gauges are collected and
  // re-emitted as labeled families below.
  std::vector<std::pair<std::string, std::vector<std::pair<std::string,
                                                           std::int64_t>>>>
      tenantFamilies;
  for (const char* f : kTenantFields) {
    tenantFamilies.emplace_back(f, std::vector<std::pair<std::string,
                                                         std::int64_t>>());
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string tenant, field;
    if (splitTenantGauge(name, &tenant, &field)) {
      for (auto& [f, samples] : tenantFamilies) {
        if (f == field) samples.emplace_back(tenant, value);
      }
      continue;
    }
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << value << "\n";
  }
  for (const auto& [field, samples] : tenantFamilies) {
    if (samples.empty()) continue;
    const std::string family = kTenantPrefix + field;
    os << "# TYPE " << family << " gauge\n";
    for (const auto& [tenant, value] : samples) {
      os << family << "{tenant=\"" << escapeLabelValue(tenant) << "\"} "
         << value << "\n";
    }
  }

  if (!buildInfo.empty()) {
    os << "# TYPE gpdd_build_info gauge\n";
    os << "gpdd_build_info{";
    bool first = true;
    for (const auto& [key, value] : buildInfo) {
      os << (first ? "" : ",") << key << "=\"" << escapeLabelValue(value)
         << "\"";
      first = false;
    }
    os << "} 1\n";
  }

  for (const MetricsSnapshot::HistogramValue& h : snap.histograms) {
    os << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      os << h.name << "_bucket{le=\"" << bucketLe(i) << "\"} " << cumulative
         << "\n";
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << h.name << "_sum " << h.sum << "\n";
    os << h.name << "_count " << h.count << "\n";
  }

  os << "# EOF\n";
}

namespace {

[[noreturn]] void parseFail(std::size_t lineNo, const std::string& why) {
  throw InputError("openmetrics: line " + std::to_string(lineNo) + ": " + why);
}

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

// True when `sample` belongs to the family `family` — equal, or equal plus
// one of the reserved suffixes.
bool inFamily(const std::string& sample, const std::string& family) {
  if (sample.compare(0, family.size(), family) != 0) return false;
  const std::string rest = sample.substr(family.size());
  return rest.empty() || rest == "_total" || rest == "_bucket" ||
         rest == "_sum" || rest == "_count";
}

}  // namespace

const ExpositionSample* Exposition::find(const std::string& sampleName) const {
  for (const ExpositionFamily& fam : families) {
    for (const ExpositionSample& s : fam.samples) {
      if (s.name == sampleName) return &s;
    }
  }
  return nullptr;
}

double Exposition::value(const std::string& sampleName, double fallback) const {
  const ExpositionSample* s = find(sampleName);
  return s ? s->value : fallback;
}

Exposition parseExposition(const std::string& text) {
  Exposition out;
  ExpositionFamily* current = nullptr;
  bool sawEof = false;
  std::size_t lineNo = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++lineNo;
    if (sawEof && !line.empty()) parseFail(lineNo, "content after # EOF");
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == "# EOF") {
        sawEof = true;
        continue;
      }
      std::istringstream meta(line);
      std::string hash, kind, name, type;
      meta >> hash >> kind;
      if (kind == "TYPE") {
        if (!(meta >> name >> type)) parseFail(lineNo, "malformed # TYPE");
        if (!validMetricName(name)) {
          parseFail(lineNo, "invalid family name '" + name + "'");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "unknown") {
          parseFail(lineNo, "unknown family type '" + type + "'");
        }
        out.families.push_back(ExpositionFamily{name, type, {}});
        current = &out.families.back();
        continue;
      }
      if (kind == "HELP" || kind == "UNIT") continue;
      parseFail(lineNo, "unrecognized comment '" + line + "'");
    }

    // Sample line: name[{labels}] value
    ExpositionSample sample;
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    sample.name = line.substr(0, pos);
    if (!validMetricName(sample.name)) {
      parseFail(lineNo, "invalid sample name '" + sample.name + "'");
    }
    if (pos < line.size() && line[pos] == '{') {
      ++pos;  // past '{'
      while (pos < line.size() && line[pos] != '}') {
        std::size_t eq = line.find('=', pos);
        if (eq == std::string::npos) parseFail(lineNo, "label missing '='");
        const std::string key = line.substr(pos, eq - pos);
        if (!validMetricName(key)) {
          parseFail(lineNo, "invalid label name '" + key + "'");
        }
        pos = eq + 1;
        if (pos >= line.size() || line[pos] != '"') {
          parseFail(lineNo, "label value must be quoted");
        }
        ++pos;  // past opening quote
        std::string value;
        bool closed = false;
        while (pos < line.size()) {
          const char c = line[pos];
          if (c == '\\') {
            if (pos + 1 >= line.size()) parseFail(lineNo, "dangling escape");
            const char esc = line[pos + 1];
            if (esc == '\\') value += '\\';
            else if (esc == '"') value += '"';
            else if (esc == 'n') value += '\n';
            else parseFail(lineNo, "bad escape in label value");
            pos += 2;
            continue;
          }
          if (c == '"') {
            closed = true;
            ++pos;
            break;
          }
          value += c;
          ++pos;
        }
        if (!closed) parseFail(lineNo, "unterminated label value");
        sample.labels.emplace_back(key, value);
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size() || line[pos] != '}') {
        parseFail(lineNo, "unterminated label set");
      }
      ++pos;  // past '}'
    }
    if (pos >= line.size() || line[pos] != ' ') {
      parseFail(lineNo, "missing sample value");
    }
    const std::string valueText = line.substr(pos + 1);
    if (valueText.empty() || valueText.find(' ') != std::string::npos) {
      parseFail(lineNo, "malformed sample value '" + valueText + "'");
    }
    char* end = nullptr;
    sample.value = std::strtod(valueText.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      parseFail(lineNo, "unparseable sample value '" + valueText + "'");
    }
    if (current == nullptr || !inFamily(sample.name, current->name)) {
      parseFail(lineNo,
                "sample '" + sample.name + "' outside its # TYPE family");
    }
    current->samples.push_back(std::move(sample));
  }
  if (!sawEof) throw InputError("openmetrics: missing # EOF terminator");
  return out;
}

}  // namespace gpd::obs
