#include "obs/metrics.h"

#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

namespace gpd::obs {

namespace {

// The documented metric inventory (DESIGN.md §9). Pre-registered so the
// renderers and `gpdtool --stats` always print the full set — a metric a
// run never touched reports zero instead of silently vanishing, and a
// GPD_OBS_DISABLED build still renders the inventory (all zeros).
constexpr const char* kCounterInventory[] = {
    "budget_clock_reads",        // steady-clock reads by control::Budget
    "cpdhb_combinations",        // Sec. 3.3 enumeration selections tried
    "cpdhb_comparisons",         // succLeq head comparisons inside CPDHB
    "cpdhb_invocations",         // findConsistentSelection calls
    "cuts_enumerated",           // consistent cuts visited by lattice BFS
    "detector_queries",          // Detector possibly/definitely calls
    "dnf_terms_tried",           // DNF terms scanned by possiblyExpression
    "dpll_decisions",            // DPLL branching decisions
    "dpll_propagations",         // DPLL unit propagations
    "lattice_explorations",      // lattice BFS runs (possibly + definitely)
    "monitor_degraded_streams",  // streams written off by the session
    "monitor_gaps_detected",     // recovery episodes opened
    "monitor_gaps_recovered",    // recovery episodes closed successfully
    "monitor_nacks_sent",        // retransmit requests issued
    "monitor_notifications",     // notifications handed to deliver()
    "monitor_retransmits",       // copies resent by the replay transport
    "monitor_slice_aborts",      // elimination scans cut by the time slice
    "plan_actual_combinations",  // observed enumeration work (plan_vs_actual)
    "plan_predicted_combinations",  // planner-predicted work (plan_vs_actual)
    "plan_steps_run",            // plan steps the detector executed
    "plan_steps_skipped",        // plan steps skipped by the budget walk
};

constexpr const char* kGaugeInventory[] = {
    "frontier_bytes_peak",  // widest live BFS frontier, bytes
    "frontier_cuts_peak",   // widest live BFS frontier, cuts
};

constexpr const char* kHistogramInventory[] = {
    "enumeration_combinations",  // per-enumeration selections tried
    "plan_vs_actual",            // |predicted − observed| CPDHB invocations
};

}  // namespace

struct Registry::Impl {
  std::mutex mutex;
  // node-based maps: instrument addresses are stable across inserts, which
  // is what lets the GPD_OBS_* macros cache references in local statics.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() : impl_(new Impl) {
  for (const char* name : kCounterInventory) counter(name);
  for (const char* name : kGaugeInventory) gauge(name);
  for (const char* name : kHistogramInventory) histogram(name);
}

Registry::~Registry() { delete impl_; }

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.count = h->count();
    hv.sum = h->sum();
    for (int i = 0; i < Histogram::kBuckets; ++i) hv.buckets[i] = h->bucket(i);
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

namespace {

// Non-empty log2 buckets as "lo..hi:count" ranges, e.g. "1:3 4..7:2".
std::string bucketSummary(const Histogram& h) {
  std::ostringstream out;
  bool first = true;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t n = h.bucket(i);
    if (n == 0) continue;
    if (!first) out << ' ';
    first = false;
    if (i == 0) {
      out << "0";
    } else if (i == 1) {
      out << "1";
    } else {
      out << (1ull << (i - 1)) << ".." << ((1ull << i) - 1);
    }
    out << ':' << n;
  }
  return first ? "-" : out.str();
}

}  // namespace

void renderMetricsText(std::ostream& os, Registry& reg) {
  std::lock_guard<std::mutex> lock(reg.impl_->mutex);
  std::size_t width = 0;
  for (const auto& [name, c] : reg.impl_->counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, g] : reg.impl_->gauges) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, h] : reg.impl_->histograms) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, c] : reg.impl_->counters) {
    os << "counter    " << std::left << std::setw(static_cast<int>(width))
       << name << "  " << c->value() << '\n';
  }
  for (const auto& [name, g] : reg.impl_->gauges) {
    os << "gauge      " << std::left << std::setw(static_cast<int>(width))
       << name << "  " << g->value() << '\n';
  }
  for (const auto& [name, h] : reg.impl_->histograms) {
    os << "histogram  " << std::left << std::setw(static_cast<int>(width))
       << name << "  count=" << h->count() << " sum=" << h->sum()
       << " buckets=" << bucketSummary(*h) << '\n';
  }
}

void renderMetricsJson(std::ostream& os, Registry& reg) {
  std::lock_guard<std::mutex> lock(reg.impl_->mutex);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : reg.impl_->counters) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : reg.impl_->gauges) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.impl_->histograms) {
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"buckets\": {";
    bool firstBucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      os << (firstBucket ? "" : ", ") << '"' << i << "\": " << n;
      firstBucket = false;
    }
    os << "}}";
    first = false;
  }
  os << "\n  }\n}\n";
}

}  // namespace gpd::obs
