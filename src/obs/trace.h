// gpd::obs span tracer — RAII spans, per-thread ring buffers, Chrome-trace
// export.
//
// A span is one timed region of a detection run (a kernel, a plan step, one
// enumeration phase). Call sites open spans through GPD_TRACE_SPAN(name) /
// GPD_TRACE_SPAN_NAMED(var, name); the object records its start on the
// process steady clock (util/stopwatch.h — the library's single time
// source) and its duration when it goes out of scope, so a span closes on
// *every* exit path: normal return, budget/cancel unwind, exception.
// Spans nest: each records the depth at which it opened, and the exporter
// reconstructs the tree from [start, start+duration) containment per
// thread.
//
// Collection is armed at runtime (Tracer::start()); while disarmed, an
// instrumented region costs one relaxed atomic load. Completed spans go to
// a fixed-capacity per-thread ring buffer — when a run outgrows the ring
// the *oldest* spans are overwritten and counted in droppedSpans(), never
// blocking or reallocating on the hot path. With GPD_OBS_DISABLED the
// macros declare a zero-cost NullSpan and the region compiles to nothing.
//
// Export: exportChromeTrace() writes trace-event JSON ("X" complete
// events, microsecond timestamps) loadable in chrome://tracing and
// Perfetto; renderFlameSummary() aggregates per span name (count, total,
// self time) for terminal use.
//
// Concurrency contract: record() is lock-free per thread and safe to call
// from any thread; snapshot()/clear()/export run at quiescent points only
// (no thread inside an armed span) — the CLI and tests, which are
// single-threaded around tracing, satisfy this by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/stopwatch.h"

namespace gpd::obs {

// Typed key/value attached to a span. Keys and string values must outlive
// the tracer snapshot (string literals / toString() results in practice).
struct SpanAttr {
  const char* key = nullptr;
  bool isString = false;
  std::int64_t intValue = 0;
  const char* strValue = nullptr;
};

struct SpanRecord {
  static constexpr int kMaxAttrs = 4;

  const char* name = nullptr;
  std::uint64_t startNs = 0;
  std::uint64_t durationNs = 0;
  int depth = 0;  // nesting depth at open (0 = thread-root span)
  std::uint32_t tid = 0;
  SpanAttr attrs[kMaxAttrs];
  int attrCount = 0;
};

class Tracer {
 public:
  // Arms collection. Spans opened while disarmed record nothing.
  void start() { armed_.store(true, std::memory_order_relaxed); }
  void stop() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Appends one completed span to the calling thread's ring buffer.
  void record(const SpanRecord& rec);

  // Completed spans across all threads, sorted by (tid, start). Quiescent
  // points only.
  std::vector<SpanRecord> snapshot() const;

  // Drops every recorded span (buffers stay allocated). Quiescent only.
  void clear();

  std::uint64_t recordedSpans() const;  // total ever recorded
  std::uint64_t droppedSpans() const;   // overwritten by ring wrap-around

  // Chrome trace-event JSON: an array of "X" complete events (name, ph,
  // ts, dur, pid, tid, args) with timestamps rebased to the earliest span.
  void exportChromeTrace(std::ostream& os) const;

  // Per-name aggregate (count, total ms, self ms), widest totals first.
  void renderFlameSummary(std::ostream& os) const;

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  struct Impl;
  std::atomic<bool> armed_{false};
  Impl* impl_;
};

// The process-wide tracer the GPD_TRACE_* macros record into.
Tracer& tracer();

// Nesting depth of the calling thread's open-span stack (0 = none open).
// Only maintained while the tracer is armed — the property tests' probe
// that every span opened by a kernel was closed when the kernel unwound.
int currentSpanDepth();

// RAII span. Construction samples the steady clock and pushes one level of
// nesting; destruction pops it and records the completed span. When the
// tracer is disarmed at construction the span is inert (one atomic load).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attach typed attributes (kept up to SpanRecord::kMaxAttrs; extras are
  // dropped). Keys/string values must be storage-stable (literals).
  void attrInt(const char* key, std::int64_t value);
  void attrStr(const char* key, const char* value);

 private:
  SpanRecord rec_;
  bool live_ = false;
};

// Compiled-out stand-in: same surface, no code.
class NullSpan {
 public:
  explicit NullSpan(const char*) {}
  void attrInt(const char*, std::int64_t) {}
  void attrStr(const char*, const char*) {}
};

}  // namespace gpd::obs

#define GPD_OBS_CAT2(a, b) a##b
#define GPD_OBS_CAT(a, b) GPD_OBS_CAT2(a, b)

// GPD_TRACE_SPAN(name): trace the enclosing scope as one span.
// GPD_TRACE_SPAN_NAMED(var, name): same, binding the span to `var` so the
// call site can attach attributes (var.attrInt / var.attrStr).
#ifndef GPD_OBS_DISABLED
#define GPD_TRACE_SPAN_NAMED(var, name) \
  [[maybe_unused]] ::gpd::obs::Span var(name)
#else
#define GPD_TRACE_SPAN_NAMED(var, name) \
  [[maybe_unused]] ::gpd::obs::NullSpan var(name)
#endif
#define GPD_TRACE_SPAN(name) \
  GPD_TRACE_SPAN_NAMED(GPD_OBS_CAT(gpdTraceSpan_, __LINE__), name)
