#include "obs/log.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "util/check.h"
#include "util/stopwatch.h"

namespace gpd {
namespace obs {
namespace log {
namespace {

// All mutable logger state lives behind one mutex; emission holds it for the
// whole render+write so lines from concurrent threads never interleave.
struct State {
  std::mutex mutex;
  Level level = Level::kInfo;
  Format format = Format::kText;
  std::ostream* sink = nullptr;  // nullptr → std::cerr
  std::uint32_t ratePerSec = 50;

  // Per (level, component) token window for rate limiting.
  struct Window {
    std::uint64_t startNanos = 0;
    std::uint32_t emitted = 0;
    std::uint64_t suppressed = 0;
  };
  std::map<std::string, Window> windows;
};

State& state() {
  static State* s = new State();  // leaked: loggers outlive static dtors
  return *s;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Wall-clock timestamp, UTC, "2026-08-08T12:00:00.123Z".  Wall time (not the
// steady clock) is deliberate: log lines are correlated with external
// systems.  src/obs is a clock-sanctioned directory (DESIGN.md §14).
std::string isoNow() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm = {};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  return buf;
}

}  // namespace

Level parseLevel(const std::string& text) {
  if (text == "debug") return Level::kDebug;
  if (text == "info") return Level::kInfo;
  if (text == "warn") return Level::kWarn;
  if (text == "error") return Level::kError;
  throw InputError("unknown log level '" + text +
                   "' (expected debug|info|warn|error)");
}

const char* levelName(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
  }
  return "info";
}

void setLevel(Level level) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.level = level;
}

void setFormat(Format format) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.format = format;
}

void setSink(std::ostream* sink) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.sink = sink;
}

void setRateLimitPerSec(std::uint32_t maxPerSec) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.ratePerSec = maxPerSec;
  s.windows.clear();
}

Level currentLevel() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.level;
}

bool enabled(Level level) {
  return static_cast<int>(level) >= static_cast<int>(currentLevel());
}

std::ostream& rawStderr() { return std::cerr; }

Event::Event(Level level, const char* component, std::string message)
    : active_(enabled(level)),
      level_(level),
      component_(component),
      message_(std::move(message)) {}

Event& Event::kv(const char* key, const std::string& value) {
  if (active_) fields_.push_back({key, value, true});
  return *this;
}

Event& Event::kv(const char* key, const char* value) {
  if (active_) fields_.push_back({key, value, true});
  return *this;
}

Event& Event::kv(const char* key, std::int64_t value) {
  if (active_) fields_.push_back({key, std::to_string(value), false});
  return *this;
}

Event& Event::kv(const char* key, std::uint64_t value) {
  if (active_) fields_.push_back({key, std::to_string(value), false});
  return *this;
}

Event& Event::kv(const char* key, int value) {
  return kv(key, static_cast<std::int64_t>(value));
}

Event& Event::kv(const char* key, unsigned value) {
  return kv(key, static_cast<std::uint64_t>(value));
}

Event& Event::kv(const char* key, double value) {
  if (active_) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.push_back({key, buf, false});
  }
  return *this;
}

Event::~Event() {
  if (!active_) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (static_cast<int>(level_) < static_cast<int>(s.level)) return;

  std::uint64_t carried = 0;
  if (s.ratePerSec > 0) {
    const std::uint64_t now = steadyNowNanos();
    State::Window& w =
        s.windows[std::string(levelName(level_)) + "/" + component_];
    if (now - w.startNanos >= 1000000000ULL) {
      carried = w.suppressed;
      w.startNanos = now;
      w.emitted = 0;
      w.suppressed = 0;
    }
    if (w.emitted >= s.ratePerSec) {
      ++w.suppressed;
      return;
    }
    ++w.emitted;
  }

  std::ostream& out = s.sink ? *s.sink : std::cerr;
  std::ostringstream line;
  if (s.format == Format::kJson) {
    line << "{\"ts\":\"" << isoNow() << "\",\"level\":\"" << levelName(level_)
         << "\",\"component\":\"" << jsonEscape(component_) << "\",\"msg\":\""
         << jsonEscape(message_) << "\"";
    for (const Field& f : fields_) {
      line << ",\"" << jsonEscape(f.key) << "\":";
      if (f.quoted) {
        line << "\"" << jsonEscape(f.value) << "\"";
      } else {
        line << f.value;
      }
    }
    if (carried > 0) line << ",\"suppressed\":" << carried;
    line << "}";
  } else {
    line << isoNow() << " " << levelName(level_) << " " << component_ << ": "
         << message_;
    for (const Field& f : fields_) {
      line << " " << f.key << "=" << f.value;
    }
    if (carried > 0) line << " suppressed=" << carried;
  }
  out << line.str() << "\n";
  out.flush();
}

void error(const char* component, const std::string& message) {
  Event(Level::kError, component, message);
}

void warn(const char* component, const std::string& message) {
  Event(Level::kWarn, component, message);
}

void info(const char* component, const std::string& message) {
  Event(Level::kInfo, component, message);
}

void debug(const char* component, const std::string& message) {
  Event(Level::kDebug, component, message);
}

}  // namespace log
}  // namespace obs
}  // namespace gpd
