#ifndef GPD_OBS_OPENMETRICS_H_
#define GPD_OBS_OPENMETRICS_H_
// OpenMetrics text exposition for the obs registry (DESIGN.md §16).
//
// renderOpenMetrics() turns a MetricsSnapshot into the Prometheus/
// OpenMetrics text format: `# TYPE` metadata, counters as `<name>_total`,
// gauges as-is, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum`/`_count`, terminated by `# EOF`.  Per-tenant gauges that the
// engine registers under flat names (`gpdd_tenant_<name>_sessions`, …) are
// re-shaped into labeled series (`gpdd_tenant_sessions{tenant="<name>"}`)
// with proper label-value escaping, so a scraper sees one family per field
// instead of one family per tenant.
//
// parseExposition() is the matching strict parser used by `gpdtool scrape`,
// the loadgen telemetry assertions, and the golden round-trip test.  It
// throws InputError on anything malformed (missing # EOF, bad escapes,
// unparseable sample values, TYPE after samples).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace gpd::obs {

// Escapes a label value per the exposition format: backslash, double quote,
// and newline.
std::string escapeLabelValue(const std::string& value);

// `buildInfo` renders as `gpdd_build_info{k1="v1",...} 1` (empty → omitted).
void renderOpenMetrics(
    std::ostream& os, const MetricsSnapshot& snap,
    const std::vector<std::pair<std::string, std::string>>& buildInfo);

// One parsed sample line: name, labels in source order, value text parsed
// as double (exact for the integers the renderer emits).
struct ExpositionSample {
  std::string name;  // full sample name, e.g. "gpdd_pumps_total"
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
};

struct ExpositionFamily {
  std::string name;  // family name from # TYPE, e.g. "gpdd_pumps"
  std::string type;  // "counter" | "gauge" | "histogram" | "unknown"
  std::vector<ExpositionSample> samples;
};

struct Exposition {
  std::vector<ExpositionFamily> families;

  // nullptr when no sample matches.
  const ExpositionSample* find(const std::string& sampleName) const;
  // Value of an exact-name sample, or `fallback` when absent.
  double value(const std::string& sampleName, double fallback = 0) const;
};

Exposition parseExposition(const std::string& text);

}  // namespace gpd::obs

#endif  // GPD_OBS_OPENMETRICS_H_
