// gpd::obs metrics registry — counters, gauges, log2 histograms.
//
// Theorem 1 makes the interesting detectors super-polynomial, so the only
// way to know *where* a run spent its exponential effort is to count it:
// cuts the lattice BFS expanded, CPDHB invocations an enumeration burned,
// DPLL decisions, monitor recovery traffic, budget clock reads. The
// registry is a process-wide named set of metrics with three instrument
// kinds:
//
//   * Counter   — monotonic uint64, relaxed atomic add (~1 ns);
//   * Gauge     — int64 with set() and max() (CAS loop), for peaks;
//   * Histogram — 65 fixed log2 buckets (bucket i counts values whose
//     bit width is i: bucket 0 is value 0, bucket 64 tops out at
//     UINT64_MAX), plus running count/sum, for distributions like
//     plan-vs-actual prediction error.
//
// Hot-path usage goes through the GPD_OBS_* macros, which resolve the
// name → instrument lookup once per call site (function-local static
// reference) and compile to nothing when the build defines
// GPD_OBS_DISABLED. The registry itself always exists — renderers and the
// CLI stay functional in a disabled build, they just report zeros.
//
// Metric name inventory: see DESIGN.md §9.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace gpd::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  // Raises the gauge to v if v is larger (peak tracking).
  void max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  // One bucket per bit width: bucket 0 holds value 0, bucket i holds
  // values in [2^(i-1), 2^i).
  static constexpr int kBuckets = 65;

  static int bucketOf(std::uint64_t v) noexcept {
    int w = 0;
    while (v != 0) {
      ++w;
      v >>= 1;
    }
    return w;
  }

  void observe(std::uint64_t v) noexcept {
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// A point-in-time copy of every registered instrument, name-sorted.  This
// is the decoupling seam for exporters that live in other translation units
// (the OpenMetrics renderer, telemetry snapshots): they consume a snapshot
// instead of becoming friends of Registry::Impl.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t buckets[Histogram::kBuckets] = {};
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramValue> histograms;
};

// Process-wide named metric set. Instrument references are stable for the
// process lifetime (instruments are never destroyed before exit), so call
// sites may cache them — the GPD_OBS_* macros do.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Copies every instrument under the registry lock. Relaxed per-instrument
  // reads: the snapshot is internally consistent per metric, not across
  // metrics — fine for monitoring.
  MetricsSnapshot snapshot();

  // Zeroes every registered instrument (names stay registered).
  void reset();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  friend void renderMetricsText(std::ostream&, Registry&);
  friend void renderMetricsJson(std::ostream&, Registry&);
  struct Impl;
  Impl* impl_;
};

// The process-wide registry the GPD_OBS_* macros record into.
Registry& registry();

// Renderers: a sorted text table / a JSON object keyed by metric name.
// Histograms render count, sum, mean, and the non-empty log2 buckets.
void renderMetricsText(std::ostream& os, Registry& reg);
void renderMetricsJson(std::ostream& os, Registry& reg);

}  // namespace gpd::obs

// Hot-path macros. `name` must be a string literal (or otherwise stable);
// the lookup happens once per call site. With GPD_OBS_DISABLED every macro
// compiles to nothing — arguments are not evaluated ((void)sizeof keeps
// referenced variables "used" without generating code).
#ifndef GPD_OBS_DISABLED
#define GPD_OBS_COUNTER_ADD(name, n)                          \
  do {                                                        \
    static ::gpd::obs::Counter& gpdObsCounterRef_ =           \
        ::gpd::obs::registry().counter(name);                 \
    gpdObsCounterRef_.add(static_cast<std::uint64_t>(n));     \
  } while (0)
#define GPD_OBS_GAUGE_SET(name, v)                            \
  do {                                                        \
    static ::gpd::obs::Gauge& gpdObsGaugeRef_ =               \
        ::gpd::obs::registry().gauge(name);                   \
    gpdObsGaugeRef_.set(static_cast<std::int64_t>(v));        \
  } while (0)
#define GPD_OBS_GAUGE_MAX(name, v)                            \
  do {                                                        \
    static ::gpd::obs::Gauge& gpdObsGaugeRef_ =               \
        ::gpd::obs::registry().gauge(name);                   \
    gpdObsGaugeRef_.max(static_cast<std::int64_t>(v));        \
  } while (0)
#define GPD_OBS_HISTOGRAM(name, v)                            \
  do {                                                        \
    static ::gpd::obs::Histogram& gpdObsHistRef_ =            \
        ::gpd::obs::registry().histogram(name);               \
    gpdObsHistRef_.observe(static_cast<std::uint64_t>(v));    \
  } while (0)
#else
#define GPD_OBS_COUNTER_ADD(name, n) \
  do {                               \
    (void)sizeof(n);                 \
  } while (0)
#define GPD_OBS_GAUGE_SET(name, v) \
  do {                             \
    (void)sizeof(v);               \
  } while (0)
#define GPD_OBS_GAUGE_MAX(name, v) \
  do {                             \
    (void)sizeof(v);               \
  } while (0)
#define GPD_OBS_HISTOGRAM(name, v) \
  do {                             \
    (void)sizeof(v);               \
  } while (0)
#endif  // GPD_OBS_DISABLED
