#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

namespace gpd::obs {

namespace {

// Per-thread ring: ~170 B per record × 16384 ≈ 2.8 MB once a thread
// records its first span; the cap bounds memory on exponential runs (old
// spans are overwritten, counted as dropped).
constexpr std::size_t kRingCapacity = 1 << 14;

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<SpanRecord> ring;
  std::size_t next = 0;        // overwrite cursor once the ring is full
  std::uint64_t recorded = 0;  // total ever recorded by this thread
};

// Everything a Tracer owns. Namespace-scope (as Tracer::Impl's base) so the
// registry and the thread-exit hook below can name it.
struct TracerState {
  std::mutex mutex;
  // Owns every buffer ever opened against this tracer — including those of
  // pool workers that have already exited. Their spans and drop counts stay
  // exportable for the lifetime of the tracer.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  // Buffers of threads still running, for reuse on their next record().
  // Detached on thread exit: OS thread ids recycle, and a recycled id must
  // get a fresh buffer (fresh tracer tid), not splice its spans into a dead
  // thread's timeline — that would break the exporter's per-tid nesting
  // containment.
  std::map<std::thread::id, ThreadBuffer*> live;
  std::uint32_t nextTid = 1;
  std::uint64_t id = 0;  // never-reused instance id (the TLS cache key)
};

// Registry of live tracers keyed by instance id. The thread-exit hook walks
// it to detach this thread's buffers without dereferencing a tracer that was
// destroyed first, and the thread-local buffer cache keys on the id because
// ids never recycle while heap addresses do. Both the mutex and the map
// deliberately leak: main's thread-exit hook and the process-wide tracer's
// destructor run during shutdown, after namespace-scope statics may already
// be gone.
std::mutex& registryMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}
std::map<std::uint64_t, TracerState*>& registry() {
  static auto* m = new std::map<std::uint64_t, TracerState*>;
  return *m;
}
std::uint64_t registerState(TracerState* state) {
  std::lock_guard<std::mutex> lock(registryMutex());
  static std::uint64_t nextId = 1;
  const std::uint64_t id = nextId++;
  registry()[id] = state;
  return id;
}
void unregisterState(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(registryMutex());
  registry().erase(id);
}

// Runs in every exiting thread that recorded spans: detaches the thread's
// buffers from each tracer it touched (skipping tracers that died first).
// The buffers themselves stay with their tracers.
struct ThreadDetacher {
  std::vector<std::uint64_t> touched;  // tracer ids this thread opened
  ~ThreadDetacher() {
    std::lock_guard<std::mutex> lock(registryMutex());
    for (std::uint64_t id : touched) {
      const auto it = registry().find(id);
      if (it == registry().end()) continue;
      TracerState* state = it->second;
      std::lock_guard<std::mutex> stateLock(state->mutex);
      state->live.erase(std::this_thread::get_id());
    }
  }
};

thread_local ThreadDetacher tlsDetacher;
// One-entry cache of the last (tracer, buffer) pair this thread recorded
// into. Keyed by tracer id, NOT by pointer: a fresh tracer can land at a
// freed tracer's address, and a plain pointer cache would then hand the new
// instance a buffer owned by the dead one (stale tid at best,
// use-after-free at worst).
thread_local std::uint64_t tlsOwnerId = 0;
thread_local ThreadBuffer* tlsBuffer = nullptr;
thread_local int tlsDepth = 0;

ThreadBuffer& localBuffer(TracerState& state) {
  if (tlsOwnerId == state.id && tlsBuffer != nullptr) return *tlsBuffer;
  std::lock_guard<std::mutex> lock(state.mutex);
  const std::thread::id self = std::this_thread::get_id();
  ThreadBuffer* buf = nullptr;
  const auto it = state.live.find(self);
  if (it != state.live.end()) {
    buf = it->second;  // this thread alternates between tracer instances
  } else {
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = state.nextTid++;
    owned->ring.reserve(kRingCapacity);
    buf = owned.get();
    state.buffers.push_back(std::move(owned));
    state.live.emplace(self, buf);
    tlsDetacher.touched.push_back(state.id);
  }
  tlsOwnerId = state.id;
  tlsBuffer = buf;
  return *buf;
}

}  // namespace

struct Tracer::Impl : TracerState {};

Tracer::Tracer() : impl_(new Impl) { impl_->id = registerState(impl_); }
Tracer::~Tracer() {
  // After this, exiting threads and the TLS cache can no longer reach the
  // impl: the registry entry is gone and the instance id is never reused.
  unregisterState(impl_->id);
  delete impl_;
}

void Tracer::record(const SpanRecord& rec) {
  ThreadBuffer& buf = localBuffer(*impl_);
  SpanRecord stamped = rec;
  stamped.tid = buf.tid;
  if (buf.ring.size() < kRingCapacity) {
    buf.ring.push_back(stamped);
  } else {
    buf.ring[buf.next] = stamped;
    buf.next = (buf.next + 1) % kRingCapacity;
  }
  ++buf.recorded;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<SpanRecord> out;
  for (const auto& buf : impl_->buffers) {
    out.insert(out.end(), buf->ring.begin(), buf->ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.startNs != b.startNs) return a.startNs < b.startNs;
              return a.depth < b.depth;  // parent before zero-length child
            });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& buf : impl_->buffers) {
    buf->ring.clear();
    buf->next = 0;
    buf->recorded = 0;
  }
}

std::uint64_t Tracer::recordedSpans() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::uint64_t total = 0;
  for (const auto& buf : impl_->buffers) total += buf->recorded;
  return total;
}

std::uint64_t Tracer::droppedSpans() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::uint64_t dropped = 0;
  for (const auto& buf : impl_->buffers) {
    dropped += buf->recorded - buf->ring.size();
  }
  return dropped;
}

namespace {

// JSON string escaping for span names / attr values (all library-provided
// literals today, but the exporter must never emit invalid JSON).
void writeJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      os << '\\' << *s;
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << *s;
    }
  }
  os << '"';
}

void writeMicros(std::ostream& os, std::uint64_t ns) {
  // Fixed-point micros with nanosecond resolution: Chrome's ts/dur unit is
  // the microsecond but fractional values are accepted.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

}  // namespace

void Tracer::exportChromeTrace(std::ostream& os) const {
  const std::vector<SpanRecord> spans = snapshot();
  std::uint64_t base = UINT64_MAX;
  for (const SpanRecord& s : spans) base = std::min(base, s.startNs);
  if (spans.empty()) base = 0;
  os << "[\n";
  os << R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
     << R"("args":{"name":"gpd"}})";
  for (const SpanRecord& s : spans) {
    os << ",\n{";
    os << "\"name\":";
    writeJsonString(os, s.name);
    os << ",\"ph\":\"X\",\"ts\":";
    writeMicros(os, s.startNs - base);
    os << ",\"dur\":";
    writeMicros(os, s.durationNs);
    os << ",\"pid\":1,\"tid\":" << s.tid;
    os << ",\"args\":{\"depth\":" << s.depth;
    for (int i = 0; i < s.attrCount; ++i) {
      os << ',';
      writeJsonString(os, s.attrs[i].key);
      os << ':';
      if (s.attrs[i].isString) {
        writeJsonString(os, s.attrs[i].strValue);
      } else {
        os << s.attrs[i].intValue;
      }
    }
    os << "}}";
  }
  os << "\n]\n";
}

void Tracer::renderFlameSummary(std::ostream& os) const {
  const std::vector<SpanRecord> spans = snapshot();
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t selfNs = 0;
  };
  std::map<std::string, Agg> byName;
  // Self time: total minus time spent in nested spans, reconstructed from
  // interval containment within each thread (snapshot is start-sorted).
  std::vector<const SpanRecord*> stack;
  std::uint32_t tid = 0;
  for (const SpanRecord& s : spans) {
    if (s.tid != tid) {
      stack.clear();
      tid = s.tid;
    }
    while (!stack.empty() &&
           s.startNs >= stack.back()->startNs + stack.back()->durationNs) {
      stack.pop_back();
    }
    Agg& agg = byName[s.name];
    ++agg.count;
    agg.totalNs += s.durationNs;
    agg.selfNs += s.durationNs;
    if (!stack.empty()) {
      Agg& parent = byName[stack.back()->name];
      parent.selfNs -= std::min(parent.selfNs, s.durationNs);
    }
    stack.push_back(&s);
  }
  std::vector<std::pair<std::string, Agg>> rows(byName.begin(), byName.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.totalNs > b.second.totalNs;
  });
  os << "span                              count     total_ms      self_ms\n";
  for (const auto& [name, agg] : rows) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-32s %6llu %12.3f %12.3f\n",
                  name.c_str(), static_cast<unsigned long long>(agg.count),
                  static_cast<double>(agg.totalNs) * 1e-6,
                  static_cast<double>(agg.selfNs) * 1e-6);
    os << buf;
  }
  if (rows.empty()) os << "(no spans recorded)\n";
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

int currentSpanDepth() { return tlsDepth; }

Span::Span(const char* name) {
  live_ = tracer().armed();
  if (!live_) return;
  rec_.name = name;
  rec_.depth = tlsDepth++;
  rec_.startNs = steadyNowNanos();
}

Span::~Span() {
  if (!live_) return;
  rec_.durationNs = steadyNowNanos() - rec_.startNs;
  --tlsDepth;
  tracer().record(rec_);
}

void Span::attrInt(const char* key, std::int64_t value) {
  if (!live_ || rec_.attrCount >= SpanRecord::kMaxAttrs) return;
  rec_.attrs[rec_.attrCount++] = SpanAttr{key, false, value, nullptr};
}

void Span::attrStr(const char* key, const char* value) {
  if (!live_ || rec_.attrCount >= SpanRecord::kMaxAttrs) return;
  rec_.attrs[rec_.attrCount++] = SpanAttr{key, true, 0, value};
}

}  // namespace gpd::obs
