// Predicate control (Tarafdar & Garg, "Predicate Control for Active
// Debugging of Distributed Programs" — the companion problem to detection):
// instead of asking whether a bad global state is possible, *add
// synchronization* to the computation so that it is not, then replay the
// execution under the added arrows.
//
// This module solves the mutual-exclusion-shaped instance: given one
// activity interval set per slot (e.g. each process's critical sections),
// add causal edges that totally serialize the intervals, so no consistent
// cut of the controlled computation has two slots active — i.e.
// possibly(activeᵢ ∧ activeⱼ) becomes false for every pair. Control is
// infeasible exactly when two intervals *definitely* overlap (each starts
// causally before the other ends — no schedule can separate them) or when
// an interval is open at the end of the trace and another cannot precede
// it; both are detected and reported.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "clocks/vector_clock.h"
#include "computation/computation.h"
#include "detect/definitely_conjunctive.h"

namespace gpd::control {

struct SerializationResult {
  bool feasible = false;
  // When infeasible: a pair of intervals no synchronization can separate.
  std::optional<std::pair<detect::TrueInterval, detect::TrueInterval>> conflict;
  // When feasible: the synchronization arrows added (send → receive), and
  // the controlled computation (original events + original messages +
  // these arrows).
  std::vector<Message> addedEdges;
  std::unique_ptr<Computation> controlled;
};

// Each element of `intervals` lists one slot's activity intervals (events of
// one process, in process order — detect::trueIntervals output). Intervals
// of the same slot are never serialized against each other (they are
// already ordered on their process).
SerializationResult serializeIntervals(
    const VectorClocks& clocks,
    const std::vector<std::vector<detect::TrueInterval>>& intervals);

}  // namespace gpd::control
