// Execution budgets and cooperative cancellation for the NP-hard detectors.
//
// Theorem 1 makes possibly(φ) NP-complete already for singular 2-CNF, and
// the planner (analyze/plan.h) can predict Π cⱼ / kᵐ CPDHB-invocation
// blowups — but prediction alone does not stop a detector that has already
// started. A Budget bounds the work a super-polynomial kernel may perform
// (wall-clock deadline, visited consistent cuts, CPDHB invocations /
// enumeration combinations, live BFS frontier bytes) and a CancelToken lets
// another thread request a cooperative stop. Every exponential kernel
// (lattice exploration, the Sec. 3.3 enumerations, DNF decomposition, DPLL)
// charges the budget as it works and exits early — with an explicit
// three-valued Unknown, never a wrong answer — once any limit trips.
//
// Soundness: budget exhaustion can only *widen* Unknown. A kernel that
// stops early has examined a subset of the search space, so a witness it
// found is still a genuine witness (Yes stays Yes) and "no witness found"
// degrades from No to Unknown; no code path flips Yes to No or vice versa.
//
// Amortization: counter limits are checked on every charge (one integer
// compare). For cut charges the steady_clock read and the CancelToken load
// are amortized to every kPollPeriod charges; combination charges observe
// cancellation every time (one relaxed atomic load) and amortize only the
// clock read. Threading a Budget through a kernel therefore costs a pointer
// test plus an occasional clock read (< 3% measured by bench_budget,
// experiment A9).
//
// Header-only on purpose: every module (lattice, detect, sat, monitor) can
// include it without linking gpd_control, which sits *above* gpd_detect in
// the module graph.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace gpd::control {

// Cooperative cancellation flag, safe to share across threads. The owner
// calls requestCancel(); budgeted kernels observe it on their next
// amortized poll and stop with StopReason::Cancelled.
class CancelToken {
 public:
  void requestCancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Why a budgeted run stopped early; None while the budget is intact.
enum class StopReason : std::uint8_t {
  None,              // budget not exhausted
  Deadline,          // wall-clock deadline passed
  CutLimit,          // maxCuts consistent cuts visited
  CombinationLimit,  // maxCombinations CPDHB invocations / DPLL decisions
  FrontierLimit,     // live BFS frontier exceeded maxFrontierBytes
  Cancelled,         // CancelToken fired
};

inline const char* toString(StopReason r) {
  switch (r) {
    case StopReason::None:
      return "none";
    case StopReason::Deadline:
      return "deadline";
    case StopReason::CutLimit:
      return "cut-limit";
    case StopReason::CombinationLimit:
      return "combination-limit";
    case StopReason::FrontierLimit:
      return "frontier-limit";
    case StopReason::Cancelled:
      return "cancelled";
  }
  return "unknown";
}

// Limits; 0 means "unlimited" for every field.
struct BudgetLimits {
  std::uint64_t deadlineMillis = 0;    // wall-clock budget from construction
  std::uint64_t maxCuts = 0;           // consistent cuts visited/expanded
  std::uint64_t maxCombinations = 0;   // CPDHB invocations, DNF terms, DPLL decisions
  std::uint64_t maxFrontierBytes = 0;  // live lattice-BFS frontier memory

  bool unlimited() const {
    return deadlineMillis == 0 && maxCuts == 0 && maxCombinations == 0 &&
           maxFrontierBytes == 0;
  }
};

// How far a budgeted run got — carried into Unknown results so the caller
// can see the work performed before the stop.
struct BudgetProgress {
  std::uint64_t cutsVisited = 0;
  std::uint64_t combinationsTried = 0;
  std::uint64_t peakFrontierBytes = 0;
};

// A mutable work meter shared by every kernel of one detection call —
// including the par::Pool workers of a parallel kernel, which charge one
// shared Budget concurrently. Every counter is a relaxed atomic and
// exhaustion latches exactly once via CAS: the first limit to trip wins,
// every further charge (from any thread) fails immediately, and reason()
// reports that single first cause. The amortized deadline/cancel polls
// (every kPollPeriod cut charges, every kCombinationPollPeriod combination
// charges) stay amortized under concurrency: the poll counters are shared
// atomics, so N workers still produce one clock read per period of
// *aggregate* charges, not one per worker per period.
class Budget {
 public:
  // Unlimited budget: charges never fail, progress is still counted.
  Budget() = default;

  // The deadline is anchored on steadyNowNanos() (util/stopwatch.h) — the
  // same steady clock the obs tracer and the benches read, so "now" means
  // one thing everywhere. Each genuine clock read (here and in the
  // amortized polls) bumps the budget_clock_reads counter.
  explicit Budget(const BudgetLimits& limits, const CancelToken* cancel = nullptr)
      : limits_(limits), cancel_(cancel) {
    if (limits.deadlineMillis != 0) {
      GPD_OBS_COUNTER_ADD("budget_clock_reads", 1);
      deadlineNs_ = steadyNowNanos() + limits.deadlineMillis * 1000000ull;
    }
  }

  const BudgetLimits& limits() const { return limits_; }
  // Snapshot of the work performed so far (by value: the live counters are
  // atomics shared with any pool workers still charging).
  BudgetProgress progress() const {
    BudgetProgress p;
    p.cutsVisited = cutsVisited_.load(std::memory_order_relaxed);
    p.combinationsTried = combinationsTried_.load(std::memory_order_relaxed);
    p.peakFrontierBytes = peakFrontierBytes_.load(std::memory_order_relaxed);
    return p;
  }
  bool exhausted() const {
    return reason_.load(std::memory_order_relaxed) != StopReason::None;
  }
  StopReason reason() const {
    return reason_.load(std::memory_order_relaxed);
  }

  // True when some limit other than maxCombinations can stop a lattice
  // exploration (which charges cuts, not combinations). The degradation
  // walk refuses to fall through to an exhaustive lattice step once a
  // cheaper step was skipped for cost unless this holds — otherwise the
  // fallback could run unboundedly under a combinations-only budget.
  bool canBoundExploration() const {
    return limits_.deadlineMillis != 0 || limits_.maxCuts != 0 ||
           limits_.maxFrontierBytes != 0 || cancel_ != nullptr;
  }

  // Remaining combination headroom; UINT64_MAX when unlimited.
  std::uint64_t remainingCombinations() const {
    if (limits_.maxCombinations == 0) return UINT64_MAX;
    const std::uint64_t tried =
        combinationsTried_.load(std::memory_order_relaxed);
    if (tried >= limits_.maxCombinations) return 0;
    return limits_.maxCombinations - tried;
  }

  // Remaining cut headroom; UINT64_MAX when unlimited. The parallel lattice
  // BFS uses this to cap each frontier to the exact prefix the sequential
  // scan would have visited before the CutLimit latch.
  std::uint64_t remainingCuts() const {
    if (limits_.maxCuts == 0) return UINT64_MAX;
    const std::uint64_t visited = cutsVisited_.load(std::memory_order_relaxed);
    if (visited >= limits_.maxCuts) return 0;
    return limits_.maxCuts - visited;
  }

  // Charge one visited/expanded consistent cut. Returns false (latched)
  // once the budget is exhausted; the failing charge is not counted.
  bool chargeCut() {
    if (exhausted()) return false;
    if (limits_.maxCuts != 0) {
      const std::uint64_t prev =
          cutsVisited_.fetch_add(1, std::memory_order_relaxed);
      if (prev >= limits_.maxCuts) {
        // Over-claimed by a racing charge: give the unit back uncounted.
        cutsVisited_.fetch_sub(1, std::memory_order_relaxed);
        return fail(StopReason::CutLimit);
      }
    } else {
      cutsVisited_.fetch_add(1, std::memory_order_relaxed);
    }
    return poll();
  }

  // Charge one enumeration combination (a CPDHB invocation, a DNF term, a
  // DPLL decision). The cancel token is checked on every charge (one
  // relaxed atomic load); the clock read is amortized — combinations are
  // usually coarse (each is a full CPDHB scan), but Theorem-1 gadgets
  // shrink them to sub-microsecond scans where a per-charge clock read is
  // measurable overhead (A9). The counter starts at zero, so the *first*
  // charge always polls the clock: a deadline that passed before any work
  // is observed immediately.
  bool chargeCombination() {
    if (exhausted()) return false;
    if (limits_.maxCombinations != 0) {
      const std::uint64_t prev =
          combinationsTried_.fetch_add(1, std::memory_order_relaxed);
      if (prev >= limits_.maxCombinations) {
        combinationsTried_.fetch_sub(1, std::memory_order_relaxed);
        return fail(StopReason::CombinationLimit);
      }
    } else {
      combinationsTried_.fetch_add(1, std::memory_order_relaxed);
    }
    if (cancel_ != nullptr && cancel_->cancelRequested()) {
      return fail(StopReason::Cancelled);
    }
    if ((comboPollCounter_.fetch_add(1, std::memory_order_relaxed) &
         (kCombinationPollPeriod - 1)) != 0) {
      return true;
    }
    return checkDeadline();
  }

  // Report the current live frontier size of a BFS; tracks the peak and
  // fails once it exceeds maxFrontierBytes.
  bool noteFrontierBytes(std::uint64_t liveBytes) {
    if (exhausted()) return false;
    std::uint64_t cur = peakFrontierBytes_.load(std::memory_order_relaxed);
    while (liveBytes > cur &&
           !peakFrontierBytes_.compare_exchange_weak(
               cur, liveBytes, std::memory_order_relaxed)) {
    }
    if (limits_.maxFrontierBytes != 0 && liveBytes > limits_.maxFrontierBytes) {
      return fail(StopReason::FrontierLimit);
    }
    return true;
  }

  // Amortized deadline/cancellation poll with no work counted — for loops
  // whose iterations are not cuts or combinations (e.g. DPLL propagation).
  bool keepGoing() {
    if (exhausted()) return false;
    return poll();
  }

 private:
  // Deadline/cancel are polled once every kPollPeriod amortized charges.
  static constexpr std::uint32_t kPollPeriod = 64;
  // Combination charges check the cancel token every time but read the
  // clock only once per this many charges (first charge included).
  static constexpr std::uint32_t kCombinationPollPeriod = 16;

  // Single-latch under concurrency: the first CAS to move reason_ off None
  // wins; racing failures (even with a different reason) leave it alone.
  bool fail(StopReason r) {
    StopReason expected = StopReason::None;
    reason_.compare_exchange_strong(expected, r, std::memory_order_relaxed);
    return false;
  }

  bool poll() {
    if (((pollCounter_.fetch_add(1, std::memory_order_relaxed) + 1) &
         (kPollPeriod - 1)) != 0) {
      return true;
    }
    return pollNow();
  }

  bool pollNow() {
    if (cancel_ != nullptr && cancel_->cancelRequested()) {
      return fail(StopReason::Cancelled);
    }
    return checkDeadline();
  }

  bool checkDeadline() {
    if (deadlineNs_ == UINT64_MAX) return true;
    GPD_OBS_COUNTER_ADD("budget_clock_reads", 1);
    if (steadyNowNanos() >= deadlineNs_) {
      return fail(StopReason::Deadline);
    }
    return true;
  }

  BudgetLimits limits_;
  const CancelToken* cancel_ = nullptr;
  std::uint64_t deadlineNs_ = UINT64_MAX;  // UINT64_MAX = no deadline
  std::atomic<std::uint64_t> cutsVisited_{0};
  std::atomic<std::uint64_t> combinationsTried_{0};
  std::atomic<std::uint64_t> peakFrontierBytes_{0};
  std::atomic<StopReason> reason_{StopReason::None};
  std::atomic<std::uint32_t> pollCounter_{0};
  std::atomic<std::uint32_t> comboPollCounter_{0};
};

}  // namespace gpd::control
