#include "control/serialize.h"

#include <algorithm>

#include "graph/dag.h"
#include "util/check.h"

namespace gpd::control {

namespace {

struct Item {
  detect::TrueInterval interval;
  int slot;
};

// Can `before` be scheduled strictly before `after` by adding arrows?
// Requires an event after `before` ends, a non-initial start for `after`,
// and no existing causality from after's start back past before's end.
bool orderFeasible(const VectorClocks& clocks, const Computation& comp,
                   const Item& before, const Item& after) {
  if (before.interval.hi.index + 1 >=
      comp.eventCount(before.interval.hi.process)) {
    return false;  // `before` is open at the end of the trace
  }
  if (after.interval.lo.isInitial()) {
    return false;  // nothing can precede an initial event
  }
  const EventId end{before.interval.hi.process, before.interval.hi.index + 1};
  return !clocks.leq(after.interval.lo, end);
}

}  // namespace

SerializationResult serializeIntervals(
    const VectorClocks& clocks,
    const std::vector<std::vector<detect::TrueInterval>>& intervals) {
  const Computation& comp = clocks.computation();
  SerializationResult result;

  std::vector<Item> items;
  for (std::size_t slot = 0; slot < intervals.size(); ++slot) {
    for (const detect::TrueInterval& iv : intervals[slot]) {
      items.push_back({iv, static_cast<int>(slot)});
    }
  }
  const int n = static_cast<int>(items.size());

  // Must-precede relation: a → b iff scheduling b before a is impossible.
  // Any linear extension of it is realizable by consecutive arrows (added
  // arrows never conflict with it — see serialize.h); a cycle means some
  // intervals can never be separated.
  graph::Dag must(n);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a != b && !orderFeasible(clocks, comp, items[b], items[a])) {
        must.addEdge(a, b);  // b cannot be first: a must precede b
      }
    }
  }
  const auto order = must.topologicalOrder();
  if (!order) {
    // Report a mutually-unserializable pair when one exists (the common
    // case: two definitely-overlapping intervals).
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (!orderFeasible(clocks, comp, items[a], items[b]) &&
            !orderFeasible(clocks, comp, items[b], items[a])) {
          result.conflict = {items[a].interval, items[b].interval};
          return result;
        }
      }
    }
    return result;  // longer must-precede cycle
  }

  // Realize the total order with one arrow per consecutive pair that is not
  // already causally separated.
  ComputationBuilder builder(comp.processCount());
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    for (int i = 1; i < comp.eventCount(p); ++i) builder.appendEvent(p);
  }
  for (const Message& m : comp.messages()) builder.addMessage(m.send, m.receive);

  for (int k = 0; k + 1 < n; ++k) {
    const Item& prev = items[(*order)[k]];
    const Item& cur = items[(*order)[k + 1]];
    const EventId end{prev.interval.hi.process, prev.interval.hi.index + 1};
    GPD_CHECK_MSG(end.index < comp.eventCount(end.process),
                  "open interval ordered before another — topological order "
                  "should have placed it last");
    if (clocks.leq(end, cur.interval.lo)) continue;  // already separated
    GPD_CHECK(!cur.interval.lo.isInitial());
    builder.addMessage(end, cur.interval.lo);
    result.addedEdges.push_back({end, cur.interval.lo});
  }

  result.controlled = std::make_unique<Computation>(std::move(builder).build());
  result.feasible = true;
  return result;
}

}  // namespace gpd::control
