#include "graph/linear_extension.h"

#include "util/check.h"

namespace gpd::graph {

std::vector<int> randomLinearExtension(const Dag& dag, Rng& rng) {
  const int n = dag.size();
  std::vector<int> indeg(n, 0);
  for (int v = 0; v < n; ++v) {
    indeg[v] = static_cast<int>(dag.predecessors(v).size());
  }
  std::vector<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t i = rng.index(ready.size());
    const int u = ready[i];
    ready[i] = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (int v : dag.successors(u)) {
      if (--indeg[v] == 0) ready.push_back(v);
    }
  }
  GPD_CHECK_MSG(static_cast<int>(order.size()) == n, "graph has a cycle");
  return order;
}

namespace {

struct Enumerator {
  const Dag& dag;
  const std::function<bool(const std::vector<int>&)>& visit;
  std::vector<int> indeg;
  std::vector<int> prefix;
  std::uint64_t count = 0;
  bool stopped = false;

  bool run() {
    if (static_cast<int>(prefix.size()) == dag.size()) {
      ++count;
      if (!visit(prefix)) stopped = true;
      return !stopped;
    }
    for (int v = 0; v < dag.size(); ++v) {
      if (indeg[v] != 0) continue;
      indeg[v] = -1;  // mark taken
      for (int w : dag.successors(v)) --indeg[w];
      prefix.push_back(v);
      const bool keep = run();
      prefix.pop_back();
      for (int w : dag.successors(v)) ++indeg[w];
      indeg[v] = 0;
      if (!keep) return false;
    }
    return true;
  }
};

}  // namespace

std::uint64_t forEachLinearExtension(
    const Dag& dag, const std::function<bool(const std::vector<int>&)>& visit) {
  Enumerator e{dag, visit, {}, {}, 0, false};
  e.indeg.assign(dag.size(), 0);
  for (int v = 0; v < dag.size(); ++v) {
    e.indeg[v] = static_cast<int>(dag.predecessors(v).size());
  }
  e.prefix.reserve(dag.size());
  e.run();
  return e.count;
}

std::uint64_t countLinearExtensions(const Dag& dag) {
  return forEachLinearExtension(dag, [](const std::vector<int>&) { return true; });
}

}  // namespace gpd::graph
