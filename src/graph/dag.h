// Directed graph with DAG-oriented queries.
//
// The event set of a distributed computation, ordered by the paper's
// irreflexive partial order ≺, is represented as a Dag whose edges are the
// covering relation plus message edges. This module provides the generic
// graph machinery the detection algorithms build on: topological order,
// reachability (transitive closure), and transitive reduction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace gpd::graph {

class Dag {
 public:
  Dag() = default;
  explicit Dag(int n);

  int addNode();
  // Adds edge u -> v. Parallel edges are allowed (and deduplicated lazily by
  // algorithms that care); self-loops are rejected.
  void addEdge(int u, int v);

  int size() const { return static_cast<int>(succ_.size()); }
  int edgeCount() const { return edges_; }
  const std::vector<int>& successors(int u) const { return succ_[u]; }
  const std::vector<int>& predecessors(int u) const { return pred_[u]; }

  // Kahn's algorithm. nullopt iff the graph has a cycle.
  std::optional<std::vector<int>> topologicalOrder() const;
  bool isAcyclic() const { return topologicalOrder().has_value(); }

  // New Dag with every edge reversed.
  Dag reversed() const;

 private:
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;
  int edges_ = 0;
};

// Dense transitive closure over a DAG, bitset-packed; O(V·E/64) to build,
// O(1) per query. `reaches(u, v)` is true iff there is a path of one or more
// edges from u to v (strict: reaches(u, u) is false unless u lies on a cycle,
// which the constructor rejects).
class Reachability {
 public:
  explicit Reachability(const Dag& dag);

  bool reaches(int u, int v) const {
    return (rows_[u][static_cast<std::size_t>(v) >> 6] >>
            (static_cast<std::size_t>(v) & 63)) & 1;
  }

  // u and v are incomparable under the strict order.
  bool concurrent(int u, int v) const {
    return u != v && !reaches(u, v) && !reaches(v, u);
  }

  int size() const { return n_; }

 private:
  int n_ = 0;
  std::vector<std::vector<std::uint64_t>> rows_;
};

// Removes every edge implied by transitivity; returns the covering relation.
Dag transitiveReduction(const Dag& dag);

}  // namespace gpd::graph
