#include "graph/matching.h"

#include <limits>
#include <queue>

#include "util/check.h"

namespace gpd::graph {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

struct HopcroftKarp {
  const std::vector<std::vector<int>>& adj;
  std::vector<int>& pairL;
  std::vector<int>& pairR;
  std::vector<int> dist;

  bool bfs() {
    std::queue<int> q;
    dist.assign(pairL.size(), kInf);
    for (std::size_t l = 0; l < pairL.size(); ++l) {
      if (pairL[l] < 0) {
        dist[l] = 0;
        q.push(static_cast<int>(l));
      }
    }
    bool foundAugmenting = false;
    while (!q.empty()) {
      const int l = q.front();
      q.pop();
      for (int r : adj[l]) {
        const int l2 = pairR[r];
        if (l2 < 0) {
          foundAugmenting = true;
        } else if (dist[l2] == kInf) {
          dist[l2] = dist[l] + 1;
          q.push(l2);
        }
      }
    }
    return foundAugmenting;
  }

  bool dfs(int l) {
    for (int r : adj[l]) {
      const int l2 = pairR[r];
      if (l2 < 0 || (dist[l2] == dist[l] + 1 && dfs(l2))) {
        pairL[l] = r;
        pairR[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  }
};

}  // namespace

MatchingResult maximumBipartiteMatching(
    int nLeft, int nRight, const std::vector<std::vector<int>>& adj) {
  GPD_CHECK(static_cast<int>(adj.size()) == nLeft);
  for (const auto& row : adj) {
    for (int r : row) GPD_CHECK(r >= 0 && r < nRight);
  }
  MatchingResult res;
  res.pairLeft.assign(nLeft, -1);
  res.pairRight.assign(nRight, -1);
  HopcroftKarp hk{adj, res.pairLeft, res.pairRight, {}};
  while (hk.bfs()) {
    for (int l = 0; l < nLeft; ++l) {
      if (res.pairLeft[l] < 0 && hk.dfs(l)) ++res.size;
    }
  }
  return res;
}

}  // namespace gpd::graph
