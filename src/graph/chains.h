// Minimum chain cover of a finite strict partial order (Dilworth / Fulkerson).
//
// Sec. 3.3 of the paper covers the true events of each clause group by a
// minimum set of chains and enumerates one chain per group; the number of
// CPDHB invocations is the product of the cover sizes, which is never worse
// than the k^m process-enumeration bound because a group's events on one
// process already form a chain.
#pragma once

#include <functional>
#include <vector>

namespace gpd::graph {

// `precedes(a, b)` must implement a strict partial order on {0, …, n-1}
// (irreflexive, transitive). Returns a partition of {0, …, n-1} into the
// minimum number of chains; each chain is listed in increasing order
// (consecutive members satisfy precedes). By Dilworth's theorem the cover
// size equals the maximum antichain size.
std::vector<std::vector<int>> minimumChainCover(
    int n, const std::function<bool(int, int)>& precedes);

}  // namespace gpd::graph
