#include "graph/chains.h"

#include "graph/matching.h"
#include "util/check.h"

namespace gpd::graph {

std::vector<std::vector<int>> minimumChainCover(
    int n, const std::function<bool(int, int)>& precedes) {
  GPD_CHECK(n >= 0);
  if (n == 0) return {};
  // Fulkerson's construction: bipartite graph with left copy a and right copy
  // b joined when a ≺ b; each matched edge fuses two chain fragments. Because
  // `precedes` is transitive the matched successor relation yields valid
  // chains directly.
  std::vector<std::vector<int>> adj(n);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a != b && precedes(a, b)) adj[a].push_back(b);
    }
  }
  const MatchingResult m = maximumBipartiteMatching(n, n, adj);

  std::vector<std::vector<int>> chains;
  std::vector<char> isChainHead(n, 1);
  for (int b = 0; b < n; ++b) {
    if (m.pairRight[b] >= 0) isChainHead[b] = 0;  // b has a predecessor
  }
  for (int head = 0; head < n; ++head) {
    if (!isChainHead[head]) continue;
    std::vector<int> chain;
    for (int cur = head; cur >= 0; cur = m.pairLeft[cur]) {
      chain.push_back(cur);
    }
    chains.push_back(std::move(chain));
  }
  // Every element is in exactly one chain: heads + matched edges partition.
  std::size_t covered = 0;
  for (const auto& c : chains) covered += c.size();
  GPD_CHECK(covered == static_cast<std::size_t>(n));
  return chains;
}

}  // namespace gpd::graph
