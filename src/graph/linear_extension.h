// Linear extensions of a DAG.
//
// A run of a distributed computation is exactly a linear extension of its
// event order (paper Sec. 2.1). Random extensions drive property tests and
// workload interleavings; exhaustive enumeration is the ground truth for the
// `definitely` modality on small computations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/dag.h"
#include "util/rng.h"

namespace gpd::graph {

// A linear extension sampled by repeatedly choosing uniformly among currently
// ready nodes. (Not uniform over the set of extensions — sufficient for
// fuzzing; exact enumeration below is used where distribution matters.)
std::vector<int> randomLinearExtension(const Dag& dag, Rng& rng);

// Invokes `visit` once per linear extension until it returns false or the
// extensions are exhausted. Returns the number of extensions visited.
// Exponential: intended for small ground-truth computations only.
std::uint64_t forEachLinearExtension(
    const Dag& dag, const std::function<bool(const std::vector<int>&)>& visit);

// Total number of linear extensions (visits them all).
std::uint64_t countLinearExtensions(const Dag& dag);

}  // namespace gpd::graph
