// Hopcroft–Karp maximum bipartite matching.
//
// Used by the Dilworth chain-cover construction (Sec. 3.3 of the paper): the
// minimum number of chains covering the true events of a clause group equals
// |events| − |maximum matching| in the comparability bipartite graph.
#pragma once

#include <vector>

namespace gpd::graph {

struct MatchingResult {
  int size = 0;                // number of matched pairs
  std::vector<int> pairLeft;   // pairLeft[l]  = matched right node or -1
  std::vector<int> pairRight;  // pairRight[r] = matched left node or -1
};

// adj[l] lists the right-side neighbours of left node l.
// O(E·sqrt(V)).
MatchingResult maximumBipartiteMatching(int nLeft, int nRight,
                                        const std::vector<std::vector<int>>& adj);

}  // namespace gpd::graph
