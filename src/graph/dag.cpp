#include "graph/dag.h"

#include <algorithm>

#include "util/check.h"

namespace gpd::graph {

Dag::Dag(int n) : succ_(n), pred_(n) { GPD_CHECK(n >= 0); }

int Dag::addNode() {
  succ_.emplace_back();
  pred_.emplace_back();
  return size() - 1;
}

void Dag::addEdge(int u, int v) {
  GPD_CHECK(u >= 0 && u < size() && v >= 0 && v < size());
  GPD_CHECK_MSG(u != v, "self-loop at node " << u);
  succ_[u].push_back(v);
  pred_[v].push_back(u);
  ++edges_;
}

std::optional<std::vector<int>> Dag::topologicalOrder() const {
  const int n = size();
  std::vector<int> indeg(n, 0);
  for (int v = 0; v < n; ++v) indeg[v] = static_cast<int>(pred_[v].size());
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const int u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (int v : succ_[u]) {
      if (--indeg[v] == 0) ready.push_back(v);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

Dag Dag::reversed() const {
  Dag r(size());
  for (int u = 0; u < size(); ++u) {
    for (int v : succ_[u]) r.addEdge(v, u);
  }
  return r;
}

Reachability::Reachability(const Dag& dag) : n_(dag.size()) {
  const auto order = dag.topologicalOrder();
  GPD_CHECK_MSG(order.has_value(), "Reachability requires an acyclic graph");
  const std::size_t words = (static_cast<std::size_t>(n_) + 63) / 64;
  rows_.assign(n_, std::vector<std::uint64_t>(words, 0));
  // Process in reverse topological order: row(u) = union over successors v of
  // (row(v) | {v}).
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const int u = *it;
    auto& row = rows_[u];
    for (int v : dag.successors(u)) {
      row[static_cast<std::size_t>(v) >> 6] |=
          std::uint64_t{1} << (static_cast<std::size_t>(v) & 63);
      const auto& rv = rows_[v];
      for (std::size_t w = 0; w < words; ++w) row[w] |= rv[w];
    }
  }
}

Dag transitiveReduction(const Dag& dag) {
  const Reachability reach(dag);
  Dag out(dag.size());
  for (int u = 0; u < dag.size(); ++u) {
    // Deduplicate successors first.
    std::vector<int> succ = dag.successors(u);
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    for (int v : succ) {
      bool implied = false;
      for (int w : succ) {
        if (w != v && reach.reaches(w, v)) {
          implied = true;
          break;
        }
      }
      if (!implied) out.addEdge(u, v);
    }
  }
  return out;
}

}  // namespace gpd::graph
