#include "service/replica.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "service/frame.h"
#include "util/check.h"

namespace gpd::service {

namespace {

// First whitespace-delimited word of a record payload.
std::string verbOf(const std::string& payload) {
  std::size_t end = 0;
  while (end < payload.size() && payload[end] != ' ' &&
         payload[end] != '\n') {
    ++end;
  }
  return payload.substr(0, end);
}

// Splits "VERB <header...>\n<body>" at the first newline; returns the
// header line and sets `body` to everything after it (empty if none).
std::string headerLineOf(const std::string& payload, std::string* body) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string::npos) {
    body->clear();
    return payload;
  }
  *body = payload.substr(nl + 1);
  return payload.substr(0, nl);
}

}  // namespace

// --- Encoders ---------------------------------------------------------------

std::string captureHelloRecord() {
  return "RHELLO " + std::to_string(kReplicationVersion);
}

std::vector<std::string> captureSnapshotRecord(const CheckpointCapture& cap) {
  GPD_INPUT_CHECK(!cap.delta, "replication snapshot must be a full manifest");
  std::vector<std::string> out;
  const std::size_t chunks =
      (cap.text.size() + kSnapshotChunkBytes - 1) / kSnapshotChunkBytes;
  std::ostringstream head;
  head << "RSNAP " << cap.epoch << ' ' << cap.checksum << ' ' << chunks;
  out.push_back(head.str());
  for (std::size_t i = 0; i < chunks; ++i) {
    std::string rec = "RCHUNK " + std::to_string(i) + "\n";
    rec += cap.text.substr(i * kSnapshotChunkBytes, kSnapshotChunkBytes);
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<std::string> capturePumpRecord(
    std::uint64_t pump, const std::vector<ReplicatedCmd>& cmds) {
  std::vector<std::string> out;
  out.push_back("RPUMP " + std::to_string(pump) + ' ' +
                std::to_string(cmds.size()));
  for (const ReplicatedCmd& cmd : cmds) {
    std::string rec = "RCMD " + std::to_string(cmd.origin) + "\n";
    rec += cmd.payload;
    GPD_INPUT_CHECK(rec.size() <= kMaxFramePayload,
                    "replicated command too large for one frame ("
                        << rec.size() << " bytes)");
    out.push_back(std::move(rec));
  }
  return out;
}

std::string captureCkptRecord(std::uint64_t pump,
                              const CheckpointCapture& cap) {
  std::ostringstream os;
  os << "RCKPT " << pump << ' ' << (cap.delta ? "delta" : "full") << ' '
     << cap.epoch << ' ' << cap.checksum;
  return os.str();
}

std::string captureFlushRecord(std::uint64_t pump) {
  return "RFLUSH " + std::to_string(pump);
}

// --- Follower ---------------------------------------------------------------

ReplicationFollower::ReplicationFollower(
    EngineOptions options,
    std::function<void(const CheckpointCapture&)> onCheckpoint)
    : options_(options), onCheckpoint_(std::move(onCheckpoint)) {}

ReplicationFollower::~ReplicationFollower() = default;

void ReplicationFollower::consume(const std::string& payload) {
  const std::string verb = verbOf(payload);
  if (verb == "RHELLO") {
    applyHelloRecord(payload);
  } else if (verb == "RSNAP" || verb == "RCHUNK") {
    applySnapshotRecord(payload);
  } else if (verb == "RPUMP" || verb == "RCMD") {
    applyPumpRecord(payload);
  } else if (verb == "RCKPT") {
    applyCkptRecord(payload);
  } else if (verb == "RFLUSH") {
    applyFlushRecord(payload);
  } else {
    GPD_INPUT_CHECK(false, "replication: unknown record '" << verb << "'");
  }
}

void ReplicationFollower::applyHelloRecord(const std::string& payload) {
  GPD_INPUT_CHECK(!helloSeen_, "replication: duplicate RHELLO");
  std::istringstream is(payload);
  std::string kw;
  int version = 0;
  GPD_INPUT_CHECK(is >> kw >> version && kw == "RHELLO",
                  "replication: malformed RHELLO");
  GPD_INPUT_CHECK(version == kReplicationVersion,
                  "replication: leader speaks version "
                      << version << ", this follower speaks "
                      << kReplicationVersion);
  helloSeen_ = true;
}

void ReplicationFollower::applySnapshotRecord(const std::string& payload) {
  GPD_INPUT_CHECK(helloSeen_, "replication: snapshot before RHELLO");
  GPD_INPUT_CHECK(!snapshotLoaded_, "replication: duplicate snapshot");
  std::string body;
  const std::string head = headerLineOf(payload, &body);
  std::istringstream is(head);
  std::string kw;
  GPD_INPUT_CHECK(is >> kw, "replication: empty snapshot record");
  if (kw == "RSNAP") {
    GPD_INPUT_CHECK(is >> snapEpoch_ >> snapChecksum_ >> snapChunks_,
                    "replication: malformed RSNAP");
    snapChunksSeen_ = 0;
    snapText_.clear();
    if (snapChunks_ > 0) return;  // body arrives in RCHUNK records
  } else {
    GPD_INPUT_CHECK(kw == "RCHUNK", "replication: malformed snapshot record");
    std::size_t index = 0;
    GPD_INPUT_CHECK(is >> index && index == snapChunksSeen_,
                    "replication: RCHUNK out of order (got "
                        << index << ", want " << snapChunksSeen_ << ")");
    snapText_ += body;
    ++snapChunksSeen_;
    if (snapChunksSeen_ < snapChunks_) return;
  }
  GPD_INPUT_CHECK(fnv1a32(snapText_) == snapChecksum_,
                  "replication: snapshot checksum mismatch");
  engine_ = Engine::restoreManifestText(snapText_, options_);
  GPD_INPUT_CHECK(engine_->checkpointEpoch() == snapEpoch_,
                  "replication: snapshot epoch mismatch");
  snapshotLoaded_ = true;
  if (onCheckpoint_) {
    // The snapshot is the parent every later delta chains from; the host's
    // on-disk log needs it first or its chain would start mid-air.
    CheckpointCapture cap;
    cap.delta = false;
    cap.epoch = snapEpoch_;
    cap.checksum = snapChecksum_;
    cap.sessions = engine_->openSessions();
    cap.text = std::move(snapText_);
    onCheckpoint_(cap);
  }
  snapText_.clear();
  snapText_.shrink_to_fit();
}

void ReplicationFollower::applyPumpRecord(const std::string& payload) {
  GPD_INPUT_CHECK(snapshotLoaded_, "replication: RPUMP before snapshot");
  std::string body;
  const std::string head = headerLineOf(payload, &body);
  std::istringstream is(head);
  std::string kw;
  GPD_INPUT_CHECK(is >> kw, "replication: empty pump record");
  if (kw == "RPUMP") {
    GPD_INPUT_CHECK(!pumpOpen_, "replication: RPUMP inside an open block");
    GPD_INPUT_CHECK(is >> pumpIndex_ >> pumpCmdsExpected_,
                    "replication: malformed RPUMP");
    GPD_INPUT_CHECK(pumpIndex_ == engine_->stats().pumps,
                    "replication: pump gap (leader at "
                        << pumpIndex_ << ", follower at "
                        << engine_->stats().pumps << ")");
    pumpCmds_.clear();
    pumpOpen_ = true;
    if (pumpCmdsExpected_ == 0) finishPumpBlock();
    return;
  }
  GPD_INPUT_CHECK(kw == "RCMD", "replication: malformed pump record");
  GPD_INPUT_CHECK(pumpOpen_, "replication: RCMD outside a pump block");
  int origin = 0;
  GPD_INPUT_CHECK(is >> origin, "replication: malformed RCMD");
  pumpCmds_.push_back({origin, std::move(body)});
  if (pumpCmds_.size() == pumpCmdsExpected_) finishPumpBlock();
}

void ReplicationFollower::finishPumpBlock() {
  for (ReplicatedCmd& cmd : pumpCmds_) {
    engine_->submit(std::move(cmd.payload), cmd.origin);
  }
  pumpCmds_.clear();
  std::vector<Response> out;
  engine_->pump(out);
  for (Response& r : out) {
    retained_.push_back({pumpIndex_ + 1, std::move(r)});
  }
  ++pumpsApplied_;
  pumpOpen_ = false;
}

void ReplicationFollower::applyCkptRecord(const std::string& payload) {
  GPD_INPUT_CHECK(snapshotLoaded_ && !pumpOpen_,
                  "replication: RCKPT outside a pump boundary");
  std::istringstream is(payload);
  std::string kw;
  std::uint64_t pump = 0;
  std::string kind;
  std::uint64_t epoch = 0;
  std::uint32_t checksum = 0;
  GPD_INPUT_CHECK(is >> kw >> pump >> kind >> epoch >> checksum &&
                      kw == "RCKPT" && (kind == "full" || kind == "delta"),
                  "replication: malformed RCKPT");
  GPD_INPUT_CHECK(pump == engine_->stats().pumps,
                  "replication: RCKPT pump mismatch");
  const CheckpointCapture cap = engine_->captureCheckpoint(kind == "delta");
  GPD_INPUT_CHECK(cap.epoch == epoch && cap.checksum == checksum,
                  "replication: checkpoint divergence at epoch "
                      << epoch << " (follower checksum " << cap.checksum
                      << ", leader " << checksum
                      << ") — refusing to serve a replica that cannot "
                         "prove it matches the leader");
  if (onCheckpoint_) onCheckpoint_(cap);
}

void ReplicationFollower::applyFlushRecord(const std::string& payload) {
  GPD_INPUT_CHECK(snapshotLoaded_, "replication: RFLUSH before snapshot");
  std::istringstream is(payload);
  std::string kw;
  std::uint64_t pump = 0;
  GPD_INPUT_CHECK(is >> kw >> pump && kw == "RFLUSH",
                  "replication: malformed RFLUSH");
  retained_.erase(
      std::remove_if(retained_.begin(), retained_.end(),
                     [pump](const RetainedResponse& r) {
                       return r.pump <= pump;
                     }),
      retained_.end());
}

ReplicationFollower::Promotion ReplicationFollower::promote() {
  GPD_INPUT_CHECK(snapshotLoaded_,
                  "replication: cannot promote before a snapshot landed");
  // A half-received pump block was never executed on the leader's clients'
  // behalf either — drop it; clients retransmit unacked commands.
  pumpCmds_.clear();
  pumpOpen_ = false;
  Promotion out;
  out.lastSyncToken = engine_->lastSyncToken();
  out.pumps = pumpsApplied_;
  out.retained.reserve(retained_.size());
  for (RetainedResponse& r : retained_) {
    out.retained.push_back(std::move(r.resp));
  }
  retained_.clear();
  out.engine = std::move(engine_);
  return out;
}

}  // namespace gpd::service
