#include "service/engine.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "io/checkpoint_io.h"
#include "obs/metrics.h"
#include "service/frame.h"
#include "util/check.h"

namespace gpd::service {

namespace {

using monitor::Delivery;
using monitor::MonitorSession;

// Structural bounds for client-supplied numbers: a command claiming more is
// hostile (or corrupt), not big. Kept well under any arithmetic edge.
constexpr long long kMaxProcesses = 4096;
constexpr long long kMaxSeq = 1ll << 40;
constexpr long long kMaxBatch = 1 << 20;
constexpr long long kMaxTicks = 1 << 20;
constexpr long long kMaxPrio = 1000000000;

bool validId(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

// Platform-stable shard assignment (FNV-1a over "tenant/session"): the same
// session lands on the same shard before and after a crash-restart, on any
// machine, so recovery replays are bit-identical.
std::uint32_t shardHash(std::string_view tenant, std::string_view id) {
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 16777619u;
    }
  };
  mix(tenant);
  h ^= static_cast<unsigned char>('/');
  h *= 16777619u;
  mix(id);
  return h;
}

std::string makeKey(std::string_view tenant, std::string_view id) {
  std::string key;
  key.reserve(tenant.size() + 1 + id.size());
  key.append(tenant);
  key += '/';
  key.append(id);
  return key;
}

// Whitespace tokenizer over one command payload. All whitespace (including
// the newlines that separate EVB clock lines) is equivalent; structure comes
// from token counts. Throws InputError on malformed numbers, so one corrupt
// command turns into one ERR frame, never a crash.
class Cursor {
 public:
  explicit Cursor(std::string_view s)
      : p_(s.data()), end_(s.data() + s.size()) {}

  std::string_view token() {
    skipSpace();
    const char* b = p_;
    while (p_ < end_ && !isSpace(*p_)) ++p_;
    return {b, static_cast<std::size_t>(p_ - b)};
  }

  long long integer(const char* what, long long lo, long long hi) {
    const std::string_view t = token();
    GPD_INPUT_CHECK(!t.empty(), "missing " << what);
    std::size_t i = 0;
    bool neg = false;
    if (t[0] == '-') {
      neg = true;
      i = 1;
    }
    GPD_INPUT_CHECK(i < t.size(),
                    "'" << t << "' is not an integer (" << what << ")");
    long long v = 0;
    for (; i < t.size(); ++i) {
      const char c = t[i];
      GPD_INPUT_CHECK(c >= '0' && c <= '9',
                      "'" << t << "' is not an integer (" << what << ")");
      GPD_INPUT_CHECK(
          v <= (std::numeric_limits<long long>::max() - (c - '0')) / 10,
          "integer overflow in " << what);
      v = v * 10 + (c - '0');
    }
    if (neg) v = -v;
    GPD_INPUT_CHECK(v >= lo && v <= hi, what << " value " << v
                                             << " out of range [" << lo
                                             << ", " << hi << "]");
    return v;
  }

  bool atEnd() {
    skipSpace();
    return p_ == end_;
  }

 private:
  static bool isSpace(char c) {
    return c == ' ' || c == '\n' || c == '\r' || c == '\t';
  }
  void skipSpace() {
    while (p_ < end_ && isSpace(*p_)) ++p_;
  }

  const char* p_;
  const char* end_;
};

std::string errPayload(const char* code, std::string_view tenant,
                       std::string_view id, std::string_view msg) {
  std::string out = "ERR ";
  out += code;
  out += ' ';
  out.append(tenant.empty() ? std::string_view("-") : tenant);
  out += ' ';
  out.append(id.empty() ? std::string_view("-") : id);
  out += ' ';
  out.append(msg);
  return out;
}

// Whitespace-token reader for manifest headers (same style as
// io/checkpoint_io's Reader; the embedded session checkpoints are parsed by
// io::readCheckpoint itself, which consumes exactly through its "end").
class ManifestReader {
 public:
  explicit ManifestReader(std::istream& is) : is_(is) {}

  std::string word(const char* what) {
    std::string w;
    GPD_INPUT_CHECK(static_cast<bool>(is_ >> w),
                    "manifest truncated while reading " << what);
    return w;
  }

  void keyword(const char* expected) {
    const std::string w = word(expected);
    GPD_INPUT_CHECK(w == expected, "manifest: expected '"
                                       << expected << "', got '" << w << "'");
  }

  long long integer(const char* what, long long lo, long long hi) {
    long long v = 0;
    GPD_INPUT_CHECK(static_cast<bool>(is_ >> v),
                    "manifest: malformed integer in " << what);
    GPD_INPUT_CHECK(v >= lo && v <= hi, "manifest: " << what << " value " << v
                                                     << " out of range");
    return v;
  }

  std::uint64_t counter(const char* what) {
    std::uint64_t v = 0;
    GPD_INPUT_CHECK(static_cast<bool>(is_ >> v),
                    "manifest: malformed counter in " << what);
    return v;
  }

 private:
  std::istream& is_;
};

constexpr char kManifestMagic[] = "gpdd-manifest";
constexpr int kManifestVersion = 2;

}  // namespace

// Per-shard output and counter accumulator: shards never touch shared
// engine state during the parallel phase, so responses and stats merge
// identically for any thread count.
struct Engine::ShardAcc {
  std::vector<Response> out;
  long long bytesDelta = 0;
  std::uint64_t delivered = 0;
  std::uint64_t nacks = 0;
  std::uint64_t detections = 0;
  std::uint64_t protoErrors = 0;
  std::uint64_t closed = 0;
  std::uint64_t shedBudget = 0;
  // Budget sheds by tenant, merged into tenantStats in shard order so the
  // per-tenant counters stay deterministic for any thread count.
  std::map<std::string, std::uint64_t> tenantShedBudget;
};

// One tenant session: the resilient monitor plus the service-side state the
// ladder, the budget, and crash recovery need.
struct Engine::Session {
  std::string tenant;
  std::string id;
  int processes = 0;
  long long prio = 0;
  int shard = 0;
  int origin = 0;  // endpoint of the last command that touched the session
  std::uint64_t lastActivityPump = 0;
  // Successful Budget::chargeCombination() calls so far — persisted so a
  // restored session's meter resumes exactly where the crashed one stopped.
  std::uint64_t budgetCharged = 0;
  bool detectNotified = false;  // DETECT frame already emitted (persisted)
  bool closed = false;
  std::uint64_t approxBytes = 0;
  std::unique_ptr<control::Budget> budget;
  std::unique_ptr<MonitorSession> mon;
  // NACK frames produced by the session's retransmit callback during the
  // current command, flushed to the shard output right after it.
  std::vector<std::string> pendingNacks;

  // Estimated live bytes: a fixed overhead plus the queued and
  // reorder-buffered vector clocks. Deliberately coarse (the ladder needs a
  // monotone load signal, not an allocator audit) but deterministic — it
  // feeds the deterministic-replay contract.
  std::uint64_t estimateBytes() const {
    if (closed) return 0;
    const std::uint64_t n = static_cast<std::uint64_t>(processes);
    const auto& m = mon->monitor();
    std::uint64_t queued = 0;
    for (int p = 0; p < processes; ++p) queued += m.queueSize(p);
    const std::uint64_t perClock = 4 * n + 48;
    return 512 + n * 96 + queued * perClock +
           mon->bufferedCount() * (perClock + 16) + mon->sliceBytes();
  }

  std::string verdictPayload(bool asClosed, bool forceDegraded) const {
    const bool detected = mon->detected();
    const char* word = detected        ? "detected"
                       : forceDegraded ? "degraded"
                                       : monitor::toString(mon->verdict());
    const auto& st = mon->stats();
    std::ostringstream os;
    os << "VERDICT " << tenant << ' ' << id << ' ' << word << ' '
       << (detected ? 1 : 0) << ' ' << (asClosed ? "closed" : "open")
       << " delivered=" << st.delivered << " duplicates=" << st.duplicates
       << " nacks=" << st.nacksSent << " gaps=" << st.gapsDetected
       << " degraded-streams=" << st.degradedStreams
       << " comparisons=" << mon->monitor().comparisons();
    return os.str();
  }

  void flushNacks(ShardAcc& acc) {
    for (std::string& n : pendingNacks) {
      acc.out.push_back({origin, std::move(n)});
      ++acc.nacks;
    }
    pendingNacks.clear();
  }

  void emitDetectIfNew(ShardAcc& acc) {
    if (mon->detected() && !detectNotified) {
      detectNotified = true;
      acc.out.push_back({origin, "DETECT " + tenant + " " + id});
      ++acc.detections;
      GPD_OBS_COUNTER_ADD("gpdd_detections", 1);
    }
  }

  // Force-closes the session with an explicit reason. The verdict stays
  // honest: Detected if a witness was found, otherwise Degraded ("unknown")
  // — a shed session was interrupted, so NotDetected is never claimed.
  void shed(ShardAcc& acc, std::string_view reason) {
    std::string frame = "SHED " + tenant + " " + id + " ";
    frame.append(reason);
    acc.out.push_back({origin, std::move(frame)});
    acc.out.push_back({origin, verdictPayload(true, true)});
    pendingNacks.clear();
    closed = true;
    ++acc.closed;
  }

  // Ticks until gap recovery concludes (at close time retransmissions can
  // no longer arrive, so every open gap must run its retry budget out).
  // Bounded by construction: maxRetries * retryTimeout ticks degrade the
  // last gap.
  void settle() {
    const auto& o = mon->options();
    const std::uint64_t bound =
        (static_cast<std::uint64_t>(o.maxRetries) + 1) * o.retryTimeout + 2;
    for (std::uint64_t i = 0; i < bound && mon->hasActiveGaps(); ++i) {
      mon->tick();
    }
  }

  void installNackHook() {
    Session* sp = this;
    mon->onNack([sp](int p, std::uint64_t lo, std::uint64_t hi) {
      std::ostringstream os;
      os << "NACK " << sp->tenant << ' ' << sp->id << ' ' << p << ' ' << lo
         << ' ' << hi;
      sp->pendingNacks.push_back(os.str());
    });
  }
};

struct Engine::Cmd {
  std::string payload;
  int origin = 0;
  Session* session = nullptr;
};

struct Engine::Impl {
  struct Pending {
    std::string payload;
    int origin = 0;
  };

  std::vector<Pending> inbox;
  // Key = "tenant/id". std::map for deterministic iteration order — the
  // manifest, the ladder, and the idle sweep all walk it.
  std::map<std::string, std::unique_ptr<Session>> sessions;
  std::map<std::string, std::size_t> tenantSessions;
  // Delta-manifest bookkeeping since the last captureCheckpoint (or
  // restore): session keys touched (over-marking is harmless — an unchanged
  // session in a delta still restores bit-exactly) and keys erased. Both
  // are only mutated in the single-threaded admission/sweep phases.
  std::set<std::string> dirty;
  std::set<std::string> removed;
  // Cumulative per-tenant counters; never forgets a tenant.
  std::map<std::string, TenantStats> tenantStats;
};

Engine::Engine(EngineOptions options) : options_(options), impl_(new Impl) {
  if (options_.shards < 1) options_.shards = 1;
}

Engine::~Engine() { delete impl_; }

void Engine::submit(std::string payload, int origin) {
  ++stats_.framesAccepted;
  impl_->inbox.push_back({std::move(payload), origin});
}

std::size_t Engine::openSessions() const { return impl_->sessions.size(); }

bool Engine::consumeCheckpointRequest() {
  const bool r = checkpointRequested_;
  checkpointRequested_ = false;
  return r;
}

void Engine::pump(std::vector<Response>& out, par::Pool* pool) {
  const std::uint64_t pumpIndex = stats_.pumps;
  const int S = options_.shards;
  std::vector<std::vector<Cmd>> shardCmds(static_cast<std::size_t>(S));
  std::vector<Response> early;         // admission rejects, arrival order
  std::vector<Impl::Pending> central;  // STATS/CHECKPOINT/SHUTDOWN/SYNC
  std::map<std::string, std::uint64_t> rateUsed;  // per tenant, this pump

  // ---- Admission (single-threaded, arrival order) ----
  for (Impl::Pending& pend : impl_->inbox) {
    Cursor c(pend.payload);
    const std::string_view verb = c.token();
    if (verb == "STATS" || verb == "CHECKPOINT" || verb == "SHUTDOWN" ||
        verb == "SYNC") {
      central.push_back(std::move(pend));
      continue;
    }
    const bool sessionVerb = verb == "OPEN" || verb == "EV" ||
                             verb == "EVB" || verb == "END" ||
                             verb == "TICK" || verb == "QUERY" ||
                             verb == "CLOSE";
    if (!sessionVerb) {
      early.push_back(
          {pend.origin, errPayload("bad-command", "-", "-", "unknown command")});
      ++stats_.protocolErrors;
      continue;
    }
    const std::string_view tenant = c.token();
    const std::string_view id = c.token();
    if (!validId(tenant) || !validId(id)) {
      early.push_back({pend.origin, errPayload("bad-argument", tenant, id,
                                               "malformed tenant/session id")});
      ++stats_.protocolErrors;
      continue;
    }
    const std::string key = makeKey(tenant, id);
    if (verb == "OPEN") {
      if (impl_->sessions.find(key) != impl_->sessions.end()) {
        early.push_back({pend.origin, errPayload("duplicate-session", tenant,
                                                 id, "session already open")});
        ++stats_.protocolErrors;
        continue;
      }
      if (options_.maxSessions != 0 &&
          impl_->sessions.size() >= options_.maxSessions) {
        early.push_back({pend.origin,
                         errPayload("admission-global-cap", tenant, id,
                                    "global session cap reached, retry")});
        ++stats_.admissionRejects;
        ++impl_->tenantStats[std::string(tenant)].admissionRejects;
        continue;
      }
      const auto tc = impl_->tenantSessions.find(std::string(tenant));
      if (options_.maxSessionsPerTenant != 0 &&
          tc != impl_->tenantSessions.end() &&
          tc->second >= options_.maxSessionsPerTenant) {
        early.push_back({pend.origin,
                         errPayload("admission-tenant-cap", tenant, id,
                                    "tenant session cap reached, retry")});
        ++stats_.admissionRejects;
        ++impl_->tenantStats[std::string(tenant)].admissionRejects;
        continue;
      }
      if (memLevel_ >= 1) {
        early.push_back({pend.origin,
                         errPayload("admission-mem", tenant, id,
                                    "memory watermark reached, retry")});
        ++stats_.admissionRejects;
        ++impl_->tenantStats[std::string(tenant)].admissionRejects;
        continue;
      }
      try {
        const int processes =
            static_cast<int>(c.integer("processes", 1, kMaxProcesses));
        long long prio = 0;
        if (!c.atEnd()) {
          const std::string_view kw = c.token();
          GPD_INPUT_CHECK(kw == "prio",
                          "unexpected OPEN argument '" << kw << "'");
          prio = c.integer("prio", 0, kMaxPrio);
          GPD_INPUT_CHECK(c.atEnd(), "trailing bytes after OPEN");
        }
        Session* sess = openSession(tenant, id, processes, prio, pumpIndex);
        shardCmds[static_cast<std::size_t>(sess->shard)].push_back(
            {std::move(pend.payload), pend.origin, sess});
      } catch (const gpd::InputError& e) {
        early.push_back(
            {pend.origin, errPayload("bad-argument", tenant, id, e.what())});
        ++stats_.protocolErrors;
      }
      continue;
    }
    const auto it = impl_->sessions.find(key);
    if (it == impl_->sessions.end()) {
      early.push_back({pend.origin, errPayload("unknown-session", tenant, id,
                                               "no such session")});
      ++stats_.protocolErrors;
      continue;
    }
    if (options_.tenantRateBytesPerPump != 0 &&
        (verb == "EV" || verb == "EVB")) {
      std::uint64_t& used = rateUsed[std::string(tenant)];
      if (used + pend.payload.size() > options_.tenantRateBytesPerPump) {
        early.push_back({pend.origin,
                         errPayload("rate-limited", tenant, id,
                                    "tenant byte rate exceeded, retry")});
        ++stats_.rateLimited;
        ++impl_->tenantStats[std::string(tenant)].rateLimited;
        continue;
      }
      used += pend.payload.size();
    }
    Session* sess = it->second.get();
    if (verb == "EV" || verb == "EVB") {
      impl_->tenantStats[sess->tenant].evBytes += pend.payload.size();
    }
    impl_->dirty.insert(key);
    shardCmds[static_cast<std::size_t>(sess->shard)].push_back(
        {std::move(pend.payload), pend.origin, sess});
  }
  impl_->inbox.clear();

  // ---- Sharded session work (optionally on the pool) ----
  std::vector<ShardAcc> accs(static_cast<std::size_t>(S));
  auto processShard = [&](int sIdx) {
    ShardAcc& acc = accs[static_cast<std::size_t>(sIdx)];
    for (Cmd& cmd : shardCmds[static_cast<std::size_t>(sIdx)]) {
      Session& s = *cmd.session;
      const std::uint64_t before = s.approxBytes;
      try {
        dispatch(cmd, acc, pumpIndex);
      } catch (const gpd::InputError& e) {
        acc.out.push_back({cmd.origin, errPayload("bad-argument", s.tenant,
                                                  s.id, e.what())});
        ++acc.protoErrors;
      } catch (const gpd::CheckFailure&) {
        // A client payload drove the session into an internal-invariant
        // violation (e.g. vector clocks inconsistent with their sequence
        // numbers). The session is poisoned: quarantine it with an explicit
        // Degraded verdict instead of crashing the whole service.
        if (!s.closed) s.shed(acc, "internal-error");
      }
      s.approxBytes = s.estimateBytes();
      acc.bytesDelta += static_cast<long long>(s.approxBytes) -
                        static_cast<long long>(before);
    }
  };
  if (pool != nullptr && pool->threads() > 1 && S > 1) {
    const int T = pool->threads();
    pool->run([&](int w) {
      for (int sIdx = w; sIdx < S; sIdx += T) processShard(sIdx);
    });
  } else {
    for (int sIdx = 0; sIdx < S; ++sIdx) processShard(sIdx);
  }

  // ---- Deterministic merge ----
  for (Response& r : early) out.push_back(std::move(r));
  for (ShardAcc& acc : accs) {
    for (Response& r : acc.out) out.push_back(std::move(r));
    stats_.notificationsDelivered += acc.delivered;
    stats_.nacksEmitted += acc.nacks;
    stats_.detections += acc.detections;
    stats_.protocolErrors += acc.protoErrors;
    stats_.sessionsClosed += acc.closed;
    stats_.sessionsShedBudget += acc.shedBudget;
    for (const auto& [tenant, n] : acc.tenantShedBudget) {
      impl_->tenantStats[tenant].shedBudget += n;
    }
    totalBytes_ = static_cast<std::uint64_t>(
        static_cast<long long>(totalBytes_) + acc.bytesDelta);
  }

  // ---- Post-pump sweep (single-threaded) ----
  eraseClosedSessions();
  sweepIdle(out, pumpIndex);
  runLadder(out);
  updateMemLevel();

  // Central commands answer last, after the pump's full effect — a SYNC
  // response therefore proves every prior command (and the ladder's
  // reaction to it) is visible, which is what the lockstep harness needs.
  for (Impl::Pending& pend : central) {
    Cursor c(pend.payload);
    const std::string_view verb = c.token();
    if (verb == "STATS") {
      const std::string_view fmt = c.token();
      if (fmt.empty() || fmt == "json") {
        out.push_back({pend.origin, "STATS " + statsJson()});
      } else if (fmt == "text") {
        out.push_back({pend.origin, "STATS " + statsText()});
      } else {
        out.push_back({pend.origin, errPayload("bad-argument", "-", "-",
                                               "unknown STATS format")});
        ++stats_.protocolErrors;
      }
    } else if (verb == "CHECKPOINT") {
      checkpointRequested_ = true;
      out.push_back({pend.origin, "OK CHECKPOINT"});
    } else if (verb == "SHUTDOWN") {
      shutdownRequested_ = true;
      out.push_back({pend.origin, "OK SHUTDOWN draining"});
    } else {  // SYNC
      const std::string_view token = c.token();
      if (!validId(token)) {
        out.push_back({pend.origin, errPayload("bad-argument", "-", "-",
                                               "malformed SYNC token")});
        ++stats_.protocolErrors;
      } else {
        lastSyncToken_ = std::string(token);
        std::string reply = "SYNC ";
        reply.append(token);
        out.push_back({pend.origin, std::move(reply)});
      }
    }
  }

  ++stats_.pumps;
  GPD_OBS_COUNTER_ADD("gpdd_pumps", 1);
  GPD_OBS_GAUGE_SET("gpdd_sessions_open", impl_->sessions.size());
  GPD_OBS_GAUGE_SET("gpdd_mem_bytes", totalBytes_);
  GPD_OBS_GAUGE_SET("gpdd_mem_level", memLevel_);
}

Engine::Session* Engine::openSession(std::string_view tenant,
                                     std::string_view id, int processes,
                                     long long prio,
                                     std::uint64_t pumpIndex) {
  auto sess = std::make_unique<Session>();
  Session* sp = sess.get();
  sp->tenant = std::string(tenant);
  sp->id = std::string(id);
  sp->processes = processes;
  sp->prio = prio;
  sp->shard = static_cast<int>(shardHash(tenant, id) %
                               static_cast<std::uint32_t>(options_.shards));
  sp->lastActivityPump = pumpIndex;
  if (options_.sessionMaxCombinations != 0 || options_.sessionBudgetMs != 0) {
    control::BudgetLimits limits;
    limits.maxCombinations = options_.sessionMaxCombinations;
    limits.deadlineMillis = options_.sessionBudgetMs;
    sp->budget = std::make_unique<control::Budget>(limits);
  }
  sp->mon = std::make_unique<MonitorSession>(processes, options_.session);
  sp->installNackHook();
  sp->approxBytes = sp->estimateBytes();
  totalBytes_ += sp->approxBytes;
  ++impl_->tenantSessions[sp->tenant];
  ++impl_->tenantStats[sp->tenant].sessionsOpened;
  ++stats_.sessionsOpened;
  GPD_OBS_COUNTER_ADD("gpdd_sessions_opened", 1);
  const std::string key = makeKey(tenant, id);
  impl_->dirty.insert(key);
  impl_->removed.erase(key);
  impl_->sessions.emplace(key, std::move(sess));
  return sp;
}

void Engine::dispatch(Cmd& cmd, ShardAcc& acc, std::uint64_t pumpIndex) {
  Session& s = *cmd.session;
  s.origin = cmd.origin;
  s.lastActivityPump = pumpIndex;
  Cursor c(cmd.payload);
  const std::string_view verb = c.token();
  if (verb == "OPEN") {
    acc.out.push_back({cmd.origin, "OK OPEN " + s.tenant + " " + s.id});
    return;
  }
  if (s.closed) {
    // The session was shed earlier in this shard's queue; later commands in
    // the same pump see the same answer a next-pump command would.
    acc.out.push_back({cmd.origin, errPayload("unknown-session", s.tenant,
                                              s.id, "no such session")});
    ++acc.protoErrors;
    return;
  }
  c.token();  // tenant — validated at admission
  c.token();  // id
  if (verb == "EV") {
    const int p = static_cast<int>(c.integer("process", 0, s.processes - 1));
    const std::uint64_t seq =
        static_cast<std::uint64_t>(c.integer("seq", 0, kMaxSeq));
    std::vector<int> clock(static_cast<std::size_t>(s.processes));
    for (int i = 0; i < s.processes; ++i) {
      clock[static_cast<std::size_t>(i)] = static_cast<int>(
          c.integer("clock", std::numeric_limits<int>::min(),
                    std::numeric_limits<int>::max()));
    }
    GPD_INPUT_CHECK(c.atEnd(), "trailing bytes after EV clock");
    deliverOne(s, p, seq, std::move(clock), acc);
  } else if (verb == "EVB") {
    const int p = static_cast<int>(c.integer("process", 0, s.processes - 1));
    const std::uint64_t first =
        static_cast<std::uint64_t>(c.integer("firstSeq", 0, kMaxSeq));
    const long long count = c.integer("count", 0, kMaxBatch);
    for (long long i = 0; i < count; ++i) {
      std::vector<int> clock(static_cast<std::size_t>(s.processes));
      for (int j = 0; j < s.processes; ++j) {
        clock[static_cast<std::size_t>(j)] = static_cast<int>(
            c.integer("clock", std::numeric_limits<int>::min(),
                      std::numeric_limits<int>::max()));
      }
      deliverOne(s, p, first + static_cast<std::uint64_t>(i),
                 std::move(clock), acc);
      if (s.closed) return;  // shed mid-batch (budget): stop parsing
    }
    GPD_INPUT_CHECK(c.atEnd(), "trailing bytes after EVB batch");
  } else if (verb == "END") {
    const int p = static_cast<int>(c.integer("process", 0, s.processes - 1));
    const std::uint64_t count =
        static_cast<std::uint64_t>(c.integer("count", 0, kMaxSeq));
    GPD_INPUT_CHECK(c.atEnd(), "trailing bytes after END");
    s.mon->announceEnd(p, count);
    s.flushNacks(acc);
  } else if (verb == "TICK") {
    long long n = 1;
    if (!c.atEnd()) n = c.integer("ticks", 1, kMaxTicks);
    GPD_INPUT_CHECK(c.atEnd(), "trailing bytes after TICK");
    for (long long i = 0; i < n; ++i) s.mon->tick();
    s.flushNacks(acc);
  } else if (verb == "QUERY") {
    GPD_INPUT_CHECK(c.atEnd(), "trailing bytes after QUERY");
    acc.out.push_back({cmd.origin, s.verdictPayload(false, false)});
  } else {  // CLOSE — the only remaining admitted verb
    GPD_INPUT_CHECK(c.atEnd(), "trailing bytes after CLOSE");
    s.settle();
    s.pendingNacks.clear();  // the client is leaving; NACKs are moot
    acc.out.push_back({cmd.origin, s.verdictPayload(true, false)});
    s.closed = true;
    ++acc.closed;
  }
}

void Engine::deliverOne(Session& s, int p, std::uint64_t seq,
                        std::vector<int> clock, ShardAcc& acc) {
  if (s.budget != nullptr && !s.budget->chargeCombination()) {
    ++acc.shedBudget;
    ++acc.tenantShedBudget[s.tenant];
    GPD_OBS_COUNTER_ADD("gpdd_shed_budget", 1);
    std::string reason = "budget-";
    reason += control::toString(s.budget->reason());
    s.shed(acc, reason);
    return;
  }
  if (s.budget != nullptr) ++s.budgetCharged;
  Delivery d = Delivery::Rejected;
  for (int attempt = 0; attempt < 64; ++attempt) {
    d = s.mon->deliver(p, seq, std::vector<int>(clock));
    if (d != Delivery::Rejected) break;
    s.mon->tick();  // let retry timers / eliminations make room
  }
  if (d == Delivery::Rejected) {
    // Queue persistently full under backpressure: the stream cannot make
    // progress without unbounded memory, so degrade it and move on.
    s.mon->degradeStream(p);
    d = s.mon->deliver(p, seq, std::vector<int>(clock));
  }
  if (d != Delivery::Duplicate) ++acc.delivered;
  s.emitDetectIfNew(acc);
  s.flushNacks(acc);
}

void Engine::eraseClosedSessions() {
  for (auto it = impl_->sessions.begin(); it != impl_->sessions.end();) {
    if (it->second->closed) {
      closeBookkeeping(*it->second);
      it = impl_->sessions.erase(it);
    } else {
      ++it;
    }
  }
}

void Engine::closeBookkeeping(Session& s) {
  auto tc = impl_->tenantSessions.find(s.tenant);
  if (tc != impl_->tenantSessions.end() && --tc->second == 0) {
    impl_->tenantSessions.erase(tc);
  }
  // Every session erasure funnels through here: move the key from the dirty
  // set to the removed set so the next delta manifest records the absence.
  const std::string key = makeKey(s.tenant, s.id);
  impl_->dirty.erase(key);
  impl_->removed.insert(key);
  ++impl_->tenantStats[s.tenant].sessionsClosed;
  GPD_OBS_COUNTER_ADD("gpdd_sessions_closed", 1);
}

void Engine::sweepIdle(std::vector<Response>& out, std::uint64_t pumpIndex) {
  if (options_.idleTimeoutPumps == 0) return;
  for (auto it = impl_->sessions.begin(); it != impl_->sessions.end();) {
    Session& s = *it->second;
    if (pumpIndex - s.lastActivityPump >= options_.idleTimeoutPumps) {
      out.push_back({s.origin, "SHED " + s.tenant + " " + s.id + " idle"});
      out.push_back({s.origin, s.verdictPayload(true, true)});
      totalBytes_ -= std::min(totalBytes_, s.approxBytes);
      ++stats_.sessionsShedIdle;
      ++impl_->tenantStats[s.tenant].shedIdle;
      ++stats_.sessionsClosed;
      GPD_OBS_COUNTER_ADD("gpdd_shed_idle", 1);
      closeBookkeeping(s);
      it = impl_->sessions.erase(it);
    } else {
      ++it;
    }
  }
}

void Engine::runLadder(std::vector<Response>& out) {
  const std::uint64_t W = options_.memWatermarkBytes;
  if (W == 0) return;
  const std::uint64_t mid = W / 100 * 85 + W % 100 * 85 / 100;

  // Rung 2 (≥ 0.85·W): degrade the heaviest tenants in place. Reorder
  // buffers are dropped and monitor queues truncated — memory comes back
  // now, verdicts widen to Degraded, the sessions stay open.
  if (totalBytes_ >= mid) {
    std::map<std::string, std::uint64_t> tenantBytes;
    for (const auto& [key, s] : impl_->sessions) {
      tenantBytes[s->tenant] += s->approxBytes;
    }
    std::vector<std::pair<std::uint64_t, std::string>> tenants;
    tenants.reserve(tenantBytes.size());
    for (const auto& [t, b] : tenantBytes) tenants.push_back({b, t});
    std::sort(tenants.begin(), tenants.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (const auto& [tBytes, tenant] : tenants) {
      if (totalBytes_ < mid) break;
      std::vector<Session*> members;
      for (const auto& [key, s] : impl_->sessions) {
        if (s->tenant == tenant) members.push_back(s.get());
      }
      std::sort(members.begin(), members.end(),
                [](const Session* a, const Session* b) {
                  if (a->approxBytes != b->approxBytes) {
                    return a->approxBytes > b->approxBytes;
                  }
                  return a->id < b->id;
                });
      for (Session* s : members) {
        if (totalBytes_ < mid) break;
        if (s->mon->shedMemory(4) == 0) continue;
        const std::uint64_t before = s->approxBytes;
        s->approxBytes = s->estimateBytes();
        totalBytes_ -= std::min(totalBytes_, before - s->approxBytes);
        out.push_back(
            {s->origin, "DEGRADE " + s->tenant + " " + s->id + " memory"});
        ++stats_.sessionsDegradedMem;
        ++impl_->tenantStats[s->tenant].degradedMem;
        impl_->dirty.insert(makeKey(s->tenant, s->id));
        GPD_OBS_COUNTER_ADD("gpdd_degraded_mem", 1);
      }
    }
  }

  // Rung 3 (≥ W): shed lowest-priority sessions outright until usage drops
  // below the degrade threshold.
  if (totalBytes_ >= W) {
    std::vector<Session*> order;
    order.reserve(impl_->sessions.size());
    for (const auto& [key, s] : impl_->sessions) order.push_back(s.get());
    std::sort(order.begin(), order.end(),
              [](const Session* a, const Session* b) {
                if (a->prio != b->prio) return a->prio < b->prio;
                if (a->approxBytes != b->approxBytes) {
                  return a->approxBytes > b->approxBytes;
                }
                return makeKey(a->tenant, a->id) < makeKey(b->tenant, b->id);
              });
    for (Session* s : order) {
      if (totalBytes_ < mid) break;
      out.push_back(
          {s->origin, "SHED " + s->tenant + " " + s->id + " memory"});
      out.push_back({s->origin, s->verdictPayload(true, true)});
      totalBytes_ -= std::min(totalBytes_, s->approxBytes);
      ++stats_.sessionsShedMem;
      ++impl_->tenantStats[s->tenant].shedMem;
      ++stats_.sessionsClosed;
      GPD_OBS_COUNTER_ADD("gpdd_shed_mem", 1);
      closeBookkeeping(*s);
      impl_->sessions.erase(makeKey(s->tenant, s->id));
    }
  }
}

void Engine::updateMemLevel() {
  const std::uint64_t W = options_.memWatermarkBytes;
  if (W == 0) {
    memLevel_ = 0;
    return;
  }
  const std::uint64_t lo = W / 100 * 70 + W % 100 * 70 / 100;
  const std::uint64_t mid = W / 100 * 85 + W % 100 * 85 / 100;
  if (totalBytes_ >= W) {
    memLevel_ = 3;
  } else if (totalBytes_ >= mid) {
    memLevel_ = 2;
  } else if (totalBytes_ >= lo) {
    memLevel_ = 1;
  } else {
    memLevel_ = 0;
  }
}

void Engine::drain(std::vector<Response>& out) {
  for (auto& [key, s] : impl_->sessions) {
    s->settle();
    s->pendingNacks.clear();
    out.push_back({s->origin, s->verdictPayload(true, false)});
    ++stats_.sessionsClosed;
    closeBookkeeping(*s);
  }
  impl_->sessions.clear();
  impl_->tenantSessions.clear();
  totalBytes_ = 0;
  updateMemLevel();
}

void Engine::writeManifest(std::ostream& os) const {
  // Legacy whole-service checkpoint: always a full manifest at the current
  // epoch, never advancing the chain — write → restore → write round-trips
  // to identical bytes, which the recovery property suite depends on.
  writeManifestText(os, false, checkpointEpoch_, 0, 0);
  GPD_CHECK_MSG(os.good(), "manifest write failed");
}

void Engine::writeManifestText(std::ostream& os, bool delta,
                               std::uint64_t epoch, std::uint64_t parentEpoch,
                               std::uint32_t parentChecksum) const {
  os << kManifestMagic << ' ' << kManifestVersion << '\n';
  os << "kind " << (delta ? "delta" : "full") << '\n';
  os << "epoch " << epoch << '\n';
  if (delta) {
    os << "parent " << parentEpoch << ' ' << parentChecksum << '\n';
  }
  const EngineStats& st = stats_;
  os << "stats " << st.framesAccepted << ' ' << st.sessionsOpened << ' '
     << st.sessionsClosed << ' ' << st.sessionsShedMem << ' '
     << st.sessionsShedBudget << ' ' << st.sessionsShedIdle << ' '
     << st.sessionsDegradedMem << ' ' << st.admissionRejects << ' '
     << st.rateLimited << ' ' << st.protocolErrors << ' '
     << st.notificationsDelivered << ' ' << st.nacksEmitted << ' '
     << st.detections << ' ' << st.pumps << '\n';
  os << "last-sync " << (lastSyncToken_.empty() ? 0 : 1);
  if (!lastSyncToken_.empty()) os << ' ' << lastSyncToken_;
  os << '\n';
  // The per-tenant table is small (one line per tenant ever seen) so both
  // kinds carry it wholesale; only session records are differential.
  os << "tenants " << impl_->tenantStats.size() << '\n';
  for (const auto& [name, t] : impl_->tenantStats) {
    os << "tenant " << name << ' ' << t.sessionsOpened << ' '
       << t.sessionsClosed << ' ' << t.evBytes << ' ' << t.shedMem << ' '
       << t.shedBudget << ' ' << t.shedIdle << ' ' << t.degradedMem << ' '
       << t.rateLimited << ' ' << t.admissionRejects << '\n';
  }
  if (delta) {
    os << "removed " << impl_->removed.size() << '\n';
    for (const std::string& key : impl_->removed) {
      const std::size_t slash = key.find('/');
      os << "gone " << key.substr(0, slash) << ' ' << key.substr(slash + 1)
         << '\n';
    }
  }
  std::size_t count = 0;
  if (delta) {
    for (const std::string& key : impl_->dirty) {
      if (impl_->sessions.find(key) != impl_->sessions.end()) ++count;
    }
  } else {
    count = impl_->sessions.size();
  }
  os << "sessions " << count << '\n';
  for (const auto& [key, s] : impl_->sessions) {
    if (delta && impl_->dirty.find(key) == impl_->dirty.end()) continue;
    os << "session " << s->tenant << ' ' << s->id << ' ' << s->prio << ' '
       << s->processes << ' ' << s->lastActivityPump << ' '
       << s->budgetCharged << ' ' << int(s->detectNotified) << '\n';
    io::writeCheckpoint(os, s->mon->snapshot());
  }
  os << "manifest-end\n";
}

bool Engine::readManifestText(std::istream& is) {
  ManifestReader r(is);
  GPD_INPUT_CHECK(r.word("magic") == kManifestMagic,
                  "not a gpdd-manifest stream");
  const long long version = r.integer("version", 0, 1 << 20);
  GPD_INPUT_CHECK(version == kManifestVersion,
                  "unsupported manifest version " << version);
  r.keyword("kind");
  const std::string kind = r.word("manifest kind");
  const bool delta = kind == "delta";
  GPD_INPUT_CHECK(delta || kind == "full",
                  "manifest: unknown kind '" << kind << "'");
  r.keyword("epoch");
  const std::uint64_t epoch = r.counter("epoch");
  if (delta) {
    r.keyword("parent");
    const std::uint64_t parentEpoch = r.counter("parent epoch");
    const std::uint64_t parentChecksum = r.counter("parent checksum");
    GPD_INPUT_CHECK(hasCapture_,
                    "manifest: delta with no prior manifest to chain from");
    GPD_INPUT_CHECK(
        parentEpoch == checkpointEpoch_ &&
            parentChecksum == lastCaptureChecksum_,
        "manifest: delta parent (epoch "
            << parentEpoch << ", checksum " << parentChecksum
            << ") does not match the restored chain (epoch "
            << checkpointEpoch_ << ", checksum " << lastCaptureChecksum_
            << ") — corrupted, reordered, or missing link");
    GPD_INPUT_CHECK(epoch > parentEpoch,
                    "manifest: delta epoch does not advance past its parent");
  } else {
    GPD_INPUT_CHECK(impl_->sessions.empty() && stats_.pumps == 0,
                    "manifest: full manifest applied to a non-fresh engine");
  }
  r.keyword("stats");
  EngineStats& st = stats_;
  st.framesAccepted = r.counter("stats");
  st.sessionsOpened = r.counter("stats");
  st.sessionsClosed = r.counter("stats");
  st.sessionsShedMem = r.counter("stats");
  st.sessionsShedBudget = r.counter("stats");
  st.sessionsShedIdle = r.counter("stats");
  st.sessionsDegradedMem = r.counter("stats");
  st.admissionRejects = r.counter("stats");
  st.rateLimited = r.counter("stats");
  st.protocolErrors = r.counter("stats");
  st.notificationsDelivered = r.counter("stats");
  st.nacksEmitted = r.counter("stats");
  st.detections = r.counter("stats");
  st.pumps = r.counter("stats");
  r.keyword("last-sync");
  const long long hasSync = r.integer("last-sync flag", 0, 1);
  if (hasSync != 0) {
    const std::string tok = r.word("last-sync token");
    GPD_INPUT_CHECK(validId(tok), "manifest: malformed last-sync token");
    lastSyncToken_ = tok;
  } else {
    lastSyncToken_.clear();
  }
  r.keyword("tenants");
  const long long tenantCount = r.integer("tenant count", 0, 1 << 22);
  impl_->tenantStats.clear();
  for (long long i = 0; i < tenantCount; ++i) {
    r.keyword("tenant");
    const std::string name = r.word("tenant name");
    GPD_INPUT_CHECK(validId(name), "manifest: malformed tenant name");
    TenantStats& t = impl_->tenantStats[name];
    t.sessionsOpened = r.counter("tenant stats");
    t.sessionsClosed = r.counter("tenant stats");
    t.evBytes = r.counter("tenant stats");
    t.shedMem = r.counter("tenant stats");
    t.shedBudget = r.counter("tenant stats");
    t.shedIdle = r.counter("tenant stats");
    t.degradedMem = r.counter("tenant stats");
    t.rateLimited = r.counter("tenant stats");
    t.admissionRejects = r.counter("tenant stats");
  }
  if (delta) {
    r.keyword("removed");
    const long long removedCount = r.integer("removed count", 0, 1 << 22);
    for (long long i = 0; i < removedCount; ++i) {
      r.keyword("gone");
      const std::string tenant = r.word("tenant");
      const std::string id = r.word("session id");
      GPD_INPUT_CHECK(validId(tenant) && validId(id),
                      "manifest: malformed removed session id");
      // Erase-if-present: a session opened and closed inside one epoch is
      // reported gone without ever appearing in the parent.
      impl_->sessions.erase(makeKey(tenant, id));
    }
  }
  r.keyword("sessions");
  const long long count = r.integer("session count", 0, 1 << 22);
  for (long long i = 0; i < count; ++i) {
    r.keyword("session");
    const std::string tenant = r.word("tenant");
    const std::string id = r.word("session id");
    GPD_INPUT_CHECK(validId(tenant) && validId(id),
                    "manifest: malformed tenant/session id");
    const long long prio = r.integer("prio", 0, kMaxPrio);
    const int processes =
        static_cast<int>(r.integer("processes", 1, kMaxProcesses));
    const std::uint64_t lastActivityPump = r.counter("lastActivityPump");
    const std::uint64_t budgetCharged = r.counter("budgetCharged");
    const bool detectNotified = r.integer("detectNotified", 0, 1) != 0;
    const monitor::SessionSnapshot snap = io::readCheckpoint(is);
    GPD_INPUT_CHECK(snap.monitor.processes == processes,
                    "manifest: session checkpoint process count mismatch");
    const std::string key = makeKey(tenant, id);
    if (delta) {
      impl_->sessions.erase(key);  // dirty record replaces it wholesale
    } else {
      GPD_INPUT_CHECK(impl_->sessions.find(key) == impl_->sessions.end(),
                      "manifest: duplicate session '" << key << "'");
    }
    auto sess = std::make_unique<Session>();
    Session* sp = sess.get();
    sp->tenant = tenant;
    sp->id = id;
    sp->processes = processes;
    sp->prio = prio;
    sp->shard = static_cast<int>(
        shardHash(tenant, id) % static_cast<std::uint32_t>(options_.shards));
    sp->lastActivityPump = lastActivityPump;
    sp->budgetCharged = budgetCharged;
    sp->detectNotified = detectNotified;
    sp->mon = std::make_unique<MonitorSession>(
        MonitorSession::restore(snap, options_.session));
    sp->installNackHook();
    if (options_.sessionMaxCombinations != 0 || options_.sessionBudgetMs != 0) {
      control::BudgetLimits limits;
      limits.maxCombinations = options_.sessionMaxCombinations;
      limits.deadlineMillis = options_.sessionBudgetMs;
      sp->budget = std::make_unique<control::Budget>(limits);
      if (options_.sessionMaxCombinations != 0) {
        // Replay the meter: a combination limit is deterministic state, so
        // the restored budget must stand exactly where the saved one did.
        GPD_INPUT_CHECK(budgetCharged <= options_.sessionMaxCombinations,
                        "manifest: budgetCharged exceeds the session limit");
        for (std::uint64_t n = 0; n < budgetCharged; ++n) {
          sp->budget->chargeCombination();
        }
      }
    }
    sp->approxBytes = sp->estimateBytes();
    impl_->sessions.emplace(key, std::move(sess));
  }
  r.keyword("manifest-end");
  // Rebuild the derived aggregates wholesale — cheap (one pass over the
  // session map) and immune to patch-accounting drift.
  impl_->tenantSessions.clear();
  totalBytes_ = 0;
  for (const auto& [key, s] : impl_->sessions) {
    ++impl_->tenantSessions[s->tenant];
    totalBytes_ += s->approxBytes;
  }
  updateMemLevel();
  impl_->dirty.clear();
  impl_->removed.clear();
  checkpointEpoch_ = epoch;
  hasCapture_ = true;
  return delta;
}

std::unique_ptr<Engine> Engine::restoreManifest(std::istream& is,
                                                EngineOptions options) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return restoreManifestText(buf.str(), options);
}

std::unique_ptr<Engine> Engine::restoreManifestText(const std::string& text,
                                                    EngineOptions options) {
  auto eng = std::make_unique<Engine>(options);
  std::istringstream is(text);
  const bool delta = eng->readManifestText(is);
  GPD_INPUT_CHECK(!delta,
                  "cannot restore from a delta manifest without the full "
                  "manifest it chains from");
  eng->lastCaptureChecksum_ = fnv1a32(text);
  GPD_OBS_COUNTER_ADD("gpdd_recoveries", 1);
  return eng;
}

CheckpointCapture Engine::captureCheckpoint(bool preferDelta) {
  CheckpointCapture cap;
  cap.delta = preferDelta && hasCapture_;
  cap.epoch = checkpointEpoch_ + 1;
  if (cap.delta) {
    for (const std::string& key : impl_->dirty) {
      if (impl_->sessions.find(key) != impl_->sessions.end()) ++cap.sessions;
    }
  } else {
    cap.sessions = impl_->sessions.size();
  }
  std::ostringstream os;
  writeManifestText(os, cap.delta, cap.epoch, checkpointEpoch_,
                    lastCaptureChecksum_);
  GPD_CHECK_MSG(os.good(), "manifest capture failed");
  cap.text = os.str();
  cap.checksum = fnv1a32(cap.text);
  checkpointEpoch_ = cap.epoch;
  lastCaptureChecksum_ = cap.checksum;
  hasCapture_ = true;
  impl_->dirty.clear();
  impl_->removed.clear();
  GPD_OBS_COUNTER_ADD("gpdd_checkpoints_captured", 1);
  return cap;
}

void Engine::applyDeltaText(const std::string& text) {
  // On InputError the engine may hold a partially applied patch — callers
  // (chain recovery, replication) must discard it, never keep serving.
  std::istringstream is(text);
  const bool delta = readManifestText(is);
  GPD_INPUT_CHECK(delta, "applyDeltaText: manifest is not a delta");
  lastCaptureChecksum_ = fnv1a32(text);
  GPD_OBS_COUNTER_ADD("gpdd_deltas_applied", 1);
}

std::size_t Engine::dirtySessions() const {
  std::size_t n = 0;
  for (const std::string& key : impl_->dirty) {
    if (impl_->sessions.find(key) != impl_->sessions.end()) ++n;
  }
  return n;
}

const std::map<std::string, TenantStats>& Engine::tenantStats() const {
  return impl_->tenantStats;
}

SliceStats Engine::sliceStats() const {
  SliceStats sl;
  for (const auto& [key, s] : impl_->sessions) {
    if (s->closed) continue;
    const monitor::OnlineSlice* slice = s->mon->slice();
    if (slice == nullptr) continue;
    ++sl.sessions;
    const monitor::OnlineSliceStats st = slice->stats();
    sl.notifications += st.notifications;
    sl.resolved += st.resolved;
    sl.pending += st.pending;
    if (st.degraded) ++sl.degraded;
  }
  return sl;
}

void Engine::publishTenantMetrics() const {
#ifndef GPD_OBS_DISABLED
  for (const auto& [name, t] : impl_->tenantStats) {
    const auto live = impl_->tenantSessions.find(name);
    const std::string prefix = "gpdd_tenant_" + name;
    obs::registry()
        .gauge(prefix + "_sessions")
        .set(live == impl_->tenantSessions.end() ? 0 : live->second);
    obs::registry().gauge(prefix + "_ev_bytes").set(t.evBytes);
    obs::registry()
        .gauge(prefix + "_sheds")
        .set(t.shedMem + t.shedBudget + t.shedIdle);
    obs::registry().gauge(prefix + "_budget_exhausted").set(t.shedBudget);
  }
  const SliceStats sl = sliceStats();
  obs::registry().gauge("gpdd_slice_sessions").set(sl.sessions);
  obs::registry().gauge("gpdd_slice_notifications").set(sl.notifications);
  obs::registry().gauge("gpdd_slice_resolved").set(sl.resolved);
  obs::registry().gauge("gpdd_slice_pending").set(sl.pending);
  obs::registry().gauge("gpdd_slice_degraded").set(sl.degraded);
#endif
}

std::string Engine::statsJson() const {
  publishTenantMetrics();
  const EngineStats& st = stats_;
  std::ostringstream os;
  os << "{\"frames_accepted\":" << st.framesAccepted
     << ",\"sessions_open\":" << impl_->sessions.size()
     << ",\"sessions_opened\":" << st.sessionsOpened
     << ",\"sessions_closed\":" << st.sessionsClosed
     << ",\"shed_mem\":" << st.sessionsShedMem
     << ",\"shed_budget\":" << st.sessionsShedBudget
     << ",\"shed_idle\":" << st.sessionsShedIdle
     << ",\"degraded_mem\":" << st.sessionsDegradedMem
     << ",\"admission_rejects\":" << st.admissionRejects
     << ",\"rate_limited\":" << st.rateLimited
     << ",\"protocol_errors\":" << st.protocolErrors
     << ",\"notifications\":" << st.notificationsDelivered
     << ",\"nacks\":" << st.nacksEmitted
     << ",\"detections\":" << st.detections << ",\"pumps\":" << st.pumps
     << ",\"estimated_bytes\":" << totalBytes_
     << ",\"mem_level\":" << memLevel_
     << ",\"epoch\":" << checkpointEpoch_
     << ",\"dirty_sessions\":" << dirtySessions()
     << ",\"last_sync\":\"" << lastSyncToken_ << '"';
  const SliceStats sl = sliceStats();
  os << ",\"slice_sessions\":" << sl.sessions
     << ",\"slice_notifications\":" << sl.notifications
     << ",\"slice_resolved\":" << sl.resolved
     << ",\"slice_pending\":" << sl.pending
     << ",\"slice_degraded\":" << sl.degraded;
  if (!options_.buildInfo.empty()) {
    os << ",\"build\":{";
    bool firstLabel = true;
    for (const auto& [key, value] : options_.buildInfo) {
      if (!firstLabel) os << ',';
      firstLabel = false;
      os << '"' << key << "\":\"" << value << '"';
    }
    os << '}';
  }
  // "tenants" renders last so a first-occurrence scan for any global
  // counter key never lands on a per-tenant copy.
  os << ",\"tenants\":{";
  bool first = true;
  for (const auto& [name, t] : impl_->tenantStats) {
    if (!first) os << ',';
    first = false;
    const auto live = impl_->tenantSessions.find(name);
    os << '"' << name << "\":{\"sessions_open\":"
       << (live == impl_->tenantSessions.end() ? std::size_t{0} : live->second)
       << ",\"sessions_opened\":" << t.sessionsOpened
       << ",\"sessions_closed\":" << t.sessionsClosed
       << ",\"ev_bytes\":" << t.evBytes << ",\"shed_mem\":" << t.shedMem
       << ",\"shed_budget\":" << t.shedBudget
       << ",\"shed_idle\":" << t.shedIdle
       << ",\"degraded_mem\":" << t.degradedMem
       << ",\"rate_limited\":" << t.rateLimited
       << ",\"admission_rejects\":" << t.admissionRejects << '}';
  }
  os << "}}";
  return os.str();
}

std::string Engine::statsText() const {
  publishTenantMetrics();
  const EngineStats& st = stats_;
  std::ostringstream os;
  os << "gpdd stats\n"
     << "  frames-accepted " << st.framesAccepted << '\n'
     << "  sessions-open " << impl_->sessions.size() << '\n'
     << "  sessions-opened " << st.sessionsOpened << '\n'
     << "  sessions-closed " << st.sessionsClosed << '\n'
     << "  shed-mem " << st.sessionsShedMem << '\n'
     << "  shed-budget " << st.sessionsShedBudget << '\n'
     << "  shed-idle " << st.sessionsShedIdle << '\n'
     << "  degraded-mem " << st.sessionsDegradedMem << '\n'
     << "  admission-rejects " << st.admissionRejects << '\n'
     << "  rate-limited " << st.rateLimited << '\n'
     << "  protocol-errors " << st.protocolErrors << '\n'
     << "  notifications " << st.notificationsDelivered << '\n'
     << "  nacks " << st.nacksEmitted << '\n'
     << "  detections " << st.detections << '\n'
     << "  pumps " << st.pumps << '\n'
     << "  estimated-bytes " << totalBytes_ << '\n'
     << "  mem-level " << memLevel_ << '\n'
     << "  epoch " << checkpointEpoch_ << '\n'
     << "  dirty-sessions " << dirtySessions() << '\n'
     << "  last-sync " << (lastSyncToken_.empty() ? "-" : lastSyncToken_.c_str())
     << '\n';
  const SliceStats sl = sliceStats();
  os << "  slice-sessions " << sl.sessions << '\n'
     << "  slice-notifications " << sl.notifications << '\n'
     << "  slice-resolved " << sl.resolved << '\n'
     << "  slice-pending " << sl.pending << '\n'
     << "  slice-degraded " << sl.degraded << '\n';
  for (const auto& [key, value] : options_.buildInfo) {
    os << "  build-" << key << ' ' << value << '\n';
  }
  for (const auto& [name, t] : impl_->tenantStats) {
    const auto live = impl_->tenantSessions.find(name);
    os << "tenant " << name << " open="
       << (live == impl_->tenantSessions.end() ? std::size_t{0} : live->second)
       << " opened=" << t.sessionsOpened << " closed=" << t.sessionsClosed
       << " ev-bytes=" << t.evBytes << " shed-mem=" << t.shedMem
       << " shed-budget=" << t.shedBudget << " shed-idle=" << t.shedIdle
       << " degraded-mem=" << t.degradedMem << " rate-limited="
       << t.rateLimited << " admission-rejects=" << t.admissionRejects
       << '\n';
  }
  return os.str();
}

}  // namespace gpd::service
