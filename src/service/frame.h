// Length-prefixed framing for the gpdd service protocol.
//
// gpdd multiplexes thousands of tenant sessions over byte streams (a pipe
// pair or a UNIX socket), so the wire format has to make three guarantees a
// raw text stream cannot: (1) message boundaries survive arbitrary kernel
// read()/write() chunking, (2) a corrupted or truncated region damages only
// the frames it covers — the decoder *resynchronizes* at the next intact
// frame instead of desyncing forever, and (3) corruption is detected, never
// silently parsed (the chaos harness injects garbage bytes and truncated
// frames on purpose).
//
// Frame layout (all integers big-endian):
//
//   +------+------+----------+-----------------+
//   | "GPDF" (4B) | len (4B) | fnv1a32 (4B)    |  12-byte header
//   +------+------+----------+-----------------+
//   | payload: `len` bytes (a protocol command)|
//   +------------------------------------------+
//
// The checksum covers the payload only. A header whose magic, length bound,
// or checksum fails is treated as garbage: the decoder discards one byte and
// scans forward for the next "GPDF", counting what it threw away. Payloads
// are text commands (see engine.h for the grammar) and must not contain the
// magic string — the engine validates tenant/session identifiers to a
// charset that cannot form it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gpd::service {

// Hard payload bound: a header claiming more is corrupt (or hostile), not
// big. Large ingests use many frames (the EVB batch command), not one.
constexpr std::size_t kMaxFramePayload = 1 << 20;
constexpr std::size_t kFrameHeaderBytes = 12;

// FNV-1a 32-bit — tiny, dependency-free, and byte-order independent; this is
// corruption *detection* for the chaos harness, not cryptography.
std::uint32_t fnv1a32(std::string_view bytes);

// Wraps one payload in a frame. Throws gpd::InputError if the payload
// exceeds kMaxFramePayload.
std::string encodeFrame(std::string_view payload);

// Incremental decoder: feed() arbitrary byte chunks, then pop() complete
// payloads until it returns nullopt. Robust to garbage: bad magic, an
// oversize length, or a checksum mismatch discards bytes until the next
// plausible header. A frame truncated by EOF simply stays pending (the
// caller sees bytesPending() != 0 after the stream ends).
class FrameDecoder {
 public:
  void feed(std::string_view bytes) { buf_.append(bytes.data(), bytes.size()); }

  // Next complete, checksum-valid payload, or nullopt if none is buffered.
  std::optional<std::string> pop();

  // Diagnostics for the service metrics and the strict-protocol mode.
  std::uint64_t framesDecoded() const { return framesDecoded_; }
  std::uint64_t bytesDiscarded() const { return bytesDiscarded_; }
  std::uint64_t resyncs() const { return resyncs_; }
  std::size_t bytesPending() const { return buf_.size() - pos_; }

 private:
  void compact();

  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::uint64_t framesDecoded_ = 0;
  std::uint64_t bytesDiscarded_ = 0;
  std::uint64_t resyncs_ = 0;
};

}  // namespace gpd::service
