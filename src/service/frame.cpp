#include "service/frame.h"

#include "util/check.h"

namespace gpd::service {

namespace {

constexpr char kMagic[4] = {'G', 'P', 'D', 'F'};

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

std::uint32_t getU32(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
}

}  // namespace

std::uint32_t fnv1a32(std::string_view bytes) {
  std::uint32_t h = 2166136261u;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

std::string encodeFrame(std::string_view payload) {
  GPD_INPUT_CHECK(payload.size() <= kMaxFramePayload,
                  "frame payload of " << payload.size()
                                      << " bytes exceeds the "
                                      << kMaxFramePayload << "-byte bound");
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  putU32(out, fnv1a32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

std::optional<std::string> FrameDecoder::pop() {
  for (;;) {
    const std::size_t avail = buf_.size() - pos_;
    if (avail < kFrameHeaderBytes) {
      compact();
      return std::nullopt;
    }
    const char* p = buf_.data() + pos_;
    const bool magicOk = p[0] == kMagic[0] && p[1] == kMagic[1] &&
                         p[2] == kMagic[2] && p[3] == kMagic[3];
    const std::uint32_t len = magicOk ? getU32(p + 4) : 0;
    if (!magicOk || len > kMaxFramePayload) {
      // Garbage where a header should be: drop one byte, hunt for the next
      // magic (memchr-style scan keeps the common burst-of-garbage cheap).
      ++resyncs_;
      std::size_t skip = 1;
      while (pos_ + skip < buf_.size() &&
             buf_[pos_ + skip] != kMagic[0]) {
        ++skip;
      }
      bytesDiscarded_ += skip;
      pos_ += skip;
      continue;
    }
    if (avail < kFrameHeaderBytes + len) {
      compact();
      return std::nullopt;  // incomplete frame: wait for more bytes
    }
    std::string payload(buf_, pos_ + kFrameHeaderBytes, len);
    if (fnv1a32(payload) != getU32(p + 8)) {
      // Corrupt payload (or garbage that happened to spell the magic):
      // discard the header byte and resync. We deliberately do NOT skip the
      // claimed length — a corrupted length field must not be trusted to
      // jump over a genuine frame hiding inside it.
      ++resyncs_;
      ++bytesDiscarded_;
      ++pos_;
      continue;
    }
    pos_ += kFrameHeaderBytes + len;
    ++framesDecoded_;
    compact();
    return payload;
  }
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer, amortized O(1).
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

}  // namespace gpd::service
