// gpd::service replication — the record grammar and follower state machine
// behind gpdd's hot standby.
//
// The leader streams text records to one follower over the ordinary frame
// codec (service/frame.h). The stream *is* the replica: a snapshot of the
// leader's manifest, then every pump — commands tagged with their submitting
// origin — in execution order. Because the engine is deterministic in
// (options, payloads, pump boundaries), the follower replaying that stream
// holds a bit-identical engine, and at each leader checkpoint it captures
// its own and cross-checks (epoch, checksum) — any divergence is refused
// loudly rather than served silently.
//
// Record grammar (one record per frame payload):
//   RHELLO <version>
//   RSNAP <epoch> <checksum> <chunks>      full-manifest snapshot header
//   RCHUNK <i>\n<bytes>                    snapshot body, chunk i of chunks
//   RPUMP <pump> <n>                       pump block header, n commands
//   RCMD <origin>\n<payload>               one submitted command
//   RCKPT <pump> <full|delta> <epoch> <checksum>
//   RFLUSH <pump>                          leader acked responses <= pump
//
// The leader sends an RPUMP record for *every* pump, including empty ones
// (idle sweeps are pump-indexed, so empty pumps shape state too). That
// continuous stream doubles as the heartbeat: a follower that has seen
// silence past its failover deadline promotes itself.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "service/engine.h"

namespace gpd::service {

inline constexpr int kReplicationVersion = 1;
inline constexpr std::size_t kSnapshotChunkBytes = 512u * 1024u;

// One command replicated inside an RPUMP block.
struct ReplicatedCmd {
  int origin = 0;
  std::string payload;
};

// --- Leader-side record encoders ------------------------------------------
// Each capture*Record has a paired apply*Record below; srclint's
// gpd-checkpoint-symmetry check holds the two sides to the same field keys.

std::string captureHelloRecord();
std::vector<std::string> captureSnapshotRecord(const CheckpointCapture& cap);
std::vector<std::string> capturePumpRecord(
    std::uint64_t pump, const std::vector<ReplicatedCmd>& cmds);
std::string captureCkptRecord(std::uint64_t pump, const CheckpointCapture& cap);
std::string captureFlushRecord(std::uint64_t pump);

// --- Follower --------------------------------------------------------------

// Applies the leader's record stream to a local engine. consume() one frame
// payload at a time; promote() when the leader is gone. Throws
// gpd::InputError on protocol violations, chain breaks, or divergence
// (follower checkpoint != leader checkpoint) — a follower that cannot prove
// it matches the leader must not take over.
class ReplicationFollower {
 public:
  // `onCheckpoint` (optional) receives the follower's own capture at every
  // leader checkpoint record — the hook a host uses to keep its on-disk
  // ManifestLog in lockstep with the leader's cadence.
  explicit ReplicationFollower(
      EngineOptions options,
      std::function<void(const CheckpointCapture&)> onCheckpoint = {});
  ~ReplicationFollower();

  // Feeds one decoded record payload. A completed RPUMP block is applied
  // eagerly (submit + pump), so consume() does the replay work as the
  // stream arrives and promotion is O(1).
  void consume(const std::string& payload);

  bool snapshotLoaded() const { return snapshotLoaded_; }
  std::uint64_t pumpsApplied() const { return pumpsApplied_; }

  struct Promotion {
    std::unique_ptr<Engine> engine;
    // Responses the leader had not yet acknowledged flushing (RFLUSH) —
    // the promoted host re-sends these so no verdict is lost; clients
    // deduplicate replays by session id.
    std::vector<Response> retained;
    std::string lastSyncToken;
    std::uint64_t pumps = 0;
  };

  // Finalizes the replica: discards any incomplete trailing block (a pump
  // the leader died in the middle of sending was never executed there
  // either — clients will retransmit it) and hands over the engine.
  Promotion promote();

 private:
  void applyHelloRecord(const std::string& payload);
  void applySnapshotRecord(const std::string& payload);
  void applyPumpRecord(const std::string& payload);
  void applyCkptRecord(const std::string& payload);
  void applyFlushRecord(const std::string& payload);
  void finishPumpBlock();

  EngineOptions options_;
  std::function<void(const CheckpointCapture&)> onCheckpoint_;
  std::unique_ptr<Engine> engine_;
  bool helloSeen_ = false;
  bool snapshotLoaded_ = false;

  // Snapshot assembly.
  std::uint64_t snapEpoch_ = 0;
  std::uint32_t snapChecksum_ = 0;
  std::size_t snapChunks_ = 0;
  std::size_t snapChunksSeen_ = 0;
  std::string snapText_;

  // In-flight RPUMP block.
  bool pumpOpen_ = false;
  std::uint64_t pumpIndex_ = 0;
  std::size_t pumpCmdsExpected_ = 0;
  std::vector<ReplicatedCmd> pumpCmds_;

  std::uint64_t pumpsApplied_ = 0;

  // Responses produced by replayed pumps, tagged with the pump that made
  // them so RFLUSH can retire exactly the prefix the leader acked.
  struct RetainedResponse {
    std::uint64_t pump = 0;
    Response resp;
  };
  std::vector<RetainedResponse> retained_;
};

}  // namespace gpd::service
