#include "service/manifest_log.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "io/checkpoint_io.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace gpd::service {

namespace {

std::string slurpFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GPD_INPUT_CHECK(is.is_open(), "cannot open manifest '" << path << "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

// Reads just enough of a manifest header to learn whether it is a delta and
// what parent epoch it names. Returns false on anything that does not look
// like a delta header (the caller decides whether that is corruption).
bool peekDeltaParent(const std::string& text, std::uint64_t* parentEpoch) {
  std::istringstream is(text);
  std::string magic;
  long long version = 0;
  std::string kindKw;
  std::string kind;
  std::string epochKw;
  std::uint64_t epoch = 0;
  std::string parentKw;
  std::uint64_t parent = 0;
  if (!(is >> magic >> version >> kindKw >> kind >> epochKw >> epoch)) {
    return false;
  }
  if (kindKw != "kind" || kind != "delta" || epochKw != "epoch") return false;
  if (!(is >> parentKw >> parent) || parentKw != "parent") return false;
  *parentEpoch = parent;
  return true;
}

// Every on-disk delta index for `fullPath`, by scanning its directory for
// "<name>.delta.<N>" siblings. A scan (rather than probing 1, 2, 3, … until
// the first miss) is what makes a *missing middle* delta detectable.
std::set<std::uint64_t> deltaIndicesOnDisk(const std::string& fullPath) {
  namespace fs = std::filesystem;
  std::set<std::uint64_t> out;
  const fs::path full(fullPath);
  const std::string prefix = full.filename().string() + ".delta.";
  fs::path dir = full.parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string tail = name.substr(prefix.size());
    std::uint64_t idx = 0;
    bool numeric = !tail.empty();
    for (char c : tail) {
      if (c < '0' || c > '9' || idx > (1ull << 40)) {
        numeric = false;
        break;
      }
      idx = idx * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (numeric && idx >= 1) out.insert(idx);
  }
  return out;
}

}  // namespace

ManifestLog::ManifestLog(std::string path, std::uint64_t fullEvery)
    : path_(std::move(path)), fullEvery_(fullEvery) {
  GPD_INPUT_CHECK(!path_.empty(), "manifest log needs a path");
  GPD_INPUT_CHECK(fullEvery_ >= 1, "manifest log: fullEvery must be >= 1");
}

std::string ManifestLog::deltaPath(std::uint64_t index) const {
  return path_ + ".delta." + std::to_string(index);
}

CheckpointCapture ManifestLog::store(Engine& engine, bool forceFull) {
  const bool preferDelta =
      !forceFull && fullEvery_ > 1 && deltasSinceFull_ + 1 < fullEvery_;
  CheckpointCapture cap = engine.captureCheckpoint(preferDelta);
  persist(cap);
  return cap;
}

void ManifestLog::persist(const CheckpointCapture& cap) {
  if (cap.delta) {
    ++deltasSinceFull_;
    io::atomicWriteFile(deltaPath(deltasSinceFull_), cap.text);
    GPD_OBS_COUNTER_ADD("gpdd_checkpoint_deltas", 1);
  } else {
    // Full first (rename makes it live), then sweep the now-stale deltas.
    // A crash in between leaves deltas whose parent epoch predates the new
    // full — recover() ignores exactly those.
    io::atomicWriteFile(path_, cap.text);
    deltasSinceFull_ = 0;
    unlinkStaleDeltas();
  }
  GPD_OBS_COUNTER_ADD("gpdd_checkpoints", 1);
}

void ManifestLog::unlinkStaleDeltas() const {
  for (std::uint64_t idx : deltaIndicesOnDisk(path_)) {
    std::remove(deltaPath(idx).c_str());
  }
}

std::unique_ptr<Engine> ManifestLog::recover(EngineOptions options) {
  auto eng = Engine::restoreManifestText(slurpFile(path_), options);
  deltasSinceFull_ = 0;
  const std::set<std::uint64_t> onDisk = deltaIndicesOnDisk(path_);
  std::uint64_t expected = 1;
  for (std::uint64_t idx : onDisk) {
    GPD_INPUT_CHECK(idx == expected,
                    "manifest chain: delta " << expected
                                             << " is missing but delta " << idx
                                             << " exists — refusing to skip "
                                                "part of the history");
    const std::string text = slurpFile(deltaPath(idx));
    std::uint64_t parentEpoch = 0;
    const bool looksDelta = peekDeltaParent(text, &parentEpoch);
    GPD_INPUT_CHECK(looksDelta, "manifest chain: '"
                                    << deltaPath(idx)
                                    << "' is not a delta manifest");
    if (parentEpoch < eng->checkpointEpoch()) {
      // Stale leftover from before the current full manifest (a crash
      // between its rename and the delta sweep). The live chain ends here.
      break;
    }
    eng->applyDeltaText(text);
    deltasSinceFull_ = idx;
    ++expected;
  }
  return eng;
}

}  // namespace gpd::service
