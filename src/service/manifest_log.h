// gpd::service::ManifestLog — the on-disk checkpoint chain behind gpdd's
// incremental manifests.
//
// Layout: PATH holds the newest *full* manifest; PATH.delta.1, PATH.delta.2,
// … hold the deltas captured since it, in order. Every file is written
// atomically (temp + rename). Writing a new full manifest resets the chain:
// the full lands first (rename), then stale delta files are unlinked — a
// crash between the two leaves only *stale* deltas behind, which recovery
// recognizes by their parent epoch (strictly older than the full's) and
// ignores. The chain is therefore crash-consistent at every instant.
//
// Recovery restores PATH, then applies PATH.delta.1..N in order. A delta
// missing from the middle of the chain, or one whose parent (epoch,
// checksum) does not match, is a refused recovery (gpd::InputError) — the
// log never silently resurrects a wrong prefix of the history.
//
// The cadence knob `fullEvery` bounds chain length: every fullEvery-th
// capture is forced full (1 = always full, the pre-delta behaviour), so at
// most fullEvery-1 deltas ever separate a recovery from its full parent.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/engine.h"

namespace gpd::service {

class ManifestLog {
 public:
  // `path` is the full-manifest file; deltas live beside it. `fullEvery`
  // must be >= 1.
  ManifestLog(std::string path, std::uint64_t fullEvery);

  // Captures a checkpoint from the engine — a delta when the cadence allows
  // and the engine has a parent to chain from, a full otherwise (or when
  // forceFull) — and persists it atomically. Returns the capture so hosts
  // can replicate it.
  CheckpointCapture store(Engine& engine, bool forceFull = false);

  // Persists an externally produced capture (the replication follower's own
  // capture taken at the leader's checkpoint record), keeping the on-disk
  // chain in lockstep with the in-memory one.
  void persist(const CheckpointCapture& cap);

  // Restores the full manifest then applies every live on-disk delta in
  // chain order. Throws gpd::InputError if the full manifest is missing or
  // corrupt, if a middle delta is missing, or if any delta fails its parent
  // (epoch, checksum) validation. Leaves this log positioned to continue
  // the chain (deltasSinceFull() reflects what was applied).
  std::unique_ptr<Engine> recover(EngineOptions options);

  std::uint64_t deltasSinceFull() const { return deltasSinceFull_; }
  const std::string& path() const { return path_; }

 private:
  std::string deltaPath(std::uint64_t index) const;
  void unlinkStaleDeltas() const;

  std::string path_;
  std::uint64_t fullEvery_;
  std::uint64_t deltasSinceFull_ = 0;
};

}  // namespace gpd::service
