// gpd::service::Engine — the multi-tenant core of the gpdd detection
// service.
//
// The engine is transport-agnostic: front-ends (tools/gpdd's stdin/pipe and
// UNIX-socket loops, the in-process test harnesses) decode frames
// (service/frame.h), submit() the payloads, and pump() to process a batch.
// One pump is the unit of service time: admission control runs over the
// queued commands in arrival order, session work is sharded across per-shard
// run queues (optionally executed on a par::Pool), and the overload ladder,
// idle sweep, and bookkeeping run at the end. Everything the engine does is
// a deterministic function of (options, submitted payloads, pump
// boundaries) — that is what makes crash recovery *testable*: a manifest
// written at a pump boundary, restored, and driven with the same remaining
// batches must produce byte-identical responses and a byte-identical final
// manifest (tests/service/recovery_property_test).
//
// ## Protocol grammar (frame payloads; one command per frame)
//
//   OPEN <tenant> <session> <processes> [prio <N>]
//   EV   <tenant> <session> <process> <seq> <c0> ... <c{n-1}>
//   EVB  <tenant> <session> <process> <firstSeq> <count>\n<clock line>*
//   END  <tenant> <session> <process> <count>
//   TICK <tenant> <session> [<n>]
//   QUERY <tenant> <session>
//   CLOSE <tenant> <session>
//   STATS | CHECKPOINT | SHUTDOWN | SYNC <token>
//
// Tenant/session identifiers match [A-Za-z0-9._-]{1,64} — a charset that can
// never spell the frame magic, so corrupted payloads cannot forge frame
// boundaries. Server→client frames:
//
//   OK OPEN <t> <s>                        admission granted
//   DETECT <t> <s>                         detection fired (once per session)
//   NACK <t> <s> <p> <lo> <hi>             please retransmit [lo, hi]
//   VERDICT <t> <s> <verdict> <detected> <closed|open> [counters]
//   DEGRADE <t> <s> <reason>               degraded in place (mem ladder)
//   SHED <t> <s> <reason>                  session force-closed (followed by
//                                          its VERDICT frame)
//   STATS <json>
//   SYNC <token>                           all prior commands processed
//   OK CHECKPOINT | OK SHUTDOWN draining
//   ERR <code> <t> <s> <message>           <code> ∈ {bad-command,
//        bad-argument, unknown-session, duplicate-session, admission-mem,
//        admission-global-cap, admission-tenant-cap, rate-limited}
//
// ## The overload ladder
//
// With a memory watermark W configured, estimated live bytes escalate in
// three rungs, reusing the monitor's Backpressure/Degrade philosophy (shed
// load explicitly, never abort and never lie):
//
//   bytes ≥ 0.70·W  → reject new sessions (OPEN → ERR admission-mem; the
//                     client retries with capped exponential backoff);
//   bytes ≥ 0.85·W  → degrade the heaviest tenants in place: flush reorder
//                     buffers by degrading their streams (DEGRADE frame;
//                     verdicts become Degraded-not-wrong, memory returns);
//   bytes ≥ W       → shed lowest-priority sessions entirely (SHED + an
//                     explicit Degraded VERDICT) until usage drops below
//                     0.85·W.
//
// Per-tenant session caps and per-pump byte-rate limits reject at admission;
// a per-session control::Budget (combination = one delivered notification)
// sheds a runaway session deterministically; idle sessions time out after a
// configurable number of pumps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "control/budget.h"
#include "monitor/session.h"
#include "par/pool.h"

namespace gpd::service {

struct EngineOptions {
  // Per-shard run queues; sessions hash (FNV-1a, platform-stable) to shards.
  int shards = 8;
  // Global and per-tenant open-session caps (0 = unlimited).
  std::size_t maxSessions = 0;
  std::size_t maxSessionsPerTenant = 0;
  // Per-tenant EV/EVB payload bytes accepted per pump (0 = unlimited);
  // excess frames get ERR rate-limited and must be retried.
  std::uint64_t tenantRateBytesPerPump = 0;
  // Estimated live bytes that arm the overload ladder (0 = ladder off).
  std::uint64_t memWatermarkBytes = 0;
  // Pumps without traffic before a session is shed as idle (0 = never).
  std::uint64_t idleTimeoutPumps = 0;
  // Per-session budget: delivered notifications (combinations) and an
  // optional wall-clock deadline. Exhaustion sheds the session with an
  // explicit Degraded verdict. Deadlines are wall-clock and therefore not
  // part of the deterministic-replay contract; the soak uses combinations.
  std::uint64_t sessionMaxCombinations = 0;
  std::uint64_t sessionBudgetMs = 0;
  // Defaults for every session's MonitorSession (reorder window, retries,
  // retry timeout, queue bound, overflow policy, comparison slice).
  monitor::SessionOptions session;
  // Build-identity labels (version, sanitize/obs/srclint flags) rendered
  // as a "build" object in STATS and as the gpdd_build_info gauge in the
  // telemetry exposition. Empty → omitted from STATS.
  std::vector<std::pair<std::string, std::string>> buildInfo;
};

// Per-tenant service counters: the STATS breakdown operators page on when
// one tenant misbehaves. Deterministic plain copies (updated in the
// single-threaded admission/sweep phases or merged from shard accumulators
// in shard order), mirrored into the gpd::obs registry as
// gpdd_tenant_<name>_* gauges whenever STATS renders.
struct TenantStats {
  std::uint64_t sessionsOpened = 0;
  std::uint64_t sessionsClosed = 0;
  std::uint64_t evBytes = 0;  // accepted EV/EVB payload bytes
  std::uint64_t shedMem = 0;
  std::uint64_t shedBudget = 0;  // budget-exhausted verdicts
  std::uint64_t shedIdle = 0;
  std::uint64_t degradedMem = 0;
  std::uint64_t rateLimited = 0;
  std::uint64_t admissionRejects = 0;
};

// One serialized checkpoint produced by Engine::captureCheckpoint. `text`
// is a complete manifest (kind full) or a differential one (kind delta)
// holding only the sessions dirtied — and the keys removed — since the
// previous capture. Deltas chain: each names its parent's (epoch, checksum)
// and restore refuses a broken chain.
struct CheckpointCapture {
  bool delta = false;
  std::uint64_t epoch = 0;      // this manifest's epoch
  std::uint32_t checksum = 0;   // fnv1a32 over `text`
  std::size_t sessions = 0;     // session records serialized
  std::string text;
};

// Aggregate service counters (also exported as gpdd_* obs metrics; these
// plain copies feed the STATS JSON without touching the registry).
struct EngineStats {
  std::uint64_t framesAccepted = 0;
  std::uint64_t sessionsOpened = 0;
  std::uint64_t sessionsClosed = 0;
  std::uint64_t sessionsShedMem = 0;
  std::uint64_t sessionsShedBudget = 0;
  std::uint64_t sessionsShedIdle = 0;
  std::uint64_t sessionsDegradedMem = 0;
  std::uint64_t admissionRejects = 0;
  std::uint64_t rateLimited = 0;
  std::uint64_t protocolErrors = 0;  // ERR frames emitted
  std::uint64_t notificationsDelivered = 0;
  std::uint64_t nacksEmitted = 0;
  std::uint64_t detections = 0;
  std::uint64_t pumps = 0;
};

// Aggregated online-slice numbers across the open sessions (zeros unless
// the server runs with slicing enabled — gpdd --slice). Live gauges, not
// cumulative counters: they track what the open sessions currently retain.
struct SliceStats {
  std::uint64_t sessions = 0;       // open sessions maintaining a slice
  std::uint64_t notifications = 0;  // clocks absorbed by those slices
  std::uint64_t resolved = 0;       // join-irreducibles resolved
  std::uint64_t pending = 0;        // parked, waiting on another process
  std::uint64_t degraded = 0;       // slices latched degraded (shed/restore)
};

// One response frame payload, tagged with the origin the triggering command
// was submitted from so a socket front-end can route it back to the right
// connection. Session-associated frames (NACK/SHED/VERDICT) go to the
// session's owning origin — the origin of the last command that touched it.
struct Response {
  int origin = 0;
  std::string payload;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }

  // Queues one decoded frame payload. `origin` identifies the submitting
  // transport endpoint (0 for the stdin front-end).
  void submit(std::string payload, int origin = 0);

  // Processes every queued command; appends response frames to `out` in a
  // deterministic order (admission rejects, then shard 0..S-1 outputs, then
  // pump-end frames). With a pool, shards run on its workers — responses
  // and all session state are identical for any thread count.
  void pump(std::vector<Response>& out, par::Pool* pool = nullptr);

  // Finalizes every open session (VERDICT frames appended) — the SIGTERM
  // graceful-drain path. The engine stays usable (empty) afterwards.
  void drain(std::vector<Response>& out);

  // Whole-service checkpoint: a manifest embedding one io::checkpoint_io
  // checkpoint per live session. write is const and deterministic (sessions
  // in key order); restore validates everything (gpd::InputError on corrupt
  // or version-mismatched manifests) and reconstructs each session
  // bit-exactly, including its budget meter. writeManifest always emits a
  // full manifest at the current epoch and does not advance it.
  void writeManifest(std::ostream& os) const;
  static std::unique_ptr<Engine> restoreManifest(std::istream& is,
                                                 EngineOptions options);
  static std::unique_ptr<Engine> restoreManifestText(const std::string& text,
                                                     EngineOptions options);

  // Incremental checkpoints. captureCheckpoint serializes the service at
  // this pump boundary and advances the checkpoint epoch: with preferDelta
  // and a prior capture (or restore) to chain from, only the sessions
  // dirtied since that parent — plus the keys removed — are written, so
  // checkpoint cost scales with *changed* sessions. applyDeltaText patches
  // a restored engine forward one link; it refuses (gpd::InputError) a
  // delta whose parent (epoch, checksum) does not match this engine's —
  // a corrupted, reordered, or missing-middle chain never restores
  // silently wrong state.
  CheckpointCapture captureCheckpoint(bool preferDelta);
  void applyDeltaText(const std::string& text);

  // Epoch of the last capture/restore (0 = never captured) and the dirty
  // set's size — what the next delta would serialize.
  std::uint64_t checkpointEpoch() const { return checkpointEpoch_; }
  std::size_t dirtySessions() const;

  // Token of the last SYNC answered (empty until one is). Persisted in the
  // manifest: after a failover the promoted engine can tell clients exactly
  // which barrier its state includes.
  const std::string& lastSyncToken() const { return lastSyncToken_; }

  // Host hooks set by protocol commands during the last pump.
  bool consumeCheckpointRequest();
  bool shutdownRequested() const { return shutdownRequested_; }

  const EngineStats& stats() const { return stats_; }
  std::size_t openSessions() const;
  std::uint64_t estimatedBytes() const { return totalBytes_; }
  // Current ladder rung: 0 normal, 1 reject-new, 2 degrade, 3 shed.
  int memLevel() const { return memLevel_; }

  // The STATS frame body: one-line JSON of EngineStats + live gauges +
  // per-tenant breakdowns, or the multi-line text rendering of the same.
  // Both publish the per-tenant numbers into the gpd::obs registry.
  std::string statsJson() const;
  std::string statsText() const;

  // Cumulative per-tenant counters (never forgets a tenant).
  const std::map<std::string, TenantStats>& tenantStats() const;

  // Online-slice aggregate over the open sessions (all-zero when sessions
  // run without SessionOptions::enableSlice).
  SliceStats sliceStats() const;

  // Mirrors the per-tenant numbers into the gpd::obs registry as
  // gpdd_tenant_<name>_* gauges. statsJson/statsText call this; the
  // telemetry exposition path calls it directly so a scrape stays fresh
  // even when no client is polling STATS.
  void publishTenantMetrics() const;

 private:
  struct Session;
  struct Cmd;
  struct Impl;
  struct ShardAcc;

  void writeManifestText(std::ostream& os, bool delta, std::uint64_t epoch,
                         std::uint64_t parentEpoch,
                         std::uint32_t parentChecksum) const;
  // Parses one manifest into this engine: a full manifest replaces
  // everything (the engine must be fresh), a delta patches. Returns true if
  // the manifest was a delta.
  bool readManifestText(std::istream& is);

  Session* openSession(std::string_view tenant, std::string_view id,
                       int processes, long long prio,
                       std::uint64_t pumpIndex);
  void dispatch(Cmd& cmd, ShardAcc& acc, std::uint64_t pumpIndex);
  void deliverOne(Session& s, int p, std::uint64_t seq,
                  std::vector<int> clock, ShardAcc& acc);
  void eraseClosedSessions();
  void closeBookkeeping(Session& s);
  void sweepIdle(std::vector<Response>& out, std::uint64_t pumpIndex);
  void runLadder(std::vector<Response>& out);
  void updateMemLevel();

  EngineOptions options_;
  EngineStats stats_;
  std::uint64_t totalBytes_ = 0;
  int memLevel_ = 0;
  bool shutdownRequested_ = false;
  bool checkpointRequested_ = false;
  std::string lastSyncToken_;
  // Checkpoint-chain state: epoch/checksum of the last capture or restore
  // (the parent the next delta will name), and whether one exists at all.
  std::uint64_t checkpointEpoch_ = 0;
  std::uint32_t lastCaptureChecksum_ = 0;
  bool hasCapture_ = false;
  Impl* impl_;
};

}  // namespace gpd::service
