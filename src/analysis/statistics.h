// Order-theoretic statistics of a computation.
//
// Width (the largest antichain — by Dilworth, the minimum chain cover of the
// event poset), height (the longest causal chain), message/concurrency
// summaries, and the lattice size estimate. These quantify exactly the
// parameters the paper's complexity results trade on: the lattice that
// exhaustive detection pays for grows with width, while the algorithms'
// costs grow with height and event counts.
#pragma once

#include <cstdint>

#include "clocks/vector_clock.h"
#include "computation/computation.h"

namespace gpd::analysis {

struct ComputationStats {
  int processes = 0;
  int events = 0;            // total, including initial events
  int messages = 0;
  int height = 0;            // longest ≺-chain of non-initial events
  int width = 0;             // largest antichain of non-initial events
  double concurrencyIndex = 0;  // fraction of event pairs that are concurrent
  double gridBound = 0;      // Π eventCount(p): lattice upper bound
};

ComputationStats computeStats(const VectorClocks& clocks);

}  // namespace gpd::analysis
