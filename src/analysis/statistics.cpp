#include "analysis/statistics.h"

#include <algorithm>

#include "clocks/lamport.h"
#include "graph/chains.h"
#include "util/check.h"

namespace gpd::analysis {

ComputationStats computeStats(const VectorClocks& clocks) {
  const Computation& comp = clocks.computation();
  ComputationStats stats;
  stats.processes = comp.processCount();
  stats.events = comp.totalEvents();
  stats.messages = static_cast<int>(comp.messages().size());

  // Height: Lamport clocks already compute longest-chain depth.
  const auto lamport = lamportClocks(comp);
  for (int v : lamport) stats.height = std::max(stats.height, v);

  // Width over non-initial events (initials are pairwise concurrent by
  // construction, which would trivialize the statistic).
  std::vector<EventId> events;
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    for (int i = 1; i < comp.eventCount(p); ++i) events.push_back({p, i});
  }
  if (!events.empty()) {
    const auto cover = graph::minimumChainCover(
        static_cast<int>(events.size()), [&](int a, int b) {
          return !(events[a] == events[b]) && clocks.leq(events[a], events[b]);
        });
    stats.width = static_cast<int>(cover.size());  // Dilworth
  }

  // Concurrency index over distinct non-initial pairs.
  std::uint64_t concurrent = 0;
  std::uint64_t pairs = 0;
  for (std::size_t a = 0; a < events.size(); ++a) {
    for (std::size_t b = a + 1; b < events.size(); ++b) {
      ++pairs;
      concurrent += clocks.concurrent(events[a], events[b]);
    }
  }
  stats.concurrencyIndex =
      pairs == 0 ? 0.0 : static_cast<double>(concurrent) / pairs;

  stats.gridBound = 1;
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    stats.gridBound *= comp.eventCount(p);
  }
  return stats;
}

}  // namespace gpd::analysis
