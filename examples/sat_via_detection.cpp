// Theorem 1 run forward: solving SAT with the predicate detector.
//
// Each 3-CNF formula is transformed to a non-monotone formula, compiled into
// the Figure 3 computation gadget, and handed to the singular-2-CNF
// detector; a witness cut decodes into a satisfying assignment. DPLL
// cross-checks every verdict. (Detection pays the exponential enumeration on
// unsatisfiable gadgets — that is exactly what NP-hardness promises.)
#include <iostream>

#include "gpd.h"

int main() {
  using namespace gpd;

  Rng rng(2026);
  Table table({"formula", "gadget", "detector", "dpll", "agree"});
  for (int i = 0; i < 8; ++i) {
    const int vars = 3 + static_cast<int>(rng.index(3));
    const int clauses = 3 + static_cast<int>(rng.index(6));
    sat::Cnf cnf;
    cnf.numVars = vars;
    for (int j = 0; j < clauses; ++j) {
      const int width = rng.chance(0.6) ? 2 : 3;
      cnf.addClause(sat::randomKCnf(vars, 1, width, rng).clauses[0]);
    }

    // Size of the gadget this formula compiles to.
    const auto transformed = sat::toNonMonotone(cnf);
    const auto simplified = reduction::simplifyForGadget(transformed.formula);
    std::string gadgetDesc = "trivial";
    if (!simplified.unsatisfiable && !simplified.formula.clauses.empty()) {
      gadgetDesc =
          std::to_string(2 * simplified.formula.clauses.size()) + " procs";
    }

    const auto viaDetection = reduction::solveSatViaDetection(cnf);
    const auto viaDpll = sat::solveDpll(cnf);
    table.row(sat::toString(cnf).substr(0, 48), gadgetDesc,
              viaDetection ? "SAT" : "UNSAT", viaDpll ? "SAT" : "UNSAT",
              viaDetection.has_value() == viaDpll.has_value() ? "yes" : "NO");
    if (viaDetection) {
      GPD_CHECK(satisfies(cnf, *viaDetection));
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery satisfying assignment returned by the detector was "
               "verified against the formula.\n";
  return 0;
}
