// Quickstart: build a small distributed computation by hand, ask the
// order-theoretic questions of the paper's Sec. 2 (precedence, concurrency,
// event consistency), and detect a conjunctive predicate under both the
// possibly and definitely modalities.
//
// The computation mirrors the role of the paper's Figure 2: four processes,
// a few messages, one highlighted event per process.
#include <iostream>

#include "gpd.h"

int main() {
  using namespace gpd;

  // p0: ⊥ e a      p1: ⊥ f      p2: ⊥ c g      p3: ⊥ h
  ComputationBuilder builder(4);
  const EventId e = builder.appendEvent(0);
  const EventId a = builder.appendEvent(0);
  const EventId f = builder.appendEvent(1);
  const EventId c = builder.appendEvent(2);
  const EventId g = builder.appendEvent(2);
  const EventId h = builder.appendEvent(3);
  builder.addMessage(e, f);  // e → f
  builder.addMessage(a, c);  // a → c
  builder.addMessage(g, h);  // g → h
  const Computation comp = std::move(builder).build();

  const VectorClocks clocks(comp);
  auto name = [&](const EventId& x) {
    if (x == e) return "e";
    if (x == a) return "a";
    if (x == f) return "f";
    if (x == c) return "c";
    if (x == g) return "g";
    return "h";
  };

  std::cout << "== Event relations (paper Sec. 2.2) ==\n";
  for (const EventId& x : {e, f, g, h}) {
    for (const EventId& y : {e, f, g, h}) {
      if (x == y) continue;
      std::cout << name(x) << "," << name(y) << ": "
                << (clocks.precedes(x, y)     ? "ordered (x before y)"
                    : clocks.concurrent(x, y) ? "independent"
                                              : "ordered (y before x)")
                << (clocks.pairConsistent(x, y) ? ", consistent"
                                                : ", inconsistent")
                << '\n';
    }
  }

  // Attach boolean variables and detect possibly(x0 ∧ x2): "p0 is at e while
  // p2 is at g".
  VariableTrace trace(comp);
  trace.defineBool(0, "x", {false, true, false});  // true exactly at e
  trace.defineBool(1, "x", {false, true});
  trace.defineBool(2, "x", {false, false, true});  // true exactly at g
  trace.defineBool(3, "x", {false, true});

  detect::Detector detector(trace);
  ConjunctivePredicate atEandG{{varTrue(0, "x"), varTrue(2, "x")}};
  std::cout << "\n== possibly(x@p0 ∧ x@p2) ==\n";
  if (auto cut = detector.possibly(atEandG)) {
    std::cout << "detected at cut " << cut->toString() << " via "
              << detector.lastAlgorithm() << '\n';
  } else {
    std::cout << "not detected (succ(e) ≺ g forbids a common cut) via "
              << detector.lastAlgorithm() << '\n';
  }

  ConjunctivePredicate atEandF{{varTrue(0, "x"), varTrue(1, "x")}};
  std::cout << "\n== possibly(x@p0 ∧ x@p1) ==\n";
  if (auto cut = detector.possibly(atEandF)) {
    std::cout << "detected at cut " << cut->toString() << " via "
              << detector.lastAlgorithm() << '\n';
  }

  std::cout << "\n== definitely(x@p0 ∧ x@p1) ==\n";
  std::cout << (detector.definitely(atEandF) ? "holds" : "does not hold")
            << " (a run may pass e and f at different moments)\n";

  // The lattice this all happens in.
  const auto stats = lattice::latticeStats(clocks);
  std::cout << "\nlattice: " << stats.cutCount << " consistent cuts, "
            << stats.levels << " levels, max width " << stats.maxWidth << '\n';
  return 0;
}
