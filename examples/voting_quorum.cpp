// Symmetric predicates on a distributed vote (paper Sec. 4.3).
//
// Four voters and a coordinator run a two-phase vote. Symmetric predicates
// over the voters' boolean "yes" variables — absence of a simple majority,
// absence of a two-thirds majority, parity, not-all-equal — are detected as
// disjunctions of exact-sum predicates, and the definite commit/abort
// decision is checked under the definitely modality.
#include <iostream>

#include "gpd.h"

int main() {
  using namespace gpd;

  sim::VotingOptions options;
  options.processes = 5;  // coordinator + 4 voters
  options.yesProbability = 0.55;

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    options.seed = seed;
    const sim::SimResult run = sim::voting(options);
    detect::Detector detector(*run.trace);

    std::vector<SumTerm> yes;
    for (ProcessId p = 1; p < options.processes; ++p) yes.push_back({p, "yes"});

    const Cut final = finalCut(*run.computation);
    int finalYes = 0;
    for (const SumTerm& t : yes) {
      finalYes += run.trace->valueAtCut(final, t.process, t.var) != 0;
    }
    std::cout << "== seed " << seed << ": final tally " << finalYes << "/"
              << yes.size() << " yes ==\n";

    for (const SymmetricPredicate& pred :
         {absenceOfSimpleMajority(yes), absenceOfTwoThirdsMajority(yes),
          exclusiveOr(yes), notAllEqual(yes)}) {
      const auto cut = detector.possibly(pred);
      std::cout << "  possibly(" << pred.name << "): "
                << (cut ? "yes at " + cut->toString() : std::string("no"))
                << '\n';
    }

    SumPredicate decided{{{0, "committed"}, {0, "aborted"}}, Relop::Equal, 1};
    std::cout << "  definitely(coordinator decides): "
              << (detector.definitely(decided) ? "yes" : "no") << '\n';
    const bool committed = run.trace->valueAtCut(final, 0, "committed") != 0;
    std::cout << "  outcome: " << (committed ? "COMMIT" : "ABORT") << "\n\n";
  }
  return 0;
}
