// Live monitoring with the streaming Garg–Waldecker checker.
//
// A buggy token ring runs; every process reports a vector-timestamped
// notification whenever it is inside its critical section. The checker
// consumes the interleaved notification stream and raises the alarm the
// moment the queue heads witness a consistent "all in CS" state — here we
// monitor pairs (the two-process conjunctive predicate CSᵢ ∧ CSⱼ).
#include <iostream>

#include "gpd.h"

int main() {
  using namespace gpd;

  sim::TokenRingOptions options;
  options.processes = 4;
  options.rounds = 3;
  options.seed = 11;
  options.rogueProcess = 2;
  const sim::SimResult run = sim::tokenRing(options);
  const VectorClocks clocks(*run.computation);

  std::cout << "monitoring " << run.computation->totalEvents()
            << " events for pairwise CS overlap...\n\n";

  Rng rng(5);
  const auto runOrder =
      graph::randomLinearExtension(run.computation->toDag(), rng);

  for (ProcessId i = 0; i < options.processes; ++i) {
    for (ProcessId j = i + 1; j < options.processes; ++j) {
      // A 2-slot monitor: processes i and j report their CS entries.
      monitor::ConjunctiveMonitor checker(2);
      std::uint64_t sent = 0;
      bool detected = false;
      for (int node : runOrder) {
        const EventId e = run.computation->event(node);
        const int slot = e.process == i ? 0 : e.process == j ? 1 : -1;
        if (slot < 0) continue;
        if (run.trace->value(e.process, "cs", e.index) < 1) continue;
        // Project the timestamp onto the two monitored processes.
        std::vector<int> stamp{clocks.clock(e, i), clocks.clock(e, j)};
        ++sent;
        if (checker.report(slot, std::move(stamp))) {
          detected = true;
          break;
        }
      }
      if (detected) {
        std::cout << "ALERT: CS overlap between p" << i << " and p" << j
                  << " after " << sent << " notifications ("
                  << checker.comparisons() << " clock comparisons)\n";
      } else {
        std::cout << "p" << i << "/p" << j << ": clean (" << sent
                  << " notifications)\n";
      }
    }
  }
  std::cout << "\nThe rogue process was p2 — exactly its pairs alert.\n";
  return 0;
}
