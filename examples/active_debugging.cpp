// Active debugging (predicate *control*, the detection problem's dual):
// having detected that a bad global state is possible, add synchronization
// arrows to the computation so that it is not — then replay under control.
//
// A rogue process violates a token ring's mutual exclusion. Detection finds
// the violations; control serializes every critical-section interval with a
// minimal chain of arrows; re-detection on the controlled computation comes
// back clean.
#include <iostream>

#include "gpd.h"

int main() {
  using namespace gpd;

  sim::TokenRingOptions options;
  options.processes = 4;
  options.rounds = 2;
  options.seed = 3;
  options.rogueProcess = 2;
  const sim::SimResult run = sim::tokenRing(options);

  const auto violations = [&](const Computation& comp,
                              const VariableTrace& trace) {
    const VectorClocks clocks(comp);
    int count = 0;
    for (ProcessId i = 0; i < options.processes; ++i) {
      for (ProcessId j = i + 1; j < options.processes; ++j) {
        ConjunctivePredicate both{{varCompare(i, "cs", Relop::GreaterEq, 1),
                                   varCompare(j, "cs", Relop::GreaterEq, 1)}};
        if (detect::detectConjunctive(clocks, trace, both).found) {
          std::cout << "  possibly(CS" << i << " ∧ CS" << j << ")\n";
          ++count;
        }
      }
    }
    return count;
  };

  std::cout << "== detection on the recorded computation ==\n";
  const int before = violations(*run.computation, *run.trace);
  std::cout << before << " violating pair(s)\n\n";

  // Control: serialize every critical-section interval.
  const VectorClocks clocks(*run.computation);
  std::vector<std::vector<detect::TrueInterval>> intervals;
  for (ProcessId p = 0; p < options.processes; ++p) {
    intervals.push_back(detect::trueIntervals(
        *run.trace, varCompare(p, "cs", Relop::GreaterEq, 1)));
  }
  const control::SerializationResult controlled =
      control::serializeIntervals(clocks, intervals);
  if (!controlled.feasible) {
    std::cout << "control infeasible: two critical sections overlap in every "
                 "schedule\n";
    return 1;
  }
  std::cout << "== control ==\nadded " << controlled.addedEdges.size()
            << " synchronization arrow(s):\n";
  for (const Message& m : controlled.addedEdges) {
    std::cout << "  (" << m.send.process << "," << m.send.index << ") -> ("
              << m.receive.process << "," << m.receive.index << ")\n";
  }

  std::cout << "\n== re-detection on the controlled computation ==\n";
  const VariableTrace controlledTrace =
      run.trace->rebindTo(*controlled.controlled);
  const int after = violations(*controlled.controlled, controlledTrace);
  std::cout << after << " violating pair(s)"
            << (after == 0 ? " — mutual exclusion restored\n" : "\n");
  return after == 0 ? 0 : 1;
}
