// The paper's fault-tolerance motivation: "on detecting a deadlock, one of
// the processes must be aborted and restarted."
//
// Four dining philosophers acquire their forks greedily (own fork first,
// then the neighbour's) — the classic hold-and-wait cycle. The deadlock
// suspicion predicate is conjunctive, possibly(⋀ waitingᵢ), detected by
// CPDHB; because a real deadlock is *stable*, it also registers under
// definitely. The resource-ordering fix makes every run complete.
#include <iostream>

#include "gpd.h"

namespace {

void analyze(const char* label, const gpd::sim::PhilosophersOptions& options) {
  using namespace gpd;
  const sim::SimResult run = sim::diningPhilosophers(options);
  detect::Detector detector(*run.trace);

  ConjunctivePredicate allWaiting;
  for (ProcessId p = 0; p < options.philosophers; ++p) {
    allWaiting.terms.push_back(varTrue(p, "waiting"));
  }
  const auto suspicion = detector.possibly(allWaiting);
  const bool stable = detector.definitely(allWaiting);

  const Cut fin = finalCut(*run.computation);
  std::int64_t meals = 0;
  for (ProcessId p = 0; p < options.philosophers; ++p) {
    meals += run.trace->valueAtCut(fin, p, "meals");
  }

  std::cout << "== " << label << " ==\n";
  std::cout << "meals completed: " << meals << " / "
            << options.philosophers * options.meals << '\n';
  if (suspicion) {
    std::cout << "possibly(all waiting): YES at cut " << suspicion->toString()
              << (stable ? "  — and definitely: a stable DEADLOCK\n"
                         : "  — transient contention only\n");
  } else {
    std::cout << "possibly(all waiting): no\n";
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  gpd::sim::PhilosophersOptions grabby;
  grabby.philosophers = 4;
  grabby.meals = 2;
  grabby.seed = 1;
  analyze("greedy acquisition (hold-and-wait)", grabby);

  gpd::sim::PhilosophersOptions ordered = grabby;
  ordered.orderedAcquisition = true;
  analyze("ordered acquisition (deadlock-free)", ordered);
  return 0;
}
