// Relational-predicate auditing (paper Sec. 4): the number of tokens held
// across a ring is a sum Σ tokensᵢ whose per-event change is ±1 — exactly
// the bounded-increment class where possibly(Σ = K) is polynomial
// (Theorems 4–7). We audit a healthy ring, a ring that lost a token, and a
// ring that duplicated one.
#include <iostream>

#include "gpd.h"

namespace {

void audit(const char* label, const gpd::sim::TokenRingOptions& options) {
  using namespace gpd;
  const sim::SimResult run = sim::tokenRing(options);
  detect::Detector detector(*run.trace);

  std::vector<SumTerm> held;
  for (ProcessId p = 0; p < options.processes; ++p) {
    held.push_back({p, "tokens"});
  }

  std::cout << "== " << label << " (expected tokens: " << options.tokens
            << ") ==\n";
  // Extremes of the held count over all consistent cuts.
  const detect::SumExtrema ext =
      detect::sumExtrema(detector.clocks(), *run.trace, held);
  std::cout << "held-token count over all consistent cuts: min "
            << ext.minSum << ", max " << ext.maxSum
            << " (dips below " << options.tokens
            << " are tokens in flight)\n";

  // Exact-count checks via the Theorem 7 detector.
  for (std::int64_t k = 0; k <= options.tokens + 1; ++k) {
    SumPredicate exact{held, Relop::Equal, k};
    const auto cut = detector.possibly(exact);
    std::cout << "  possibly(held == " << k << "): "
              << (cut ? "yes, e.g. cut " + cut->toString() : std::string("no"))
              << '\n';
  }
  // Health verdict from the final state.
  SumPredicate final{held, Relop::Equal, options.tokens};
  const std::int64_t atEnd =
      final.sumAtCut(*run.trace, finalCut(*run.computation));
  std::cout << "final held count: " << atEnd
            << (atEnd < options.tokens  ? "  -> token LOST"
                : atEnd > options.tokens ? "  -> token DUPLICATED"
                                          : "  -> healthy")
            << "\n\n";
}

}  // namespace

int main() {
  gpd::sim::TokenRingOptions healthy;
  healthy.processes = 5;
  healthy.tokens = 2;
  healthy.rounds = 3;
  healthy.seed = 7;
  audit("healthy ring", healthy);

  gpd::sim::TokenRingOptions lossy = healthy;
  lossy.dropTokenAtHop = 5;
  audit("ring with token loss", lossy);

  gpd::sim::TokenRingOptions dupey = healthy;
  dupey.duplicateTokenAtHop = 4;
  audit("ring with token duplication", dupey);
  return 0;
}
