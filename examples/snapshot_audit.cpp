// Auditing a bank with global predicates.
//
// Processes exchange money while a Chandy–Lamport snapshot records a global
// state. Three increasingly powerful checks:
//  1. the recorded snapshot conserves money (classic snapshot correctness);
//  2. the *linear-predicate* detector finds the least consistent cut with no
//     money in flight and re-verifies conservation there;
//  3. possibly(Σ balance < total): can an auditor reading local balances at
//     an arbitrary consistent cut ever see money "missing"? (Yes — money in
//     flight is invisible to per-process balances; the min-cut extremum
//     detector quantifies the worst case.)
#include <iostream>

#include "gpd.h"

int main() {
  using namespace gpd;

  sim::SnapshotBankOptions options;
  options.processes = 5;
  options.initialBalance = 100;
  options.transfersPerProcess = 6;
  options.seed = 11;
  const std::int64_t total = options.processes * options.initialBalance;

  const sim::SimResult run = sim::snapshotBank(options);
  const VectorClocks clocks(*run.computation);
  const Cut fin = finalCut(*run.computation);

  std::cout << "system total: " << total << " across " << options.processes
            << " accounts; trace has " << run.computation->totalEvents()
            << " events\n\n";

  // 1. The snapshot's verdict.
  std::int64_t snapBalances = 0;
  std::int64_t snapTransit = 0;
  for (ProcessId p = 0; p < options.processes; ++p) {
    snapBalances += run.trace->valueAtCut(fin, p, "snapBalance");
    snapTransit += run.trace->valueAtCut(fin, p, "snapInTransit");
  }
  std::cout << "Chandy–Lamport snapshot: balances " << snapBalances
            << " + in transit " << snapTransit << " = "
            << snapBalances + snapTransit
            << (snapBalances + snapTransit == total ? "  ✓ conserved"
                                                    : "  ✗ LOST MONEY")
            << '\n';

  // 2. Least empty-channel cut via the linear-predicate detector.
  const auto quiet =
      detect::detectLinear(clocks, detect::channelsEmptyOracle(*run.computation));
  if (quiet.cut) {
    std::int64_t atCut = 0;
    for (ProcessId p = 0; p < options.processes; ++p) {
      atCut += run.trace->valueAtCut(*quiet.cut, p, "balance");
    }
    std::cout << "least empty-channel cut " << quiet.cut->toString()
              << ": balances sum to " << atCut
              << (atCut == total ? "  ✓ conserved" : "  ✗ LOST MONEY") << '\n';
  }

  // 3. How much can a naive audit under-count?
  std::vector<SumTerm> balances;
  for (ProcessId p = 0; p < options.processes; ++p) {
    balances.push_back({p, "balance"});
  }
  const detect::SumExtrema ext =
      detect::sumExtrema(clocks, *run.trace, balances);
  std::cout << "visible balances over all consistent cuts: min " << ext.minSum
            << ", max " << ext.maxSum << " (deficit up to "
            << total - ext.minSum << " while transfers are in flight)\n";
  SumPredicate missing{balances, Relop::Less, total};
  detect::Detector detector(*run.trace);
  if (const auto cut = detector.possibly(missing)) {
    std::cout << "possibly(Σ balance < " << total << "): yes, e.g. cut "
              << cut->toString() << " — in-flight money is invisible\n";
  } else {
    std::cout << "possibly(Σ balance < " << total
              << "): no — every transfer was instantaneous\n";
  }
  return 0;
}
