// The paper's motivating scenario: debugging a distributed mutual-exclusion
// algorithm by detecting possibly(CSᵢ ∧ CSⱼ) — "could two processes have
// been inside the critical section at the same time?"
//
// A clean token ring never violates mutual exclusion; a rogue process that
// enters without the token does, and the detector pinpoints a witness cut
// even if no test run ever *observed* the overlap directly (that is the
// point of predicate detection: possibly() quantifies over all runs
// consistent with the recorded causality).
#include <iostream>

#include "gpd.h"

namespace {

void audit(const char* label, const gpd::sim::TokenRingOptions& options) {
  using namespace gpd;
  const sim::SimResult run = sim::tokenRing(options);
  detect::Detector detector(*run.trace);

  std::cout << "== " << label << " ==\n";
  std::cout << "trace: " << run.computation->totalEvents() << " events, "
            << run.computation->messages().size() << " messages\n";

  bool violated = false;
  for (ProcessId i = 0; i < options.processes; ++i) {
    for (ProcessId j = i + 1; j < options.processes; ++j) {
      ConjunctivePredicate overlap{
          {varCompare(i, "cs", Relop::GreaterEq, 1),
           varCompare(j, "cs", Relop::GreaterEq, 1)}};
      if (const auto cut = detector.possibly(overlap)) {
        std::cout << "VIOLATION: processes " << i << " and " << j
                  << " can be in the CS together, witness cut "
                  << cut->toString() << '\n';
        violated = true;
      }
    }
  }
  if (!violated) {
    std::cout << "mutual exclusion holds on every consistent cut\n";
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  gpd::sim::TokenRingOptions clean;
  clean.processes = 5;
  clean.rounds = 3;
  clean.seed = 42;
  audit("clean token ring", clean);

  gpd::sim::TokenRingOptions buggy = clean;
  buggy.rogueProcess = 3;  // enters the CS once without the token
  audit("token ring with a rogue process", buggy);
  return 0;
}
