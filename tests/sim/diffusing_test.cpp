// Dijkstra–Scholten termination detection, validated with the detectors:
// the root's declaration is sound (at its causal cut the computation is
// passive and quiet) and the underlying "terminated" predicate is stable.
#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "detect/linear.h"
#include "detect/stable.h"
#include "sim/workloads.h"

namespace gpd::sim {
namespace {

// The event at which the root sets terminated = 1.
std::optional<EventId> declarationEvent(const SimResult& run) {
  const Computation& c = *run.computation;
  for (int e = 1; e < c.eventCount(0); ++e) {
    if (run.trace->value(0, "terminated", e) != 0 &&
        run.trace->value(0, "terminated", e - 1) == 0) {
      return EventId{0, e};
    }
  }
  return std::nullopt;
}

TEST(DiffusingTest, RootAlwaysDeclaresTermination) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    DiffusingOptions opt;
    opt.seed = seed;
    const SimResult run = diffusingComputation(opt);
    const Cut fin = finalCut(*run.computation);
    EXPECT_EQ(run.trace->valueAtCut(fin, 0, "terminated"), 1)
        << "seed " << seed;
    for (ProcessId p = 0; p < opt.processes; ++p) {
      EXPECT_EQ(run.trace->valueAtCut(fin, p, "active"), 0) << "seed " << seed;
    }
  }
}

TEST(DiffusingTest, DeclarationIsSound) {
  // At the declaration's causal-history cut: everyone passive, nothing in
  // flight — exactly the linear termination oracle's satisfaction.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    DiffusingOptions opt;
    opt.seed = seed;
    opt.processes = 4;
    const SimResult run = diffusingComputation(opt);
    const auto decl = declarationEvent(run);
    ASSERT_TRUE(decl.has_value()) << "seed " << seed;
    const VectorClocks vc(*run.computation);
    const Cut cut = vc.leastConsistentCutThrough({*decl});
    const auto oracle = detect::terminationOracle(*run.trace, "active");
    EXPECT_FALSE(oracle(cut).has_value())
        << "seed " << seed << ": computation not terminated at declaration";
  }
}

TEST(DiffusingTest, WorkActuallySpreads) {
  int trialsWithRemoteWork = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DiffusingOptions opt;
    opt.seed = seed;
    opt.spawnProbability = 0.8;
    opt.totalWorkBudget = 16;
    const SimResult run = diffusingComputation(opt);
    const Cut fin = finalCut(*run.computation);
    std::int64_t remoteWork = 0;
    for (ProcessId p = 1; p < opt.processes; ++p) {
      remoteWork += run.trace->valueAtCut(fin, p, "worked");
    }
    trialsWithRemoteWork += remoteWork > 0;
  }
  EXPECT_GT(trialsWithRemoteWork, 5);
}

TEST(DiffusingTest, TerminationPredicateIsStableAndLinearDetectable) {
  DiffusingOptions opt;
  opt.seed = 4;
  opt.processes = 4;
  opt.totalWorkBudget = 6;
  const SimResult run = diffusingComputation(opt);
  const VectorClocks vc(*run.computation);
  const auto oracle = detect::terminationOracle(*run.trace, "active");
  // Subtlety: "all passive ∧ nothing in flight" also holds at the *initial*
  // cut, before the environment kicks the root — and is destroyed there.
  // Termination is stable only once the computation has started, so the
  // stable predicate conjoins "the root has worked".
  const auto quiet = [&](const Cut& cut) { return !oracle(cut).has_value(); };
  const auto phi = [&](const Cut& cut) {
    return quiet(cut) && run.trace->valueAtCut(cut, 0, "worked") >= 1;
  };
  EXPECT_FALSE(detect::isStableOn(vc, quiet));  // the naive predicate is not
  EXPECT_TRUE(detect::isStableOn(vc, phi));     // the started-form is
  // The stable detector sees it at the final cut.
  EXPECT_TRUE(detect::detectStable(*run.computation, phi).possibly);
  // The linear detector finds the least satisfying cut. "Root has started"
  // keeps the oracle linear: a violating cut with an idle root must advance
  // the root.
  const auto startedOracle = [&](const Cut& cut) -> std::optional<ProcessId> {
    if (run.trace->valueAtCut(cut, 0, "worked") < 1) return ProcessId{0};
    return oracle(cut);
  };
  const auto least = detect::detectLinear(vc, startedOracle);
  ASSERT_TRUE(least.cut.has_value());
  EXPECT_TRUE(phi(*least.cut));
  EXPECT_GT(least.cut->level(), 0);  // strictly after the initial cut
}

TEST(DiffusingTest, DeclarationNeverPrecedesQuiescence) {
  // definitely-style check: there is no consistent cut where the root has
  // declared but some process is still active.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DiffusingOptions opt;
    opt.seed = seed;
    opt.processes = 4;
    const SimResult run = diffusingComputation(opt);
    const VectorClocks vc(*run.computation);
    bool unsound = false;
    lattice::forEachConsistentCut(vc, [&](const Cut& cut) {
      if (run.trace->valueAtCut(cut, 0, "terminated") == 0) return true;
      for (ProcessId p = 0; p < opt.processes; ++p) {
        if (run.trace->valueAtCut(cut, p, "active") != 0) {
          unsound = true;
          return false;
        }
      }
      return true;
    });
    EXPECT_FALSE(unsound) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gpd::sim
