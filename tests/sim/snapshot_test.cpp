// Chandy–Lamport snapshot correctness (paper reference [2]): the recorded
// global state is a consistent cut of the recorded computation, and money is
// conserved through it.
#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "detect/linear.h"
#include "sim/workloads.h"

namespace gpd::sim {
namespace {

// The snapshot cut: each process at its recording event (where "recorded"
// flips to 1).
Cut snapshotCut(const SimResult& run) {
  const Computation& c = *run.computation;
  Cut cut(std::vector<int>(c.processCount(), -1));
  for (ProcessId p = 0; p < c.processCount(); ++p) {
    for (int e = 0; e < c.eventCount(p); ++e) {
      if (run.trace->value(p, "recorded", e) != 0) {
        cut.last[p] = e;
        break;
      }
    }
  }
  return cut;
}

// Money crossing a cut: sent inside, received outside.
std::int64_t inFlightAt(const SimResult& run, const Cut& cut) {
  std::int64_t total = 0;
  const Computation& c = *run.computation;
  for (const Message& m : c.messages()) {
    if (cut.contains(m.send) && !cut.contains(m.receive)) {
      // Transfer amounts are recoverable from the receiver's balance jump.
      const std::int64_t before =
          run.trace->value(m.receive.process, "balance", m.receive.index - 1);
      const std::int64_t after =
          run.trace->value(m.receive.process, "balance", m.receive.index);
      if (after > before) total += after - before;  // markers leave it flat
    }
  }
  return total;
}

TEST(SnapshotTest, EveryProcessRecordsAndCompletes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SnapshotBankOptions opt;
    opt.seed = seed;
    const SimResult run = snapshotBank(opt);
    const Cut fin = finalCut(*run.computation);
    for (ProcessId p = 0; p < opt.processes; ++p) {
      EXPECT_EQ(run.trace->valueAtCut(fin, p, "recorded"), 1) << "seed " << seed;
      EXPECT_EQ(run.trace->valueAtCut(fin, p, "snapComplete"), 1)
          << "seed " << seed;
    }
  }
}

TEST(SnapshotTest, SnapshotCutIsConsistent) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SnapshotBankOptions opt;
    opt.seed = seed;
    opt.processes = 4;
    const SimResult run = snapshotBank(opt);
    const Cut cut = snapshotCut(run);
    for (int v : cut.last) ASSERT_GE(v, 0) << "seed " << seed;
    const VectorClocks vc(*run.computation);
    EXPECT_TRUE(vc.isConsistent(cut)) << "seed " << seed << " cut "
                                      << cut.toString();
  }
}

TEST(SnapshotTest, MoneyConservedInRecordedState) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SnapshotBankOptions opt;
    opt.seed = seed;
    opt.processes = 5;
    opt.transfersPerProcess = 6;
    const SimResult run = snapshotBank(opt);
    const Cut fin = finalCut(*run.computation);
    std::int64_t recorded = 0;
    for (ProcessId p = 0; p < opt.processes; ++p) {
      recorded += run.trace->valueAtCut(fin, p, "snapBalance");
      if (run.trace->has(p, "snapInTransit")) {
        recorded += run.trace->valueAtCut(fin, p, "snapInTransit");
      }
    }
    EXPECT_EQ(recorded, opt.processes * opt.initialBalance)
        << "seed " << seed;
  }
}

TEST(SnapshotTest, RecordedStateMatchesTheSnapshotCut) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SnapshotBankOptions opt;
    opt.seed = seed;
    const SimResult run = snapshotBank(opt);
    const Cut cut = snapshotCut(run);
    const Cut fin = finalCut(*run.computation);
    std::int64_t snapBalances = 0;
    std::int64_t snapTransit = 0;
    for (ProcessId p = 0; p < opt.processes; ++p) {
      // Balance recorded == balance at the snapshot cut (the recording event
      // itself does not move money).
      EXPECT_EQ(run.trace->valueAtCut(fin, p, "snapBalance"),
                run.trace->valueAtCut(cut, p, "balance"))
          << "seed " << seed << " p" << p;
      snapBalances += run.trace->valueAtCut(fin, p, "snapBalance");
      if (run.trace->has(p, "snapInTransit")) {
        snapTransit += run.trace->valueAtCut(fin, p, "snapInTransit");
      }
    }
    // Recorded in-transit == money actually crossing the snapshot cut.
    EXPECT_EQ(snapTransit, inFlightAt(run, cut)) << "seed " << seed;
    EXPECT_EQ(snapBalances + snapTransit, opt.processes * opt.initialBalance);
  }
}

TEST(SnapshotTest, ConservationAtEveryEmptyChannelCut) {
  // Cross-module: the linear-predicate detector finds the least cut with no
  // money in flight; total balance there must be the system total.
  SnapshotBankOptions opt;
  opt.seed = 3;
  const SimResult run = snapshotBank(opt);
  const VectorClocks vc(*run.computation);
  const auto res =
      detect::detectLinear(vc, detect::channelsEmptyOracle(*run.computation));
  ASSERT_TRUE(res.cut.has_value());  // the initial cut qualifies already
  std::int64_t total = 0;
  for (ProcessId p = 0; p < opt.processes; ++p) {
    total += run.trace->valueAtCut(*res.cut, p, "balance");
  }
  EXPECT_EQ(total, opt.processes * opt.initialBalance);
}

}  // namespace
}  // namespace gpd::sim
