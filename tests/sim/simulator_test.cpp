#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "util/check.h"

namespace gpd::sim {
namespace {

// p0 pings each peer once; peers pong back; p0 counts pongs.
class PingProgram final : public Program {
 public:
  enum { kStart = 1, kPing = 1, kPong = 2 };

  void onInit(ProcessContext& ctx) override {
    ctx.setVar("pongs", 0);
    if (ctx.self() == 0) ctx.schedule(kStart, 1);
  }

  void onTimer(ProcessContext& ctx, int tag) override {
    GPD_CHECK(tag == kStart);
    for (ProcessId p = 1; p < ctx.processCount(); ++p) ctx.send(p, kPing);
  }

  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    if (msg.type == kPing) {
      ctx.send(msg.from, kPong);
    } else {
      ctx.setVar("pongs", ctx.getVar("pongs") + 1);
    }
  }
};

std::vector<std::unique_ptr<Program>> pingPrograms(int n) {
  std::vector<std::unique_ptr<Program>> programs;
  for (int i = 0; i < n; ++i) programs.push_back(std::make_unique<PingProgram>());
  return programs;
}

TEST(SimulatorTest, PingPongProducesExpectedEvents) {
  SimOptions opt;
  opt.seed = 7;
  const SimResult res = runSimulation(opt, pingPrograms(4));
  const Computation& c = *res.computation;
  EXPECT_EQ(c.processCount(), 4);
  // p0: initial + start timer + 3 pongs = 5 events; peers: initial + ping.
  EXPECT_EQ(c.eventCount(0), 5);
  for (ProcessId p = 1; p < 4; ++p) EXPECT_EQ(c.eventCount(p), 2);
  // 3 pings + 3 pongs delivered.
  EXPECT_EQ(c.messages().size(), 6u);
  EXPECT_EQ(res.droppedActions, 0);
  // Final pong count visible in the trace.
  EXPECT_EQ(res.trace->value(0, "pongs", 4), 3);
}

TEST(SimulatorTest, TraceRecordsValueAfterEachEvent) {
  SimOptions opt;
  const SimResult res = runSimulation(opt, pingPrograms(3));
  const Computation& c = *res.computation;
  // pongs increases by one per pong event.
  for (int i = 0; i < c.eventCount(0); ++i) {
    const std::int64_t v = res.trace->value(0, "pongs", i);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 2);
    if (i > 0) { EXPECT_GE(v, res.trace->value(0, "pongs", i - 1)); }
  }
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  SimOptions opt;
  opt.seed = 99;
  const SimResult a = runSimulation(opt, pingPrograms(4));
  const SimResult b = runSimulation(opt, pingPrograms(4));
  EXPECT_EQ(a.computation->messages(), b.computation->messages());
}

TEST(SimulatorTest, DifferentSeedsChangeInterleaving) {
  SimOptions a;
  a.seed = 1;
  SimOptions b;
  b.seed = 2;
  const SimResult ra = runSimulation(a, pingPrograms(5));
  const SimResult rb = runSimulation(b, pingPrograms(5));
  EXPECT_NE(ra.computation->messages(), rb.computation->messages());
}

TEST(SimulatorTest, ComputationIsCausallyValid) {
  SimOptions opt;
  opt.seed = 5;
  const SimResult res = runSimulation(opt, pingPrograms(4));
  // Builder validated acyclicity; additionally the clocks must build and the
  // receive of every message must causally follow its send.
  const VectorClocks vc(*res.computation);
  for (const Message& m : res.computation->messages()) {
    EXPECT_TRUE(vc.precedes(m.send, m.receive));
  }
}

class InfiniteProgram final : public Program {
 public:
  void onInit(ProcessContext& ctx) override { ctx.schedule(1, 1); }
  void onTimer(ProcessContext& ctx, int) override { ctx.schedule(1, 1); }
  void onMessage(ProcessContext&, const SimMessage&) override {}
};

TEST(SimulatorTest, EventCapStopsRunawayPrograms) {
  SimOptions opt;
  opt.maxTotalEvents = 50;
  std::vector<std::unique_ptr<Program>> programs;
  programs.push_back(std::make_unique<InfiniteProgram>());
  programs.push_back(std::make_unique<InfiniteProgram>());
  const SimResult res = runSimulation(opt, std::move(programs));
  EXPECT_EQ(res.computation->totalEvents(), 52);  // cap + 2 initials
  EXPECT_GT(res.droppedActions, 0);
}

class SendInInitProgram final : public Program {
 public:
  void onInit(ProcessContext& ctx) override { ctx.send(1, 1); }
  void onMessage(ProcessContext&, const SimMessage&) override {}
};

TEST(SimulatorTest, InitialEventsCannotSend) {
  std::vector<std::unique_ptr<Program>> programs;
  programs.push_back(std::make_unique<SendInInitProgram>());
  programs.push_back(std::make_unique<SendInInitProgram>());
  SimOptions opt;
  EXPECT_THROW(runSimulation(opt, std::move(programs)), CheckFailure);
}

class FifoProbeProgram final : public Program {
 public:
  enum { kStart = 1 };
  void onInit(ProcessContext& ctx) override {
    if (ctx.self() == 0) ctx.schedule(kStart, 1);
  }
  void onTimer(ProcessContext& ctx, int) override {
    for (int i = 0; i < 20; ++i) ctx.send(1, /*type=*/i);
  }
  void onMessage(ProcessContext& ctx, const SimMessage& msg) override {
    const std::int64_t last = ctx.getVar("last");
    ctx.setVar("inOrder",
               ctx.getVar("inOrder") == 0 && msg.type == last ? 1 : 2);
    ctx.setVar("last", last + 1);
    if (msg.type != static_cast<int>(last)) ctx.setVar("reordered", 1);
  }
};

TEST(SimulatorTest, MessageLossDropsDeliveries) {
  SimOptions lossy;
  lossy.seed = 4;
  lossy.messageLossProbability = 0.5;
  const SimResult res = runSimulation(lossy, pingPrograms(4));
  EXPECT_GT(res.droppedMessages, 0);
  // Lossless control run delivers all 3 pings + pongs for the answered ones.
  SimOptions clean = lossy;
  clean.messageLossProbability = 0.0;
  const SimResult ref = runSimulation(clean, pingPrograms(4));
  EXPECT_EQ(ref.droppedMessages, 0);
  EXPECT_LT(res.computation->messages().size(),
            ref.computation->messages().size());
  // The lossy trace is still a valid computation (no dangling receives).
  const VectorClocks vc(*res.computation);
  for (const Message& m : res.computation->messages()) {
    EXPECT_TRUE(vc.precedes(m.send, m.receive));
  }
}

TEST(SimulatorTest, TotalLossSilencesEverything) {
  SimOptions opt;
  opt.messageLossProbability = 1.0;
  const SimResult res = runSimulation(opt, pingPrograms(3));
  EXPECT_TRUE(res.computation->messages().empty());
  EXPECT_EQ(res.droppedMessages, 2);  // the two pings
}

TEST(SimulatorTest, FifoOptionPreservesChannelOrder) {
  for (const bool fifo : {true, false}) {
    // Scan seeds; non-FIFO mode must show at least one reordering somewhere,
    // FIFO mode must never reorder.
    bool sawReorder = false;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      SimOptions opt;
      opt.seed = seed;
      opt.fifoChannels = fifo;
      std::vector<std::unique_ptr<Program>> programs;
      programs.push_back(std::make_unique<FifoProbeProgram>());
      programs.push_back(std::make_unique<FifoProbeProgram>());
      const SimResult res = runSimulation(opt, std::move(programs));
      const int last = res.computation->eventCount(1) - 1;
      if (res.trace->has(1, "reordered") &&
          res.trace->value(1, "reordered", last) == 1) {
        sawReorder = true;
      }
    }
    EXPECT_EQ(sawReorder, !fifo);
  }
}

}  // namespace
}  // namespace gpd::sim
