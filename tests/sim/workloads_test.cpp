#include "sim/workloads.h"

#include <gtest/gtest.h>

#include "detect/detector.h"
#include "lattice/explore.h"

namespace gpd::sim {
namespace {

TEST(TokenRingTest, CleanRunHasNoMutualExclusionViolation) {
  TokenRingOptions opt;
  opt.processes = 4;
  opt.rounds = 2;
  opt.seed = 3;
  const SimResult res = tokenRing(opt);
  detect::Detector det(*res.trace);
  for (ProcessId i = 0; i < 4; ++i) {
    for (ProcessId j = i + 1; j < 4; ++j) {
      ConjunctivePredicate viol{{varCompare(i, "cs", Relop::GreaterEq, 1),
                                 varCompare(j, "cs", Relop::GreaterEq, 1)}};
      EXPECT_FALSE(det.possibly(viol).has_value())
          << "processes " << i << "," << j;
    }
  }
}

TEST(TokenRingTest, RogueProcessViolatesMutualExclusion) {
  TokenRingOptions opt;
  opt.processes = 4;
  opt.rounds = 3;
  opt.seed = 3;
  opt.rogueProcess = 2;
  const SimResult res = tokenRing(opt);
  detect::Detector det(*res.trace);
  bool violated = false;
  for (ProcessId i = 0; i < 4 && !violated; ++i) {
    for (ProcessId j = i + 1; j < 4; ++j) {
      ConjunctivePredicate viol{{varCompare(i, "cs", Relop::GreaterEq, 1),
                                 varCompare(j, "cs", Relop::GreaterEq, 1)}};
      if (det.possibly(viol).has_value()) {
        violated = true;
        break;
      }
    }
  }
  EXPECT_TRUE(violated);
}

TEST(TokenRingTest, TokenCountConservedWithoutFaults) {
  TokenRingOptions opt;
  opt.processes = 5;
  opt.tokens = 2;
  opt.rounds = 2;
  opt.seed = 11;
  const SimResult res = tokenRing(opt);
  detect::Detector det(*res.trace);
  std::vector<SumTerm> terms;
  for (ProcessId p = 0; p < 5; ++p) terms.push_back({p, "tokens"});
  // In-transit tokens make the held-count dip below 2, but it can never
  // exceed 2, and 2 must be observable (e.g. initially).
  SumPredicate over{terms, Relop::Greater, 2};
  EXPECT_FALSE(det.possibly(over).has_value());
  SumPredicate exact{terms, Relop::Equal, 2};
  EXPECT_TRUE(det.possibly(exact).has_value());
}

TEST(TokenRingTest, DroppedTokenDetectable) {
  TokenRingOptions opt;
  opt.processes = 4;
  opt.tokens = 1;
  opt.rounds = 3;
  opt.seed = 5;
  opt.dropTokenAtHop = 4;
  const SimResult res = tokenRing(opt);
  detect::Detector det(*res.trace);
  std::vector<SumTerm> terms;
  for (ProcessId p = 0; p < 4; ++p) terms.push_back({p, "tokens"});
  // After the drop the system quiesces with zero held tokens — the final
  // cut shows the loss, so definitely(Σtokens = 0)… at least possibly.
  SumPredicate zero{terms, Relop::Equal, 0};
  const auto cut = det.possibly(zero);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(zero.sumAtCut(*res.trace, finalCut(*res.computation)), 0);
}

TEST(TokenRingTest, DuplicatedTokenDetectable) {
  TokenRingOptions opt;
  opt.processes = 4;
  opt.tokens = 1;
  opt.rounds = 4;
  opt.seed = 5;
  opt.duplicateTokenAtHop = 3;
  const SimResult res = tokenRing(opt);
  detect::Detector det(*res.trace);
  std::vector<SumTerm> terms;
  for (ProcessId p = 0; p < 4; ++p) terms.push_back({p, "tokens"});
  SumPredicate two{terms, Relop::GreaterEq, 2};
  EXPECT_TRUE(det.possibly(two).has_value());
}

TEST(LeaderElectionTest, UniqueIdsElectExactlyOneLeader) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    LeaderElectionOptions opt;
    opt.processes = 5;
    opt.seed = seed;
    const SimResult res = leaderElection(opt);
    const Cut final = finalCut(*res.computation);
    int leaders = 0;
    for (ProcessId p = 0; p < 5; ++p) {
      leaders += res.trace->valueAtCut(final, p, "leader") != 0;
    }
    EXPECT_EQ(leaders, 1) << "seed " << seed;
    // No cut ever shows two leaders.
    detect::Detector det(*res.trace);
    std::vector<SumTerm> terms;
    for (ProcessId p = 0; p < 5; ++p) terms.push_back({p, "leader"});
    SumPredicate twoLeaders{terms, Relop::GreaterEq, 2};
    EXPECT_FALSE(det.possibly(twoLeaders).has_value());
  }
}

TEST(LeaderElectionTest, DuplicateMaxIdYieldsTwoLeaders) {
  LeaderElectionOptions opt;
  opt.processes = 6;
  opt.seed = 4;
  opt.duplicateMaxId = true;
  const SimResult res = leaderElection(opt);
  detect::Detector det(*res.trace);
  std::vector<SumTerm> terms;
  for (ProcessId p = 0; p < 6; ++p) terms.push_back({p, "leader"});
  SumPredicate twoLeaders{terms, Relop::GreaterEq, 2};
  EXPECT_TRUE(det.possibly(twoLeaders).has_value());
}

TEST(VotingTest, CommitIffAllYes) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    VotingOptions opt;
    opt.processes = 5;
    opt.yesProbability = 0.6;
    opt.seed = seed;
    const SimResult res = voting(opt);
    const Cut final = finalCut(*res.computation);
    int yes = 0;
    for (ProcessId p = 1; p < 5; ++p) {
      yes += res.trace->valueAtCut(final, p, "yes") != 0;
    }
    const bool committed =
        res.trace->valueAtCut(final, 0, "committed") != 0;
    const bool aborted = res.trace->valueAtCut(final, 0, "aborted") != 0;
    EXPECT_NE(committed, aborted) << "seed " << seed;
    EXPECT_EQ(committed, yes == 4) << "seed " << seed;
  }
}

TEST(VotingTest, DecisionIsDefinite) {
  VotingOptions opt;
  opt.processes = 4;
  opt.seed = 2;
  const SimResult res = voting(opt);
  detect::Detector det(*res.trace);
  // Every run reaches a decided state: committed + aborted = 1 eventually.
  SumPredicate decided{{{0, "committed"}, {0, "aborted"}}, Relop::Equal, 1};
  EXPECT_TRUE(det.definitely(decided));
}

TEST(PhilosophersTest, GrabbyModeCanDeadlock) {
  // Seed 1 deadlocks: everyone holds its own fork and waits for the right.
  PhilosophersOptions opt;
  opt.philosophers = 4;
  opt.meals = 2;
  opt.seed = 1;
  const SimResult res = diningPhilosophers(opt);
  const Cut fin = finalCut(*res.computation);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(res.trace->valueAtCut(fin, p, "waiting"), 1);
    EXPECT_EQ(res.trace->valueAtCut(fin, p, "meals"), 0);
  }
  // The detector sees the all-waiting state (deadlock suspicion predicate).
  detect::Detector det(*res.trace);
  ConjunctivePredicate allWaiting;
  for (ProcessId p = 0; p < 4; ++p) {
    allWaiting.terms.push_back(varTrue(p, "waiting"));
  }
  EXPECT_TRUE(det.possibly(allWaiting).has_value());
  // A stable deadlock holds on every extension: definitely, too.
  EXPECT_TRUE(det.definitely(allWaiting));
}

TEST(PhilosophersTest, GrabbyModeSometimesCompletes) {
  PhilosophersOptions opt;
  opt.philosophers = 4;
  opt.meals = 2;
  opt.seed = 2;  // a lucky interleaving
  const SimResult res = diningPhilosophers(opt);
  const Cut fin = finalCut(*res.computation);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(res.trace->valueAtCut(fin, p, "meals"), 2);
    EXPECT_EQ(res.trace->valueAtCut(fin, p, "waiting"), 0);
  }
}

TEST(PhilosophersTest, OrderedAcquisitionNeverDeadlocks) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    PhilosophersOptions opt;
    opt.philosophers = 4;
    opt.meals = 2;
    opt.seed = seed;
    opt.orderedAcquisition = true;
    const SimResult res = diningPhilosophers(opt);
    const Cut fin = finalCut(*res.computation);
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_EQ(res.trace->valueAtCut(fin, p, "meals"), 2) << "seed " << seed;
      EXPECT_EQ(res.trace->valueAtCut(fin, p, "waiting"), 0) << "seed " << seed;
    }
  }
}

TEST(PhilosophersTest, AdjacentPhilosophersNeverEatTogether) {
  for (const bool ordered : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      PhilosophersOptions opt;
      opt.philosophers = 4;
      opt.meals = 2;
      opt.seed = seed;
      opt.orderedAcquisition = ordered;
      const SimResult res = diningPhilosophers(opt);
      detect::Detector det(*res.trace);
      for (ProcessId p = 0; p < 4; ++p) {
        const ProcessId q = (p + 1) % 4;
        ConjunctivePredicate bothEat{
            {varTrue(p, "eating"), varTrue(q, "eating")}};
        EXPECT_FALSE(det.possibly(bothEat).has_value())
            << "seed " << seed << " pair " << p << "," << q;
      }
    }
  }
}

TEST(PhilosophersTest, OppositePhilosophersCanEatTogether) {
  // Forks of philosophers 0 and 2 are disjoint on a ring of 4; some seed
  // exhibits concurrent meals.
  bool seen = false;
  for (std::uint64_t seed = 1; seed <= 10 && !seen; ++seed) {
    PhilosophersOptions opt;
    opt.philosophers = 4;
    opt.meals = 3;
    opt.seed = seed;
    opt.orderedAcquisition = true;
    const SimResult res = diningPhilosophers(opt);
    detect::Detector det(*res.trace);
    ConjunctivePredicate bothEat{
        {varTrue(0, "eating"), varTrue(2, "eating")}};
    seen = det.possibly(bothEat).has_value();
  }
  EXPECT_TRUE(seen);
}

TEST(ProducerConsumerTest, InFlightBalanceIsBoundedSum) {
  ProducerConsumerOptions opt;
  opt.producers = 2;
  opt.consumers = 2;
  opt.itemsPerProducer = 4;
  opt.seed = 9;
  const SimResult res = producerConsumer(opt);
  const Computation& c = *res.computation;
  // produced − consumed ≥ 0 at every consistent cut, 0 at the end.
  std::vector<SumTerm> terms;
  for (ProcessId p = 0; p < 2; ++p) terms.push_back({p, "produced"});
  VariableTrace& trace = *res.trace;
  // Negated consumption: define derived variables.
  for (ProcessId p = 2; p < 4; ++p) {
    std::vector<std::int64_t> neg(c.eventCount(p));
    for (int i = 0; i < c.eventCount(p); ++i) {
      neg[i] = -trace.value(p, "consumed", i);
    }
    trace.define(p, "negConsumed", std::move(neg));
    terms.push_back({p, "negConsumed"});
  }
  detect::Detector det(trace);
  SumPredicate negative{terms, Relop::Less, 0};
  EXPECT_FALSE(det.possibly(negative).has_value());
  SumPredicate atEnd{terms, Relop::Equal, 0};
  EXPECT_EQ(atEnd.sumAtCut(trace, finalCut(c)), 0);
  // Some cut has everything produced still in flight? At least one item in
  // flight must be observable.
  SumPredicate oneInFlight{terms, Relop::GreaterEq, 1};
  EXPECT_TRUE(det.possibly(oneInFlight).has_value());
}

}  // namespace
}  // namespace gpd::sim
