// Ricart–Agrawala verified by detection: the correct protocol admits no
// consistent cut with two processes in the critical section — over any seed
// — while the "rude peer" bug (never deferring) reintroduces the race.
#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "detect/cpdhb.h"
#include "sim/workloads.h"

namespace gpd::sim {
namespace {

bool anyViolation(const SimResult& run, int processes) {
  const VectorClocks clocks(*run.computation);
  for (ProcessId i = 0; i < processes; ++i) {
    for (ProcessId j = i + 1; j < processes; ++j) {
      ConjunctivePredicate both{{varTrue(i, "cs"), varTrue(j, "cs")}};
      if (detect::detectConjunctive(clocks, *run.trace, both).found) {
        return true;
      }
    }
  }
  return false;
}

TEST(RicartAgrawalaTest, CorrectProtocolNeverViolatesMutualExclusion) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RicartAgrawalaOptions opt;
    opt.processes = 4;
    opt.rounds = 2;
    opt.seed = seed;
    const SimResult run = ricartAgrawala(opt);
    EXPECT_FALSE(anyViolation(run, 4)) << "seed " << seed;
  }
}

TEST(RicartAgrawalaTest, EveryProcessCompletesItsRounds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RicartAgrawalaOptions opt;
    opt.processes = 4;
    opt.rounds = 3;
    opt.seed = seed;
    const SimResult run = ricartAgrawala(opt);
    const Cut fin = finalCut(*run.computation);
    for (ProcessId p = 0; p < 4; ++p) {
      EXPECT_EQ(run.trace->valueAtCut(fin, p, "completed"), 3)
          << "seed " << seed << " p" << p;
      EXPECT_EQ(run.trace->valueAtCut(fin, p, "cs"), 0);
    }
  }
}

TEST(RicartAgrawalaTest, RudePeerReintroducesTheRace) {
  int violatingSeeds = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RicartAgrawalaOptions opt;
    opt.processes = 4;
    opt.rounds = 3;
    opt.seed = seed;
    opt.rudeProcess = 1;
    const SimResult run = ricartAgrawala(opt);
    violatingSeeds += anyViolation(run, 4);
  }
  EXPECT_GT(violatingSeeds, 0);
}

TEST(RicartAgrawalaTest, MessageComplexityIsTwoNMinusOnePerEntry) {
  RicartAgrawalaOptions opt;
  opt.processes = 5;
  opt.rounds = 2;
  opt.seed = 6;
  const SimResult run = ricartAgrawala(opt);
  // 2(n−1) messages per CS entry (requests + replies), all delivered.
  EXPECT_EQ(run.computation->messages().size(),
            static_cast<std::size_t>(2 * (5 - 1) * 5 * 2));
}

TEST(RicartAgrawalaTest, SingleProcessDegenerates) {
  RicartAgrawalaOptions opt;
  opt.processes = 1;
  opt.rounds = 2;
  const SimResult run = ricartAgrawala(opt);
  const Cut fin = finalCut(*run.computation);
  EXPECT_EQ(run.trace->valueAtCut(fin, 0, "completed"), 2);
  EXPECT_TRUE(run.computation->messages().empty());
}

}  // namespace
}  // namespace gpd::sim
