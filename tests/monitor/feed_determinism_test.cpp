// RNG / fault-schedule determinism audit (the golden determinism test).
//
// Every randomized layer in the repo draws from gpd::Rng (xoshiro256**
// seeded through splitmix64) — pure 64-bit integer arithmetic, so the same
// seed must yield the same stream on every platform, build type, and run.
// The goldens below pin that stream and the end-to-end fault schedules of
// replayConjunctiveFaulty for fixed seeds: if any layer starts consuming
// entropy from somewhere else (std::random_device, ASLR-dependent container
// order, time), these digests move and the crash-recovery + soak-harness
// equivalence guarantees silently die. That is the failure this test exists
// to catch early.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "gpd.h"

namespace gpd {
namespace {

std::uint64_t fnv1a64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

struct System {
  Computation comp;
  VariableTrace trace;
  VectorClocks clocks;
  ConjunctivePredicate pred;

  explicit System(Computation c, Rng& rng)
      : comp(std::move(c)), trace(comp), clocks(comp) {
    defineRandomBools(trace, "b", 0.5, rng);
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "b"));
    }
  }
};

System makeSystem(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 101);
  RandomComputationOptions opt;
  opt.processes = 3 + static_cast<int>(rng.index(2));
  opt.eventsPerProcess = 4 + static_cast<int>(rng.index(3));
  opt.messageProbability = 0.4;
  Computation comp = randomComputation(opt, rng);
  return System(std::move(comp), rng);
}

// Digest of everything observable about one faulty replay: the fault
// schedule's effects, the session's protocol activity, and the verdict.
std::uint64_t replayDigest(std::uint64_t seed) {
  const System s = makeSystem(seed);
  Rng rng(seed * 31 + 5);
  const auto runOrder = graph::randomLinearExtension(s.comp.toDag(), rng);

  monitor::FaultOptions faults;
  faults.dropProbability = rng.real() * 0.2;
  faults.duplicateProbability = rng.real() * 0.3;
  faults.reorderProbability = rng.real() * 0.3;
  faults.burstProbability = rng.real() * 0.1;

  monitor::SessionOptions sopt;
  sopt.retryTimeout = 8;
  monitor::MonitorSession session(s.comp.processCount(), sopt);
  const auto res = monitor::replayConjunctiveFaulty(
      s.clocks, s.trace, s.pred, runOrder, session, faults, rng);

  std::uint64_t h = 14695981039346656037ull;
  h = fnv1a64(h, static_cast<std::uint64_t>(res.verdict));
  h = fnv1a64(h, res.detected ? 1 : 0);
  h = fnv1a64(h, res.notificationsSent);
  h = fnv1a64(h, res.wireDeliveries);
  h = fnv1a64(h, res.dropped);
  h = fnv1a64(h, res.duplicated);
  h = fnv1a64(h, res.reordered);
  h = fnv1a64(h, res.nacksSent);
  h = fnv1a64(h, res.retransmissions);
  h = fnv1a64(h, static_cast<std::uint64_t>(res.degradedStreams));
  h = fnv1a64(h, session.stats().duplicates);
  h = fnv1a64(h, session.stats().gapsRecovered);
  return h;
}

// The raw generator stream for fixed seeds. These constants are the
// xoshiro256** reference outputs — a new platform or toolchain must
// reproduce them bit-exactly.
TEST(FeedDeterminism, RngStreamGolden) {
  Rng a(42);
  EXPECT_EQ(a.next(), 1546998764402558742ull);
  EXPECT_EQ(a.next(), 6990951692964543102ull);
  EXPECT_EQ(a.next(), 12544586762248559009ull);
  Rng b(0);  // seed 0 must not collapse to a zero state
  EXPECT_NE(b.next(), 0ull);
  EXPECT_NE(b.next(), b.next());
  // Derived draws sit on top of the same stream.
  Rng c(7);
  EXPECT_EQ(c.index(1000), 994u);
  EXPECT_EQ(c.uniform(10, 20), 12);
  EXPECT_TRUE(c.real() >= 0.0 && c.real() < 1.0);
}

// End-to-end fault-schedule goldens: computation generation, predicate
// density, linear extension, fault draws, NACK/retransmit interleaving —
// one digest per seed covers the whole pipeline.
TEST(FeedDeterminism, FaultScheduleGolden) {
  EXPECT_EQ(replayDigest(1), 6019971420578634125ull);
  EXPECT_EQ(replayDigest(2), 12301802831599220896ull);
  EXPECT_EQ(replayDigest(3), 14812280608521815081ull);
  EXPECT_EQ(replayDigest(4), 12083830906639645582ull);
}

// In-process repeatability (catches hidden global state even if the goldens
// are regenerated on a new reference platform).
TEST(FeedDeterminism, ReplayIsRepeatableWithinOneProcess) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(replayDigest(seed), replayDigest(seed)) << "seed " << seed;
  }
}

// Checkpoint hooks observe the run; they must never perturb it. This is the
// invariant behind `gpdtool monitor --checkpoint-every`: writing periodic
// checkpoints cannot change the verdict or any counter.
TEST(FeedDeterminism, CheckpointHooksDoNotPerturbTheReplay) {
  const std::uint64_t seed = 9;
  const System s = makeSystem(seed);

  const auto runOnce = [&](const monitor::ReplayHooks& hooks) {
    Rng rng(seed * 31 + 5);
    const auto runOrder = graph::randomLinearExtension(s.comp.toDag(), rng);
    monitor::FaultOptions faults;
    faults.dropProbability = rng.real() * 0.2;
    faults.duplicateProbability = rng.real() * 0.3;
    faults.reorderProbability = rng.real() * 0.3;
    monitor::SessionOptions sopt;
    sopt.retryTimeout = 8;
    monitor::MonitorSession session(s.comp.processCount(), sopt);
    return monitor::replayConjunctiveFaulty(
        s.clocks, s.trace, s.pred, runOrder, session, faults, rng, hooks);
  };

  int checkpoints = 0;
  std::string lastCheckpoint;
  monitor::ReplayHooks hooks;
  hooks.checkpointEveryDeliveries = 3;
  hooks.onCheckpoint = [&](const monitor::MonitorSession& live) {
    ++checkpoints;
    std::ostringstream os;
    io::writeCheckpoint(os, live.snapshot());  // must serialize cleanly
    lastCheckpoint = os.str();
  };

  const auto bare = runOnce({});
  const auto hooked = runOnce(hooks);
  EXPECT_GT(checkpoints, 0);
  EXPECT_FALSE(lastCheckpoint.empty());
  EXPECT_EQ(bare.verdict, hooked.verdict);
  EXPECT_EQ(bare.detected, hooked.detected);
  EXPECT_EQ(bare.wireDeliveries, hooked.wireDeliveries);
  EXPECT_EQ(bare.dropped, hooked.dropped);
  EXPECT_EQ(bare.duplicated, hooked.duplicated);
  EXPECT_EQ(bare.nacksSent, hooked.nacksSent);
  EXPECT_EQ(bare.retransmissions, hooked.retransmissions);
  EXPECT_EQ(bare.degradedStreams, hooked.degradedStreams);
}

}  // namespace
}  // namespace gpd
