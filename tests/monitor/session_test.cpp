#include "monitor/session.h"

#include <gtest/gtest.h>

#include <sstream>

#include "io/checkpoint_io.h"
#include "util/check.h"

namespace gpd::monitor {
namespace {

// Collects NACK requests so tests can service them like a transport would.
struct NackLog {
  struct Request {
    int process;
    std::uint64_t lo, hi;
  };
  std::vector<Request> requests;

  NackFn fn() {
    return [this](int p, std::uint64_t lo, std::uint64_t hi) {
      requests.push_back({p, lo, hi});
    };
  }
};

SessionOptions fastRetry() {
  SessionOptions opt;
  opt.retryTimeout = 4;
  opt.maxRetries = 2;
  return opt;
}

TEST(MonitorSessionTest, InOrderStreamDetectsLikeBareMonitor) {
  MonitorSession s(2);
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Delivered);
  EXPECT_EQ(s.deliver(1, 0, {0, 1}), Delivery::Detected);
  EXPECT_TRUE(s.detected());
  EXPECT_EQ(s.verdict(), Verdict::Detected);
  EXPECT_EQ(s.monitor().witness()[0], (std::vector<int>{1, 0}));
}

TEST(MonitorSessionTest, DuplicatesAreSuppressed) {
  MonitorSession s(2);
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Delivered);
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Duplicate);
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Duplicate);
  EXPECT_EQ(s.stats().duplicates, 2u);
  // The monitor saw the notification exactly once.
  EXPECT_EQ(s.monitor().enqueued(), 1u);
}

TEST(MonitorSessionTest, ReorderedNotificationsDeliverInProgramOrder) {
  NackLog nacks;
  MonitorSession s(2, {}, nacks.fn());
  // seq 1 and 2 arrive before seq 0: parked, gap NACKed.
  EXPECT_EQ(s.deliver(0, 1, {3, 0}), Delivery::Buffered);
  EXPECT_EQ(s.deliver(0, 2, {5, 0}), Delivery::Buffered);
  EXPECT_EQ(s.health(0), StreamHealth::Recovering);
  ASSERT_EQ(nacks.requests.size(), 1u);
  EXPECT_EQ(nacks.requests[0].process, 0);
  EXPECT_EQ(nacks.requests[0].lo, 0u);
  EXPECT_EQ(nacks.requests[0].hi, 0u);
  // The retransmission fills the gap; everything drains in order.
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Delivered);
  EXPECT_EQ(s.health(0), StreamHealth::Healthy);
  EXPECT_EQ(s.monitor().enqueued(), 3u);
  EXPECT_EQ(s.stats().gapsRecovered, 1u);
  // A late duplicate of a buffered-then-drained seq is suppressed.
  EXPECT_EQ(s.deliver(0, 1, {3, 0}), Delivery::Duplicate);
}

TEST(MonitorSessionTest, RetriesThenDegradesWhenRetransmissionNeverComes) {
  NackLog nacks;
  MonitorSession s(2, fastRetry(), nacks.fn());
  EXPECT_EQ(s.deliver(0, 1, {3, 0}), Delivery::Buffered);
  // Exhaust the retry budget (2 NACKs), then one more timeout degrades.
  for (int i = 0; i < 16 && s.health(0) != StreamHealth::Degraded; ++i) {
    s.tick();
  }
  EXPECT_EQ(s.health(0), StreamHealth::Degraded);
  EXPECT_EQ(nacks.requests.size(), 2u);
  EXPECT_EQ(s.stats().degradedStreams, 1);
  // The buffered suffix was released (soundly, in order) to the monitor.
  EXPECT_EQ(s.monitor().enqueued(), 1u);
  // Verdict is explicitly degraded once the stream ends — never a silent
  // "not detected".
  s.announceEnd(0, 2);
  s.announceEnd(1, 0);
  EXPECT_EQ(s.verdict(), Verdict::Degraded);
}

TEST(MonitorSessionTest, TrailingLossIsVisibleAfterAnnounceEnd) {
  NackLog nacks;
  MonitorSession s(2, fastRetry(), nacks.fn());
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Delivered);
  s.announceEnd(1, 0);
  // Process 0 sent 2 notifications but seq 1 was dropped: the announcement
  // makes the trailing gap visible and recovery starts.
  s.announceEnd(0, 2);
  EXPECT_TRUE(s.hasActiveGaps());
  ASSERT_EQ(nacks.requests.size(), 1u);
  EXPECT_EQ(nacks.requests[0].lo, 1u);
  EXPECT_EQ(nacks.requests[0].hi, 1u);
  EXPECT_EQ(s.verdict(), Verdict::Undecided);
  // Retransmission closes the stream; now "not detected" is a real answer.
  EXPECT_EQ(s.deliver(0, 1, {2, 0}), Delivery::Delivered);
  EXPECT_FALSE(s.hasActiveGaps());
  EXPECT_EQ(s.verdict(), Verdict::NotDetected);
}

TEST(MonitorSessionTest, DetectionWhileDegradedIsStillSound) {
  MonitorSession s(2, fastRetry());
  EXPECT_EQ(s.deliver(0, 1, {3, 0}), Delivery::Buffered);
  for (int i = 0; i < 16 && s.health(0) != StreamHealth::Degraded; ++i) {
    s.tick();
  }
  ASSERT_EQ(s.health(0), StreamHealth::Degraded);
  // A concurrent notification from p1 still completes a genuine detection.
  EXPECT_EQ(s.deliver(1, 0, {0, 1}), Delivery::Detected);
  EXPECT_EQ(s.verdict(), Verdict::Detected);
}

TEST(MonitorSessionTest, ReorderWindowOverflowEvictsFarthestFuture) {
  SessionOptions opt = fastRetry();
  opt.reorderWindow = 2;
  NackLog nacks;
  MonitorSession s(2, opt, nacks.fn());
  EXPECT_EQ(s.deliver(0, 1, {2, 0}), Delivery::Buffered);
  EXPECT_EQ(s.deliver(0, 2, {3, 0}), Delivery::Buffered);
  EXPECT_EQ(s.deliver(0, 3, {4, 0}), Delivery::Buffered);  // evicts seq 3
  EXPECT_EQ(s.stats().bufferEvicted, 1u);
  // Filling the gap drains only what is still buffered.
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Delivered);
  EXPECT_EQ(s.monitor().enqueued(), 3u);  // seqs 0, 1, 2
  // The evicted seq 3 is redelivered like any retransmission.
  EXPECT_EQ(s.deliver(0, 3, {4, 0}), Delivery::Delivered);
  EXPECT_EQ(s.monitor().enqueued(), 4u);
}

TEST(MonitorSessionTest, BackpressuredDrainKeepsBufferedEntryIntact) {
  SessionOptions opt;
  opt.monitor.maxQueuePerProcess = 1;
  opt.monitor.overflowPolicy = OverflowPolicy::Backpressure;
  MonitorSession s(2, opt);
  EXPECT_EQ(s.deliver(0, 1, {2, 0}), Delivery::Buffered);
  // Filling the gap delivers seq 0 and then tries to drain the buffered
  // seq 1, which the monitor rejects (queue full). The rejected entry must
  // stay intact in the buffer for later retries — it used to be left
  // moved-from, aborting on the very next drain attempt.
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Delivered);
  EXPECT_GE(s.stats().backpressured, 1u);
  s.tick();  // re-drains the same entry: rejected again, still intact
  EXPECT_EQ(s.deliver(1, 0, {0, 1}), Delivery::Detected);
  EXPECT_EQ(s.verdict(), Verdict::Detected);
}

TEST(MonitorSessionTest, EvictedEntryStaysInNackRange) {
  SessionOptions opt = fastRetry();
  opt.reorderWindow = 1;
  NackLog nacks;
  MonitorSession s(2, opt, nacks.fn());
  EXPECT_EQ(s.deliver(0, 1, {2, 0}), Delivery::Buffered);  // gap, NACK [0,0]
  EXPECT_EQ(s.deliver(0, 2, {3, 0}), Delivery::Buffered);  // evicted (window 1)
  EXPECT_EQ(s.stats().bufferEvicted, 1u);
  ASSERT_EQ(nacks.requests.size(), 1u);
  for (int i = 0; i < 16 && nacks.requests.size() < 2; ++i) s.tick();
  ASSERT_EQ(nacks.requests.size(), 2u);
  // The retry must re-request the evicted seq 2, not stop at the buffered
  // seq 1 as if nothing beyond it had ever been seen.
  EXPECT_EQ(nacks.requests[1].lo, 0u);
  EXPECT_EQ(nacks.requests[1].hi, 2u);
}

TEST(MonitorSessionTest, MonitorBackpressureRefusesWithoutConsuming) {
  SessionOptions opt;
  opt.monitor.maxQueuePerProcess = 1;
  opt.monitor.overflowPolicy = OverflowPolicy::Backpressure;
  MonitorSession s(2, opt);
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Delivered);
  // Queue for p0 is full (head can't be eliminated: p1 is silent).
  EXPECT_EQ(s.deliver(0, 1, {2, 0}), Delivery::Rejected);
  EXPECT_EQ(s.stats().backpressured, 1u);
  // Not consumed: the same seq can be re-offered once there is room.
  EXPECT_EQ(s.deliver(1, 0, {0, 1}), Delivery::Detected);
}

TEST(MonitorSessionTest, DegradeOnOverflowNeverSilentlyWrong) {
  SessionOptions opt;
  opt.monitor.maxQueuePerProcess = 1;
  opt.monitor.overflowPolicy = OverflowPolicy::Degrade;
  MonitorSession s(2, opt);
  EXPECT_EQ(s.deliver(0, 0, {1, 0}), Delivery::Delivered);
  EXPECT_EQ(s.deliver(0, 1, {2, 0}), Delivery::Delivered);  // dropped inside
  EXPECT_TRUE(s.monitor().degraded());
  s.announceEnd(0, 2);
  s.announceEnd(1, 0);
  // The answer is "unknown", not "no".
  EXPECT_EQ(s.verdict(), Verdict::Degraded);
}

TEST(MonitorSessionTest, DegradeStreamEscapeHatch) {
  MonitorSession s(2);
  s.deliver(0, 2, {5, 0});
  EXPECT_EQ(s.health(0), StreamHealth::Recovering);
  s.degradeStream(0);
  EXPECT_EQ(s.health(0), StreamHealth::Degraded);
  EXPECT_EQ(s.monitor().enqueued(), 1u);  // buffered suffix released
}

TEST(MonitorSessionTest, VerdictUndecidedUntilStreamsComplete) {
  MonitorSession s(2);
  EXPECT_EQ(s.verdict(), Verdict::Undecided);
  s.deliver(0, 0, {1, 0});
  EXPECT_EQ(s.verdict(), Verdict::Undecided);  // p1's stream still unknown
  s.announceEnd(0, 1);
  s.announceEnd(1, 0);
  EXPECT_EQ(s.verdict(), Verdict::NotDetected);
}

TEST(MonitorSessionTest, AnnounceEndBelowConsumedIsInputError) {
  MonitorSession s(2);
  s.deliver(0, 0, {1, 0});
  EXPECT_THROW(s.announceEnd(0, 0), InputError);
}

TEST(MonitorSessionTest, AnnounceEndBelowBufferedSeqIsInputError) {
  MonitorSession s(2);
  s.deliver(0, 2, {3, 0});  // buffered: the transport delivered seq 2
  EXPECT_THROW(s.announceEnd(0, 1), InputError);
}

TEST(MonitorSessionTest, AnnounceEndBelowEvictedSeqIsInputError) {
  SessionOptions opt = fastRetry();
  opt.reorderWindow = 1;
  MonitorSession s(2, opt);
  s.deliver(0, 1, {2, 0});
  s.deliver(0, 5, {6, 0});  // farthest-future: evicted, but it was seen
  EXPECT_EQ(s.stats().bufferEvicted, 1u);
  EXPECT_THROW(s.announceEnd(0, 3), InputError);
}

// Pins the exact boundary of the evicted-seq consistency check:
// evictedUpper_ is one PAST the highest evicted sequence number, so an
// announced count equal to it (seq 5 evicted → 6 notifications total) is
// consistent and must be accepted, while count == evictedUpper - 1 claims
// the already-received seq 5 was never sent and must throw. Recovery after
// the accepted announcement still NACKs the full missing range including
// the evicted seq.
TEST(MonitorSessionTest, AnnounceEndAtEvictedUpperBoundaryIsAccepted) {
  SessionOptions opt = fastRetry();
  opt.reorderWindow = 1;
  NackLog nacks;
  MonitorSession s(2, opt, nacks.fn());
  s.deliver(0, 1, {2, 0});  // buffered; opens the gap, NACK [0,0]
  s.deliver(0, 5, {6, 0});  // evicted: evictedUpper_ becomes 6
  EXPECT_EQ(s.stats().bufferEvicted, 1u);
  EXPECT_THROW(s.announceEnd(0, 5), InputError);  // one below the bound
  s.announceEnd(0, 6);                            // exactly the bound
  EXPECT_TRUE(s.hasActiveGaps());  // seqs 0, 2..5 still missing
  // The next retry re-requests everything through the evicted seq 5.
  const std::size_t sent = nacks.requests.size();
  for (int i = 0; i < 16 && nacks.requests.size() == sent; ++i) s.tick();
  ASSERT_GT(nacks.requests.size(), sent);
  EXPECT_EQ(nacks.requests.back().lo, 0u);
  EXPECT_EQ(nacks.requests.back().hi, 5u);
}

TEST(MonitorSessionTest, CheckpointRoundTripPreservesEverything) {
  NackLog nacks;
  MonitorSession s(3, fastRetry(), nacks.fn());
  s.deliver(0, 0, {1, 0, 0});
  s.deliver(1, 1, {0, 3, 0});  // opens a gap on p1
  s.deliver(2, 0, {2, 0, 2});  // dominates p0's head: eliminates it
  s.announceEnd(0, 1);

  std::stringstream buffer;
  io::writeCheckpoint(buffer, s.snapshot());
  MonitorSession restored =
      MonitorSession::restore(io::readCheckpoint(buffer), fastRetry());

  EXPECT_EQ(restored.processes(), 3);
  EXPECT_EQ(restored.verdict(), s.verdict());
  EXPECT_EQ(restored.health(1), StreamHealth::Recovering);
  EXPECT_EQ(restored.stats().buffered, s.stats().buffered);
  // Replayed notifications after the restore are absorbed by dedup...
  EXPECT_EQ(restored.deliver(0, 0, {1, 0, 0}), Delivery::Duplicate);
  // ...and the outstanding gap resolves exactly as it would have.
  EXPECT_EQ(restored.deliver(1, 0, {0, 1, 0}), Delivery::Delivered);
  EXPECT_EQ(restored.health(1), StreamHealth::Healthy);
}

TEST(MonitorSessionTest, RestoreRejectsInconsistentSnapshots) {
  MonitorSession s(2);
  s.deliver(0, 0, {1, 0});
  SessionSnapshot snap = s.snapshot();
  snap.health[0] = 7;
  EXPECT_THROW(MonitorSession::restore(snap), InputError);

  snap = s.snapshot();
  snap.nextSeq.pop_back();
  EXPECT_THROW(MonitorSession::restore(snap), InputError);

  snap = s.snapshot();
  snap.buffers[0].emplace_back(0, std::vector<int>{9, 9});  // already consumed
  EXPECT_THROW(MonitorSession::restore(snap), InputError);

  snap = s.snapshot();
  snap.evictedUpper.pop_back();
  EXPECT_THROW(MonitorSession::restore(snap), InputError);

  snap = s.snapshot();
  snap.monitor.queues[0].push_back({0, 0});  // violates program order
  EXPECT_THROW(MonitorSession::restore(snap), InputError);
}

TEST(MonitorSessionTest, HealthAndVerdictNames) {
  EXPECT_STREQ(toString(StreamHealth::Healthy), "healthy");
  EXPECT_STREQ(toString(StreamHealth::Recovering), "recovering");
  EXPECT_STREQ(toString(StreamHealth::Degraded), "degraded");
  EXPECT_STREQ(toString(Verdict::Detected), "detected");
  EXPECT_STREQ(toString(Verdict::Undecided), "undecided");
  EXPECT_STREQ(toString(Verdict::Degraded), "degraded");
  EXPECT_STREQ(toString(Verdict::NotDetected), "not-detected");
}

}  // namespace
}  // namespace gpd::monitor
