#include "monitor/online.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "detect/cpdhb.h"
#include "graph/linear_extension.h"
#include "monitor/feed.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::monitor {
namespace {

TEST(OnlineMonitorTest, DetectsConcurrentTrueEvents) {
  ConjunctiveMonitor mon(2);
  // Two concurrent events: neither clock dominates.
  EXPECT_FALSE(mon.report(0, {1, 0}));
  EXPECT_TRUE(mon.report(1, {0, 1}));
  EXPECT_TRUE(mon.detected());
  EXPECT_EQ(mon.witness()[0], (std::vector<int>{1, 0}));
}

TEST(OnlineMonitorTest, EliminatesDominatedEvent) {
  ConjunctiveMonitor mon(2);
  // p1's event already saw p0's event 2: p0's event 1 is dead.
  EXPECT_FALSE(mon.report(0, {1, 0}));
  EXPECT_FALSE(mon.report(1, {2, 1}));
  // A later p0 event at index 3 is consistent with p1's head.
  EXPECT_TRUE(mon.report(0, {3, 0}));
}

TEST(OnlineMonitorTest, RejectsOutOfOrderNotifications) {
  ConjunctiveMonitor mon(2);
  mon.report(0, {2, 0});
  EXPECT_THROW(mon.report(0, {1, 0}), CheckFailure);
}

TEST(OnlineMonitorTest, IdempotentAfterDetection) {
  ConjunctiveMonitor mon(2);
  mon.report(0, {1, 0});
  mon.report(1, {0, 1});
  ASSERT_TRUE(mon.detected());
  const auto witness = mon.witness();
  EXPECT_TRUE(mon.report(0, {5, 3}));
  EXPECT_EQ(mon.witness(), witness);
}

// The headline equivalence: replaying any run of a recorded computation into
// the online checker detects iff offline CPDHB detects.
TEST(OnlineMonitorTest, ReplayMatchesOfflineCpdhb) {
  Rng rng(13579);
  int detections = 0;
  for (int trial = 0; trial < 80; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(3));
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(5));
    opt.messageProbability = rng.real() * 0.7;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.3, rng);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "x"));
    }
    const VectorClocks clocks(c);
    const auto offline = detect::detectConjunctive(clocks, trace, pred);

    const auto run = graph::randomLinearExtension(c.toDag(), rng);
    ConjunctiveMonitor mon(c.processCount());
    const ReplayResult replay =
        replayConjunctive(clocks, trace, pred, run, mon);
    ASSERT_EQ(replay.detected, offline.found) << "trial " << trial;
    detections += replay.detected;
    if (replay.detected) {
      // The witness timestamps must be pairwise consistent.
      const auto& w = mon.witness();
      for (int p = 0; p < c.processCount(); ++p) {
        for (int q = 0; q < c.processCount(); ++q) {
          if (p != q) { EXPECT_LE(w[q][p], w[p][p]); }
        }
      }
    }
  }
  EXPECT_GT(detections, 10);
}

TEST(OnlineMonitorTest, DetectionIndependentOfRunOrder) {
  Rng rng(24680);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 5;
  opt.messageProbability = 0.5;
  const Computation c = randomComputation(opt, rng);
  VariableTrace trace(c);
  defineRandomBools(trace, "x", 0.4, rng);
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < 3; ++p) pred.terms.push_back(varTrue(p, "x"));
  const VectorClocks clocks(c);
  const bool offline = detect::detectConjunctive(clocks, trace, pred).found;
  for (int i = 0; i < 10; ++i) {
    const auto run = graph::randomLinearExtension(c.toDag(), rng);
    ConjunctiveMonitor mon(3);
    EXPECT_EQ(replayConjunctive(clocks, trace, pred, run, mon).detected,
              offline);
  }
}

TEST(OnlineMonitorTest, CountsComparisonsAndQueueTraffic) {
  ConjunctiveMonitor mon(2);
  mon.report(0, {1, 0});
  mon.report(1, {0, 1});
  EXPECT_GE(mon.comparisons(), 1u);
  EXPECT_EQ(mon.enqueued(), 2u);
}

MonitorOptions slicedOptions(std::uint64_t slice) {
  MonitorOptions opt;
  opt.maxComparisonsPerReport = slice;
  return opt;
}

TEST(OnlineMonitorSliceTest, AbortLatchesDegradedInsteadOfStalling) {
  // One-comparison slice: the elimination cascade triggered by p1's
  // notification cannot finish, so the scan aborts — silence is now
  // inconclusive (degraded), but nothing wrong is ever announced.
  ConjunctiveMonitor mon(2, slicedOptions(1));
  EXPECT_EQ(mon.offer(0, {1, 0}), ReportStatus::Accepted);
  EXPECT_EQ(mon.offer(0, {2, 0}), ReportStatus::Accepted);
  EXPECT_EQ(mon.offer(1, {3, 1}), ReportStatus::Accepted);  // kills p0 heads
  EXPECT_FALSE(mon.detected());
  EXPECT_TRUE(mon.degraded());
  EXPECT_EQ(mon.sliceAborts(), 1u);
}

TEST(OnlineMonitorSliceTest, DetectionWithinSliceStaysExact) {
  ConjunctiveMonitor mon(2, slicedOptions(10));
  EXPECT_EQ(mon.offer(0, {1, 0}), ReportStatus::Accepted);
  EXPECT_EQ(mon.offer(1, {0, 1}), ReportStatus::Detected);
  EXPECT_TRUE(mon.detected());
  EXPECT_FALSE(mon.degraded());
  EXPECT_EQ(mon.sliceAborts(), 0u);
}

// After an abort, head stability is unverified; the next scan re-checks
// every process (full rescan) before Detected may be announced — so a
// detection the abort deferred is still reachable, and a witness announced
// after an abort is still genuine.
TEST(OnlineMonitorSliceTest, DetectionReachableAfterAbortViaFullRescan) {
  ConjunctiveMonitor mon(2, slicedOptions(3));
  mon.offer(0, {1, 0});
  mon.offer(0, {2, 0});
  mon.offer(0, {3, 0});
  // p1 saw p0's event 9: all three p0 heads are dead, and popping them one
  // by one blows the 3-comparison slice mid-cascade.
  EXPECT_EQ(mon.offer(1, {9, 1}), ReportStatus::Accepted);
  EXPECT_EQ(mon.sliceAborts(), 1u);
  EXPECT_TRUE(mon.degraded());
  EXPECT_FALSE(mon.detected());
  // The next notification forces the full rescan, which finishes in slice:
  // the stale p0 head is eliminated and the fresh heads are consistent.
  EXPECT_EQ(mon.offer(0, {10, 0}), ReportStatus::Detected);
  ASSERT_TRUE(mon.detected());
  EXPECT_EQ(mon.witness()[0], (std::vector<int>{10, 0}));
  EXPECT_EQ(mon.witness()[1], (std::vector<int>{9, 1}));
}

TEST(OnlineMonitorSliceTest, SnapshotRoundTripsSliceState) {
  ConjunctiveMonitor mon(2, slicedOptions(3));
  mon.offer(0, {1, 0});
  mon.offer(0, {2, 0});
  mon.offer(0, {3, 0});
  mon.offer(1, {9, 1});
  ASSERT_EQ(mon.sliceAborts(), 1u);

  const MonitorSnapshot snap = mon.snapshot();
  EXPECT_EQ(snap.sliceAborts, 1u);
  EXPECT_TRUE(snap.pendingFullScan);

  // The restored monitor owes the same full rescan before any detection.
  ConjunctiveMonitor restored =
      ConjunctiveMonitor::restore(snap, slicedOptions(3));
  EXPECT_EQ(restored.sliceAborts(), 1u);
  EXPECT_TRUE(restored.degraded());
  EXPECT_EQ(restored.offer(0, {10, 0}), ReportStatus::Detected);
}

// Equivalence guard on random replays: a sliced monitor may miss or delay a
// detection (degraded), but whenever it announces one the offline CPDHB
// verdict agrees — slicing never fabricates.
TEST(OnlineMonitorSliceTest, SlicedReplayNeverFabricates) {
  Rng rng(86420);
  int aborts = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.4, rng);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < 3; ++p) pred.terms.push_back(varTrue(p, "x"));
    const VectorClocks clocks(c);
    const bool offline = detect::detectConjunctive(clocks, trace, pred).found;

    const auto run = graph::randomLinearExtension(c.toDag(), rng);
    ConjunctiveMonitor mon(3, slicedOptions(1 + rng.index(3)));
    replayConjunctive(clocks, trace, pred, run, mon);
    aborts += static_cast<int>(mon.sliceAborts());
    if (mon.detected()) {
      EXPECT_TRUE(offline) << "trial " << trial;
    } else if (!mon.degraded()) {
      // No abort ever fired: the scan was exact, so silence means "no".
      EXPECT_FALSE(offline) << "trial " << trial;
    }
  }
  EXPECT_GT(aborts, 0);  // the sweep actually exercised the abort path
}

}  // namespace
}  // namespace gpd::monitor
