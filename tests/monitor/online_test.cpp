#include "monitor/online.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "detect/cpdhb.h"
#include "graph/linear_extension.h"
#include "monitor/feed.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::monitor {
namespace {

TEST(OnlineMonitorTest, DetectsConcurrentTrueEvents) {
  ConjunctiveMonitor mon(2);
  // Two concurrent events: neither clock dominates.
  EXPECT_FALSE(mon.report(0, {1, 0}));
  EXPECT_TRUE(mon.report(1, {0, 1}));
  EXPECT_TRUE(mon.detected());
  EXPECT_EQ(mon.witness()[0], (std::vector<int>{1, 0}));
}

TEST(OnlineMonitorTest, EliminatesDominatedEvent) {
  ConjunctiveMonitor mon(2);
  // p1's event already saw p0's event 2: p0's event 1 is dead.
  EXPECT_FALSE(mon.report(0, {1, 0}));
  EXPECT_FALSE(mon.report(1, {2, 1}));
  // A later p0 event at index 3 is consistent with p1's head.
  EXPECT_TRUE(mon.report(0, {3, 0}));
}

TEST(OnlineMonitorTest, RejectsOutOfOrderNotifications) {
  ConjunctiveMonitor mon(2);
  mon.report(0, {2, 0});
  EXPECT_THROW(mon.report(0, {1, 0}), CheckFailure);
}

TEST(OnlineMonitorTest, IdempotentAfterDetection) {
  ConjunctiveMonitor mon(2);
  mon.report(0, {1, 0});
  mon.report(1, {0, 1});
  ASSERT_TRUE(mon.detected());
  const auto witness = mon.witness();
  EXPECT_TRUE(mon.report(0, {5, 3}));
  EXPECT_EQ(mon.witness(), witness);
}

// The headline equivalence: replaying any run of a recorded computation into
// the online checker detects iff offline CPDHB detects.
TEST(OnlineMonitorTest, ReplayMatchesOfflineCpdhb) {
  Rng rng(13579);
  int detections = 0;
  for (int trial = 0; trial < 80; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(3));
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(5));
    opt.messageProbability = rng.real() * 0.7;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.3, rng);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "x"));
    }
    const VectorClocks clocks(c);
    const auto offline = detect::detectConjunctive(clocks, trace, pred);

    const auto run = graph::randomLinearExtension(c.toDag(), rng);
    ConjunctiveMonitor mon(c.processCount());
    const ReplayResult replay =
        replayConjunctive(clocks, trace, pred, run, mon);
    ASSERT_EQ(replay.detected, offline.found) << "trial " << trial;
    detections += replay.detected;
    if (replay.detected) {
      // The witness timestamps must be pairwise consistent.
      const auto& w = mon.witness();
      for (int p = 0; p < c.processCount(); ++p) {
        for (int q = 0; q < c.processCount(); ++q) {
          if (p != q) { EXPECT_LE(w[q][p], w[p][p]); }
        }
      }
    }
  }
  EXPECT_GT(detections, 10);
}

TEST(OnlineMonitorTest, DetectionIndependentOfRunOrder) {
  Rng rng(24680);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 5;
  opt.messageProbability = 0.5;
  const Computation c = randomComputation(opt, rng);
  VariableTrace trace(c);
  defineRandomBools(trace, "x", 0.4, rng);
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < 3; ++p) pred.terms.push_back(varTrue(p, "x"));
  const VectorClocks clocks(c);
  const bool offline = detect::detectConjunctive(clocks, trace, pred).found;
  for (int i = 0; i < 10; ++i) {
    const auto run = graph::randomLinearExtension(c.toDag(), rng);
    ConjunctiveMonitor mon(3);
    EXPECT_EQ(replayConjunctive(clocks, trace, pred, run, mon).detected,
              offline);
  }
}

TEST(OnlineMonitorTest, CountsComparisonsAndQueueTraffic) {
  ConjunctiveMonitor mon(2);
  mon.report(0, {1, 0});
  mon.report(1, {0, 1});
  EXPECT_GE(mon.comparisons(), 1u);
  EXPECT_EQ(mon.enqueued(), 2u);
}

}  // namespace
}  // namespace gpd::monitor
