#include "monitor/insim.h"

#include <gtest/gtest.h>

#include "clocks/vector_clock.h"

namespace gpd::monitor {
namespace {

// Offline ground truth: the checker fires for pair (i, j) iff some CS-entry
// event of i is pairwise consistent with some CS-entry event of j. Entry
// events are where "cs" increases.
std::vector<EventId> entryEvents(const sim::SimResult& run, ProcessId p) {
  std::vector<EventId> out;
  const Computation& c = *run.computation;
  for (int e = 1; e < c.eventCount(p); ++e) {
    if (run.trace->value(p, "cs", e) > run.trace->value(p, "cs", e - 1)) {
      out.push_back({p, e});
    }
  }
  return out;
}

bool offlineOverlap(const sim::SimResult& run, const VectorClocks& vc,
                    ProcessId i, ProcessId j) {
  for (const EventId& a : entryEvents(run, i)) {
    for (const EventId& b : entryEvents(run, j)) {
      if (vc.pairConsistent(a, b)) return true;
    }
  }
  return false;
}

TEST(InSimMonitorTest, CleanRingRaisesNoAlarm) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::TokenRingOptions opt;
    opt.processes = 4;
    opt.rounds = 3;
    opt.seed = seed;
    const InSimMonitorResult res = monitoredTokenRing(opt);
    EXPECT_FALSE(res.alarm) << "seed " << seed;
    EXPECT_EQ(res.alarmsInTrace, 0) << "seed " << seed;
  }
}

TEST(InSimMonitorTest, RogueRingRaisesAlarmOnRoguePairs) {
  sim::TokenRingOptions opt;
  opt.processes = 4;
  opt.rounds = 3;
  opt.seed = 3;
  opt.rogueProcess = 1;
  const InSimMonitorResult res = monitoredTokenRing(opt);
  ASSERT_TRUE(res.alarm);
  EXPECT_EQ(res.alarmsInTrace,
            static_cast<std::int64_t>(res.firedPairs.size()));
  for (const auto& [i, j] : res.firedPairs) {
    EXPECT_TRUE(i == 1 || j == 1) << "pair " << i << "," << j;
  }
}

TEST(InSimMonitorTest, VerdictMatchesOfflineAnalysisOfTheRecordedTrace) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const int rogue : {-1, 2}) {
      sim::TokenRingOptions opt;
      opt.processes = 4;
      opt.rounds = 2;
      opt.seed = seed;
      opt.rogueProcess = rogue;
      const InSimMonitorResult res = monitoredTokenRing(opt);
      const VectorClocks vc(*res.run.computation);
      for (ProcessId i = 0; i < 4; ++i) {
        for (ProcessId j = i + 1; j < 4; ++j) {
          const bool fired =
              std::find(res.firedPairs.begin(), res.firedPairs.end(),
                        std::make_pair(i, j)) != res.firedPairs.end();
          EXPECT_EQ(fired, offlineOverlap(res.run, vc, i, j))
              << "seed " << seed << " rogue " << rogue << " pair " << i << ","
              << j;
        }
      }
    }
  }
}

TEST(InSimMonitorTest, CheckerProcessIsPartOfTheComputation) {
  sim::TokenRingOptions opt;
  opt.processes = 3;
  opt.rounds = 2;
  const InSimMonitorResult res = monitoredTokenRing(opt);
  EXPECT_EQ(res.run.computation->processCount(), 4);  // ring + checker
  // Every notification message heads to the checker.
  int toChecker = 0;
  for (const Message& m : res.run.computation->messages()) {
    if (m.receive.process == 3) ++toChecker;
  }
  EXPECT_GT(toChecker, 0);
}

}  // namespace
}  // namespace gpd::monitor
