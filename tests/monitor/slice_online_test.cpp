#include "monitor/slice.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>
#include <vector>

#include "clocks/vector_clock.h"
#include "computation/random.h"
#include "monitor/session.h"
#include "util/check.h"
#include "util/rng.h"

namespace gpd::monitor {
namespace {

// One notification as the transport would carry it.
struct Note {
  int process;
  std::vector<int> clock;
};

// Reference implementation: J(start) over the *complete* notification lists,
// by the same greedy least fixpoint the online slice runs incrementally.
// nullopt when the fixpoint needs a notification past the end of some list —
// the online slice must hold exactly those entries pending forever.
std::optional<std::vector<int>> leastCutFromScratch(
    int n, const std::vector<std::vector<Note>>& byProc,
    std::vector<int> cut) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (int q = 0; q < n; ++q) {
      std::size_t i = 0;
      while (i < byProc[q].size() && byProc[q][i].clock[q] < cut[q]) ++i;
      if (i == byProc[q].size()) return std::nullopt;
      for (int r = 0; r < n; ++r) {
        if (byProc[q][i].clock[r] > cut[r]) {
          cut[r] = byProc[q][i].clock[r];
          changed = true;
        }
      }
    }
  }
  return cut;
}

using ResolvedKey = std::tuple<int, int, std::vector<int>>;

std::vector<ResolvedKey> sortedResolved(const OnlineSlice& slice) {
  std::vector<ResolvedKey> keys;
  for (const auto& irr : slice.resolved()) {
    keys.emplace_back(irr.process, irr.index, irr.cut);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(OnlineSliceTest, ResolvesLeastSatisfyingCuts) {
  OnlineSlice slice(2);
  // p0's event 0 reports; J needs p1 at a notification too, so it parks.
  slice.offer(0, {0, -1});
  EXPECT_EQ(slice.resolved().size(), 0u);
  EXPECT_EQ(slice.stats().pending, 1u);
  // p1's event 1 (which received from p0's event 0) reports: its own J
  // resolves immediately, and p0's parked entry resolves to the same least
  // cut (0, 1).
  slice.offer(1, {0, 1});
  ASSERT_EQ(slice.resolved().size(), 2u);
  EXPECT_EQ(slice.stats().pending, 0u);
  for (const auto& irr : slice.resolved()) {
    EXPECT_EQ(irr.cut, (std::vector<int>{0, 1}));
  }
  EXPECT_EQ(slice.stats().notifications, 2u);
  EXPECT_EQ(slice.stats().resolved, 2u);
  // One J frontier level on each process: bound (1+1)*(1+1).
  EXPECT_EQ(slice.stats().upperBoundCuts, 4u);
}

TEST(OnlineSliceTest, ProgramOrderViolationThrows) {
  OnlineSlice slice(2);
  slice.offer(0, {3, -1});
  EXPECT_THROW(slice.offer(0, {3, -1}), InputError);
  EXPECT_THROW(slice.offer(0, {1, 0}), InputError);
}

TEST(OnlineSliceTest, IncrementalMatchesRebuildAcrossDeliveryOrders) {
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(3));
    opt.eventsPerProcess = 3 + static_cast<int>(rng.index(3));
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    const int n = c.processCount();

    // A random subset of events report (per-process program order is the
    // event order, as the session guarantees).
    std::vector<std::vector<Note>> byProc(n);
    for (ProcessId p = 0; p < n; ++p) {
      for (int i = 0; i < c.eventCount(p); ++i) {
        if (rng.chance(0.55)) byProc[p].push_back({p, vc.clockVector({p, i})});
      }
    }

    // Reference: from-scratch J for every notification over the full lists.
    std::vector<ResolvedKey> expected;
    std::size_t expectedPending = 0;
    for (int p = 0; p < n; ++p) {
      for (const Note& note : byProc[p]) {
        const auto cut = leastCutFromScratch(n, byProc, note.clock);
        if (cut) {
          expected.emplace_back(p, note.clock[p], *cut);
        } else {
          ++expectedPending;
        }
      }
    }
    std::sort(expected.begin(), expected.end());

    // Feed the same notifications in several interleavings (program order
    // per process, arbitrary across processes): identical resolved sets.
    for (int order = 0; order < 4; ++order) {
      std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
      std::vector<int> ready;
      for (int p = 0; p < n; ++p) {
        if (!byProc[p].empty()) ready.push_back(p);
      }
      OnlineSlice slice(n);
      while (!ready.empty()) {
        const std::size_t pick =
            order == 0 ? 0 : rng.index(ready.size());  // order 0: process-major
        const int p = ready[pick];
        slice.offer(p, byProc[p][cursor[p]].clock);
        if (++cursor[p] == byProc[p].size()) {
          ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      }
      EXPECT_EQ(sortedResolved(slice), expected)
          << "trial " << trial << " order " << order;
      EXPECT_EQ(slice.stats().pending, expectedPending)
          << "trial " << trial << " order " << order;
    }
  }
}

TEST(OnlineSliceTest, ShedFreesMemoryAndLatchesDegraded) {
  OnlineSlice slice(2);
  slice.offer(0, {0, -1});
  slice.offer(0, {1, -1});
  slice.offer(1, {-1, 0});
  EXPECT_GT(slice.bytesRetained(), 0u);
  const std::size_t dropped = slice.shed();
  EXPECT_EQ(dropped, 3u);
  EXPECT_TRUE(slice.degraded());
  EXPECT_EQ(slice.bytesRetained(), 0u);
  // Degraded: further notifications are ignored, stats stay frozen.
  slice.offer(1, {2, 1});
  EXPECT_EQ(slice.stats().notifications, 3u);
  EXPECT_EQ(slice.stats().resolved, 0u);
  EXPECT_EQ(slice.stats().shedNotifications, 3u);
}

TEST(OnlineSliceTest, SublatticeBoundSaturates) {
  // 65 mutually concurrent notifying processes: the bound is 2^65, past
  // uint64 — it must saturate, not wrap to zero.
  const int n = 65;
  OnlineSlice slice(n);
  for (int p = 0; p < n; ++p) {
    std::vector<int> clock(static_cast<std::size_t>(n), -1);
    clock[static_cast<std::size_t>(p)] = 0;
    slice.offer(p, clock);
  }
  const OnlineSliceStats s = slice.stats();
  EXPECT_EQ(s.resolved, static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.pending, 0u);
  EXPECT_TRUE(s.upperBoundSaturated);
  EXPECT_EQ(s.upperBoundCuts, UINT64_MAX);
}

TEST(MonitorSessionSliceTest, DisabledByDefault) {
  MonitorSession s(2);
  EXPECT_EQ(s.slice(), nullptr);
  EXPECT_EQ(s.sliceBytes(), 0u);
}

TEST(MonitorSessionSliceTest, SessionFeedsConsumedNotifications) {
  SessionOptions opt;
  opt.enableSlice = true;
  MonitorSession s(2, opt);
  EXPECT_EQ(s.deliver(0, 0, {0, -1}), Delivery::Delivered);
  // Out-of-order: seq 1 of p1 parks until seq 0 arrives, then both drain —
  // the slice sees them in program order, like the monitor.
  EXPECT_EQ(s.deliver(1, 1, {0, 1}), Delivery::Buffered);
  ASSERT_NE(s.slice(), nullptr);
  EXPECT_EQ(s.slice()->stats().notifications, 1u);
  // Duplicates are suppressed before the slice sees them.
  EXPECT_EQ(s.deliver(0, 0, {0, -1}), Delivery::Duplicate);
  EXPECT_EQ(s.slice()->stats().notifications, 1u);
  EXPECT_EQ(s.deliver(1, 0, {-1, 0}), Delivery::Detected);
  EXPECT_EQ(s.slice()->stats().notifications, 3u);
  EXPECT_GT(s.sliceBytes(), 0u);
  // The witness cut (0, 0) is the least satisfying cut of both early
  // notifications.
  ASSERT_GE(s.slice()->resolved().size(), 2u);
  EXPECT_EQ(s.slice()->resolved()[0].cut, (std::vector<int>{0, 0}));
}

TEST(MonitorSessionSliceTest, IncrementalMatchesRebuildThroughSession) {
  Rng rng(9090);
  for (int trial = 0; trial < 20; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    const int n = c.processCount();
    std::vector<std::vector<Note>> byProc(n);
    for (ProcessId p = 0; p < n; ++p) {
      for (int i = 0; i < c.eventCount(p); ++i) {
        if (rng.chance(0.5)) byProc[p].push_back({p, vc.clockVector({p, i})});
      }
    }

    // Through a session, with a random cross-process delivery interleaving.
    // The session stops consuming once detection fires, so record what it
    // actually handed to the monitor (and therefore to the slice).
    SessionOptions sopt;
    sopt.enableSlice = true;
    MonitorSession session(n, sopt);
    std::vector<std::vector<Note>> consumed(static_cast<std::size_t>(n));
    std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
    std::vector<int> ready;
    for (int p = 0; p < n; ++p) {
      if (!byProc[p].empty()) ready.push_back(p);
    }
    bool fired = false;
    while (!ready.empty() && !fired) {
      const std::size_t pick = rng.index(ready.size());
      const int p = ready[pick];
      const Delivery d = session.deliver(p, cursor[p], byProc[p][cursor[p]].clock);
      ASSERT_TRUE(d == Delivery::Delivered || d == Delivery::Detected)
          << "trial " << trial;
      consumed[static_cast<std::size_t>(p)].push_back(byProc[p][cursor[p]]);
      fired = d == Delivery::Detected;
      if (++cursor[p] == byProc[p].size()) {
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }

    // From-scratch slice over exactly the consumed set, process-major.
    OnlineSlice scratch(n);
    for (int p = 0; p < n; ++p) {
      for (const Note& note : consumed[static_cast<std::size_t>(p)]) {
        scratch.offer(p, note.clock);
      }
    }
    ASSERT_NE(session.slice(), nullptr);
    EXPECT_EQ(sortedResolved(*session.slice()), sortedResolved(scratch))
        << "trial " << trial;
  }
}

TEST(MonitorSessionSliceTest, ShedMemoryShedsSliceToo) {
  SessionOptions opt;
  opt.enableSlice = true;
  MonitorSession s(2, opt);
  // Same-process notifications only: no detection, so shedMemory (which is
  // a no-op once the verdict is final) actually sheds.
  EXPECT_EQ(s.deliver(0, 0, {0, -1}), Delivery::Delivered);
  EXPECT_EQ(s.deliver(0, 1, {1, -1}), Delivery::Delivered);
  const std::size_t dropped = s.shedMemory(0);
  EXPECT_GE(dropped, 2u);  // at least the two slice-retained clocks
  ASSERT_NE(s.slice(), nullptr);
  EXPECT_TRUE(s.slice()->degraded());
  EXPECT_EQ(s.sliceBytes(), 0u);
}

TEST(MonitorSessionSliceTest, RestoredSessionSliceStartsDegraded) {
  SessionOptions opt;
  opt.enableSlice = true;
  MonitorSession s(2, opt);
  EXPECT_EQ(s.deliver(0, 0, {0, -1}), Delivery::Delivered);
  const SessionSnapshot snap = s.snapshot();
  MonitorSession restored = MonitorSession::restore(snap, opt);
  // The slice is not checkpointed: the restored run has missed the
  // pre-crash notifications, so it can never claim completeness.
  ASSERT_NE(restored.slice(), nullptr);
  EXPECT_TRUE(restored.slice()->degraded());
  // A sliceless restore stays sliceless.
  MonitorSession plain = MonitorSession::restore(snap);
  EXPECT_EQ(plain.slice(), nullptr);
}

}  // namespace
}  // namespace gpd::monitor
