// Budgeted-detection properties (the anytime contract of DESIGN.md §8):
//
//   1. A budgeted run that completes within its budget is bit-identical to
//      the unbudgeted run — same outcome, same witness cut, and the same
//      lastAlgorithm() string (the budget must not change routing).
//   2. Under an arbitrarily tiny budget the answer is either the exact
//      unbudgeted answer or Unknown with a stop reason naming a limit that
//      actually tripped — never a wrong Yes/No.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "computation/random.h"
#include "control/budget.h"
#include "detect/detector.h"
#include "predicates/random_trace.h"

namespace gpd::detect {
namespace {

control::Budget generousBudget() {
  control::BudgetLimits limits;
  limits.deadlineMillis = 60000;  // never trips in a unit test
  return control::Budget(limits);
}

// Asserts the three-valued Detection against a tripped-or-exact contract:
// Yes/No must match `truth`, Unknown must name a limit that actually fired
// and must stay within the configured limits.
void expectSoundUnderLimits(const Detection& d, bool truth,
                            const control::BudgetLimits& limits,
                            const std::string& label) {
  switch (d.outcome) {
    case Outcome::Yes:
      EXPECT_TRUE(truth) << label << ": budgeted Yes but ground truth is No";
      break;
    case Outcome::No:
      EXPECT_FALSE(truth) << label << ": budgeted No but ground truth is Yes";
      break;
    case Outcome::Unknown:
      EXPECT_NE(d.stopReason, control::StopReason::None)
          << label << ": Unknown without a tripped limit";
      break;
  }
  if (limits.maxCuts != 0) {
    EXPECT_LE(d.progress.cutsVisited, limits.maxCuts) << label;
    if (d.stopReason == control::StopReason::CutLimit) {
      EXPECT_EQ(d.progress.cutsVisited, limits.maxCuts) << label;
    }
  }
  if (limits.maxCombinations != 0) {
    EXPECT_LE(d.progress.combinationsTried, limits.maxCombinations) << label;
    if (d.stopReason == control::StopReason::CombinationLimit) {
      EXPECT_EQ(d.progress.combinationsTried, limits.maxCombinations) << label;
    }
  }
}

// One random grouped computation with boolean and counter variables — the
// same corpus shape the facade cross-check uses.
struct Corpus {
  Computation computation;
  VariableTrace trace;

  explicit Corpus(Rng& rng, int trial)
      : computation(make(rng, trial)), trace(computation) {
    defineRandomBools(trace, "x", 0.35, rng);
    defineRandomCounters(trace, "c1", 0, 1, rng);  // |Δ| ≤ 1: Theorem 7
    defineRandomCounters(trace, "c2", 0, 2, rng);  // |Δ| > 1: lattice only
  }

  static Computation make(Rng& rng, int trial) {
    GroupedComputationOptions opt;
    opt.groups = 2;
    opt.groupSize = 2;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.5;
    opt.discipline = trial % 3 == 0   ? OrderingDiscipline::None
                     : trial % 3 == 1 ? OrderingDiscipline::ReceiveOrdered
                                      : OrderingDiscipline::SendOrdered;
    return randomGroupedComputation(opt, rng);
  }
};

template <typename Pred>
void expectPossiblyBitIdentical(Detector& det, const VariableTrace& trace,
                                const Pred& pred, const std::string& label) {
  const std::optional<Cut> exact = det.possibly(pred);
  const std::string algorithm = det.lastAlgorithm();
  control::Budget budget = generousBudget();
  const Detection d = det.possibly(pred, budget);
  ASSERT_NE(d.outcome, Outcome::Unknown) << label << ": generous budget";
  EXPECT_EQ(d.outcome == Outcome::Yes, exact.has_value()) << label;
  EXPECT_EQ(d.algorithm, algorithm) << label;
  EXPECT_TRUE(d.skippedSteps.empty()) << label;
  if (exact.has_value()) {
    ASSERT_TRUE(d.witness.has_value()) << label;
    EXPECT_EQ(d.witness->last, exact->last) << label;
    EXPECT_TRUE(pred.holdsAtCut(trace, *d.witness)) << label;
  } else {
    EXPECT_FALSE(d.witness.has_value()) << label;
  }
}

template <typename Pred>
void expectDefinitelyBitIdentical(Detector& det, const Pred& pred,
                                  const std::string& label) {
  const bool exact = det.definitely(pred);
  const std::string algorithm = det.lastAlgorithm();
  control::Budget budget = generousBudget();
  const Detection d = det.definitely(pred, budget);
  ASSERT_NE(d.outcome, Outcome::Unknown) << label << ": generous budget";
  EXPECT_EQ(d.outcome == Outcome::Yes, exact) << label;
  EXPECT_EQ(d.algorithm, algorithm) << label;
  EXPECT_TRUE(d.skippedSteps.empty()) << label;
}

ConjunctivePredicate allTrue(int processes) {
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < processes; ++p) {
    pred.terms.push_back(varTrue(p, "x"));
  }
  return pred;
}

CnfPredicate singularCnf(Rng& rng) {
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "x", rng.chance(0.5)}},
                  {{2, "x", rng.chance(0.5)}, {3, "x", true}}};
  return pred;
}

CnfPredicate nonSingularCnf(Rng& rng) {
  CnfPredicate pred = singularCnf(rng);
  pred.clauses.push_back({{0, "x", false}});  // process 0 twice: non-singular
  return pred;
}

BoolExprPtr mixedExpr() {
  // (x0 ∧ x1) ∨ (¬x2 ∧ x3): two DNF terms, one with a negative literal.
  return BoolExpr::disjunction(
      {BoolExpr::conjunction({BoolExpr::var(0, "x"), BoolExpr::var(1, "x")}),
       BoolExpr::conjunction(
           {BoolExpr::negate(BoolExpr::var(2, "x")), BoolExpr::var(3, "x")})});
}

SumPredicate sumPred(const std::string& var, Relop op, std::int64_t k) {
  SumPredicate pred;
  for (ProcessId p = 0; p < 4; ++p) pred.terms.push_back({p, var});
  pred.relop = op;
  pred.k = k;
  return pred;
}

TEST(BudgetPropertyTest, GenerousBudgetIsBitIdenticalToUnbudgeted) {
  Rng rng(271828);
  for (int trial = 0; trial < 25; ++trial) {
    Corpus corpus(rng, trial);
    Detector det(corpus.trace);
    const std::string t = "trial " + std::to_string(trial);

    expectPossiblyBitIdentical(det, corpus.trace, allTrue(4), t + " conj");
    expectPossiblyBitIdentical(det, corpus.trace, singularCnf(rng),
                               t + " singular-cnf");
    expectPossiblyBitIdentical(det, corpus.trace, nonSingularCnf(rng),
                               t + " non-singular-cnf");
    expectPossiblyBitIdentical(det, corpus.trace,
                               sumPred("c1", Relop::GreaterEq, 1),
                               t + " sum-ge");
    expectPossiblyBitIdentical(det, corpus.trace,
                               sumPred("c1", Relop::Equal, 1), t + " sum-eq");
    expectPossiblyBitIdentical(det, corpus.trace,
                               sumPred("c2", Relop::Equal, 2),
                               t + " sum-eq-wide");
    std::vector<SumTerm> vars;
    for (ProcessId p = 0; p < 4; ++p) vars.push_back({p, "x"});
    expectPossiblyBitIdentical(det, corpus.trace, notAllEqual(vars),
                               t + " symmetric");

    expectDefinitelyBitIdentical(det, allTrue(4), t + " def-conj");
    expectDefinitelyBitIdentical(det, singularCnf(rng), t + " def-cnf");
    expectDefinitelyBitIdentical(det, sumPred("c1", Relop::GreaterEq, 1),
                                 t + " def-sum-ge");
    expectDefinitelyBitIdentical(det, sumPred("c1", Relop::Equal, 1),
                                 t + " def-sum-eq");
    expectDefinitelyBitIdentical(det, notAllEqual(vars), t + " def-sym");

    // BoolExpr possibly (witness verified through evaluate()).
    const BoolExprPtr expr = mixedExpr();
    const std::optional<Cut> exact = det.possibly(*expr);
    const std::string algorithm = det.lastAlgorithm();
    control::Budget budget = generousBudget();
    const Detection d = det.possibly(*expr, budget);
    ASSERT_NE(d.outcome, Outcome::Unknown) << t << " expr";
    EXPECT_EQ(d.outcome == Outcome::Yes, exact.has_value()) << t << " expr";
    EXPECT_EQ(d.algorithm, algorithm) << t << " expr";
    if (exact.has_value()) {
      ASSERT_TRUE(d.witness.has_value()) << t << " expr";
      EXPECT_EQ(d.witness->last, exact->last) << t << " expr";
      EXPECT_TRUE(expr->evaluate(corpus.trace, *d.witness)) << t << " expr";
    }
  }
}

TEST(BudgetPropertyTest, TinyBudgetsAreExactOrHonestlyUnknown) {
  Rng rng(314159);
  int unknowns = 0;
  int exacts = 0;
  for (int trial = 0; trial < 15; ++trial) {
    Corpus corpus(rng, trial);
    Detector det(corpus.trace);
    const std::string t = "trial " + std::to_string(trial);

    const CnfPredicate singular = singularCnf(rng);
    const CnfPredicate nonSingular = nonSingularCnf(rng);
    const SumPredicate wide = sumPred("c2", Relop::Equal, 2);

    const bool singularTruth = det.possibly(singular).has_value();
    const bool nonSingularTruth = det.possibly(nonSingular).has_value();
    const bool wideTruth = det.possibly(wide).has_value();
    const bool defTruth = det.definitely(nonSingular);

    for (const std::uint64_t cap : {1, 2, 4, 16}) {
      for (const bool capCuts : {false, true}) {
        control::BudgetLimits limits;
        (capCuts ? limits.maxCuts : limits.maxCombinations) = cap;
        const std::string label =
            t + (capCuts ? " cuts=" : " combos=") + std::to_string(cap);

        for (const CnfPredicate* pred : {&singular, &nonSingular}) {
          control::Budget budget(limits);
          const Detection d = det.possibly(*pred, budget);
          const bool truth =
              pred == &singular ? singularTruth : nonSingularTruth;
          expectSoundUnderLimits(d, truth, limits, label + " cnf");
          if (d.outcome == Outcome::Yes) {
            ASSERT_TRUE(d.witness.has_value()) << label;
            EXPECT_TRUE(pred->holdsAtCut(corpus.trace, *d.witness)) << label;
          }
          (d.outcome == Outcome::Unknown ? unknowns : exacts) += 1;
        }

        control::Budget wideBudget(limits);
        expectSoundUnderLimits(det.possibly(wide, wideBudget), wideTruth,
                               limits, label + " sum-eq-wide");

        control::Budget defBudget(limits);
        expectSoundUnderLimits(det.definitely(nonSingular, defBudget),
                               defTruth, limits, label + " def-cnf");
      }
    }
  }
  // The sweep must actually exercise both regimes.
  EXPECT_GT(unknowns, 0);
  EXPECT_GT(exacts, 0);
}

}  // namespace
}  // namespace gpd::detect
