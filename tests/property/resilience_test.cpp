// Resilience properties of the fault-tolerant notification layer: across
// hundreds of random computations and seeded fault schedules, the resilient
// session either reaches the exact offline CPDHB answer (when recovery
// succeeds) or explicitly reports degradation — never a silent wrong
// verdict. Each seed is an individually-reported parameterized case.
#include <gtest/gtest.h>

#include <sstream>

#include "gpd.h"

namespace gpd {
namespace {

struct System {
  Computation comp;
  VariableTrace trace;
  VectorClocks clocks;
  ConjunctivePredicate pred;

  System(Computation c, Rng& rng, double boolDensity)
      : comp(std::move(c)), trace(comp), clocks(comp) {
    defineRandomBools(trace, "b", boolDensity, rng);
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "b"));
    }
  }
};

System makeSystem(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 101);
  RandomComputationOptions opt;
  opt.processes = 3 + static_cast<int>(rng.index(2));
  opt.eventsPerProcess = 3 + static_cast<int>(rng.index(3));
  opt.messageProbability = 0.4;
  Computation comp = randomComputation(opt, rng);
  return System(std::move(comp), rng, 0.5);
}

class ResilienceSweep : public ::testing::TestWithParam<std::uint64_t> {};

// The headline acceptance property: under drop (≤ 20%), duplication, and
// reorder faults, the settled verdict is never Undecided, Detected/
// NotDetected match the offline ground truth exactly, and Degraded only
// appears when recovery genuinely failed.
TEST_P(ResilienceSweep, FaultyReplayAgreesWithOfflineOrDegradesExplicitly) {
  const System s = makeSystem(GetParam());
  const auto offline = detect::detectConjunctive(s.clocks, s.trace, s.pred);

  Rng rng(GetParam() * 31 + 5);
  const auto runOrder = graph::randomLinearExtension(s.comp.toDag(), rng);

  monitor::FaultOptions faults;
  faults.dropProbability = rng.real() * 0.2;
  faults.duplicateProbability = rng.real() * 0.3;
  faults.reorderProbability = rng.real() * 0.3;
  faults.burstProbability = rng.real() * 0.1;

  monitor::SessionOptions sopt;
  sopt.retryTimeout = 8;  // keep degradation reachable in small runs
  monitor::MonitorSession session(s.comp.processCount(), sopt);
  const auto res = monitor::replayConjunctiveFaulty(
      s.clocks, s.trace, s.pred, runOrder, session, faults, rng);

  // The transport pump always settles to a conclusive answer.
  EXPECT_NE(res.verdict, monitor::Verdict::Undecided);
  EXPECT_EQ(res.verdict == monitor::Verdict::Detected, res.detected);

  switch (res.verdict) {
    case monitor::Verdict::Detected:
      // Soundness: a detection is a genuine witness even under faults.
      EXPECT_TRUE(offline.found);
      break;
    case monitor::Verdict::NotDetected:
      // Completeness: "no" is only claimed after full recovery, so it must
      // match the offline answer.
      EXPECT_FALSE(offline.found);
      break;
    case monitor::Verdict::Degraded:
      // Degradation is always attributed, never spontaneous.
      EXPECT_TRUE(res.degradedStreams > 0 || session.monitor().degraded());
      break;
    case monitor::Verdict::Undecided:
      break;  // already failed above
  }
}

// Without loss, recovery always succeeds: duplication, reorder, and bursts
// alone never degrade the session, and the verdict equals offline exactly.
TEST_P(ResilienceSweep, LosslessFaultsNeverDegrade) {
  const System s = makeSystem(GetParam() + 7777);
  const auto offline = detect::detectConjunctive(s.clocks, s.trace, s.pred);

  Rng rng(GetParam() * 131 + 9);
  const auto runOrder = graph::randomLinearExtension(s.comp.toDag(), rng);

  monitor::FaultOptions faults;
  faults.duplicateProbability = 0.3;
  faults.reorderProbability = 0.3;
  faults.burstProbability = 0.15;

  monitor::MonitorSession session(s.comp.processCount());
  const auto res = monitor::replayConjunctiveFaulty(
      s.clocks, s.trace, s.pred, runOrder, session, faults, rng);

  EXPECT_EQ(res.degradedStreams, 0);
  EXPECT_EQ(res.detected, offline.found);
  EXPECT_EQ(res.verdict, offline.found ? monitor::Verdict::Detected
                                       : monitor::Verdict::NotDetected);
}

// Checkpoint/restore mid-stream is invisible to the verdict: deliver half,
// round-trip the session through the text checkpoint format, replay a tail
// of already-delivered notifications (the transport's at-least-once replay
// after a checker restart), finish the stream, and compare against an
// uninterrupted control session.
TEST_P(ResilienceSweep, MidStreamCheckpointRestorePreservesVerdict) {
  const System s = makeSystem(GetParam() + 31337);
  const auto offline = detect::detectConjunctive(s.clocks, s.trace, s.pred);

  Rng rng(GetParam() * 977 + 3);
  const auto runOrder = graph::randomLinearExtension(s.comp.toDag(), rng);

  // The notification stream, exactly as feed.cpp builds it.
  struct Sent {
    int process;
    std::uint64_t seq;
    std::vector<int> clock;
  };
  std::vector<Sent> stream;
  std::vector<std::uint64_t> perProcess(s.comp.processCount(), 0);
  for (int node : runOrder) {
    const EventId e = s.comp.event(node);
    if (!s.pred.terms[e.process].holds(s.trace, e.index)) continue;
    stream.push_back(
        {e.process, perProcess[e.process]++, s.clocks.clockVector(e)});
  }

  auto finish = [&](monitor::MonitorSession& m, std::size_t from) {
    for (std::size_t i = from; i < stream.size(); ++i) {
      m.deliver(stream[i].process, stream[i].seq, stream[i].clock);
    }
    for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
      m.announceEnd(p, perProcess[p]);
    }
  };

  monitor::MonitorSession control(s.comp.processCount());
  finish(control, 0);
  EXPECT_FALSE(control.hasActiveGaps());
  EXPECT_EQ(control.detected(), offline.found);

  const std::size_t half = stream.size() / 2;
  monitor::MonitorSession first(s.comp.processCount());
  for (std::size_t i = 0; i < half; ++i) {
    first.deliver(stream[i].process, stream[i].seq, stream[i].clock);
  }

  std::stringstream checkpoint;
  io::writeCheckpoint(checkpoint, first.snapshot());
  monitor::MonitorSession resumed =
      monitor::MonitorSession::restore(io::readCheckpoint(checkpoint));

  // At-least-once replay: the transport resends a window of notifications
  // from before the crash; dedup absorbs all of them.
  const std::size_t replayFrom = half > 3 ? half - 3 : 0;
  for (std::size_t i = replayFrom; i < half; ++i) {
    if (resumed.detected()) break;
    const auto d =
        resumed.deliver(stream[i].process, stream[i].seq, stream[i].clock);
    EXPECT_TRUE(d == monitor::Delivery::Duplicate ||
                d == monitor::Delivery::Detected);
  }
  finish(resumed, half);

  EXPECT_FALSE(resumed.hasActiveGaps());
  EXPECT_EQ(resumed.detected(), control.detected());
  EXPECT_EQ(resumed.verdict(), control.verdict());
  EXPECT_EQ(resumed.detected(), offline.found);
}

// A checkpoint taken while a gap is open restores the gap: the missing
// notification delivered after the restore closes it and the verdict is
// unchanged.
TEST_P(ResilienceSweep, CheckpointDuringOpenGapStillRecovers) {
  const System s = makeSystem(GetParam() + 424242);
  const auto offline = detect::detectConjunctive(s.clocks, s.trace, s.pred);

  Rng rng(GetParam() * 613 + 11);
  const auto runOrder = graph::randomLinearExtension(s.comp.toDag(), rng);

  struct Sent {
    int process;
    std::uint64_t seq;
    std::vector<int> clock;
  };
  std::vector<Sent> stream;
  std::vector<std::uint64_t> perProcess(s.comp.processCount(), 0);
  for (int node : runOrder) {
    const EventId e = s.comp.event(node);
    if (!s.pred.terms[e.process].holds(s.trace, e.index)) continue;
    stream.push_back(
        {e.process, perProcess[e.process]++, s.clocks.clockVector(e)});
  }
  if (stream.size() < 3) return;  // nothing interesting to withhold

  // Withhold one mid-stream notification, deliver a couple past it (opening
  // a gap), checkpoint in that state, restore, then deliver the withheld one.
  const std::size_t hole = stream.size() / 2;
  std::size_t upto = std::min(hole + 3, stream.size());
  monitor::MonitorSession first(s.comp.processCount());
  for (std::size_t i = 0; i < upto; ++i) {
    if (i == hole) continue;
    first.deliver(stream[i].process, stream[i].seq, stream[i].clock);
  }

  std::stringstream checkpoint;
  io::writeCheckpoint(checkpoint, first.snapshot());
  monitor::MonitorSession resumed =
      monitor::MonitorSession::restore(io::readCheckpoint(checkpoint));

  if (!resumed.detected()) {
    resumed.deliver(stream[hole].process, stream[hole].seq,
                    stream[hole].clock);
  }
  for (std::size_t i = upto; i < stream.size(); ++i) {
    resumed.deliver(stream[i].process, stream[i].seq, stream[i].clock);
  }
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    resumed.announceEnd(p, perProcess[p]);
  }

  EXPECT_FALSE(resumed.hasActiveGaps());
  EXPECT_EQ(resumed.detected(), offline.found);
  EXPECT_EQ(resumed.verdict(), offline.found
                                   ? monitor::Verdict::Detected
                                   : monitor::Verdict::NotDetected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResilienceSweep,
                         ::testing::Range<std::uint64_t>(1, 201));

}  // namespace
}  // namespace gpd
