// Cross-cutting property sweeps: every efficient detector in the library is
// equivalent to exhaustive ground truth, per seed, as individually-reported
// parameterized cases. Each seed drives a fresh random computation and
// trace; a failure therefore names the exact seed to reproduce.
#include <gtest/gtest.h>

#include "gpd.h"

namespace gpd {
namespace {

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // A fresh random system per test, derived from the seed parameter.
  struct System {
    Computation comp;
    VariableTrace trace;
    VectorClocks clocks;

    System(Computation c, Rng& rng, double boolDensity)
        : comp(std::move(c)), trace(comp), clocks(comp) {
      defineRandomBools(trace, "b", boolDensity, rng);
      defineRandomCounters(trace, "x", 0, 1, rng);
    }
  };

  static System makeSystem(std::uint64_t seed, double msgProb,
                           double boolDensity) {
    Rng rng(seed * 2654435761u + 17);
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(3));
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(4));
    opt.messageProbability = msgProb;
    Computation comp = randomComputation(opt, rng);
    return System(std::move(comp), rng, boolDensity);
  }

  static bool latticePossibly(const System& s,
                              const lattice::CutPredicate& phi) {
    return lattice::possiblyExhaustive(s.clocks, phi);
  }
};

TEST_P(PropertySweep, CpdhbEquivalentToLattice) {
  const System s = makeSystem(GetParam(), 0.5, 0.4);
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    pred.terms.push_back(varTrue(p, "b"));
  }
  const auto res = detect::detectConjunctive(s.clocks, s.trace, pred);
  EXPECT_EQ(res.found, latticePossibly(s, [&](const Cut& c) {
              return pred.holdsAtCut(s.trace, c);
            }));
}

TEST_P(PropertySweep, SingularAlgorithmsAgreeWithEachOtherAndLattice) {
  Rng rng(GetParam() * 31 + 7);
  GroupedComputationOptions opt;
  opt.groups = 2;
  opt.groupSize = 2;
  opt.eventsPerProcess = 3;
  opt.messageProbability = 0.5;
  const Computation comp = randomGroupedComputation(opt, rng);
  VariableTrace trace(comp);
  defineRandomBools(trace, "b", 0.3, rng);
  CnfPredicate pred;
  for (int g = 0; g < 2; ++g) {
    pred.clauses.push_back(
        {{2 * g, "b", rng.chance(0.5)}, {2 * g + 1, "b", rng.chance(0.5)}});
  }
  const VectorClocks clocks(comp);
  const bool expected = lattice::possiblyExhaustive(clocks, [&](const Cut& c) {
    return pred.holdsAtCut(trace, c);
  });
  EXPECT_EQ(detect::detectSingularByProcessEnumeration(clocks, trace, pred).found,
            expected);
  EXPECT_EQ(detect::detectSingularByChainCover(clocks, trace, pred).found,
            expected);
}

TEST_P(PropertySweep, SumExtremaBracketEveryCut) {
  const System s = makeSystem(GetParam(), 0.4, 0.5);
  std::vector<SumTerm> terms;
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    terms.push_back({p, "x"});
  }
  const detect::SumExtrema ext = detect::sumExtrema(s.clocks, s.trace, terms);
  lattice::forEachConsistentCut(s.clocks, [&](const Cut& cut) {
    std::int64_t sum = 0;
    for (const SumTerm& t : terms) {
      sum += s.trace.valueAtCut(cut, t.process, t.var);
    }
    EXPECT_GE(sum, ext.minSum);
    EXPECT_LE(sum, ext.maxSum);
    return true;
  });
}

TEST_P(PropertySweep, Theorem7ExactSumEquivalentToLattice) {
  const System s = makeSystem(GetParam(), 0.4, 0.5);
  std::vector<SumTerm> terms;
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    terms.push_back({p, "x"});
  }
  for (std::int64_t k = -2; k <= 2; ++k) {
    SumPredicate pred{terms, Relop::Equal, k};
    const auto viaTheorem = detect::possiblySum(s.clocks, s.trace, pred);
    const auto viaLattice =
        detect::detectExactSumExhaustive(s.clocks, s.trace, pred);
    EXPECT_EQ(viaTheorem.has_value(), viaLattice.has_value()) << "K=" << k;
  }
}

TEST_P(PropertySweep, DefinitelyConjunctiveEquivalentToLattice) {
  const System s = makeSystem(GetParam(), 0.5, 0.6);
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    pred.terms.push_back(varTrue(p, "b"));
  }
  const auto res = detect::definitelyConjunctive(s.clocks, s.trace, pred);
  EXPECT_EQ(res.holds, lattice::definitelyExhaustive(s.clocks, [&](const Cut& c) {
              return pred.holdsAtCut(s.trace, c);
            }));
}

TEST_P(PropertySweep, DnfDecompositionEquivalentToLattice) {
  const System s = makeSystem(GetParam(), 0.5, 0.4);
  const int n = s.comp.processCount();
  // (b@0 ∧ ¬b@1) ∨ (b@last ∧ b@0): fixed shape, random trace.
  const auto expr = BoolExpr::disjunction(
      {BoolExpr::conjunction(
           {BoolExpr::var(0, "b"), BoolExpr::negate(BoolExpr::var(1 % n, "b"))}),
       BoolExpr::conjunction(
           {BoolExpr::var(n - 1, "b"), BoolExpr::var(0, "b")})});
  const auto res = detect::possiblyExpression(s.clocks, s.trace, *expr);
  EXPECT_EQ(res.cut.has_value(), latticePossibly(s, [&](const Cut& c) {
              return expr->evaluate(s.trace, c);
            }));
}

TEST_P(PropertySweep, LinearConjunctiveEquivalentToCpdhb) {
  const System s = makeSystem(GetParam(), 0.6, 0.35);
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    pred.terms.push_back(varTrue(p, "b"));
  }
  const auto linear =
      detect::detectLinear(s.clocks, detect::conjunctiveOracle(s.trace, pred));
  const auto cpdhb = detect::detectConjunctive(s.clocks, s.trace, pred);
  EXPECT_EQ(linear.cut.has_value(), cpdhb.found);
}

TEST_P(PropertySweep, OnlineMonitorEquivalentToOffline) {
  const System s = makeSystem(GetParam(), 0.5, 0.3);
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    pred.terms.push_back(varTrue(p, "b"));
  }
  const bool offline = detect::detectConjunctive(s.clocks, s.trace, pred).found;
  Rng rng(GetParam() + 99);
  const auto run = graph::randomLinearExtension(s.comp.toDag(), rng);
  monitor::ConjunctiveMonitor mon(s.comp.processCount());
  EXPECT_EQ(monitor::replayConjunctive(s.clocks, s.trace, pred, run, mon)
                .detected,
            offline);
}

TEST_P(PropertySweep, TraceIoRoundTripPreservesDetection) {
  const System s = makeSystem(GetParam(), 0.5, 0.4);
  std::stringstream buffer;
  io::writeTrace(buffer, s.comp, s.trace);
  const io::TraceFile loaded = io::readTrace(buffer);
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    pred.terms.push_back(varTrue(p, "b"));
  }
  const VectorClocks loadedClocks(*loaded.computation);
  EXPECT_EQ(detect::detectConjunctive(s.clocks, s.trace, pred).found,
            detect::detectConjunctive(loadedClocks, *loaded.trace, pred).found);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range<std::uint64_t>(1, 21),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gpd
