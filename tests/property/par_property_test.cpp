// The gpd::par determinism contract (DESIGN.md §10), property-tested: for
// any thread count a parallel kernel is bit-identical to its sequential
// form — same verdict, same witness (lowest combination / frontier index,
// never the first finisher), same combinationsTotal, same complete flag —
// across 200 random computations and thread counts {1, 2, 8}, including
// budget-exhausted Unknown cases under count budgets. Only the progress
// counters may differ, and only when a Yes short-circuits the scan, so on
// Unknown outcomes the serialized result (a canonical checkpoint string
// including progress) must match byte for byte.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "computation/random.h"
#include "control/budget.h"
#include "detect/detector.h"
#include "detect/singular_cnf.h"
#include "lattice/explore.h"
#include "par/pool.h"
#include "predicates/random_trace.h"

namespace gpd::detect {
namespace {

constexpr int kTrials = 200;

// One pool per contract thread count, shared across all trials (the pool is
// reusable; spawning 8 threads per trial would dominate the suite's time).
struct PoolSet {
  par::Pool pool1{1};
  par::Pool pool2{2};
  par::Pool pool8{8};
  par::Pool* all[3] = {&pool1, &pool2, &pool8};
};

// Small random grouped computations — the same corpus shape the budget
// property suite sweeps, kept small so 200 × |threads| detections stay fast.
struct Corpus {
  Computation computation;
  VariableTrace trace;

  explicit Corpus(Rng& rng, int trial)
      : computation(make(rng, trial)), trace(computation) {
    defineRandomBools(trace, "x", 0.35, rng);
    defineRandomCounters(trace, "c2", 0, 2, rng);  // |Δ| > 1: lattice only
  }

  static Computation make(Rng& rng, int trial) {
    GroupedComputationOptions opt;
    opt.groups = 2;
    opt.groupSize = 2;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.5;
    opt.discipline = trial % 3 == 0   ? OrderingDiscipline::None
                     : trial % 3 == 1 ? OrderingDiscipline::ReceiveOrdered
                                      : OrderingDiscipline::SendOrdered;
    return randomGroupedComputation(opt, rng);
  }
};

CnfPredicate singularCnf(Rng& rng) {
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "x", rng.chance(0.5)}},
                  {{2, "x", rng.chance(0.5)}, {3, "x", true}}};
  return pred;
}

ConjunctivePredicate allTrue(int processes) {
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < processes; ++p) {
    pred.terms.push_back(varTrue(p, "x"));
  }
  return pred;
}

SumPredicate wideSum() {
  SumPredicate pred;
  for (ProcessId p = 0; p < 4; ++p) pred.terms.push_back({p, "c2"});
  pred.relop = Relop::Equal;
  pred.k = 2;
  return pred;
}

// Canonical checkpoint string of a Detection — every field a caller could
// persist, excluding per-step wall times (timing) and, unless asked,
// progress (which the contract lets differ on a Yes short-circuit).
std::string checkpoint(const Detection& d, bool includeProgress) {
  std::ostringstream os;
  os << toString(d.outcome) << '|' << d.algorithm << '|'
     << control::toString(d.stopReason) << '|';
  if (d.witness.has_value()) {
    for (int last : d.witness->last) os << last << ',';
  } else {
    os << "-";
  }
  os << '|';
  for (const std::string& s : d.skippedSteps) os << s << ';';
  os << '|';
  for (const StepTrace& st : d.steps) {
    os << st.algorithm << ':' << toString(st.status) << ':' << st.complete
       << ';';
  }
  if (includeProgress) {
    os << '|' << d.progress.cutsVisited << ':' << d.progress.combinationsTried;
  }
  return os.str();
}

// The singular-CNF kernel, sequential vs parallel: verdict, witness events,
// combinationsTotal, and complete flag must be identical; on a budget stop
// without a hit the tried count must match too (both scan exactly the
// budgeted prefix).
void expectKernelIdentical(const SingularCnfResult& seq,
                           const SingularCnfResult& par,
                           const std::string& label) {
  EXPECT_EQ(par.found, seq.found) << label;
  EXPECT_EQ(par.complete, seq.complete) << label;
  EXPECT_EQ(par.combinationsTotal, seq.combinationsTotal) << label;
  EXPECT_EQ(par.witness, seq.witness) << label;
  if (seq.cut.has_value()) {
    ASSERT_TRUE(par.cut.has_value()) << label;
    EXPECT_EQ(par.cut->last, seq.cut->last) << label;
  } else {
    EXPECT_FALSE(par.cut.has_value()) << label;
  }
  if (!seq.found) {
    EXPECT_EQ(par.combinationsTried, seq.combinationsTried) << label;
  }
}

TEST(ParPropertyTest, SingularKernelMatchesSequentialForAnyThreadCount) {
  Rng rng(628318);
  PoolSet pools;
  int unknowns = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Corpus corpus(rng, trial);
    const VectorClocks vc(corpus.computation);
    const CnfPredicate pred = singularCnf(rng);
    const std::string t = "trial " + std::to_string(trial);

    const SingularCnfResult seq =
        detectSingularByChainCover(vc, corpus.trace, pred);
    control::BudgetLimits tiny;
    tiny.maxCombinations = 1 + static_cast<std::uint64_t>(trial % 3);
    control::Budget seqBudget(tiny);
    const SingularCnfResult seqTiny =
        detectSingularByChainCover(vc, corpus.trace, pred, &seqBudget);
    if (!seqTiny.complete) ++unknowns;

    for (par::Pool* pool : pools.all) {
      const std::string label =
          t + " threads=" + std::to_string(pool->threads());
      const SingularCnfResult par =
          detectSingularByChainCover(vc, corpus.trace, pred, nullptr, pool);
      expectKernelIdentical(seq, par, label);

      control::Budget parBudget(tiny);
      const SingularCnfResult parTiny = detectSingularByChainCover(
          vc, corpus.trace, pred, &parBudget, pool);
      expectKernelIdentical(seqTiny, parTiny, label + " tiny");
      EXPECT_EQ(parBudget.reason(), seqBudget.reason()) << label;
    }
  }
  // The sweep must actually reach the budget-exhausted regime.
  EXPECT_GT(unknowns, 0);
}

TEST(ParPropertyTest, LatticeSearchMatchesSequentialForAnyThreadCount) {
  Rng rng(141421);
  PoolSet pools;
  int incompletes = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Corpus corpus(rng, trial);
    const VectorClocks vc(corpus.computation);
    const SumPredicate pred = wideSum();
    const lattice::CutPredicate phi = [&](const Cut& cut) {
      return pred.holdsAtCut(corpus.trace, cut);
    };
    const std::string t = "trial " + std::to_string(trial);

    const lattice::CutSearchResult seq =
        lattice::findSatisfyingCutBudgeted(vc, phi);
    control::BudgetLimits tiny;
    tiny.maxCuts = 1 + static_cast<std::uint64_t>(trial % 5);
    control::Budget seqBudget(tiny);
    const lattice::CutSearchResult seqTiny =
        lattice::findSatisfyingCutBudgeted(vc, phi, &seqBudget);
    if (!seqTiny.complete) ++incompletes;

    for (par::Pool* poolPtr : pools.all) {
      par::Pool& pool = *poolPtr;
      const std::string label =
          t + " threads=" + std::to_string(pool.threads());

      const lattice::CutSearchResult par =
          lattice::findSatisfyingCutParallel(vc, phi, pool);
      EXPECT_EQ(par.complete, seq.complete) << label;
      ASSERT_EQ(par.witness.has_value(), seq.witness.has_value()) << label;
      if (seq.witness.has_value()) {
        EXPECT_EQ(par.witness->last, seq.witness->last) << label;
      }

      control::Budget parBudget(tiny);
      const lattice::CutSearchResult parTiny =
          lattice::findSatisfyingCutParallel(vc, phi, pool, &parBudget);
      EXPECT_EQ(parTiny.complete, seqTiny.complete) << label << " tiny";
      ASSERT_EQ(parTiny.witness.has_value(), seqTiny.witness.has_value())
          << label << " tiny";
      if (seqTiny.witness.has_value()) {
        EXPECT_EQ(parTiny.witness->last, seqTiny.witness->last)
            << label << " tiny";
      }
      EXPECT_EQ(parBudget.reason(), seqBudget.reason()) << label << " tiny";
      // On a budget stop both scans charged exactly the budgeted prefix.
      if (!seqTiny.complete && !seqTiny.witness.has_value()) {
        EXPECT_EQ(parBudget.progress().cutsVisited,
                  seqBudget.progress().cutsVisited)
            << label << " tiny";
      }

      const lattice::DefinitelyDecision seqDef =
          lattice::definitelyExhaustiveBudgeted(vc, phi);
      const lattice::DefinitelyDecision parDef =
          lattice::definitelyExhaustiveParallel(vc, phi, pool);
      EXPECT_EQ(parDef.decided, seqDef.decided) << label;
      EXPECT_EQ(parDef.holds, seqDef.holds) << label;
    }
  }
  EXPECT_GT(incompletes, 0);
}

// Detector-level: the routed facade with a pool produces byte-identical
// checkpoints to the sequential facade for every predicate class that can
// reach a parallel kernel — including Unknown results, where even the
// progress counters must serialize identically.
TEST(ParPropertyTest, DetectorCheckpointsAreByteIdenticalAcrossThreads) {
  Rng rng(173205);
  PoolSet pools;
  int unknowns = 0;
  for (int trial = 0; trial < kTrials / 4; ++trial) {
    Corpus corpus(rng, trial);
    Detector det(corpus.trace);
    const CnfPredicate cnf = singularCnf(rng);
    const ConjunctivePredicate conj = allTrue(4);
    const SumPredicate wide = wideSum();
    const std::string t = "trial " + std::to_string(trial);

    control::BudgetLimits generous;
    generous.deadlineMillis = 60000;
    control::BudgetLimits tiny;
    tiny.maxCuts = 4;
    tiny.maxCombinations = 2;

    for (const bool useTiny : {false, true}) {
      const control::BudgetLimits& limits = useTiny ? tiny : generous;
      const std::string b = useTiny ? " tiny" : " generous";

      det.usePool(nullptr);
      control::Budget cnfSeq(limits);
      const std::string cnfRef =
          checkpoint(det.possibly(cnf, cnfSeq), useTiny);
      control::Budget wideSeq(limits);
      const std::string wideRef =
          checkpoint(det.possibly(wide, wideSeq), useTiny);
      control::Budget defSeq(limits);
      const std::string defRef =
          checkpoint(det.definitely(conj, defSeq), useTiny);
      if (cnfRef.find("unknown") == 0 || wideRef.find("unknown") == 0) {
        ++unknowns;
      }

      for (par::Pool* pool : pools.all) {
        det.usePool(pool);
        const std::string label =
            t + b + " threads=" + std::to_string(pool->threads());
        control::Budget cnfPar(limits);
        EXPECT_EQ(checkpoint(det.possibly(cnf, cnfPar), useTiny), cnfRef)
            << label;
        control::Budget widePar(limits);
        EXPECT_EQ(checkpoint(det.possibly(wide, widePar), useTiny), wideRef)
            << label;
        control::Budget defPar(limits);
        EXPECT_EQ(checkpoint(det.definitely(conj, defPar), useTiny), defRef)
            << label;
      }
      det.usePool(nullptr);
    }
  }
  EXPECT_GT(unknowns, 0);
}

}  // namespace
}  // namespace gpd::detect
