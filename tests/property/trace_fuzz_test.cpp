// Fuzz-style robustness properties for the trace reader: starting from
// valid serialized traces of every workload generator, random mutations
// (truncation, byte flips, line edits, token injection) must always yield a
// clean gpd::InputError — never a crash, hang, CheckFailure, or a silently
// mangled computation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "gpd.h"

namespace gpd {
namespace {

// One serialized trace per workload family, plus random computations: the
// mutation corpus covers every shape the writer can produce.
const std::vector<std::string>& corpus() {
  static const std::vector<std::string> entries = [] {
    std::vector<std::string> out;
    auto add = [&out](const sim::SimResult& run) {
      std::ostringstream os;
      io::writeTrace(os, *run.computation, *run.trace);
      out.push_back(os.str());
    };
    add(sim::tokenRing({.processes = 4, .rounds = 2, .seed = 11}));
    add(sim::ricartAgrawala({.processes = 3, .rounds = 1, .seed = 12}));
    add(sim::leaderElection({.processes = 4, .seed = 13}));
    add(sim::voting({.processes = 4, .seed = 14}));
    add(sim::diningPhilosophers({.philosophers = 3, .meals = 1, .seed = 15}));
    add(sim::snapshotBank(
        {.processes = 3, .transfersPerProcess = 2, .seed = 16}));
    add(sim::diffusingComputation(
        {.processes = 4, .totalWorkBudget = 6, .seed = 17}));
    add(sim::producerConsumer(
        {.producers = 2, .consumers = 2, .itemsPerProducer = 2, .seed = 18}));
    Rng rng(19);
    for (int i = 0; i < 4; ++i) {
      RandomComputationOptions opt;
      opt.processes = 2 + i;
      opt.eventsPerProcess = 3;
      const Computation comp = randomComputation(opt, rng);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.5, rng);
      defineRandomCounters(trace, "x", 0, 1, rng);
      std::ostringstream os;
      io::writeTrace(os, comp, trace);
      out.push_back(os.str());
    }
    return out;
  }();
  return entries;
}

// Parses mutated text; returns true if it parsed, failing the test if the
// reader misbehaves in any way other than a clean InputError.
bool tryParse(const std::string& text) {
  std::istringstream is(text);
  try {
    const io::TraceFile file = io::readTrace(is);
    // Whatever parsed must be internally consistent enough to use.
    EXPECT_GE(file.computation->processCount(), 1);
    EXPECT_EQ(&file.trace->computation(), file.computation.get());
    return true;
  } catch (const InputError&) {
    return false;  // the one acceptable failure mode for hostile input
  }
  // CheckFailure or anything else escapes and fails the test.
}

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string joinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

class TraceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFuzz, EveryCorpusEntryRoundTrips) {
  for (const std::string& text : corpus()) {
    EXPECT_TRUE(tryParse(text));
  }
}

TEST_P(TraceFuzz, TruncationsNeverEscapeInputError) {
  Rng rng(GetParam() * 71 + 1);
  const auto all = corpus();
  const std::string& text = all[rng.index(all.size())];
  for (int i = 0; i < 20; ++i) {
    tryParse(text.substr(0, rng.index(text.size() + 1)));
  }
}

TEST_P(TraceFuzz, ByteFlipsNeverEscapeInputError) {
  Rng rng(GetParam() * 73 + 2);
  const auto all = corpus();
  std::string text = all[rng.index(all.size())];
  for (int i = 0; i < 20; ++i) {
    std::string mutated = text;
    const int flips = 1 + static_cast<int>(rng.index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.index(mutated.size());
      // Printable garbage and control characters alike.
      mutated[pos] = static_cast<char>(rng.uniform(1, 126));
    }
    tryParse(mutated);
  }
}

TEST_P(TraceFuzz, LineLevelEditsNeverEscapeInputError) {
  Rng rng(GetParam() * 79 + 3);
  const auto all = corpus();
  const auto lines = splitLines(all[rng.index(all.size())]);
  for (int i = 0; i < 20; ++i) {
    std::vector<std::string> mutated = lines;
    switch (rng.index(4)) {
      case 0:  // delete a random line
        mutated.erase(mutated.begin() + rng.index(mutated.size()));
        break;
      case 1:  // duplicate a random line
        mutated.insert(mutated.begin() + rng.index(mutated.size()),
                       mutated[rng.index(mutated.size())]);
        break;
      case 2:  // swap two random lines
        std::swap(mutated[rng.index(mutated.size())],
                  mutated[rng.index(mutated.size())]);
        break;
      default:  // shuffle everything
        rng.shuffle(mutated);
        break;
    }
    tryParse(joinLines(mutated));
  }
}

TEST_P(TraceFuzz, TokenInjectionNeverEscapesInputError) {
  Rng rng(GetParam() * 83 + 4);
  const std::vector<std::string> hostile = {
      "-1",      "999999999999",          "nan",  "1e9",
      "0x10",    "18446744073709551616",  "var",  "message",
      "end",     "processes",             "",     "\t",
  };
  const auto all = corpus();
  auto lines = splitLines(all[rng.index(all.size())]);
  for (int i = 0; i < 20; ++i) {
    std::vector<std::string> mutated = lines;
    std::string& line = mutated[rng.index(mutated.size())];
    const std::string& token = hostile[rng.index(hostile.size())];
    const std::size_t pos = rng.index(line.size() + 1);
    line = line.substr(0, pos) + " " + token + " " + line.substr(pos);
    tryParse(joinLines(mutated));
  }
}

// Targeted hostile inputs that a random mutator is unlikely to hit.
TEST(TraceFuzzTargeted, HostileCountsAreRejectedBeforeAllocation) {
  for (const char* text : {
           "gpd-trace 1\nprocesses 1099511627776\n",
           "gpd-trace 1\nprocesses 2\nevents 999999999 999999999\nend\n",
           "gpd-trace 1\nprocesses -3\n",
           "gpd-trace 1\nprocesses 2\nevents 1 -7\nend\n",
       }) {
    std::istringstream is(text);
    EXPECT_THROW(io::readTrace(is), InputError) << text;
  }
}

TEST(TraceFuzzTargeted, CyclicMessagesAreInputErrorNotCheckFailure) {
  std::istringstream is(
      "gpd-trace 1\n"
      "processes 2\n"
      "events 2 2\n"
      "message 0 1 1 1\n"
      "message 1 1 0 1\n"
      "end\n");
  EXPECT_THROW(io::readTrace(is), InputError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace gpd
