// Property sweep, wave two: the special-case and extension detectors, per
// seed, as individually-reported parameterized cases.
#include <gtest/gtest.h>

#include "gpd.h"

namespace gpd {
namespace {

class PropertySweep2 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep2, CpdscReceiveOrderedEquivalentToLattice) {
  Rng rng(GetParam() * 7919 + 1);
  GroupedComputationOptions opt;
  opt.groups = 2;
  opt.groupSize = 2;
  opt.eventsPerProcess = 3;
  opt.messageProbability = 0.6;
  opt.discipline = GetParam() % 2 ? OrderingDiscipline::ReceiveOrdered
                                  : OrderingDiscipline::SendOrdered;
  const Computation comp = randomGroupedComputation(opt, rng);
  VariableTrace trace(comp);
  defineRandomBools(trace, "b", 0.3, rng);
  CnfPredicate pred;
  for (int g = 0; g < 2; ++g) {
    pred.clauses.push_back(
        {{2 * g, "b", rng.chance(0.5)}, {2 * g + 1, "b", rng.chance(0.5)}});
  }
  const VectorClocks clocks(comp);
  const detect::CpdscResult res =
      detect::detectSingularSpecialCase(clocks, trace, pred);
  ASSERT_TRUE(res.applicable());
  EXPECT_EQ(res.found(), lattice::possiblyExhaustive(clocks, [&](const Cut& c) {
              return pred.holdsAtCut(trace, c);
            }));
}

TEST_P(PropertySweep2, SymmetricDetectionEquivalentToLattice) {
  Rng rng(GetParam() * 104729 + 3);
  RandomComputationOptions opt;
  opt.processes = 4;
  opt.eventsPerProcess = 3;
  opt.messageProbability = 0.5;
  const Computation comp = randomComputation(opt, rng);
  VariableTrace trace(comp);
  defineRandomBools(trace, "b", 0.35, rng);
  std::vector<SumTerm> vars;
  for (ProcessId p = 0; p < 4; ++p) vars.push_back({p, "b"});
  const VectorClocks clocks(comp);
  for (const SymmetricPredicate& pred :
       {exclusiveOr(vars), absenceOfSimpleMajority(vars), exactlyK(vars, 2)}) {
    const auto witness = detect::possiblySymmetric(clocks, trace, pred);
    EXPECT_EQ(witness.has_value(),
              lattice::possiblyExhaustive(clocks, [&](const Cut& c) {
                return pred.holdsAtCut(trace, c);
              }))
        << pred.name;
  }
}

TEST_P(PropertySweep2, InequalityLoweringEquivalentToLattice) {
  Rng rng(GetParam() * 65537 + 5);
  GroupedComputationOptions opt;
  opt.groups = 2;
  opt.groupSize = 2;
  opt.eventsPerProcess = 3;
  opt.messageProbability = 0.4;
  const Computation comp = randomGroupedComputation(opt, rng);
  VariableTrace trace(comp);
  defineRandomCounters(trace, "v", 0, 2, rng);
  const Relop ops[] = {Relop::Less, Relop::LessEq, Relop::Greater,
                       Relop::GreaterEq, Relop::NotEqual};
  IneqClausePredicate pred;
  for (int g = 0; g < 2; ++g) {
    pred.clauses.push_back(
        {{2 * g, "v", ops[rng.index(5)], rng.uniform(-2, 2)},
         {2 * g + 1, "v", ops[rng.index(5)], rng.uniform(-2, 2)}});
  }
  const VectorClocks clocks(comp);
  const detect::IneqResult res =
      detect::possiblyInequality(clocks, trace, pred);
  EXPECT_EQ(res.cut.has_value(),
            lattice::possiblyExhaustive(clocks, [&](const Cut& c) {
              return pred.holdsAtCut(trace, c);
            }));
}

TEST_P(PropertySweep2, SatEncodingEquivalentToChainCover) {
  Rng rng(GetParam() * 92821 + 7);
  GroupedComputationOptions opt;
  opt.groups = 3;
  opt.groupSize = 2;
  opt.eventsPerProcess = 4;
  opt.messageProbability = 0.5;
  const Computation comp = randomGroupedComputation(opt, rng);
  VariableTrace trace(comp);
  defineRandomBools(trace, "b", 0.25, rng);
  CnfPredicate pred;
  for (int g = 0; g < 3; ++g) {
    pred.clauses.push_back(
        {{2 * g, "b", rng.chance(0.5)}, {2 * g + 1, "b", rng.chance(0.5)}});
  }
  const VectorClocks clocks(comp);
  EXPECT_EQ(detect::detectSingularViaSat(clocks, trace, pred).cut.has_value(),
            detect::detectSingularByChainCover(clocks, trace, pred).found);
}

TEST_P(PropertySweep2, SliceMembershipEquivalentToPredicate) {
  Rng rng(GetParam() * 15485863 + 11);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 3;
  opt.messageProbability = 0.5;
  const Computation comp = randomComputation(opt, rng);
  VariableTrace trace(comp);
  defineRandomBools(trace, "b", 0.5, rng);
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < 3; ++p) pred.terms.push_back(varTrue(p, "b"));
  const VectorClocks clocks(comp);
  const detect::Slice slice =
      detect::computeSlice(clocks, detect::conjunctiveOracle(trace, pred));
  lattice::forEachConsistentCut(clocks, [&](const Cut& cut) {
    EXPECT_EQ(detect::sliceSatisfies(slice, clocks, cut),
              pred.holdsAtCut(trace, cut));
    return true;
  });
}

TEST_P(PropertySweep2, ControlSerializesOrReportsConflict) {
  Rng rng(GetParam() * 7 + 13);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 4;
  opt.messageProbability = 0.4;
  const Computation comp = randomComputation(opt, rng);
  VariableTrace trace(comp);
  defineRandomBools(trace, "a", 0.35, rng);
  std::vector<std::vector<detect::TrueInterval>> intervals;
  for (ProcessId p = 0; p < 3; ++p) {
    intervals.push_back(detect::trueIntervals(trace, varTrue(p, "a")));
  }
  const VectorClocks clocks(comp);
  const control::SerializationResult res =
      control::serializeIntervals(clocks, intervals);
  if (!res.feasible) return;  // conflict paths covered in control tests
  const VariableTrace controlled = trace.rebindTo(*res.controlled);
  const VectorClocks controlledClocks(*res.controlled);
  for (ProcessId i = 0; i < 3; ++i) {
    for (ProcessId j = i + 1; j < 3; ++j) {
      ConjunctivePredicate both{{varTrue(i, "a"), varTrue(j, "a")}};
      EXPECT_FALSE(
          detect::detectConjunctive(controlledClocks, controlled, both).found);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep2,
                         ::testing::Range<std::uint64_t>(1, 21),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gpd
