// Adversarial budget stress: Theorem 1 gadgets (SAT reduced to singular
// 2-CNF detection) are the worst case the paper proves exists — an
// unsatisfiable instance forces the full exponential enumeration. A tiny
// wall-clock deadline must turn that into a prompt, honest Unknown:
//
//   * the detector returns within a small multiple of the deadline
//     (cooperative polling, no runaway step), and
//   * whenever it does answer Yes/No, the answer matches DPLL ground truth
//     on the same formula — budget pressure never produces a wrong answer.
//
// Set GPD_BUDGET_STRESS=1 (the CI budget-stress job does) to widen the
// sweep.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "control/budget.h"
#include "detect/detector.h"
#include "reduction/sat_to_computation.h"
#include "sat/cnf.h"
#include "sat/dpll.h"
#include "sat/nonmonotone.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace gpd::detect {
namespace {

using reduction::SatGadget;
using reduction::SimplifiedFormula;

constexpr std::uint64_t kDeadlineMs = 50;

bool stressMode() { return std::getenv("GPD_BUDGET_STRESS") != nullptr; }

// Builds a gadget from a random pure 3-CNF (no unit clauses, so
// simplifyForGadget cannot shrink it). Returns false when simplification
// decides the instance outright (no gadget to stress).
bool makeGadget(int vars, int clauses, Rng& rng, SatGadget& gadget,
                SimplifiedFormula& simplified) {
  const sat::Cnf raw = sat::randomKCnf(vars, clauses, 3, rng);
  simplified = reduction::simplifyForGadget(sat::toNonMonotone(raw).formula);
  if (simplified.unsatisfiable || simplified.formula.clauses.empty()) {
    return false;
  }
  gadget = reduction::buildSatGadget(simplified.formula);
  return true;
}

TEST(BudgetAdversarialTest, DeadlineOnHardGadgetsIsPromptAndNeverWrong) {
  Rng rng(97531);
  const int trials = stressMode() ? 40 : 8;
  int unknowns = 0;
  for (int trial = 0; trial < trials; ++trial) {
    SatGadget g;
    SimplifiedFormula s;
    // Clause ratio ~6 per variable: almost always unsatisfiable, which is
    // exactly the case that forces the full Π cⱼ enumeration.
    if (!makeGadget(6, 36, rng, g, s)) continue;
    const bool truth = sat::solveDpll(s.formula).has_value();

    Detector det(*g.trace);
    control::BudgetLimits limits;
    limits.deadlineMillis = kDeadlineMs;
    control::Budget budget(limits);
    Stopwatch sw;
    const Detection d = det.possibly(g.predicate, budget);
    const double elapsedMs = sw.elapsedMillis();

    EXPECT_LE(elapsedMs, 2.0 * kDeadlineMs)
        << "trial " << trial << ": detector overran the deadline";
    switch (d.outcome) {
      case Outcome::Yes:
        EXPECT_TRUE(truth) << "trial " << trial;
        ASSERT_TRUE(d.witness.has_value());
        EXPECT_TRUE(g.predicate.holdsAtCut(*g.trace, *d.witness));
        break;
      case Outcome::No:
        EXPECT_FALSE(truth) << "trial " << trial;
        break;
      case Outcome::Unknown:
        ++unknowns;
        EXPECT_EQ(d.stopReason, control::StopReason::Deadline)
            << "trial " << trial;
        EXPECT_GT(d.progress.combinationsTried, 0u) << "trial " << trial;
        break;
    }
  }
  // The sweep is pointless unless the deadline actually bit somewhere.
  EXPECT_GT(unknowns, 0);
}

TEST(BudgetAdversarialTest, SmallGadgetsUnderDeadlineMatchDpllWhenDecided) {
  Rng rng(8642);
  const int trials = stressMode() ? 120 : 40;
  int decided = 0;
  for (int trial = 0; trial < trials; ++trial) {
    SatGadget g;
    SimplifiedFormula s;
    if (!makeGadget(4 + static_cast<int>(rng.index(2)),
                    4 + static_cast<int>(rng.index(5)), rng, g, s)) {
      continue;
    }
    if (s.formula.clauses.size() > 12) continue;  // keep enumeration small
    const bool truth = sat::solveDpll(s.formula).has_value();

    Detector det(*g.trace);
    control::BudgetLimits limits;
    limits.deadlineMillis = kDeadlineMs;
    control::Budget budget(limits);
    const Detection d = det.possibly(g.predicate, budget);
    if (d.outcome == Outcome::Unknown) {
      EXPECT_NE(d.stopReason, control::StopReason::None) << "trial " << trial;
      continue;
    }
    ++decided;
    EXPECT_EQ(d.outcome == Outcome::Yes, truth) << "trial " << trial;
    if (d.outcome == Outcome::Yes) {
      ASSERT_TRUE(d.witness.has_value());
      const sat::Assignment a = g.decode(*d.witness, s.formula.numVars);
      EXPECT_TRUE(sat::satisfies(s.formula, a)) << "trial " << trial;
    }
  }
  // Small instances fit in 50ms: most of the sweep must decide exactly.
  EXPECT_GT(decided, 5);
}

TEST(BudgetAdversarialTest, CancelTokenStopsARunawayEnumeration) {
  // A hard gadget with NO limits except a cancel token fired from another
  // thread: the enumeration must stop cooperatively instead of running for
  // the 3^36-ish combinations the instance demands.
  Rng rng(424242);
  SatGadget g;
  SimplifiedFormula s;
  for (int attempt = 0; attempt < 20; ++attempt) {
    if (makeGadget(6, 40, rng, g, s) &&
        !sat::solveDpll(s.formula).has_value()) {
      break;
    }
    ASSERT_LT(attempt, 19) << "no unsatisfiable gadget found";
  }

  control::CancelToken cancel;
  control::Budget budget(control::BudgetLimits{}, &cancel);
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cancel.requestCancel();
  });
  Detector det(*g.trace);
  Stopwatch sw;
  const Detection d = det.possibly(g.predicate, budget);
  const double elapsedMs = sw.elapsedMillis();
  canceller.join();

  EXPECT_EQ(d.outcome, Outcome::Unknown);
  EXPECT_EQ(d.stopReason, control::StopReason::Cancelled);
  EXPECT_LT(elapsedMs, 5000.0);  // generous: cancellation, not completion
}

}  // namespace
}  // namespace gpd::detect
