// Delta-manifest chain and replication properties behind gpdd's HA story:
//
//  * a full manifest plus its delta chain restores byte-identically to the
//    live engine, across 200 seeded workloads with captures sprinkled at
//    random pump boundaries;
//  * a corrupted or missing middle delta is refused with gpd::InputError —
//    both at the Engine::applyDeltaText layer and through ManifestLog's
//    on-disk recovery;
//  * delta checkpoint bytes scale with *dirty* sessions, not open ones;
//  * a leader's record stream replayed through ReplicationFollower yields a
//    bit-identical engine, and surviving two failovers in a row (leader →
//    promoted follower → promoted follower of the promoted follower) is
//    still recovery-equivalent to an uninterrupted control run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "service/engine.h"
#include "service/manifest_log.h"
#include "service/replica.h"
#include "util/check.h"
#include "util/rng.h"

#include "workload_gen.h"

namespace gpd::service {
namespace {

std::string manifestOf(Engine& eng) {
  std::ostringstream os;
  eng.writeManifest(os);
  return os.str();
}

void pumpBatch(Engine& eng, const Batch& batch, std::string* transcript) {
  for (const std::string& c : batch) eng.submit(c);
  std::vector<Response> out;
  eng.pump(out);
  if (transcript == nullptr) return;
  for (const Response& r : out) {
    *transcript += r.payload;
    *transcript += '\n';
  }
}

TEST(DeltaManifestProperty, FullPlusDeltasRestoreIsByteIdentical) {
  std::size_t deltasApplied = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto batches = makeWorkload(seed);
    const EngineOptions opt = optionsForSeed(seed);
    Rng capRng(seed * 6151 + 3);
    Engine live(opt);

    // Anchor the chain with a full capture up front, then capture a delta
    // at a random subset of pump boundaries and once at the end so the
    // restored replica lands exactly on the live engine's state.
    const CheckpointCapture full = live.captureCheckpoint(false);
    ASSERT_FALSE(full.delta) << "seed " << seed;
    std::vector<std::string> deltas;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      pumpBatch(live, batches[b], nullptr);
      if (b + 1 == batches.size() || capRng.chance(0.5)) {
        const CheckpointCapture cap = live.captureCheckpoint(true);
        ASSERT_TRUE(cap.delta) << "seed " << seed << " batch " << b;
        deltas.push_back(cap.text);
      }
    }

    auto restored = Engine::restoreManifestText(full.text, opt);
    for (const std::string& d : deltas) restored->applyDeltaText(d);
    deltasApplied += deltas.size();
    ASSERT_EQ(manifestOf(live), manifestOf(*restored)) << "seed " << seed;
  }
  // Not vacuous: the 200 seeds applied a real number of deltas.
  EXPECT_GT(deltasApplied, 400u);
}

TEST(DeltaManifestProperty, CorruptedOrSkippedDeltaIsRefused) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto batches = makeWorkload(seed);
    const EngineOptions opt = optionsForSeed(seed);
    Engine live(opt);
    const CheckpointCapture full = live.captureCheckpoint(false);
    std::vector<std::string> deltas;
    for (const Batch& b : batches) {
      pumpBatch(live, b, nullptr);
      deltas.push_back(live.captureCheckpoint(true).text);
    }
    ASSERT_GE(deltas.size(), 3u);

    // Skipping a middle delta breaks the parent chain.
    {
      auto eng = Engine::restoreManifestText(full.text, opt);
      eng->applyDeltaText(deltas[0]);
      EXPECT_THROW(eng->applyDeltaText(deltas[2]), InputError)
          << "seed " << seed;
    }
    // Flipping a payload byte in a middle delta fails validation. Corrupt a
    // byte in the back half, clear of the header the parent check reads.
    {
      std::string bad = deltas[1];
      bad[bad.size() / 2 + bad.size() / 4] ^= 0x20;
      auto eng = Engine::restoreManifestText(full.text, opt);
      eng->applyDeltaText(deltas[0]);
      EXPECT_THROW(eng->applyDeltaText(bad), InputError) << "seed " << seed;
    }
    // The intact chain still lands on the live state.
    {
      auto eng = Engine::restoreManifestText(full.text, opt);
      for (const std::string& d : deltas) eng->applyDeltaText(d);
      EXPECT_EQ(manifestOf(live), manifestOf(*eng)) << "seed " << seed;
    }
  }
}

// ManifestLog recovery over real files: missing and corrupted middle deltas
// are refused, stale deltas from before the last full are ignored.
class ManifestLogRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("gpd_mlog_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "manifest").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Drives every batch of `seed`'s workload through an engine, storing a
  // checkpoint via the log after each pump. Returns the final manifest.
  std::string populate(std::uint64_t seed, std::uint64_t fullEvery) {
    const auto batches = makeWorkload(seed);
    ManifestLog log(path_, fullEvery);
    Engine eng(optionsForSeed(seed));
    log.store(eng, /*forceFull=*/true);
    for (const Batch& b : batches) {
      pumpBatch(eng, b, nullptr);
      log.store(eng);
    }
    return manifestOf(eng);
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(ManifestLogRecoveryTest, RecoversFullPlusDeltaChain) {
  const std::uint64_t seed = 7;
  const std::string want = populate(seed, /*fullEvery=*/100);
  ManifestLog log(path_, 100);
  auto eng = log.recover(optionsForSeed(seed));
  EXPECT_EQ(want, manifestOf(*eng));
  EXPECT_GT(log.deltasSinceFull(), 0u);
}

TEST_F(ManifestLogRecoveryTest, RefusesMissingMiddleDelta) {
  populate(7, 100);
  ASSERT_TRUE(std::filesystem::exists(path_ + ".delta.2"));
  std::filesystem::remove(path_ + ".delta.2");
  ManifestLog log(path_, 100);
  EXPECT_THROW(log.recover(optionsForSeed(7)), InputError);
}

TEST_F(ManifestLogRecoveryTest, RefusesCorruptedMiddleDelta) {
  populate(7, 100);
  const std::string victim = path_ + ".delta.2";
  std::string text;
  {
    std::ifstream in(victim, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
  }
  ASSERT_FALSE(text.empty());
  text[text.size() / 2 + text.size() / 4] ^= 0x20;
  std::ofstream(victim, std::ios::binary | std::ios::trunc) << text;
  ManifestLog log(path_, 100);
  EXPECT_THROW(log.recover(optionsForSeed(7)), InputError);
}

TEST_F(ManifestLogRecoveryTest, FullCadenceTruncatesChain) {
  // fullEvery=3 rewrites the full and unlinks deltas every third store;
  // recovery must see only the live suffix.
  const std::string want = populate(9, /*fullEvery=*/3);
  ManifestLog log(path_, 3);
  auto eng = log.recover(optionsForSeed(9));
  EXPECT_EQ(want, manifestOf(*eng));
  EXPECT_LT(log.deltasSinceFull(), 3u);
}

TEST(DeltaManifestProperty, DeltaBytesScaleWithDirtySessions) {
  // 60 open sessions, then touch 3: the delta must carry only the dirty
  // sessions and come in far under the full manifest — the sublinear
  // checkpoint cost the incremental format exists for.
  EngineOptions opt;
  opt.shards = 4;
  Engine eng(opt);
  for (int i = 0; i < 60; ++i) {
    eng.submit("OPEN t0 s" + std::to_string(i) + " 2");
    eng.submit("EV t0 s" + std::to_string(i) + " 0 0 1 0");
  }
  std::vector<Response> out;
  eng.pump(out);
  const CheckpointCapture full = eng.captureCheckpoint(false);
  ASSERT_FALSE(full.delta);

  for (int i = 0; i < 3; ++i) {
    eng.submit("EV t0 s" + std::to_string(i) + " 1 0 0 1");
  }
  out.clear();
  eng.pump(out);
  const CheckpointCapture delta = eng.captureCheckpoint(true);
  ASSERT_TRUE(delta.delta);
  EXPECT_EQ(3u, delta.sessions);
  EXPECT_LT(delta.text.size(), full.text.size() / 4)
      << "delta " << delta.text.size() << "B vs full " << full.text.size()
      << "B";
}

// --- Replication / double failover -----------------------------------------

// Streams one pump's worth of commands leader → follower, then executes the
// same pump on the leader (and its shadow control engine), collecting
// responses. Mirrors gpdd's serve loop ordering: replicate first, then run.
void replicatedPump(Engine& leader, ReplicationFollower& follower,
                    const Batch& batch, std::string* transcript,
                    std::vector<std::string>* unflushed) {
  std::vector<ReplicatedCmd> cmds;
  cmds.reserve(batch.size());
  int origin = 1;
  for (const std::string& c : batch) cmds.push_back({origin++ % 5, c});
  for (const std::string& rec :
       capturePumpRecord(leader.stats().pumps, cmds)) {
    follower.consume(rec);
  }
  for (ReplicatedCmd& cmd : cmds) leader.submit(std::move(cmd.payload),
                                                cmd.origin);
  std::vector<Response> out;
  leader.pump(out);
  for (const Response& r : out) {
    if (transcript != nullptr) {
      *transcript += r.payload;
      *transcript += '\n';
    }
    if (unflushed != nullptr) unflushed->push_back(r.payload);
  }
}

// Attaches a fresh follower to `leader` the way gpdd does: hello, then a
// forced-full snapshot. The control engine mirrors the capture so epochs
// stay in lockstep for the final manifest comparison.
void attach(Engine& leader, Engine& control, ReplicationFollower& follower) {
  follower.consume(captureHelloRecord());
  const CheckpointCapture snap = leader.captureCheckpoint(false);
  control.captureCheckpoint(false);
  for (const std::string& rec : captureSnapshotRecord(snap)) {
    follower.consume(rec);
  }
  ASSERT_TRUE(follower.snapshotLoaded());
}

TEST(ReplicationProperty, DoubleFailoverIsRecoveryEquivalent) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto batches = makeWorkload(seed);
    const EngineOptions opt = optionsForSeed(seed);
    const std::size_t n = batches.size();
    const std::size_t f1 = std::max<std::size_t>(1, n / 3);
    const std::size_t f2 = std::max<std::size_t>(f1 + 1, 2 * n / 3);

    // Control: the same batches with the same pump boundaries and mirrored
    // checkpoint captures, never failing over.
    auto control = std::make_unique<Engine>(opt);
    auto leader = std::make_unique<Engine>(opt);
    std::string controlTranscript;
    std::string haTranscript;

    const auto drive = [&](ReplicationFollower* follower, std::size_t from,
                           std::size_t to,
                           std::vector<std::string>* unflushed) {
      for (std::size_t b = from; b < to && b < n; ++b) {
        pumpBatch(*control, batches[b], &controlTranscript);
        if (follower == nullptr) {
          pumpBatch(*leader, batches[b], &haTranscript);
          control->captureCheckpoint(true);
          leader->captureCheckpoint(true);
          continue;
        }
        replicatedPump(*leader, *follower, batches[b], &haTranscript,
                       unflushed);
        // Leader checkpoint cadence: the follower captures its own and
        // cross-checks (epoch, checksum) — silent divergence is impossible.
        control->captureCheckpoint(true);
        const CheckpointCapture cap = leader->captureCheckpoint(true);
        follower->consume(captureCkptRecord(leader->stats().pumps, cap));
        if (b == from) {
          // The leader acked its flushes up to this pump: the follower
          // retires those retained responses.
          follower->consume(captureFlushRecord(leader->stats().pumps));
          unflushed->clear();
        }
      }
    };

    // Epoch 1: original leader with follower A attached from the start.
    ReplicationFollower followerA(opt);
    attach(*leader, *control, followerA);
    std::vector<std::string> unflushedA;
    drive(&followerA, 0, f1, &unflushedA);

    // Leader dies mid-record: an RPUMP header with no commands behind it
    // must be discarded by promotion, not half-applied.
    followerA.consume("RPUMP " + std::to_string(leader->stats().pumps) +
                      " 2");
    auto promoA = followerA.promote();
    ASSERT_EQ(unflushedA.size(), promoA.retained.size()) << "seed " << seed;
    for (std::size_t i = 0; i < unflushedA.size(); ++i) {
      ASSERT_EQ(unflushedA[i], promoA.retained[i].payload)
          << "seed " << seed << " retained " << i;
    }
    ASSERT_EQ(manifestOf(*leader), manifestOf(*promoA.engine))
        << "seed " << seed << ": promoted follower A diverged";
    leader = std::move(promoA.engine);

    // Epoch 2: promoted A is the leader; follower B attaches, then A dies.
    ReplicationFollower followerB(opt);
    attach(*leader, *control, followerB);
    std::vector<std::string> unflushedB;
    drive(&followerB, f1, f2, &unflushedB);
    auto promoB = followerB.promote();
    ASSERT_EQ(manifestOf(*leader), manifestOf(*promoB.engine))
        << "seed " << seed << ": promoted follower B diverged";
    leader = std::move(promoB.engine);

    // Epoch 3: twice-promoted engine finishes the workload alone.
    drive(nullptr, f2, n, nullptr);

    ASSERT_EQ(controlTranscript, haTranscript) << "seed " << seed;
    ASSERT_EQ(manifestOf(*control), manifestOf(*leader)) << "seed " << seed;
  }
}

TEST(ReplicationProperty, FollowerRefusesDivergentCheckpoint) {
  EngineOptions opt;
  Engine leader(opt);
  Engine control(opt);
  ReplicationFollower follower(opt);
  attach(leader, control, follower);

  // Apply a command on the leader WITHOUT replicating it, then stream an
  // empty pump so the pump counters agree while the states do not.
  leader.submit("OPEN t0 skew 2");
  std::vector<Response> out;
  leader.pump(out);
  for (const std::string& rec : capturePumpRecord(0, {})) {
    follower.consume(rec);
  }
  const CheckpointCapture cap = leader.captureCheckpoint(true);
  EXPECT_THROW(
      follower.consume(captureCkptRecord(leader.stats().pumps, cap)),
      InputError);
}

TEST(ReplicationProperty, FollowerRefusesPumpGap) {
  EngineOptions opt;
  Engine leader(opt);
  Engine control(opt);
  ReplicationFollower follower(opt);
  attach(leader, control, follower);
  // Leader claims to be at pump 3; the follower has applied none.
  EXPECT_THROW(follower.consume("RPUMP 3 0"), InputError);
}

TEST(ReplicationProperty, SnapshotChunkingRoundTrips) {
  EngineOptions opt;
  Engine leader(opt);
  for (int i = 0; i < 8; ++i) {
    leader.submit("OPEN t0 s" + std::to_string(i) + " 2");
  }
  std::vector<Response> out;
  leader.pump(out);
  const CheckpointCapture snap = leader.captureCheckpoint(false);

  // The encoder's record count matches its chunk math.
  const std::vector<std::string> recs = captureSnapshotRecord(snap);
  const std::size_t wantChunks =
      (snap.text.size() + kSnapshotChunkBytes - 1) / kSnapshotChunkBytes;
  ASSERT_EQ(1 + wantChunks, recs.size());

  // The follower assembles however many chunks the header promises — feed
  // the same snapshot split into 64-byte chunks to exercise multi-chunk
  // reassembly without a multi-megabyte manifest.
  constexpr std::size_t kTinyChunk = 64;
  const std::size_t chunks =
      (snap.text.size() + kTinyChunk - 1) / kTinyChunk;
  ASSERT_GT(chunks, 2u);
  ReplicationFollower follower(opt);
  follower.consume(captureHelloRecord());
  follower.consume("RSNAP " + std::to_string(snap.epoch) + ' ' +
                   std::to_string(snap.checksum) + ' ' +
                   std::to_string(chunks));
  for (std::size_t i = 0; i < chunks; ++i) {
    follower.consume("RCHUNK " + std::to_string(i) + "\n" +
                     snap.text.substr(i * kTinyChunk, kTinyChunk));
    EXPECT_EQ(i + 1 == chunks, follower.snapshotLoaded());
  }
  auto promo = follower.promote();
  EXPECT_EQ(manifestOf(leader), manifestOf(*promo.engine));
}

}  // namespace
}  // namespace gpd::service
