// Framing layer: boundary preservation under arbitrary chunking, and
// resynchronization after every kind of damage the chaos harness inflicts.
#include "service/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace gpd::service {
namespace {

TEST(Frame, RoundTripsPayloads) {
  const std::vector<std::string> payloads = {
      "", "OPEN t s 3", "EV t s 0 0 1 0 0", std::string(1000, 'x'),
      std::string("\x00\x01\xff binary \x7f", 12)};
  FrameDecoder dec;
  for (const std::string& p : payloads) dec.feed(encodeFrame(p));
  for (const std::string& p : payloads) {
    const auto got = dec.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, p);
  }
  EXPECT_FALSE(dec.pop().has_value());
  EXPECT_EQ(dec.framesDecoded(), payloads.size());
  EXPECT_EQ(dec.bytesDiscarded(), 0u);
  EXPECT_EQ(dec.bytesPending(), 0u);
}

TEST(Frame, SurvivesByteAtATimeChunking) {
  const std::string wire =
      encodeFrame("QUERY t s") + encodeFrame("CLOSE t s");
  FrameDecoder dec;
  std::vector<std::string> got;
  for (char c : wire) {
    dec.feed({&c, 1});
    while (auto p = dec.pop()) got.push_back(*p);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "QUERY t s");
  EXPECT_EQ(got[1], "CLOSE t s");
}

TEST(Frame, ResyncsAfterLeadingGarbage) {
  FrameDecoder dec;
  dec.feed("this is not a frame at all \x01\x02\x03");
  dec.feed(encodeFrame("STATS"));
  const auto got = dec.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "STATS");
  EXPECT_GT(dec.bytesDiscarded(), 0u);
  EXPECT_GT(dec.resyncs(), 0u);
}

TEST(Frame, ChecksumFailureDropsOnlyTheDamagedFrame) {
  std::string damaged = encodeFrame("EV t s 0 0 1 2 3");
  damaged[damaged.size() - 1] ^= 0x5a;  // corrupt the payload
  FrameDecoder dec;
  dec.feed(damaged);
  dec.feed(encodeFrame("QUERY t s"));
  const auto got = dec.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "QUERY t s");  // the damaged frame never surfaces
  EXPECT_GT(dec.bytesDiscarded(), 0u);
}

TEST(Frame, TruncatedFrameStaysPendingUntilMoreBytes) {
  const std::string whole = encodeFrame("END t s 0 5");
  FrameDecoder dec;
  dec.feed(std::string_view(whole).substr(0, whole.size() - 3));
  EXPECT_FALSE(dec.pop().has_value());
  EXPECT_GT(dec.bytesPending(), 0u);
  dec.feed(std::string_view(whole).substr(whole.size() - 3));
  const auto got = dec.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "END t s 0 5");
  EXPECT_EQ(dec.bytesPending(), 0u);
}

TEST(Frame, TruncationFollowedByNewFrameResyncs) {
  // A frame cut short mid-payload, then an intact frame: the decoder first
  // mis-reads the next header as payload, fails the checksum, and must
  // recover the frame after it.
  const std::string cut =
      encodeFrame("EV t s 0 0 7 7 7").substr(0, kFrameHeaderBytes + 3);
  FrameDecoder dec;
  dec.feed(cut);
  dec.feed(encodeFrame("TICK t s 4"));
  dec.feed(encodeFrame("SYNC b1"));
  std::vector<std::string> got;
  while (auto p = dec.pop()) got.push_back(*p);
  // The first intact frame was swallowed by the truncated header's claimed
  // length; the second must still decode.
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.back(), "SYNC b1");
}

TEST(Frame, OversizeLengthIsGarbageNotAllocation) {
  std::string evil = "GPDF";
  evil += '\xff';  // length 0xff... way past kMaxFramePayload
  evil += '\xff';
  evil += '\xff';
  evil += '\xff';
  evil += std::string(4, '\0');
  FrameDecoder dec;
  dec.feed(evil);
  dec.feed(encodeFrame("STATS"));
  const auto got = dec.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "STATS");
}

TEST(Frame, EncodeRejectsOversizePayload) {
  EXPECT_THROW(encodeFrame(std::string(kMaxFramePayload + 1, 'a')),
               gpd::InputError);
}

TEST(Frame, FuzzedGarbageBetweenFramesNeverLosesIntactOnes) {
  Rng rng(99);
  FrameDecoder dec;
  std::vector<std::string> sent;
  std::string wire;
  for (int i = 0; i < 200; ++i) {
    if (rng.chance(0.4)) {
      const std::size_t len = 1 + rng.index(40);
      for (std::size_t j = 0; j < len; ++j) {
        char c = static_cast<char>(rng.index(256));
        // Keep the junk from spelling the magic (the engine's id charset
        // guarantee, enforced here by construction).
        if (c == 'G') c = 'g';
        wire += c;
      }
    }
    const std::string payload = "EV t s 0 " + std::to_string(i);
    sent.push_back(payload);
    wire += encodeFrame(payload);
  }
  // Feed in random chunk sizes.
  std::size_t off = 0;
  std::vector<std::string> got;
  while (off < wire.size()) {
    const std::size_t n = std::min(wire.size() - off, 1 + rng.index(97));
    dec.feed(std::string_view(wire).substr(off, n));
    off += n;
    while (auto p = dec.pop()) got.push_back(*p);
  }
  EXPECT_EQ(got, sent);
}

}  // namespace
}  // namespace gpd::service
